"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

import numpy as np

__all__ = [
    "require",
    "require_positive",
    "require_square",
    "require_cube",
    "require_odd_or_even_square",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> None:
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_square(array: np.ndarray, name: str = "image") -> int:
    """Check that ``array`` is a 2D square array; return its side length."""
    arr = np.asarray(array)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be a square 2D array, got shape {arr.shape}")
    return arr.shape[0]


def require_cube(array: np.ndarray, name: str = "volume") -> int:
    """Check that ``array`` is a 3D cubic array; return its side length."""
    arr = np.asarray(array)
    if arr.ndim != 3 or len(set(arr.shape)) != 1:
        raise ValueError(f"{name} must be a cubic 3D array, got shape {arr.shape}")
    return arr.shape[0]


def require_odd_or_even_square(array: np.ndarray, name: str = "image") -> int:
    """Like :func:`require_square` but tolerates any parity (documented alias)."""
    return require_square(array, name)
