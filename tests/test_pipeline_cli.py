"""Tests for the command-line interface (filesystem-composed pipeline)."""

import numpy as np
import pytest

from repro.pipeline.cli import build_parser, main


@pytest.fixture(scope="module")
def dataset_files(tmp_path_factory):
    """A simulated dataset written through the CLI itself."""
    root = tmp_path_factory.mktemp("cli")
    paths = {
        "map": str(root / "map.mrc"),
        "stack": str(root / "stack.mrc"),
        "orient": str(root / "init.txt"),
        "truth": str(root / "truth.txt"),
    }
    rc = main(
        [
            "simulate", "--kind", "sindbis", "--size", "24", "--views", "6",
            "--snr", "6", "--initial-error", "2.0", "--center-sigma", "0.3",
            "--seed", "1",
            "--out-map", paths["map"], "--out-stack", paths["stack"],
            "--out-orient", paths["orient"], "--out-truth-orient", paths["truth"],
        ]
    )
    assert rc == 0
    return root, paths


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_simulate_outputs_exist(dataset_files):
    root, paths = dataset_files
    from repro.density import read_mrc
    from repro.refine import read_orientation_file

    data, apix = read_mrc(paths["map"])
    assert data.shape == (24, 24, 24)
    stack, _ = read_mrc(paths["stack"])
    assert stack.shape == (6, 24, 24)
    orients, _ = read_orientation_file(paths["orient"])
    assert len(orients) == 6


def test_refine_and_reconstruct_roundtrip(dataset_files, capsys):
    root, paths = dataset_files
    refined = str(root / "refined.txt")
    rc = main(
        [
            "refine", "--map", paths["map"], "--stack", paths["stack"],
            "--orient", paths["orient"], "--out", refined,
            "--levels", "1.0", "--half-steps", "2", "--r-max", "9",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "matchings" in out

    from repro.refine import read_orientation_file
    from repro.refine.stats import angular_errors

    new, _ = read_orientation_file(refined)
    truth, _ = read_orientation_file(paths["truth"])
    init, _ = read_orientation_file(paths["orient"])
    assert angular_errors(new, truth).mean() <= angular_errors(init, truth).mean() + 0.3

    out_map = str(root / "rec.mrc")
    rc = main(["reconstruct", "--stack", paths["stack"], "--orient", refined, "--out", out_map])
    assert rc == 0
    from repro.density import read_mrc

    rec, _ = read_mrc(out_map)
    assert rec.shape == (24, 24, 24)


def test_refine_on_simulated_cluster(dataset_files, capsys):
    root, paths = dataset_files
    refined = str(root / "refined_par.txt")
    rc = main(
        [
            "refine", "--map", paths["map"], "--stack", paths["stack"],
            "--orient", paths["orient"], "--out", refined,
            "--levels", "1.0", "--half-steps", "1", "--r-max", "8", "--ranks", "2",
        ]
    )
    assert rc == 0
    assert "simulated ranks" in capsys.readouterr().out


def test_resolution_command(dataset_files, capsys):
    root, paths = dataset_files
    rc = main(["resolution", "--stack", paths["stack"], "--orient", paths["truth"]])
    assert rc == 0
    out = capsys.readouterr().out
    assert "crossing resolution" in out


def test_reconstruct_count_mismatch(dataset_files, capsys, tmp_path):
    root, paths = dataset_files
    from repro.geometry import Orientation
    from repro.refine import write_orientation_file

    short = str(tmp_path / "short.txt")
    write_orientation_file(short, [Orientation(0, 0, 0)])
    rc = main(
        ["reconstruct", "--stack", paths["stack"], "--orient", short, "--out", str(tmp_path / "x.mrc")]
    )
    assert rc == 2


REFINE_REQUIRED = [
    "refine", "--map", "m.mrc", "--stack", "s.mrc", "--orient", "o.txt", "--out", "r.txt",
]


@pytest.mark.parametrize(
    "extra, fragment",
    [
        (["--workers", "0"], "--workers must be >= 1"),
        (["--workers", "-3"], "--workers must be >= 1"),
        (["--ranks", "-1"], "--ranks must be >= 0"),
        (["--half-steps", "0"], "--half-steps must be >= 1"),
        (["--max-slides", "-1"], "--max-slides must be >= 0"),
        (["--r-max", "0"], "--r-max must be positive"),
        (["--levels", ""], "at least one angular step"),
        (["--levels", "1.0,banana"], "comma-separated numbers"),
        (["--levels", "1.0,-0.5"], "must be positive degrees"),
    ],
)
def test_refine_rejects_bad_arguments(extra, fragment, capsys):
    """Malformed refine options exit 2 with a usage message, before any I/O."""
    with pytest.raises(SystemExit) as exc:
        main(REFINE_REQUIRED + extra)
    assert exc.value.code == 2
    assert fragment in capsys.readouterr().err


@pytest.mark.parametrize(
    "extra, fragment",
    [
        (["--resume"], "--resume requires --checkpoint"),
        (["--checkpoint", "c.ckpt", "--ranks", "2"], "in-process path"),
    ],
)
def test_refine_rejects_bad_checkpoint_options(extra, fragment, capsys):
    with pytest.raises(SystemExit) as exc:
        main(REFINE_REQUIRED + extra)
    assert exc.value.code == 2
    assert fragment in capsys.readouterr().err


def test_refine_checkpoint_and_resume(dataset_files, capsys):
    """A killed run's checkpoint resumes to the uninterrupted run's bits."""
    root, paths = dataset_files
    base_args = [
        "refine", "--map", paths["map"], "--stack", paths["stack"],
        "--orient", paths["orient"],
        "--levels", "1.0,0.5", "--half-steps", "1", "--r-max", "8",
    ]
    clean = str(root / "clean.txt")
    assert main(base_args + ["--out", clean]) == 0

    # first run writes the checkpoint level by level; the rerun with
    # --resume starts from the final checkpoint and recomputes nothing
    ckpt = str(root / "run.ckpt")
    out1 = str(root / "ckpt_run.txt")
    assert main(base_args + ["--out", out1, "--checkpoint", ckpt]) == 0
    out2 = str(root / "resumed.txt")
    assert main(base_args + ["--out", out2, "--checkpoint", ckpt, "--resume"]) == 0

    from repro.refine import read_orientation_file

    want, want_scores = read_orientation_file(clean)
    for path in (out1, out2):
        got, got_scores = read_orientation_file(path)
        assert [o.as_tuple() for o in got] == [o.as_tuple() for o in want]
        assert np.array_equal(got_scores, want_scores)


def test_refine_dry_run_prints_resolved_config(capsys):
    """--dry-run resolves and prints the annotated config without any I/O
    (the referenced files don't exist), then exits 0."""
    rc = main(REFINE_REQUIRED + ["--dry-run", "--workers", "2", "--kernel", "fused"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "engine fingerprint:" in out
    assert "environment:" in out
    # explicit flags are annotated as such; untouched fields as defaults
    assert "kernel.kernel" in out and "'fused'" in out and "[flag]" in out
    assert "[default]" in out
    assert "parallel.n_workers" in out


def test_refine_dry_run_shows_config_file_provenance(tmp_path, capsys):
    cfg = tmp_path / "run.toml"
    cfg.write_text('[kernel]\nkernel = "reference"\n')
    rc = main(REFINE_REQUIRED + ["--config", str(cfg), "--dry-run"])
    assert rc == 0
    out = capsys.readouterr().out
    assert f"config file: {cfg}" in out
    assert "'reference'" in out and "[file]" in out


def test_refine_flags_beat_config_file(tmp_path, capsys):
    cfg = tmp_path / "run.toml"
    cfg.write_text('[kernel]\nkernel = "reference"\n')
    rc = main(
        REFINE_REQUIRED + ["--config", str(cfg), "--kernel", "batched", "--dry-run"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "'batched'" in out
    assert "'reference'" not in out


@pytest.mark.parametrize(
    "text, fragment",
    [
        ('[kernel]\nkernel = "turbo"\n', "kernel"),
        ("[warp]\nspeed = 9\n", "warp"),
        ('[memo]\nenabled = "sometimes"\n', "memo.enabled"),
    ],
)
def test_refine_rejects_bad_config_file(tmp_path, text, fragment, capsys):
    cfg = tmp_path / "bad.toml"
    cfg.write_text(text)
    with pytest.raises(SystemExit) as exc:
        main(REFINE_REQUIRED + ["--config", str(cfg), "--dry-run"])
    assert exc.value.code == 2
    assert fragment in capsys.readouterr().err


def test_refine_with_config_file_runs(dataset_files, tmp_path, capsys):
    """A file-driven refine produces the same bits as the flag-driven run."""
    root, paths = dataset_files
    cfg = tmp_path / "run.toml"
    cfg.write_text(
        "r_max = 9.0\n"
        "[schedule]\n"
        "levels = [[1.0, 1.0, 2, 1]]\n"
    )
    by_file = str(root / "by_file.txt")
    rc = main(
        ["refine", "--map", paths["map"], "--stack", paths["stack"],
         "--orient", paths["orient"], "--out", by_file, "--config", str(cfg)]
    )
    assert rc == 0
    by_flags = str(root / "by_flags.txt")
    rc = main(
        ["refine", "--map", paths["map"], "--stack", paths["stack"],
         "--orient", paths["orient"], "--out", by_flags,
         "--levels", "1.0", "--half-steps", "2", "--r-max", "9"]
    )
    assert rc == 0
    from repro.refine import read_orientation_file

    a, sa = read_orientation_file(by_file)
    b, sb = read_orientation_file(by_flags)
    assert [o.as_tuple() for o in a] == [o.as_tuple() for o in b]
    assert np.array_equal(sa, sb)


def test_refine_rejects_unknown_kernel(capsys):
    with pytest.raises(SystemExit) as exc:
        main(REFINE_REQUIRED + ["--kernel", "turbo"])
    assert exc.value.code == 2
    assert "--kernel" in capsys.readouterr().err


def test_detect_symmetry_command(tmp_path, capsys):
    from repro.density import write_mrc, cyclic_phantom

    density = cyclic_phantom(20, n=4, seed=0).normalized()
    path = str(tmp_path / "c4.mrc")
    write_mrc(path, density.data)
    rc = main(["detect-symmetry", "--map", path, "--axes", "80", "--max-order", "4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "group:" in out


def test_refine_dry_run_symmetry_flag(capsys):
    rc = main(REFINE_REQUIRED + ["--dry-run", "--symmetry", "fixed:I"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "symmetry.mode" in out and "'fixed:I'" in out and "[flag]" in out


def test_refine_rejects_bad_symmetry(capsys):
    """An unknown group name dies in config validation, before any I/O."""
    rc_or_exc = None
    try:
        rc_or_exc = main(REFINE_REQUIRED + ["--dry-run", "--symmetry", "fixed:Q9"])
    except SystemExit as exc:
        rc_or_exc = exc.code
    assert rc_or_exc != 0
    err = capsys.readouterr()
    assert "Q9" in err.err + err.out


# -- determine (the outer refine→reconstruct loop) ----------------------------
DETERMINE_REQUIRED = [
    "determine", "--map", "m.mrc", "--stack", "s.mrc", "--orient", "o.txt",
    "--out", "r.txt",
]


@pytest.mark.parametrize(
    "extra, fragment",
    [
        (["--iterations", "0"], "--iterations must be >= 1"),
        (["--fsc-threshold", "0"], "--fsc-threshold must be in (0, 1)"),
        (["--fsc-threshold", "1.0"], "--fsc-threshold must be in (0, 1)"),
        (["--min-improvement", "-0.5"], "--min-improvement must be >= 0"),
        (["--r-max-schedule", "10,banana"], "--r-max-schedule"),
        (["--r-max-schedule", "10,-6"], "--r-max-schedule"),
        (["--resume"], "--resume requires --checkpoint"),
        (["--workers", "0"], "--workers must be >= 1"),
    ],
)
def test_determine_rejects_bad_arguments(extra, fragment, capsys):
    """Malformed loop options exit 2 with a usage message, before any I/O."""
    with pytest.raises(SystemExit) as exc:
        main(DETERMINE_REQUIRED + extra)
    assert exc.value.code == 2
    assert fragment in capsys.readouterr().err


def test_determine_dry_run_shows_iteration_provenance(capsys):
    rc = main(
        DETERMINE_REQUIRED
        + ["--dry-run", "--iterations", "4", "--r-max-schedule", "10,8",
           "--no-streaming"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "engine fingerprint:" in out
    assert "iteration.max_iterations" in out and "[flag]" in out
    assert "iteration.r_max_schedule" in out and "(10.0, 8.0)" in out
    assert "iteration.streaming" in out and "False" in out
    assert "iteration.fsc_threshold" in out and "[default]" in out


def test_determine_end_to_end(dataset_files, capsys, tmp_path):
    root, paths = dataset_files
    out = str(tmp_path / "final.txt")
    out_map = str(tmp_path / "final.mrc")
    rc = main(
        [
            "determine", "--map", paths["map"], "--stack", paths["stack"],
            "--orient", paths["orient"], "--out", out, "--out-map", out_map,
            "--levels", "1.0", "--half-steps", "1", "--r-max", "8",
            "--iterations", "2",
        ]
    )
    assert rc == 0
    text = capsys.readouterr().out
    assert "iteration 0: resolution" in text
    assert "stopped after" in text

    from repro.density import read_mrc
    from repro.refine import read_orientation_file

    final, _ = read_orientation_file(out)
    assert len(final) == 6
    rec, _ = read_mrc(out_map)
    assert rec.shape == (24, 24, 24)


def test_determine_checkpoint_resume_replays(dataset_files, capsys, tmp_path):
    """Rerunning a finished loop with --resume replays it from the
    checkpoint directory to the same final orientations."""
    root, paths = dataset_files
    ckpt_dir = str(tmp_path / "loop_ckpt")
    base_args = [
        "determine", "--map", paths["map"], "--stack", paths["stack"],
        "--orient", paths["orient"],
        "--levels", "1.0", "--half-steps", "1", "--r-max", "8",
        "--iterations", "2", "--checkpoint", ckpt_dir,
    ]
    out1 = str(tmp_path / "first.txt")
    assert main(base_args + ["--out", out1]) == 0
    first = capsys.readouterr().out
    assert "(replayed)" not in first

    out2 = str(tmp_path / "second.txt")
    assert main(base_args + ["--out", out2, "--resume"]) == 0
    second = capsys.readouterr().out
    assert "(replayed)" in second

    from repro.refine import read_orientation_file

    want, _ = read_orientation_file(out1)
    got, _ = read_orientation_file(out2)
    assert [o.as_tuple() for o in got] == [o.as_tuple() for o in want]
