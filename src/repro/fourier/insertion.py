"""Central-slice insertion — the adjoint of extraction, used by reconstruction.

Direct-Fourier 3D reconstruction (the companion algorithm the paper uses in
step C) scatters every view's 2D DFT into the 3D transform with trilinear
weights, accumulates a weight volume alongside, and finally divides.  Each
sample is inserted together with its Friedel mate (``F(−k) = conj F(k)``)
so that real-valuedness of the reconstructed density is preserved and the
Fourier cube fills twice as fast.
"""

from __future__ import annotations

import numpy as np

from repro.arraytypes import Array
from repro.fourier.slicing import slice_coordinates
from repro.fourier.transforms import fourier_center
from repro.utils import require_cube, require_square

__all__ = ["insert_slice", "normalize_insertion"]


def _scatter_trilinear(
    accum: Array, weights: Array, coords_zyx: Array, values: Array
) -> None:
    l = accum.shape[0]
    pts = coords_zyx.reshape(-1, 3)
    vals = values.ravel()
    base = np.floor(pts).astype(np.int64, copy=False)
    frac = pts - base
    flat_a = accum.ravel()
    flat_w = weights.ravel()
    for corner in range(8):
        dz, dy, dx = (corner >> 2) & 1, (corner >> 1) & 1, corner & 1
        idx = base + np.array([dz, dy, dx])
        valid = np.all((idx >= 0) & (idx < l), axis=1)
        w = (
            (frac[:, 0] if dz else 1.0 - frac[:, 0])
            * (frac[:, 1] if dy else 1.0 - frac[:, 1])
            * (frac[:, 2] if dx else 1.0 - frac[:, 2])
        )
        w = np.where(valid, w, 0.0)
        lin = (idx[:, 0] * l + idx[:, 1]) * l + idx[:, 2]
        lin[~valid] = 0
        np.add.at(flat_a, lin, w * vals)
        np.add.at(flat_w, lin, w)


def insert_slice(
    accum: Array,
    weights: Array,
    slice_ft: Array,
    rotation: Array,
    hermitian: bool = True,
    sample_weights: Array | None = None,
) -> None:
    """Scatter one view's centered 2D DFT into the accumulation volume.

    Parameters
    ----------
    accum, weights:
        Complex ``(l, l, l)`` accumulator and real ``(l, l, l)`` weight
        volume, modified in place.
    slice_ft:
        The view's centered 2D DFT, shape ``(l, l)``.
    rotation:
        The view's orientation matrix.
    hermitian:
        Also insert the conjugate at mirrored coordinates (default).
    sample_weights:
        Optional per-pixel real weights (e.g. |CTF| for Wiener-style
        accumulation); multiplies both the value and the weight deposit.
    """
    l = require_cube(accum, "accum")
    require_cube(weights, "weights")
    ls = require_square(slice_ft, "slice_ft")
    if ls > l:
        raise ValueError(f"slice side {ls} exceeds volume side {l}")
    coords = slice_coordinates(ls, rotation, volume_size=l)
    values = np.asarray(slice_ft, dtype=accum.dtype)
    if sample_weights is not None:
        sw = np.asarray(sample_weights, dtype=float)
        if sw.shape != values.shape:
            raise ValueError("sample_weights must match slice shape")
        # weight-aware deposit: accumulate w·F and w so the later division
        # returns a weighted average of the contributing slices.
        _scatter_weighted(accum, weights, coords, values, sw)
        if hermitian:
            c = fourier_center(l)
            mirrored = 2 * c - coords
            _scatter_weighted(accum, weights, mirrored, np.conj(values), sw)
        return
    _scatter_trilinear(accum, weights, coords, values)
    if hermitian:
        c = fourier_center(l)
        mirrored = 2 * c - coords
        _scatter_trilinear(accum, weights, mirrored, np.conj(values))


def _scatter_weighted(
    accum: Array,
    weights: Array,
    coords_zyx: Array,
    values: Array,
    sample_weights: Array,
) -> None:
    l = accum.shape[0]
    pts = coords_zyx.reshape(-1, 3)
    vals = values.ravel() * sample_weights.ravel()
    wvals = sample_weights.ravel()
    base = np.floor(pts).astype(np.int64, copy=False)
    frac = pts - base
    flat_a = accum.ravel()
    flat_w = weights.ravel()
    for corner in range(8):
        dz, dy, dx = (corner >> 2) & 1, (corner >> 1) & 1, corner & 1
        idx = base + np.array([dz, dy, dx])
        valid = np.all((idx >= 0) & (idx < l), axis=1)
        w = (
            (frac[:, 0] if dz else 1.0 - frac[:, 0])
            * (frac[:, 1] if dy else 1.0 - frac[:, 1])
            * (frac[:, 2] if dx else 1.0 - frac[:, 2])
        )
        w = np.where(valid, w, 0.0)
        lin = (idx[:, 0] * l + idx[:, 1]) * l + idx[:, 2]
        lin[~valid] = 0
        np.add.at(flat_a, lin, w * vals)
        np.add.at(flat_w, lin, w * wvals)


def normalize_insertion(
    accum: Array, weights: Array, min_weight: float = 1e-3
) -> Array:
    """Divide the accumulated transform by its weights.

    Voxels whose accumulated weight is below ``min_weight`` (unmeasured
    regions of Fourier space) are set to zero rather than amplified.
    """
    a = np.asarray(accum)
    w = np.asarray(weights, dtype=float)
    if a.shape != w.shape:
        raise ValueError("accum and weights must have the same shape")
    out = np.zeros_like(a)
    good = w >= min_weight
    out[good] = a[good] / w[good]
    return out
