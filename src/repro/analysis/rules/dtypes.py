"""RL003 — no silent dtype churn in the band-math hot paths.

``align/`` and ``fourier/`` process band vectors sized ``π·r_map²`` per
candidate orientation; an ``astype`` that defaults to ``copy=True``
duplicates every one of those gathers, and a stray ``np.float64(...)``
scalar constructor hides an upcast the fused kernel never performs.  The
rule forces every ``astype`` in the hot packages to say ``copy=False``
(copy only when the dtype actually changes) and bans raw float64/complex128
scalar constructors.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import Finding, ModuleUnderLint
from repro.analysis.rules._base import Rule, attribute_chain

__all__ = ["NoSilentUpcast"]

_SCALAR_CTORS = {"float64", "float32", "complex128", "complex64"}


class NoSilentUpcast(Rule):
    rule_id = "RL003"
    name = "no-silent-upcast"
    rationale = (
        "astype defaults to copy=True, duplicating every band gather in the "
        "hot loops; explicit copy=False makes each conversion copy only when "
        "the dtype really changes, and raw np.float64()/np.complex128() "
        "constructors hide upcasts the fused/reference pair must agree on."
    )
    include = ("repro/align/", "repro/fourier/")

    def check(self, mod: ModuleUnderLint) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
                has_copy_false = any(
                    kw.arg == "copy"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                    for kw in node.keywords
                )
                if not has_copy_false:
                    yield self.finding(mod,
                        node,
                        "astype without copy=False in a hot path (silently copies "
                        "even when the dtype already matches)",
                    )
            else:
                chain = attribute_chain(node.func)
                if (
                    chain
                    and len(chain) == 2
                    and chain[0] in ("np", "numpy")
                    and chain[1] in _SCALAR_CTORS
                ):
                    yield self.finding(mod,
                        node,
                        f"raw `np.{chain[1]}(...)` constructor in a hot path; use "
                        "float()/complex() or keep the incoming dtype",
                    )
