"""RL015: caller/callee ``@array_contract`` declarations must agree.

The runtime contracts (:mod:`repro.analysis.contracts`) are zero-cost
unless ``REPRO_CHECK_CONTRACTS=1`` — which means a shape/dtype mismatch
between two decorated boundaries only surfaces when the checked test
suite happens to drive that exact edge.  This pass is the static shadow:
for every call edge between contracted functions where an argument is
*the caller's own contracted parameter* passed through verbatim (and for
``return g(...)`` return-flow), it unifies the two declarations.  A
caller promising ``shape=("l","l")`` may not feed a callee demanding
``shape=("n",)``; a ``float`` array may not flow into a ``complex``
parameter.  Symbolic dims and wildcards unify with anything — the pass
only reports contradictions both declarations are explicit about.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.lint import Finding
from repro.analysis.rules._base import ProgramRule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.callgraph import (
        CallSite,
        FunctionInfo,
        Project,
        StaticSpec,
    )

__all__ = ["ContractFlowConsistent"]

#: dtype name → numpy kind-set, mirroring contracts._DTYPE_KINDS plus the
#: concrete dtype names specs are allowed to use.
_DTYPE_KINDS = {
    "float": "f",
    "complex": "c",
    "int": "iu",
    "bool": "b",
    "inexact": "fc",
    "number": "fciu",
}


def _kinds(dtype: str) -> str | None:
    kinds = _DTYPE_KINDS.get(dtype)
    if kinds is not None:
        return kinds
    for prefix, k in (
        ("float", "f"),
        ("complex", "c"),
        ("uint", "u"),
        ("int", "i"),
        ("bool", "b"),
    ):
        if dtype.startswith(prefix):
            return k
    return None


def _shape_alt_compatible(a: tuple[object, ...], b: tuple[object, ...]) -> bool:
    if len(a) != len(b):
        return False
    for da, db in zip(a, b):
        if isinstance(da, int) and isinstance(db, int) and da != db:
            return False
    return True


def _fmt_shape(shape: tuple[tuple[object, ...], ...]) -> str:
    def one(alt: tuple[object, ...]) -> str:
        return "(" + ", ".join("*" if d is None else repr(d) for d in alt) + ")"

    return " | ".join(one(alt) for alt in shape)


def _spec_conflict(caller: "StaticSpec", callee: "StaticSpec") -> str | None:
    """A human-readable contradiction between two specs, or ``None``."""
    if caller.shape is not None and callee.shape is not None:
        if not any(
            _shape_alt_compatible(a, b)
            for a in caller.shape
            for b in callee.shape
        ):
            return (
                f"declared shape {_fmt_shape(caller.shape)} cannot satisfy "
                f"the callee's {_fmt_shape(callee.shape)}"
            )
    if caller.dtype is not None and callee.dtype is not None:
        ka, kb = _kinds(caller.dtype), _kinds(callee.dtype)
        if ka is not None and kb is not None and not set(ka) & set(kb):
            return (
                f"declared dtype `{caller.dtype}` (kinds {ka!r}) is disjoint "
                f"from the callee's `{callee.dtype}` (kinds {kb!r})"
            )
    # allow_none asymmetries are deliberately not reported: the parser
    # defaults to True for unconstrained specs, so a caller that merely
    # omitted the flag would drown real shape/dtype findings.
    return None


class ContractFlowConsistent(ProgramRule):
    rule_id = "RL015"
    name = "contract-flow-consistent"
    rationale = (
        "@array_contract declarations on caller and callee must unify "
        "along every pass-through call edge; a static contradiction means "
        "one boundary lies about its arrays and only an opted-in "
        "REPRO_CHECK_CONTRACTS run would ever catch it."
    )
    include = ("repro/",)

    def check_program(self, project: "Project") -> Iterator[Finding]:
        graph = project.graph()
        for fn in project.functions.values():
            if fn.contract is None:
                continue
            for site in graph.call_sites(fn.node_id):
                if site.kind != "call" or site.call is None:
                    continue
                callee = project.functions.get(site.callee)
                if callee is None or callee.contract is None or callee is fn:
                    continue
                yield from self._check_site(fn, callee, site)

    def _check_site(
        self, fn: "FunctionInfo", callee: "FunctionInfo", site: "CallSite"
    ) -> Iterator[Finding]:
        assert site.call is not None
        caller_params = set(fn.param_names())
        callee_params = callee.param_names()

        def pairs() -> Iterator[tuple[str, str, ast.expr]]:
            for idx, arg in enumerate(site.call.args):
                if isinstance(arg, ast.Starred) or idx >= len(callee_params):
                    break
                yield callee_params[idx], callee_params[idx], arg
            for kw in site.call.keywords:
                if kw.arg is not None:
                    yield kw.arg, kw.arg, kw.value

        for callee_param, _, expr in pairs():
            if not isinstance(expr, ast.Name) or expr.id not in caller_params:
                continue  # only verbatim pass-through of the caller's params
            caller_spec = (fn.contract.params or {}).get(expr.id)
            callee_spec = (callee.contract.params or {}).get(callee_param)
            if caller_spec is None or callee_spec is None:
                continue
            conflict = _spec_conflict(caller_spec, callee_spec)
            if conflict is not None:
                yield self.finding_at(
                    fn.path,
                    site.call,
                    f"`{fn.qualname}` passes its contracted `{expr.id}` to "
                    f"`{callee.qualname}({callee_param}=…)` but {conflict}",
                )
        # return-flow: `return g(...)` must not contradict the caller's ret
        ret_caller = fn.contract.ret
        ret_callee = callee.contract.ret
        if ret_caller is not None and ret_callee is not None:
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.Return)
                    and node.value is site.call
                ):
                    conflict = _spec_conflict(ret_callee, ret_caller)
                    if conflict is not None:
                        yield self.finding_at(
                            fn.path,
                            site.call,
                            f"`{fn.qualname}` returns `{callee.qualname}(…)` "
                            f"directly but {conflict}",
                        )
