"""Tests for rotation utilities: axis-angle, quaternions, checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import (
    axis_angle_to_matrix,
    is_rotation_matrix,
    matrix_to_axis_angle,
    matrix_to_quaternion,
    quaternion_to_matrix,
    rotation_angle_deg,
    rotation_between,
)

unit_angles = st.floats(min_value=0.5, max_value=179.5)
components = st.floats(min_value=-1.0, max_value=1.0)


def test_axis_angle_basic():
    m = axis_angle_to_matrix([0, 0, 1], 90.0)
    assert np.allclose(m @ [1, 0, 0], [0, 1, 0], atol=1e-12)


def test_axis_angle_zero_axis_raises():
    with pytest.raises(ValueError):
        axis_angle_to_matrix([0, 0, 0], 10.0)


@given(ax=components, ay=components, az=components, angle=unit_angles)
@settings(max_examples=100)
def test_axis_angle_roundtrip(ax, ay, az, angle):
    axis = np.array([ax, ay, az])
    if np.linalg.norm(axis) < 1e-3:
        axis = np.array([0.0, 0.0, 1.0])
    m = axis_angle_to_matrix(axis, angle)
    axis2, angle2 = matrix_to_axis_angle(m)
    assert np.allclose(axis_angle_to_matrix(axis2, angle2), m, atol=1e-8)


def test_axis_angle_identity():
    axis, angle = matrix_to_axis_angle(np.eye(3))
    assert angle == 0.0


def test_axis_angle_180_degrees():
    for axis in ([1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 1, 0], [1, 1, 1]):
        m = axis_angle_to_matrix(axis, 180.0)
        axis2, angle2 = matrix_to_axis_angle(m)
        assert angle2 == pytest.approx(180.0)
        assert np.allclose(axis_angle_to_matrix(axis2, 180.0), m, atol=1e-6)


@given(ax=components, ay=components, az=components, angle=unit_angles)
@settings(max_examples=100)
def test_quaternion_roundtrip(ax, ay, az, angle):
    axis = np.array([ax, ay, az])
    if np.linalg.norm(axis) < 1e-3:
        axis = np.array([1.0, 0.0, 0.0])
    m = axis_angle_to_matrix(axis, angle)
    q = matrix_to_quaternion(m)
    assert q[0] >= 0
    assert np.allclose(quaternion_to_matrix(q), m, atol=1e-9)


def test_quaternion_bad_inputs():
    with pytest.raises(ValueError):
        quaternion_to_matrix(np.zeros(4))
    with pytest.raises(ValueError):
        quaternion_to_matrix(np.ones(3))


def test_is_rotation_matrix_rejects():
    assert not is_rotation_matrix(np.eye(4))
    assert not is_rotation_matrix(2 * np.eye(3))
    reflect = np.diag([1.0, 1.0, -1.0])
    assert not is_rotation_matrix(reflect)
    assert is_rotation_matrix(np.eye(3))


def test_rotation_angle_and_between():
    a = axis_angle_to_matrix([0, 0, 1], 30.0)
    b = axis_angle_to_matrix([0, 0, 1], 75.0)
    assert rotation_angle_deg(a) == pytest.approx(30.0)
    assert rotation_between(a, b) == pytest.approx(45.0)
