"""Micro-benchmarks of the computational kernels.

These are the hot paths of the algorithm — slice extraction (step f),
batched distances (step g), slice insertion (reconstruction), the 3D FFT
(step a) — timed individually with pytest-benchmark so performance
regressions are visible.  The O(·) scaling claimed by the paper for each
step is asserted where cheap to do.
"""

import numpy as np
import pytest

from repro.align import DistanceComputer
from repro.density import sindbis_like_phantom
from repro.fourier import centered_fftn, insert_slice
from repro.fourier.slicing import extract_slice, extract_slices
from repro.geometry import euler_to_matrix, random_orientations


@pytest.fixture(scope="module")
def vol48():
    return sindbis_like_phantom(48).normalized()


@pytest.fixture(scope="module")
def vft48(vol48):
    return vol48.fourier()


def test_kernel_3d_fft(benchmark, vol48):
    out = benchmark(centered_fftn, vol48.data)
    assert out.shape == (48, 48, 48)


def test_kernel_extract_single_slice(benchmark, vft48):
    r = euler_to_matrix(40.0, 50.0, 60.0)
    cut = benchmark(extract_slice, vft48, r)
    assert cut.shape == (48, 48)


def test_kernel_extract_window_of_cuts(benchmark, vft48):
    rots = np.stack([o.matrix() for o in random_orientations(125, seed=0)])
    cuts = benchmark(extract_slices, vft48, rots)
    assert cuts.shape == (125, 48, 48)


def test_kernel_distance_batch(benchmark, vft48):
    rots = np.stack([o.matrix() for o in random_orientations(125, seed=1)])
    cuts = extract_slices(vft48, rots)
    dc = DistanceComputer(48, r_max=20)
    view = cuts[0]
    d = benchmark(dc.distance_batch, view, cuts)
    assert d.shape == (125,)
    assert d[0] == pytest.approx(0.0, abs=1e-12)


def test_kernel_insert_slice(benchmark, vft48):
    r = euler_to_matrix(10.0, 20.0, 30.0)
    cut = extract_slice(vft48, r)

    def run():
        accum = np.zeros((48, 48, 48), dtype=complex)
        weights = np.zeros((48, 48, 48))
        insert_slice(accum, weights, cut, r)
        return weights

    w = benchmark(run)
    assert w.sum() > 0


def test_kernel_center_shift_stack(benchmark, vft48):
    from repro.refine.center_refine import _shift_stack

    view = extract_slice(vft48, np.eye(3))
    dxs = np.linspace(-1, 1, 25)
    dys = np.linspace(-1, 1, 25)
    stack = benchmark(_shift_stack, view, dxs, dys)
    assert stack.shape == (25, 48, 48)


def test_distance_cost_scales_with_band(vft48):
    """Step g is O(r_map^2): halving r_map quarters the sample count."""
    full = DistanceComputer(48, r_max=20)
    half = DistanceComputer(48, r_max=10)
    ratio = full.n_samples / half.n_samples
    assert 3.0 < ratio < 5.0
