"""bench-smoke: a tiny always-on slice of the kernel benchmark claims.

The full benchmark (benchmarks/run_bench.py, l = 64) is too slow for every
tier-1 run, but its *correctness* half — the batched whole-window engine
returns bit-identical results to the reference slice-then-distance path —
must never wait for a bench run to regress loudly.  This module pins that
equivalence at l = 16 in seconds, marked ``bench_smoke`` so the quality
gate can also run it as a named step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.density import asymmetric_phantom
from repro.imaging.simulate import simulate_views
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel
from repro.refine.refiner import OrientationRefiner

pytestmark = pytest.mark.bench_smoke


def test_batched_matches_reference_small():
    size = 16
    density = asymmetric_phantom(size, seed=0).normalized()
    views = simulate_views(
        density, 2, initial_angle_error_deg=3.0, center_sigma_px=0.5, seed=0
    )
    schedule = MultiResolutionSchedule(
        (
            RefinementLevel(2.0, 1.0, half_steps=2),
            RefinementLevel(1.0, 0.5, half_steps=2),
        )
    )
    results = {}
    for kernel in ("reference", "batched"):
        refiner = OrientationRefiner(density, kernel=kernel)
        results[kernel] = refiner.refine(views, schedule=schedule)
    ref, bat = results["reference"], results["batched"]
    assert [o.as_tuple() for o in ref.orientations] == [
        o.as_tuple() for o in bat.orientations
    ]
    assert np.array_equal(ref.distances, bat.distances)
    assert bat.perf is not None and bat.perf.memo_hits > 0
