"""Tests for master-node distribution patterns (steps a.1-a.2, b, c, o)."""

import numpy as np
import pytest

from repro.geometry import Orientation
from repro.parallel import run_spmd
from repro.parallel.machine import MachineSpec
from repro.parallel.master_io import (
    distribute_orientations,
    distribute_views,
    distribute_volume_slabs,
    gather_orientations,
)

FAST = MachineSpec("fast", flops=1e12, net_latency=1e-6, net_bandwidth=1e10, io_bandwidth=1e10)


def test_distribute_volume_slabs(rng):
    vol = rng.normal(size=(10, 10, 10))

    def worker(comm):
        slab = distribute_volume_slabs(comm, vol if comm.rank == 0 else None)
        return slab

    results, _ = run_spmd(3, worker, FAST)
    assert np.allclose(np.concatenate(results, axis=0), vol)


def test_distribute_volume_requires_master_data():
    def worker(comm):
        return distribute_volume_slabs(comm, None)

    with pytest.raises(RuntimeError, match="rank 0"):
        run_spmd(2, worker, FAST)


def test_distribute_views_with_indices(rng):
    images = rng.normal(size=(7, 4, 4))

    def worker(comm):
        local, idx = distribute_views(comm, images if comm.rank == 0 else None)
        return local, idx

    results, _ = run_spmd(3, worker, FAST)
    all_idx = np.concatenate([r[1] for r in results])
    assert np.array_equal(np.sort(all_idx), np.arange(7))
    for local, idx in results:
        assert np.allclose(local, images[idx])


def test_distribute_orientations_aligned_with_views(rng):
    images = rng.normal(size=(5, 4, 4))
    orients = [Orientation(i, i, i) for i in range(5)]

    def worker(comm):
        local, idx = distribute_views(comm, images if comm.rank == 0 else None)
        local_o = distribute_orientations(comm, orients if comm.rank == 0 else None)
        return idx, local_o

    results, _ = run_spmd(2, worker, FAST)
    for idx, local_o in results:
        for i, o in zip(idx, local_o):
            assert o.theta == float(i)


def test_gather_orientations_restores_order_and_writes(tmp_path, rng):
    orients = [Orientation(i, 0, 0) for i in range(6)]
    path = str(tmp_path / "refined.txt")

    def worker(comm):
        local_o = distribute_orientations(comm, orients if comm.rank == 0 else None)
        return gather_orientations(comm, local_o, path=path if comm.rank == 0 else None)

    results, _ = run_spmd(3, worker, FAST)
    assert results[1] is None
    gathered = results[0]
    assert [o.theta for o in gathered] == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
    from repro.refine import read_orientation_file

    back, _ = read_orientation_file(path)
    assert len(back) == 6


def test_io_time_charged_to_master(rng):
    slow_io = MachineSpec("s", flops=1e12, net_latency=0.0, net_bandwidth=1e12, io_bandwidth=1000.0)
    vol = rng.normal(size=(8, 8, 8))  # 4096 B -> 4.096 s read... wait 8^3*8 = 4096 B

    def worker(comm):
        distribute_volume_slabs(comm, vol if comm.rank == 0 else None)
        return comm.elapsed()

    results, _ = run_spmd(2, worker, slow_io)
    assert results[0] >= 4.0  # master paid the read
