"""Kaiser–Bessel gridding interpolation — a higher-order alternative to the
paper's trilinear cuts.

Trilinear interpolation of an oversampled transform (the paper-era choice,
implemented in :mod:`repro.fourier.slicing`) leaves a few-percent error at
high frequency.  The modern standard is to interpolate with a compact
Kaiser–Bessel (KB) window and *pre-compensate* the real-space map by the
window's inverse Fourier transform, which makes the interpolation nearly
exact for band-limited data.  This module provides that as an optional
upgrade (ablation E13 quantifies the gain):

    vol_ft = prepare_gridding_volume(density, kernel, pad_factor)
    cut    = gridding_extract_slice(vol_ft, R, kernel, out_size=density.size)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arraytypes import Array
from repro.fourier.transforms import centered_fftn, fourier_center
from repro.utils import require_cube

__all__ = ["KaiserBesselKernel", "prepare_gridding_volume", "gridding_extract_slice"]


def _i0(x: Array) -> Array:
    # modified Bessel function of the first kind, order 0
    from scipy.special import i0

    return i0(x)


@dataclass(frozen=True)
class KaiserBesselKernel:
    """A separable Kaiser–Bessel interpolation window.

    Attributes
    ----------
    width:
        Support in grid samples (per axis); 3–5 is typical.
    beta:
        Shape parameter.  The classic choice for oversampling factor ``σ``
        is ``β = π·√((w/σ)²·(σ−0.5)² − 0.8)`` (Beatty et al.); use
        :meth:`for_oversampling`.
    """

    width: float
    beta: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.beta <= 0:
            raise ValueError("width and beta must be positive")

    @staticmethod
    def for_oversampling(width: float = 4.0, oversampling: float = 2.0) -> "KaiserBesselKernel":
        """The standard β for a given support and oversampling factor."""
        if oversampling <= 0.5:
            raise ValueError("oversampling must exceed 0.5")
        arg = (width / oversampling) ** 2 * (oversampling - 0.5) ** 2 - 0.8
        beta = np.pi * np.sqrt(max(arg, 0.1))
        return KaiserBesselKernel(width=width, beta=float(beta))

    def evaluate(self, u: Array) -> Array:
        """Window value at offsets ``u`` (grid samples); 0 outside ±width/2."""
        u = np.asarray(u, dtype=float)
        half = self.width / 2.0
        inside = np.abs(u) < half
        t = np.zeros_like(u)
        arg = 1.0 - (u[inside] / half) ** 2
        t[inside] = _i0(self.beta * np.sqrt(arg)) / _i0(np.array(self.beta))
        return t

    def deapodization(self, size: int, total_size: int | None = None) -> Array:
        """1D real-space compensation profile for a length-``size`` axis.

        The KB window's inverse DFT evaluated at real-space coordinates;
        dividing the map by the separable product of this profile before
        transforming makes KB interpolation of the transform unbiased.

        ``total_size`` is the length of the grid the kernel interpolates on
        (the *padded* side when the transform is oversampled); the map
        occupies the central ``size`` samples of that grid, so coordinates
        are taken relative to ``total_size``.
        """
        total = size if total_size is None else int(total_size)
        if total < size:
            raise ValueError("total_size must be >= size")
        half = self.width / 2.0
        c = fourier_center(size)
        x = (np.arange(size) - c) / total  # position in units of the padded box
        arg = (np.pi * half * 2.0 * x) ** 2 - self.beta**2
        out = np.empty_like(x)
        pos = arg > 0
        sq = np.sqrt(np.abs(arg))
        # sin(x)/x analytic continuation: sinh below the cutoff
        out[pos] = np.sin(sq[pos]) / sq[pos]
        out[~pos] = np.sinh(sq[~pos]) / np.where(sq[~pos] == 0, 1.0, sq[~pos])
        out[sq == 0] = 1.0
        out /= out[c]
        # guard against division blow-ups at the box corners
        return np.clip(out, 1e-3, None)


def prepare_gridding_volume(
    density, kernel: KaiserBesselKernel, pad_factor: int = 2
) -> Array:
    """Pre-compensated, oversampled transform for KB slice extraction.

    ``density`` is a :class:`repro.density.map.DensityMap`.  The map is
    divided by the separable de-apodization profile, zero-padded by
    ``pad_factor`` and transformed.
    """
    l = density.size
    profile = kernel.deapodization(l, total_size=pad_factor * l)
    comp = density.data / (
        profile[:, None, None] * profile[None, :, None] * profile[None, None, :]
    )
    big = pad_factor * l
    padded = np.zeros((big, big, big))
    off = (big - l) // 2
    padded[off : off + l, off : off + l, off : off + l] = comp
    return centered_fftn(padded)


def gridding_extract_slice(
    volume_ft: Array,
    rotation: Array,
    kernel: KaiserBesselKernel,
    out_size: int,
) -> Array:
    """One central cut interpolated with the KB window.

    ``volume_ft`` must come from :func:`prepare_gridding_volume` with the
    same kernel.  Complexity is O(width³) per output sample.
    """
    big = require_cube(volume_ft, "volume_ft")
    if out_size > big:
        raise ValueError("out_size must not exceed the volume side")
    scale = big / out_size
    cv = fourier_center(big)
    c = fourier_center(out_size)
    k = np.arange(out_size) - c
    ky, kx = np.meshgrid(k, k, indexing="ij")
    r = np.asarray(rotation, dtype=float)
    coords_xyz = (kx[..., None] * r[:, 0] + ky[..., None] * r[:, 1]) * scale
    pts = coords_xyz[..., ::-1].reshape(-1, 3) + cv  # (n, 3) in (z, y, x)

    half = int(np.ceil(kernel.width / 2.0))
    offsets = np.arange(-half, half + 1)
    base = np.rint(pts).astype(np.int64, copy=False)
    out = np.zeros(pts.shape[0], dtype=volume_ft.dtype)
    flat = volume_ft.ravel()
    # kernel-sum normalization: the discrete window does not sum exactly to
    # the continuous DC response, so normalize by the window's own discrete
    # sum at the sample offsets (position-dependent); this is the standard
    # "normalized convolutional gridding" correction
    norm = np.zeros(pts.shape[0])
    for dz in offsets:
        wz = kernel.evaluate(base[:, 0] + dz - pts[:, 0])
        for dy in offsets:
            wy = kernel.evaluate(base[:, 1] + dy - pts[:, 1])
            wzy = wz * wy
            for dx in offsets:
                wx = kernel.evaluate(base[:, 2] + dx - pts[:, 2])
                w = wzy * wx
                idx = base + np.array([dz, dy, dx])
                valid = np.all((idx >= 0) & (idx < big), axis=1)
                lin = (idx[:, 0] * big + idx[:, 1]) * big + idx[:, 2]
                lin[~valid] = 0
                w_valid = np.where(valid, w, 0.0)
                out += w_valid * flat[lin]
                norm += w  # full window sum, independent of cube clipping
    norm[norm == 0] = 1.0
    return (out / norm).reshape(out_size, out_size)
