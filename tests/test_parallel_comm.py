"""Tests for the thread-SPMD communicator."""

import numpy as np
import pytest

from repro.parallel import SimComm, run_spmd
from repro.parallel.machine import MachineSpec

FAST = MachineSpec("fast", flops=1e12, net_latency=1e-5, net_bandwidth=1e9, io_bandwidth=1e9)


def test_send_recv_pairwise():
    def worker(comm):
        if comm.rank == 0:
            comm.send(np.arange(5), 1)
            return None
        return comm.recv(0)

    results, _ = run_spmd(2, worker, FAST)
    assert np.array_equal(results[1], np.arange(5))


def test_send_copies_buffers():
    def worker(comm):
        if comm.rank == 0:
            data = np.zeros(3)
            comm.send(data, 1)
            data += 99  # must not affect the receiver
            return None
        comm.barrier()
        return comm.recv(0)

    def worker2(comm):
        if comm.rank == 0:
            data = np.zeros(3)
            comm.send(data, 1)
            data += 99
            comm.barrier()
            return None
        comm.barrier()
        return comm.recv(0)

    results, _ = run_spmd(2, worker2, FAST)
    assert np.array_equal(results[1], np.zeros(3))


def test_bcast():
    def worker(comm):
        value = np.array([42.0]) if comm.rank == 0 else None
        return comm.bcast(value, root=0)

    results, _ = run_spmd(4, worker, FAST)
    for r in results:
        assert np.array_equal(r, [42.0])


def test_scatter_gather_roundtrip():
    def worker(comm):
        parts = [np.full(2, r) for r in range(comm.size)] if comm.rank == 0 else None
        mine = comm.scatter(parts, root=0)
        assert np.all(mine == comm.rank)
        return comm.gather(mine * 10, root=0)

    results, _ = run_spmd(3, worker, FAST)
    gathered = results[0]
    assert [int(g[0]) for g in gathered] == [0, 10, 20]
    assert results[1] is None


def test_allgather_order():
    def worker(comm):
        return comm.allgather(np.array([comm.rank]))

    results, _ = run_spmd(5, worker, FAST)
    for r in range(5):
        assert [int(x[0]) for x in results[r]] == [0, 1, 2, 3, 4]


def test_alltoall_transpose():
    def worker(comm):
        parts = [np.array([comm.rank * 10 + d]) for d in range(comm.size)]
        return comm.alltoall(parts)

    results, _ = run_spmd(4, worker, FAST)
    for dst in range(4):
        assert [int(x[0]) for x in results[dst]] == [src * 10 + dst for src in range(4)]


def test_allreduce_sum_and_custom_op():
    def worker(comm):
        s = comm.allreduce(float(comm.rank + 1))
        m = comm.allreduce(float(comm.rank + 1), op=max)
        return s, m

    results, _ = run_spmd(4, worker, FAST)
    for s, m in results:
        assert s == 10.0
        assert m == 4.0


def test_barrier_synchronizes_clocks():
    def worker(comm):
        comm.account_compute(float(comm.rank))  # rank r works r seconds
        comm.barrier()
        return comm.elapsed()

    results, clock = run_spmd(4, worker, FAST)
    assert all(t == pytest.approx(3.0) for t in results)
    assert clock.elapsed() == pytest.approx(3.0)


def test_message_time_charged():
    spec = MachineSpec("slow", flops=1e9, net_latency=0.5, net_bandwidth=1e6, io_bandwidth=1e9)

    def worker(comm):
        if comm.rank == 0:
            comm.send(np.zeros(125_000), 1)  # 1 MB -> 1 s transfer + 0.5 s latency
        else:
            comm.recv(0)
        return comm.elapsed()

    results, _ = run_spmd(2, worker, spec)
    assert results[0] == pytest.approx(1.5, rel=0.01)
    assert results[1] >= results[0] - 1e-9


def test_exception_propagates_with_rank():
    def worker(comm):
        if comm.rank == 2:
            raise RuntimeError("boom")
        comm.barrier()

    with pytest.raises(RuntimeError, match="rank 2"):
        run_spmd(3, worker, FAST)


def test_validation():
    with pytest.raises(ValueError):
        run_spmd(0, lambda c: None, FAST)

    def worker(comm):
        with pytest.raises(ValueError):
            comm.send(1, 99)
        with pytest.raises(ValueError):
            comm.recv(-1)
        if comm.rank == 0:
            with pytest.raises(ValueError):
                comm.scatter([1], root=0)  # wrong part count
        return True

    results, _ = run_spmd(2, worker, FAST)
    assert all(results)


def test_account_flops_and_io():
    spec = MachineSpec("m", flops=100.0, net_latency=0.0, net_bandwidth=1e9, io_bandwidth=10.0)

    def worker(comm):
        comm.account_flops(200.0, "calc")
        if comm.rank == 0:
            comm.account_io(50, "read")
        return comm.timer.totals

    results, clock = run_spmd(2, worker, spec)
    assert results[0]["calc"] == pytest.approx(2.0)
    assert results[0]["read"] == pytest.approx(5.0)
    assert clock.elapsed() == pytest.approx(7.0)
