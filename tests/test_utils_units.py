"""Tests for resolution/frequency/shell conversions."""

import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    frequency_to_resolution,
    resolution_to_shell_radius,
    shell_radius_to_resolution,
)
from repro.utils.units import nyquist_resolution, resolution_to_frequency, shell_radii


def test_shell_radius_resolution_roundtrip():
    res = shell_radius_to_resolution(10, box_size=100, apix=2.0)
    assert res == pytest.approx(20.0)
    assert resolution_to_shell_radius(res, 100, 2.0) == pytest.approx(10.0)


@given(
    r=st.floats(min_value=1.0, max_value=200.0),
    box=st.integers(min_value=8, max_value=1024),
    apix=st.floats(min_value=0.2, max_value=5.0),
)
def test_roundtrip_property(r, box, apix):
    res = shell_radius_to_resolution(r, box, apix)
    assert resolution_to_shell_radius(res, box, apix) == pytest.approx(r, rel=1e-9)


def test_nyquist_is_two_apix():
    assert nyquist_resolution(1.5) == 3.0


def test_frequency_resolution_inverse():
    assert frequency_to_resolution(0.25) == pytest.approx(4.0)
    assert resolution_to_frequency(4.0) == pytest.approx(0.25)


def test_paper_scale_example():
    # Sindbis: 331-pixel box; at ~2 A/px the 10 A shell sits near radius 66
    r = resolution_to_shell_radius(10.0, 331, 2.0)
    assert 60 < r < 70


def test_shell_radii_covers_half_box():
    radii = shell_radii(32)
    assert radii[0] == 1 and radii[-1] == 16


@pytest.mark.parametrize("bad", [0.0, -3.0])
def test_invalid_inputs_raise(bad):
    with pytest.raises(ValueError):
        shell_radius_to_resolution(bad, 32, 1.0)
    with pytest.raises(ValueError):
        resolution_to_shell_radius(bad, 32, 1.0)
    with pytest.raises(ValueError):
        frequency_to_resolution(bad)
    with pytest.raises(ValueError):
        nyquist_resolution(bad)
