"""Symmetry detection for a map of unknown symmetry (§3, §6 claim).

The paper's method does not assume symmetry but "can detect symmetry if one
exists".  A rotation ``g`` is a symmetry of the map iff ``ρ(g⁻¹r) = ρ(r)``;
we score candidates by self-consistency under ``g`` and search axes:

1. score candidate axes from a quasi-uniform sphere grid at orders
   2..max_order;
2. locally polish promising axes (Nelder–Mead on the two spherical
   coordinates);
3. accept axes scoring far below the null distribution of random
   rotations; attempt a full polyhedral-group fit (T/O/I) on the accepted
   axes (:mod:`repro.refine.group_fit`); otherwise close the generators
   into a group and classify it.

Two scoring backends are available:

* ``method="real"`` (default) — Pearson correlation between the map and its
  spline-rotated copy; accurate even for smooth, nearly-spherical maps;
* ``method="fourier"`` — the paper-flavored test, comparing central cuts of
  D̂ at probe orientations ``R`` and ``g·R`` with the refinement's own
  distance; cheaper per candidate (O(l²) vs O(l³)) but noisier because the
  trilinear slice error does not cancel between differently-oriented cuts.

Both are *costs*: lower means more symmetric.  For the real backend the
cost is ``1 − correlation``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.arraytypes import Array
from scipy import ndimage, optimize

from repro.align.distance import DistanceComputer
from repro.density.map import DensityMap
from repro.fourier.slicing import extract_slice
from repro.geometry.euler import random_orientations
from repro.geometry.rotations import axis_angle_to_matrix
from repro.geometry.sphere import fibonacci_sphere
from repro.geometry.symmetry import SymmetryGroup, close_group, identify_point_group
from repro.utils import default_rng

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an engine cycle)
    from repro.engine.backends import ExecutionBackend

__all__ = [
    "SymmetryDetectionResult",
    "detect_symmetry",
    "score_rotation",
    "score_rotation_real",
    "make_rotation_scorer",
]

RotationScorer = Callable[[Array], float]


@dataclass
class SymmetryDetectionResult:
    """What the detector found.

    Attributes
    ----------
    group_name:
        Schoenflies symbol (``"C1"`` when nothing was detected).
    group:
        The closed rotation group.
    axes:
        Accepted ``(axis, order, score)`` generators.
    null_mean, null_std:
        The random-rotation score distribution used for thresholding.
    threshold:
        Acceptance threshold actually applied.
    """

    group_name: str
    group: SymmetryGroup
    axes: list[tuple[Array, int, float]] = field(default_factory=list)
    null_mean: float = 0.0
    null_std: float = 0.0
    threshold: float = 0.0


def score_rotation(
    volume_ft: Array,
    rotation: Array,
    probes: Array,
    distance_computer: DistanceComputer,
) -> float:
    """Fourier-backend cost: mean cut self-distance of D̂ under ``rotation``.

    ``probes`` is a stack of probe rotation matrices; each contributes
    ``d(cut(R), cut(g·R))``.  Zero (up to interpolation error) iff ``g`` is
    a symmetry.
    """
    g = np.asarray(rotation, dtype=float)
    size = distance_computer.size
    total = 0.0
    for r in probes:
        a = extract_slice(volume_ft, r, out_size=size)
        b = extract_slice(volume_ft, g @ r, out_size=size)
        total += distance_computer.distance(a, b)
    return total / len(probes)


def remove_radial_average(data: Array) -> Array:
    """Subtract the rotation-invariant radial profile from a map.

    The spherically symmetric part of a capsid (the shell itself)
    correlates perfectly under *every* rotation and would flood the
    symmetry statistic; removing it leaves only the angular structure that
    actually discriminates symmetries.
    """
    l = data.shape[0]
    c = l // 2
    k = np.arange(l) - c
    zz, yy, xx = np.meshgrid(k, k, k, indexing="ij")
    r = np.rint(np.sqrt(xx * xx + yy * yy + zz * zz)).astype(np.int64)
    rmax = int(r.max())
    sums = np.bincount(r.ravel(), weights=data.ravel(), minlength=rmax + 1)
    counts = np.maximum(np.bincount(r.ravel(), minlength=rmax + 1), 1)
    profile = sums / counts
    return data - profile[r]


def score_rotation_real(data: Array, rotation: Array) -> float:
    """Real-backend cost: ``1 − corr(ρ, ρ∘g)`` with cubic-spline rotation.

    The caller is expected to pass a radially-flattened map (see
    :func:`remove_radial_average`); :func:`make_rotation_scorer` does this
    automatically.
    """
    l = data.shape[0]
    c = l // 2
    k = np.arange(l) - c
    zz, yy, xx = np.meshgrid(k, k, k, indexing="ij")
    pts = np.stack([xx, yy, zz], axis=-1).reshape(-1, 3) @ np.asarray(rotation, float).T
    coords = (pts[:, ::-1] + c).T.reshape(3, l, l, l)
    rotated = ndimage.map_coordinates(data, coords, order=3, mode="constant")
    a = data.ravel() - data.mean()
    b = rotated.ravel() - rotated.mean()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 1.0
    return float(1.0 - a @ b / denom)


def make_rotation_scorer(
    density: DensityMap,
    method: str = "real",
    r_max: float | None = None,
    n_probes: int = 4,
    seed: int | np.random.Generator | None = 0,
) -> RotationScorer:
    """Build the scoring callable used throughout the detector."""
    if method == "real":
        data = remove_radial_average(density.data)

        def scorer(rotation: Array) -> float:
            return score_rotation_real(data, rotation)

        return scorer
    if method == "fourier":
        volume_ft = density.fourier_oversampled(2)
        dc = DistanceComputer(density.size, r_max=r_max)
        probes = np.stack(
            [o.matrix() for o in random_orientations(n_probes, seed=seed)]
        )

        def scorer(rotation: Array) -> float:
            return score_rotation(volume_ft, rotation, probes, dc)

        return scorer
    raise ValueError(f"unknown scoring method {method!r}")


def _axis_score(scorer: RotationScorer, axis: Array, order: int) -> float:
    return scorer(axis_angle_to_matrix(axis, 360.0 / order))


#: Axes per fan-out task in the coarse sweep.  Small enough that every
#: worker gets several tasks even at the default ``n_axes``, large enough
#: that the per-task pickling of the flattened map amortizes.
_SWEEP_CHUNK = 16


def _sweep_task(payload: tuple[Array, Array, int]) -> list[float]:
    """Score one (axes-chunk, order) cell of the coarse sweep.

    Module-level and pure — a function of the radially-flattened map and
    the candidate rotations only — so it pickles into
    :meth:`~repro.engine.backends.ExecutionBackend.run_tasks` workers and
    returns the exact numbers the serial loop computes.
    """
    flat, axes, order = payload
    return [
        score_rotation_real(flat, axis_angle_to_matrix(a, 360.0 / order)) for a in axes
    ]


def _polish_axis(
    scorer: RotationScorer, axis: Array, order: int
) -> tuple[Array, float]:
    """Nelder–Mead refinement of an axis in spherical coordinates."""
    theta0 = float(np.arccos(np.clip(axis[2], -1.0, 1.0)))
    phi0 = float(np.arctan2(axis[1], axis[0]))

    def objective(x: Array) -> float:
        t, p = x
        a = np.array([np.sin(t) * np.cos(p), np.sin(t) * np.sin(p), np.cos(t)])
        return _axis_score(scorer, a, order)

    res = optimize.minimize(
        objective, np.array([theta0, phi0]), method="Nelder-Mead",
        options={"xatol": 1e-4, "fatol": 1e-12, "maxiter": 120},
    )
    t, p = res.x
    best = np.array([np.sin(t) * np.cos(p), np.sin(t) * np.sin(p), np.cos(t)])
    return best, float(res.fun)


def detect_symmetry(
    density: DensityMap,
    max_order: int = 6,
    n_axes: int = 300,
    n_probes: int = 4,
    r_max: float | None = None,
    accept_factor: float = 0.2,
    seed: int | np.random.Generator | None = 0,
    max_group_order: int = 120,
    method: str = "real",
    backend: "ExecutionBackend | None" = None,
) -> SymmetryDetectionResult:
    """Detect the point group of a density map.

    Parameters
    ----------
    max_order:
        Highest cyclic order tested per axis (icosahedral groups contain
        only orders 2, 3 and 5, so 6 covers all virus cases).
    n_axes:
        Size of the coarse axis grid (half-sphere; axes are ± degenerate).
    n_probes:
        Probe orientations per score (``method="fourier"`` only).
    accept_factor:
        An axis is accepted when its polished score is below
        ``accept_factor · null_mean``.
    method:
        Scoring backend, ``"real"`` (robust default) or ``"fourier"``
        (the paper-flavored slice test).
    backend:
        Optional :class:`~repro.engine.backends.ExecutionBackend` to fan
        the axis×order coarse sweep out over
        (:meth:`~repro.engine.backends.ExecutionBackend.run_tasks`).  The
        sweep dominates the detector's cost; each (axes-chunk, order)
        cell is an independent pure task, so the fanned-out scores are
        identical to the serial ones.  ``method="real"`` only; other
        methods sweep serially.
    """
    rng = default_rng(seed)
    scorer = make_rotation_scorer(
        density, method=method, r_max=r_max, n_probes=n_probes, seed=rng
    )

    # Null distribution: scores of random (almost surely non-symmetry) rotations.
    null_rots = random_orientations(16, seed=rng)
    null_scores = np.array([scorer(o.matrix()) for o in null_rots])
    null_mean = float(null_scores.mean())
    null_std = float(null_scores.std())
    threshold = accept_factor * null_mean

    # Coarse axis scan on the half sphere.
    axes = fibonacci_sphere(2 * n_axes)
    axes = axes[axes[:, 2] >= -1e-9][:n_axes]
    swept: dict[int, Array] | None = None
    if backend is not None and method == "real":
        flat = remove_radial_average(density.data)
        payloads: list[tuple[Array, Array, int]] = []
        cells: list[tuple[int, int]] = []
        for order in range(2, max_order + 1):
            for lo in range(0, len(axes), _SWEEP_CHUNK):
                payloads.append((flat, axes[lo : lo + _SWEEP_CHUNK], order))
                cells.append((order, lo))
        chunk_scores = backend.run_tasks(_sweep_task, payloads)
        swept = {order: np.empty(len(axes)) for order in range(2, max_order + 1)}
        for (order, lo), vals in zip(cells, chunk_scores):
            swept[order][lo : lo + len(vals)] = vals
    found: list[tuple[Array, int, float]] = []
    for order in range(2, max_order + 1):
        if swept is not None:
            scores = swept[order]
        else:
            scores = np.array([_axis_score(scorer, a, order) for a in axes])
        # polish the best few candidates per order
        for i in np.argsort(scores)[:3]:
            if scores[i] > 0.8 * null_mean:
                continue
            axis, s = _polish_axis(scorer, axes[i], order)
            if s < threshold:
                if not any(
                    o == order
                    and (np.allclose(a, axis, atol=0.05) or np.allclose(a, -axis, atol=0.05))
                    for a, o, _ in found
                ):
                    found.append((axis, order, s))

    if not found:
        return SymmetryDetectionResult(
            group_name="C1",
            group=SymmetryGroup("C1", np.eye(3)[None]),
            axes=[],
            null_mean=null_mean,
            null_std=null_std,
            threshold=threshold,
        )

    # Polyhedral fit: if the detected axes are consistent with T, O or I,
    # conjugate the full canonical group into the detected frame and verify
    # element-by-element — this promotes "found some 2- and 3-folds" to the
    # complete group even when axis noise prevents direct closure.
    if len(found) >= 2:
        from repro.refine.group_fit import fit_polyhedral_group

        fit = fit_polyhedral_group(
            scorer, found, threshold=max(threshold, 0.3 * null_mean)
        )
        if fit is not None:
            name, group = fit
            return SymmetryDetectionResult(
                group_name=name,
                group=group,
                axes=found,
                null_mean=null_mean,
                null_std=null_std,
                threshold=threshold,
            )

    # Cyclic/dihedral closure with verification: a spuriously accepted axis
    # (e.g. a 5-fold slipping under the threshold on a nearly-cylindrical
    # C4 object) would close into a too-large group; verify sampled
    # elements of the closed group and drop the weakest axis until the
    # closure is self-consistent.
    remaining = sorted(found, key=lambda t: t[2])
    while remaining:
        generators = [axis_angle_to_matrix(a, 360.0 / o) for a, o, _ in remaining]
        try:
            matrices = close_group(generators, max_order=max_group_order, tol=1e-3)
        except ValueError:
            remaining = remaining[:-1]
            continue
        sample = matrices[1 :: max(1, (len(matrices) - 1) // 8)][:8]
        if all(scorer(g) <= 1.5 * threshold for g in sample):
            name = identify_point_group(matrices)
            return SymmetryDetectionResult(
                group_name=name,
                group=SymmetryGroup(name, matrices),
                axes=remaining,
                null_mean=null_mean,
                null_std=null_std,
                threshold=threshold,
            )
        remaining = remaining[:-1]
    return SymmetryDetectionResult(
        group_name="C1",
        group=SymmetryGroup("C1", np.eye(3)[None]),
        axes=[],
        null_mean=null_mean,
        null_std=null_std,
        threshold=threshold,
    )
