"""Tests for repro-lint: the rule set, scoping, waivers, and the gate CLI."""

from pathlib import Path

import pytest

from repro.analysis.__main__ import main
from repro.analysis.lint import Finding, lint_paths, lint_source, relative_module_path
from repro.analysis.rules import all_rules, rule_table

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "fixtures" / "lint" / "repro"

#: fixture file -> the one rule it must trip.
FIXTURE_RULES = {
    "align/bad_rng.py": "RL001",
    "align/bad_fft.py": "RL002",
    "align/bad_astype.py": "RL003",
    "badpkg/__init__.py": "RL004",
    "align/bad_mp.py": "RL005",
    "align/bad_kernel.py": "RL006",
    "align/distance.py": "RL007",
    "align/bad_future.py": "RL008",
    "parallel/bad_bare_except.py": "RL009",
    "align/bad_cut_loop.py": "RL010",
    "align/bad_env_read.py": "RL011",
    "refine/bad_unbounded_eval.py": "RL012",
    "parallel/bad_worker_global.py": "RL013",
    "parallel/bad_unclassified_raise.py": "RL014",
    "align/bad_contract_flow.py": "RL015",
}


def rules_hit(findings):
    return {f.rule for f in findings}


# -- registry ----------------------------------------------------------------
def test_every_rule_has_identity():
    rules = all_rules()
    ids = [r.rule_id for r in rules]
    assert len(ids) == len(set(ids)) == 15
    assert ids == sorted(ids)
    for rule_id, name, rationale in rule_table():
        assert rule_id.startswith("RL")
        assert name and rationale


def test_fixture_table_covers_every_rule():
    assert set(FIXTURE_RULES.values()) == {r.rule_id for r in all_rules()}


# -- fixtures trip exactly their rule ----------------------------------------
@pytest.mark.parametrize("rel, rule_id", sorted(FIXTURE_RULES.items()))
def test_known_bad_fixture_trips_its_rule(rel, rule_id):
    findings = lint_paths([FIXTURES / rel])
    assert rules_hit(findings) == {rule_id}, [f.format() for f in findings]


@pytest.mark.parametrize("rel, rule_id", sorted(FIXTURE_RULES.items()))
def test_gate_cli_exits_nonzero_on_fixture(rel, rule_id, capsys):
    rc = main(["--lint-only", str(FIXTURES / rel)])
    assert rc == 1
    assert rule_id in capsys.readouterr().out


# -- the repo itself is clean ------------------------------------------------
def test_repo_source_tree_is_clean():
    findings = lint_paths([REPO / "src" / "repro"])
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_gate_cli_ok_on_repo(capsys):
    rc = main(["--lint-only"])
    assert rc == 0
    assert "gate: ok" in capsys.readouterr().out


# -- scoping and path mapping ------------------------------------------------
def test_relative_module_path_finds_repro_component():
    assert relative_module_path(Path("/x/tests/fixtures/lint/repro/align/a.py")) == (
        "repro/align/a.py"
    )
    assert relative_module_path(Path("/elsewhere/loose.py")) == "repro/loose.py"


def test_rule_scoping_excludes_out_of_scope_paths():
    fft = "import numpy as np\n\n\ndef f(a):\n    return np.fft.fft2(a)\n"
    in_scope = lint_source(fft, rel="repro/align/x.py")
    home = lint_source(fft, rel="repro/fourier/transforms.py")
    assert "RL002" in rules_hit(in_scope)
    assert "RL002" not in rules_hit(home)


def test_mp_rule_allows_parallel_package():
    src = "import multiprocessing\n"
    assert "RL005" in rules_hit(lint_source(src, rel="repro/align/x.py"))
    assert "RL005" not in rules_hit(lint_source(src, rel="repro/parallel/x.py"))


def test_config_rule_exempts_engine_package_only():
    src = (
        "from __future__ import annotations\n\n"
        "import os\n\n\n"
        "def f():\n"
        "    return os.environ.get('REPRO_X')\n"
    )
    assert "RL011" in rules_hit(lint_source(src, rel="repro/align/x.py"))
    assert "RL011" in rules_hit(lint_source(src, rel="repro/pipeline/cli.py"))
    assert "RL011" not in rules_hit(lint_source(src, rel="repro/engine/env.py"))


def test_bare_except_rule_patrols_recovery_packages_only():
    src = (
        "from __future__ import annotations\n\n\n"
        "def f(work):\n"
        "    try:\n"
        "        work()\n"
        "    except:\n"
        "        pass\n"
    )
    assert "RL009" in rules_hit(lint_source(src, rel="repro/parallel/x.py"))
    assert "RL009" in rules_hit(lint_source(src, rel="repro/faults/x.py"))
    assert "RL009" not in rules_hit(lint_source(src, rel="repro/align/x.py"))
    typed = src.replace("except:", "except ValueError:")
    assert "RL009" not in rules_hit(lint_source(typed, rel="repro/parallel/x.py"))


# -- waivers -----------------------------------------------------------------
def test_inline_waiver_suppresses_only_named_rule():
    src = (
        "import numpy as np\n\n\n"
        "def f(a):\n"
        "    return np.fft.fft2(a)  # repro-lint: allow[RL002] test waiver\n"
    )
    assert "RL002" not in rules_hit(lint_source(src, rel="repro/align/x.py"))
    wrong = src.replace("RL002", "RL003")
    assert "RL002" in rules_hit(lint_source(wrong, rel="repro/align/x.py"))


def test_standalone_comment_waives_next_code_line():
    src = (
        "import numpy as np\n\n\n"
        "def f(a):\n"
        "    # repro-lint: allow[RL002] justified on the line above\n"
        "    return np.fft.fft2(a)\n"
    )
    assert "RL002" not in rules_hit(lint_source(src, rel="repro/align/x.py"))


def test_star_waiver_suppresses_everything_on_line():
    src = (
        "from __future__ import annotations\n\n"
        "import numpy as np\n\n\n"
        "def f(a):\n"
        "    return a.astype(np.complex128)  # repro-lint: allow[*] fixture\n"
    )
    assert rules_hit(lint_source(src, rel="repro/align/x.py")) == set()


def test_multiple_rule_ids_in_one_bracket():
    src = (
        "import numpy as np\n\n\n"
        "def f(a):\n"
        "    return np.fft.fft2(a)  # repro-lint: allow[RL003, RL002] both named\n"
    )
    assert "RL002" not in rules_hit(lint_source(src, rel="repro/align/x.py"))
    unrelated = src.replace("RL003, RL002", "RL003, RL004")
    assert "RL002" in rules_hit(lint_source(unrelated, rel="repro/align/x.py"))


def test_pending_comment_attaches_to_next_code_line_not_blank_or_comment():
    src = (
        "import numpy as np\n\n\n"
        "def f(a):\n"
        "    # repro-lint: allow[RL002] long justification\n"
        "    # (continued prose, not a waiver)\n"
        "    return np.fft.fft2(a)\n"
    )
    assert "RL002" not in rules_hit(lint_source(src, rel="repro/align/x.py"))


def test_stacked_standalone_waivers_all_attach_to_next_code_line():
    src = (
        "from __future__ import annotations\n\n"
        "import numpy as np\n\n\n"
        "def f(a):\n"
        "    # repro-lint: allow[RL002] fft justified\n"
        "    # repro-lint: allow[RL003] astype justified\n"
        "    return np.fft.fft2(a).astype(np.complex128)\n"
    )
    assert rules_hit(lint_source(src, rel="repro/align/x.py")) == set()


def test_waiver_inside_string_literal_is_inert():
    src = (
        "import numpy as np\n\n"
        'DOC = "example: # repro-lint: allow[RL002]"\n\n\n'
        "def f(a):\n"
        "    return np.fft.fft2(a)\n"
    )
    assert "RL002" in rules_hit(lint_source(src, rel="repro/align/x.py"))


def test_non_rule_ids_in_bracket_are_ignored():
    src = (
        "import numpy as np\n\n\n"
        "def f(a):\n"
        "    return np.fft.fft2(a)  # repro-lint: allow[RLxxx] placeholder prose\n"
    )
    assert "RL002" in rules_hit(lint_source(src, rel="repro/align/x.py"))


# -- stale-waiver detection ---------------------------------------------------
def test_stale_waiver_is_reported():
    from repro.analysis.lint import STALE_WAIVER_RULE, lint_collect

    src = (
        "from __future__ import annotations\n\n\n"
        "def f(a):\n"
        "    return a + 1  # repro-lint: allow[RL002] nothing to waive here\n"
    )
    tmp = REPO / "tests" / "fixtures" / "lint" / "repro" / "align"
    report = lint_collect([tmp / "bad_fft.py"])
    assert report.stale_waivers == ()  # fixture has no waivers at all

    import tempfile
    from pathlib import Path as P

    with tempfile.TemporaryDirectory() as d:
        path = P(d) / "repro" / "align"
        path.mkdir(parents=True)
        (path / "stale.py").write_text(src)
        report = lint_collect([path / "stale.py"])
    assert report.findings == ()
    assert len(report.stale_waivers) == 1
    stale = report.stale_waivers[0]
    assert stale.rule == STALE_WAIVER_RULE
    assert stale.line == 5
    assert "RL002" in stale.message


def test_live_waiver_is_not_stale_and_suppression_is_recorded():
    from repro.analysis.lint import lint_collect

    import tempfile
    from pathlib import Path as P

    src = (
        "import numpy as np\n\n\n"
        "def f(a):\n"
        "    return np.fft.fft2(a)  # repro-lint: allow[RL002] deliberate\n"
    )
    with tempfile.TemporaryDirectory() as d:
        path = P(d) / "repro" / "align"
        path.mkdir(parents=True)
        (path / "waived.py").write_text(src)
        report = lint_collect([path / "waived.py"])
    assert report.stale_waivers == ()
    assert "RL002" in {f.rule for f in report.suppressed}


# -- finding formatting ------------------------------------------------------
def test_finding_format_is_greppable():
    f = Finding(rule="RL001", path="src/repro/align/x.py", line=3, col=4, message="boom")
    assert f.format() == "src/repro/align/x.py:3:4: RL001 boom"


def test_list_rules_flag(capsys):
    rc = main(["--list-rules"])
    assert rc == 0
    out = capsys.readouterr().out
    for rule_id in FIXTURE_RULES.values():
        assert rule_id in out
