"""Master-node I/O and distribution patterns (steps a.1–a.2, b, c, o).

The paper avoids assuming a parallel file system: "a master node typically
reads an entire data file and distributes data segments to the nodes as
needed" (§3).  These helpers implement that pattern over the simulated
communicator, charging the master's file time and the per-segment message
costs.  Data can come from an in-memory array (synthetic runs) or from an
MRC stack / orientation file on disk (the real pipeline path).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.euler import Orientation
from repro.parallel.comm import SimComm
from repro.parallel.partition import block_distribution, slab_bounds
from repro.refine.orientfile import write_orientation_file

__all__ = [
    "distribute_volume_slabs",
    "distribute_views",
    "distribute_orientations",
    "gather_orientations",
]

#: Bytes per stored image pixel ("In our experiments b = 2", §4 step b).
BYTES_PER_PIXEL = 2


def distribute_volume_slabs(
    comm: SimComm, volume: np.ndarray | None, step_name: str = "3D DFT"
) -> np.ndarray:
    """Steps a.1–a.2: master reads the map and deals z-slabs.

    Only the master (rank 0) passes the volume; other ranks pass ``None``.
    Returns this rank's slab.
    """
    if comm.rank == 0:
        if volume is None:
            raise ValueError("master must provide the volume")
        vol = np.asarray(volume)
        size = vol.shape[0]
        comm.account_io(vol.nbytes, step_name)  # a.1
        slabs = [
            vol[slab_bounds(size, comm.size, r)[0] : slab_bounds(size, comm.size, r)[1]]
            for r in range(comm.size)
        ]
    else:
        slabs = None
    return comm.scatter(slabs, root=0)  # a.2


def distribute_views(
    comm: SimComm, images: np.ndarray | None, step_name: str = "Read image"
) -> tuple[np.ndarray, np.ndarray]:
    """Step b: master reads the view file and deals blocks of m/P views.

    Returns ``(local_images, local_indices)`` so each rank knows which
    global views it owns.  The master's read is charged at the paper's 2
    bytes/pixel; messages carry the in-memory float arrays.
    """
    if comm.rank == 0:
        if images is None:
            raise ValueError("master must provide the images")
        imgs = np.asarray(images, dtype=float)
        m, l, _ = imgs.shape
        comm.account_io(m * l * l * BYTES_PER_PIXEL, step_name)
        blocks = block_distribution(m, comm.size)
        parts = [(imgs[idx], idx) for idx in blocks]
    else:
        parts = None
    local, idx = comm.scatter(parts, root=0)
    return local, idx


def distribute_orientations(
    comm: SimComm, orientations: list[Orientation] | None, step_name: str = "Read image"
) -> list[Orientation]:
    """Step c: deal initial orientations so each view travels with its O_init."""
    if comm.rank == 0:
        if orientations is None:
            raise ValueError("master must provide the orientations")
        blocks = block_distribution(len(orientations), comm.size)
        comm.account_io(len(orientations) * 48, step_name)
        parts = [[orientations[i] for i in idx] for idx in blocks]
    else:
        parts = None
    return comm.scatter(parts, root=0)


def gather_orientations(
    comm: SimComm,
    local: list[Orientation],
    path: str | None = None,
    scores: list[float] | None = None,
    step_name: str = "Write orientations",
) -> list[Orientation] | None:
    """Step o: gather refined orientations to the master (and write the file).

    Returns the full ordered list on rank 0, ``None`` elsewhere.
    """
    gathered = comm.gather((local, scores), root=0)
    if comm.rank != 0:
        return None
    assert gathered is not None
    all_orients: list[Orientation] = []
    all_scores: list[float] = []
    for part, sc in gathered:
        all_orients.extend(part)
        if sc is not None:
            all_scores.extend(sc)
    comm.account_io(len(all_orients) * 64, step_name)
    if path is not None:
        write_orientation_file(
            path, all_orients, scores=all_scores if all_scores else None
        )
    return all_orients
