"""The repro-lint rule set: one class per machine-checked invariant.

Every rule carries its id, a one-line name, the *rationale* (why breaking
it produces wrong orientations, not just ugly code), and the path scope it
patrols.  ``all_rules()`` is the registry the lint driver and the docs
both read, so DESIGN.md's rule table cannot drift from the code.
"""

from __future__ import annotations

from repro.analysis.rules._base import Rule
from repro.analysis.rules.batching import NoPerCandidateCutLoop
from repro.analysis.rules.configuration import ConfigReadsCentralized
from repro.analysis.rules.determinism import NoNondeterminism
from repro.analysis.rules.dtypes import NoSilentUpcast
from repro.analysis.rules.exports import ExportListSync
from repro.analysis.rules.fourier import CenteredFFTOnly
from repro.analysis.rules.hygiene import FutureAnnotations
from repro.analysis.rules.kernels import KernelBoundaryContract, TwoKernelsOneTruth
from repro.analysis.rules.parallelism import MultiprocessingInParallelOnly
from repro.analysis.rules.pruning import NoUnboundedCandidateEval
from repro.analysis.rules.robustness import NoBareExcept

__all__ = [
    "Rule",
    "all_rules",
    "rule_table",
    "CenteredFFTOnly",
    "ConfigReadsCentralized",
    "ExportListSync",
    "FutureAnnotations",
    "KernelBoundaryContract",
    "MultiprocessingInParallelOnly",
    "NoBareExcept",
    "NoNondeterminism",
    "NoPerCandidateCutLoop",
    "NoSilentUpcast",
    "NoUnboundedCandidateEval",
    "TwoKernelsOneTruth",
]


def all_rules() -> list[Rule]:
    """Instantiate the full rule set, ordered by rule id."""
    rules: list[Rule] = [
        NoNondeterminism(),
        CenteredFFTOnly(),
        NoSilentUpcast(),
        ExportListSync(),
        MultiprocessingInParallelOnly(),
        TwoKernelsOneTruth(),
        KernelBoundaryContract(),
        FutureAnnotations(),
        NoBareExcept(),
        NoPerCandidateCutLoop(),
        ConfigReadsCentralized(),
        NoUnboundedCandidateEval(),
    ]
    rules.sort(key=lambda r: r.rule_id)
    return rules


def rule_table() -> list[tuple[str, str, str]]:
    """(id, name, rationale) for every rule — the docs/``--list-rules`` view."""
    return [(r.rule_id, r.name, r.rationale) for r in all_rules()]
