"""AST symbol table and call graph: the whole-program layer of repro-lint.

The per-file rules (RL001–RL012) police conventions a single module can
prove about itself.  The invariants that actually break chaos runs —
unpicklable pool tasks, exceptions the retry loop cannot classify,
mismatched kernel-boundary contracts — live on *call edges* between
modules, so this module builds the substrate the whole-program passes
(RL013–RL015) walk:

* a **symbol table** per module: imports (including function-local lazy
  imports), top-level functions, classes with their methods, base
  classes, lightly-inferred attribute types, and the set of names bound
  (and mutably initialized) at module scope;
* a **call graph** whose nodes are ``module:qualname`` ids and whose
  edges carry the call site.  Calls are resolved through imports,
  same-module lookup, ``self``/attribute dispatch via the symbol table,
  constructor returns, return annotations, and — deliberately — function
  references passed as arguments (``executor.submit(task, …)``,
  ``atexit.register(cb)``), which is how pool tasks enter the graph;
* the list of **pool-submission sites** (``.submit``/``.map`` on an
  executor-like receiver) with the task callable resolved where
  statically possible — the roots of the RL013 worker path.

Resolution is intentionally conservative: an edge is added only when the
target is identified in the project's own symbol table, so the passes
over-approximate *reachability* (callback references count as calls) but
never invent targets.  Everything here is plain ``ast`` — no imports of
the code under analysis are performed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.analysis.lint import ModuleUnderLint

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "PoolSubmission",
    "Project",
    "StaticContract",
    "StaticSpec",
    "build_project",
    "module_name_for_rel",
]

#: method names too generic to resolve by the unique-name heuristic —
#: they collide with dict/list/file/executor APIs and would fabricate
#: edges onto whatever project class happens to share the name.
_COMMON_METHOD_NAMES = frozenset(
    {
        "get", "put", "pop", "add", "close", "open", "read", "write", "items",
        "keys", "values", "update", "clear", "copy", "append", "extend",
        "remove", "insert", "sort", "count", "index", "join", "split",
        "submit", "map", "result", "run", "start", "stop", "send", "recv",
        "name", "shape", "size",
    }
)

#: ``.submit``-like attribute names that hand a callable to a pool.
_POOL_SUBMIT_ATTRS = frozenset({"submit", "apply_async"})
_POOL_MAP_ATTRS = frozenset({"map", "imap", "imap_unordered", "starmap"})


def module_name_for_rel(rel: str) -> str:
    """``repro/align/fused.py`` → ``repro.align.fused`` (packages too)."""
    name = rel[:-3] if rel.endswith(".py") else rel
    name = name.replace("/", ".")
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


# -- static contracts --------------------------------------------------------
@dataclass(frozen=True)
class StaticSpec:
    """The statically-readable half of one :func:`spec` declaration.

    ``shape`` is a tuple of alternatives, each a tuple whose entries are
    ``int`` (exact), ``str`` (symbolic dim) or ``None`` (wildcard);
    ``None`` as a whole means the spec does not constrain shape.  Entries
    that were not literal in the source degrade to ``None`` (wildcard),
    so partial parses only lose precision, never invent constraints.
    """

    shape: tuple[tuple[object, ...], ...] | None = None
    dtype: str | None = None
    allow_none: bool = True


@dataclass(frozen=True)
class StaticContract:
    """Parsed ``@array_contract`` declaration of one function."""

    params: Mapping[str, StaticSpec]
    ret: StaticSpec | None = None


def _literal(node: ast.expr) -> object:
    """Constant int/str/None from an AST node; non-literals become None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, str, type(None))):
        return node.value
    return None


def _parse_shape(node: ast.expr) -> tuple[tuple[object, ...], ...] | None:
    if isinstance(node, ast.Tuple):
        return (tuple(_literal(e) for e in node.elts),)
    if isinstance(node, ast.List):
        alts = []
        for elt in node.elts:
            if isinstance(elt, ast.Tuple):
                alts.append(tuple(_literal(e) for e in elt.elts))
        return tuple(alts) or None
    return None


def _parse_spec_call(node: ast.expr) -> StaticSpec:
    if not (isinstance(node, ast.Call) and _callee_name(node) in {"spec", "ArraySpec"}):
        return StaticSpec()
    shape: tuple[tuple[object, ...], ...] | None = None
    dtype: str | None = None
    allow_none = True
    for kw in node.keywords:
        if kw.arg == "shape":
            shape = _parse_shape(kw.value)
        elif kw.arg == "dtype" and isinstance(kw.value, ast.Constant):
            dtype = kw.value.value if isinstance(kw.value.value, str) else None
        elif kw.arg == "allow_none" and isinstance(kw.value, ast.Constant):
            allow_none = bool(kw.value.value)
    if node.args and shape is None:
        shape = _parse_shape(node.args[0])
    return StaticSpec(shape=shape, dtype=dtype, allow_none=allow_none)


def _callee_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _parse_contract(node: ast.FunctionDef | ast.AsyncFunctionDef) -> StaticContract | None:
    for deco in node.decorator_list:
        if isinstance(deco, ast.Call) and _callee_name(deco) == "array_contract":
            params: dict[str, StaticSpec] = {}
            ret: StaticSpec | None = None
            for kw in deco.keywords:
                if kw.arg is None:
                    continue
                if kw.arg == "ret":
                    ret = _parse_spec_call(kw.value)
                elif kw.arg != "enabled":
                    params[kw.arg] = _parse_spec_call(kw.value)
            return StaticContract(params=params, ret=ret)
    return None


# -- symbols -----------------------------------------------------------------
@dataclass
class FunctionInfo:
    """One ``def`` anywhere in a module (top-level, method, or nested)."""

    node_id: str  # "repro.align.fused:MatchPlan.match_window"
    module: str
    qualname: str  # "MatchPlan.match_window" (walk_functions scheme)
    path: str
    rel: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None
    enclosing: str | None = None  # node_id of the enclosing function, if nested
    contract: StaticContract | None = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def is_nested(self) -> bool:
        return self.enclosing is not None

    @property
    def is_module_level(self) -> bool:
        return self.class_name is None and self.enclosing is None

    def param_names(self) -> list[str]:
        a = self.node.args
        names = [p.arg for p in a.posonlyargs + a.args]
        if self.is_method and names and names[0] in {"self", "cls"}:
            names = names[1:]
        return names


@dataclass
class ClassInfo:
    """One top-level class: methods, raw base names, inferred attr types."""

    node_id: str  # "repro.parallel.viewsched:SharedVolume"
    module: str
    name: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()  # raw dotted names, resolved lazily
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)  # attr -> raw class name


@dataclass
class ModuleInfo:
    """Symbol table of one parsed module."""

    name: str  # dotted: "repro.align.fused"
    mod: ModuleUnderLint
    imports: dict[str, str] = field(default_factory=dict)  # local name -> dotted target
    functions: dict[str, FunctionInfo] = field(default_factory=dict)  # qualname -> info
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    global_names: set[str] = field(default_factory=set)
    mutable_globals: set[str] = field(default_factory=set)


_MUTABLE_CTORS = {"dict", "list", "set", "defaultdict", "OrderedDict", "deque", "Counter"}


def _collect_imports(tree: ast.Module, package: str) -> dict[str, str]:
    """Every import binding in the module, including function-local ones."""
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = package.split(".")
                anchor = parts[: len(parts) - (node.level - 1)]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


def _annotation_names(node: ast.expr | None) -> list[str]:
    """Candidate class names mentioned by an annotation (handles quoting)."""
    if node is None:
        return []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return []
    names: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.append(sub.attr)
    return names


def _class_attr_types(cls: ast.ClassDef) -> dict[str, str]:
    """``self.x`` types: class-level annotations + ``__init__`` assignments."""
    attr_types: dict[str, str] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names = _annotation_names(stmt.annotation)
            if names:
                attr_types[stmt.target.id] = names[0]
    init = next(
        (s for s in cls.body if isinstance(s, ast.FunctionDef) and s.name == "__init__"),
        None,
    )
    if init is None:
        return attr_types
    param_ann = {
        p.arg: _annotation_names(p.annotation)
        for p in init.args.posonlyargs + init.args.args + init.args.kwonlyargs
    }
    for node in ast.walk(init):
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                names = _annotation_names(node.annotation)
                if names:
                    attr_types.setdefault(target.attr, names[0])
                continue
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            continue
        if isinstance(value, ast.Name) and param_ann.get(value.id):
            attr_types.setdefault(target.attr, param_ann[value.id][0])
        elif isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            attr_types.setdefault(target.attr, value.func.id)
    return attr_types


def _index_module(mod: ModuleUnderLint) -> ModuleInfo:
    name = module_name_for_rel(mod.rel)
    package = name if mod.rel.endswith("__init__.py") else name.rsplit(".", 1)[0]
    info = ModuleInfo(name=name, mod=mod, imports=_collect_imports(mod.tree, package))

    def visit(node: ast.AST, prefix: str, class_name: str | None, enclosing: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                fn = FunctionInfo(
                    node_id=f"{name}:{qual}",
                    module=name,
                    qualname=qual,
                    path=mod.path,
                    rel=mod.rel,
                    node=child,
                    class_name=class_name,
                    enclosing=enclosing,
                    contract=_parse_contract(child),
                )
                info.functions[qual] = fn
                visit(child, f"{qual}.<locals>.", None, fn.node_id)
            elif isinstance(child, ast.ClassDef):
                if class_name is None and enclosing is None:
                    cls = ClassInfo(
                        node_id=f"{name}:{child.name}",
                        module=name,
                        name=child.name,
                        node=child,
                        bases=tuple(
                            ".".join(chain)
                            for b in child.bases
                            if (chain := _attr_chain(b)) is not None
                        ),
                        attr_types=_class_attr_types(child),
                    )
                    info.classes[child.name] = cls
                    visit(child, f"{child.name}.", child.name, None)
                    cls.methods = {
                        f.node.name: f
                        for q, f in info.functions.items()
                        if f.class_name == child.name and "." not in q[len(child.name) + 1 :]
                    }
                else:
                    visit(child, f"{prefix}{child.name}.", child.name, enclosing)
            else:
                visit(child, prefix, class_name, enclosing)

    visit(mod.tree, "", None, None)

    for stmt in mod.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            names = [target.id] if isinstance(target, ast.Name) else [
                e.id for e in getattr(target, "elts", []) if isinstance(e, ast.Name)
            ]
            info.global_names.update(names)
            mutable = isinstance(
                value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
            ) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _MUTABLE_CTORS
            )
            if mutable:
                info.mutable_globals.update(names)
    return info


def _attr_chain(node: ast.expr) -> list[str] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


# -- call graph --------------------------------------------------------------
@dataclass
class CallSite:
    """One resolved edge: ``caller`` invokes (or references) ``callee``."""

    caller: str  # node_id
    callee: str  # node_id
    path: str
    line: int
    col: int
    call: ast.Call | None = None  # None for bare function references
    kind: str = "call"  # "call" | "ref"


@dataclass
class PoolSubmission:
    """One ``.submit``/``.map`` site handing a task callable to a pool."""

    caller: str
    path: str
    rel: str
    line: int
    col: int
    task: FunctionInfo | None  # resolved module-level target, if any
    task_desc: str  # how the task expression looked ("lambda", "f", "self.m")


class Project:
    """All parsed modules plus the lazily-built call graph."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: dict[str, ModuleInfo] = {m.name: m for m in modules}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        for m in modules:
            for fn in m.functions.values():
                self.functions[fn.node_id] = fn
            for cls in m.classes.values():
                self.classes[cls.node_id] = cls
        self._methods_by_name: dict[str, list[FunctionInfo]] = {}
        for cls in self.classes.values():
            for mname, fn in cls.methods.items():
                self._methods_by_name.setdefault(mname, []).append(fn)
        self._graph: CallGraph | None = None

    def graph(self) -> "CallGraph":
        if self._graph is None:
            self._graph = CallGraph(self)
        return self._graph

    # -- resolution ---------------------------------------------------------
    def resolve_dotted(self, target: str, _depth: int = 0) -> tuple[str, object] | None:
        """Resolve ``repro.align.fused.MatchPlan`` → ("class", ClassInfo) etc."""
        if _depth > 5:
            return None
        if target in self.modules:
            return ("module", self.modules[target])
        if "." not in target:
            return None
        head, leaf = target.rsplit(".", 1)
        resolved = self.resolve_dotted(head, _depth + 1)
        if resolved is None or resolved[0] != "module":
            return None
        minfo = resolved[1]
        assert isinstance(minfo, ModuleInfo)
        if leaf in minfo.classes:
            return ("class", minfo.classes[leaf])
        if leaf in minfo.functions:
            return ("func", minfo.functions[leaf])
        # follow one re-export hop through a package __init__
        if leaf in minfo.imports:
            return self.resolve_dotted(minfo.imports[leaf], _depth + 1)
        return None

    def resolve_class_name(self, name: str, module: ModuleInfo) -> ClassInfo | None:
        """A raw class name as seen from ``module`` → project class, if ours."""
        if name in module.classes:
            return module.classes[name]
        target = module.imports.get(name)
        if target is None and "." in name:
            root = name.split(".")[0]
            if root in module.imports:
                target = module.imports[root] + name[len(root):]
        if target is None:
            return None
        resolved = self.resolve_dotted(target)
        if resolved is not None and resolved[0] == "class":
            cls = resolved[1]
            assert isinstance(cls, ClassInfo)
            return cls
        return None

    def class_bases(self, cls: ClassInfo) -> list[ClassInfo]:
        module = self.modules[cls.module]
        bases = []
        for raw in cls.bases:
            base = self.resolve_class_name(raw, module)
            if base is not None:
                bases.append(base)
        return bases

    def lookup_method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """Method resolution over the statically-known base chain (BFS)."""
        seen: set[str] = set()
        queue = [cls]
        while queue:
            cur = queue.pop(0)
            if cur.node_id in seen:
                continue
            seen.add(cur.node_id)
            if name in cur.methods:
                return cur.methods[name]
            queue.extend(self.class_bases(cur))
        return None

    def unique_method(self, name: str) -> FunctionInfo | None:
        """The single project method with this name, if unambiguous."""
        if name in _COMMON_METHOD_NAMES or name.startswith("__"):
            return None
        owners = self._methods_by_name.get(name, [])
        return owners[0] if len(owners) == 1 else None


def build_project(modules: Iterable[ModuleUnderLint]) -> Project:
    """Index every module and wrap them in a :class:`Project`."""
    return Project([_index_module(m) for m in modules])


class _FunctionResolver:
    """Per-function scope: local types, nested defs, and name resolution."""

    def __init__(self, project: Project, minfo: ModuleInfo, fn: FunctionInfo) -> None:
        self.project = project
        self.minfo = minfo
        self.fn = fn
        self.local_types: dict[str, ClassInfo] = {}
        self._seed_param_types()

    def _seed_param_types(self) -> None:
        fn = self.fn
        args = fn.node.args
        for p in args.posonlyargs + args.args + args.kwonlyargs:
            for name in _annotation_names(p.annotation):
                cls = self.project.resolve_class_name(name, self.minfo)
                if cls is not None:
                    self.local_types[p.arg] = cls
                    break
        if fn.class_name is not None:
            own = self.minfo.classes.get(fn.class_name)
            if own is not None:
                self.local_types["self"] = own

    def note_assignment(self, node: ast.Assign | ast.AnnAssign) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        if isinstance(node, ast.AnnAssign):
            for name in _annotation_names(node.annotation):
                cls = self.project.resolve_class_name(name, self.minfo)
                if cls is not None and isinstance(node.target, ast.Name):
                    self.local_types[node.target.id] = cls
                    return
        value = node.value
        if value is None or not isinstance(value, ast.Call):
            return
        inferred = self._call_result_type(value)
        if inferred is None:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self.local_types[target.id] = inferred

    def _call_result_type(self, call: ast.Call) -> ClassInfo | None:
        if isinstance(call.func, ast.Name):
            cls = self.project.resolve_class_name(call.func.id, self.minfo)
            if cls is not None:
                return cls
            target = self.resolve_name_to_function(call.func.id)
            if target is not None:
                for name in _annotation_names(target.node.returns):
                    ret_cls = self.project.resolve_class_name(
                        name, self.project.modules[target.module]
                    )
                    if ret_cls is not None:
                        return ret_cls
        return None

    def resolve_name_to_function(self, name: str) -> FunctionInfo | None:
        # nested defs in the lexical chain win over module scope
        scope: FunctionInfo | None = self.fn
        while scope is not None:
            nested_qual = f"{scope.qualname}.<locals>.{name}"
            nested = self.minfo.functions.get(nested_qual)
            if nested is not None:
                return nested
            scope = (
                self.project.functions.get(scope.enclosing)
                if scope.enclosing is not None
                else None
            )
        fn = self.minfo.functions.get(name)
        if fn is not None and fn.is_module_level:
            return fn
        target = self.minfo.imports.get(name)
        if target is not None:
            resolved = self.project.resolve_dotted(target)
            if resolved is not None and resolved[0] == "func":
                out = resolved[1]
                assert isinstance(out, FunctionInfo)
                return out
        return None

    def resolve_call(self, call: ast.Call) -> FunctionInfo | None:
        func = call.func
        if isinstance(func, ast.Name):
            target = self.resolve_name_to_function(func.id)
            if target is not None:
                return target
            cls = self.project.resolve_class_name(func.id, self.minfo)
            if cls is not None:
                return self.project.lookup_method(cls, "__init__")
            return None
        if not isinstance(func, ast.Attribute):
            return None
        chain = _attr_chain(func)
        if chain is None:
            # method on an arbitrary expression: best-effort unique lookup
            return self.project.unique_method(func.attr)
        root, attrs = chain[0], chain[1:]
        # module-qualified call: np.x.y(...) / viewsched.refine_level_serial(...)
        target = self.minfo.imports.get(root)
        if target is not None:
            resolved = self.project.resolve_dotted(".".join([target] + attrs))
            if resolved is not None:
                if resolved[0] == "func":
                    out = resolved[1]
                    assert isinstance(out, FunctionInfo)
                    return out
                if resolved[0] == "class":
                    cls = resolved[1]
                    assert isinstance(cls, ClassInfo)
                    return self.project.lookup_method(cls, "__init__")
        # typed receiver: self.m(), plan.match_window(), self.dc.distance_band()
        recv_cls = self.local_types.get(root)
        for attr in attrs[:-1]:
            if recv_cls is None:
                break
            attr_raw = recv_cls.attr_types.get(attr)
            recv_cls = (
                self.project.resolve_class_name(
                    attr_raw, self.project.modules[recv_cls.module]
                )
                if attr_raw is not None
                else None
            )
        if recv_cls is not None:
            method = self.project.lookup_method(recv_cls, attrs[-1])
            if method is not None:
                return method
            return None
        return self.project.unique_method(attrs[-1])


class CallGraph:
    """Edges + pool-submission roots over a :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.edges: dict[str, list[CallSite]] = {}
        self.pool_submissions: list[PoolSubmission] = []
        for fn in project.functions.values():
            self._build_function(fn)

    def _build_function(self, fn: FunctionInfo) -> None:
        minfo = self.project.modules[fn.module]
        resolver = _FunctionResolver(self.project, minfo, fn)
        edges = self.edges.setdefault(fn.node_id, [])

        def walk(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue  # nested defs are their own graph nodes
                if isinstance(child, (ast.Assign, ast.AnnAssign)):
                    resolver.note_assignment(child)
                if isinstance(child, ast.Call):
                    self._record_call(fn, resolver, edges, child)
                walk(child)

        walk(fn.node)

    def _record_call(
        self,
        fn: FunctionInfo,
        resolver: _FunctionResolver,
        edges: list[CallSite],
        call: ast.Call,
    ) -> None:
        callee = resolver.resolve_call(call)
        if callee is not None:
            edges.append(
                CallSite(
                    caller=fn.node_id,
                    callee=callee.node_id,
                    path=fn.path,
                    line=call.lineno,
                    col=call.col_offset,
                    call=call,
                )
            )
        # function references passed as arguments (callbacks, pool tasks)
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, ast.Name):
                ref = resolver.resolve_name_to_function(arg.id)
                if ref is not None:
                    edges.append(
                        CallSite(
                            caller=fn.node_id,
                            callee=ref.node_id,
                            path=fn.path,
                            line=arg.lineno,
                            col=arg.col_offset,
                            kind="ref",
                        )
                    )
        # pool submissions: executor.submit(task, ...) / pool.map(task, it)
        if isinstance(call.func, ast.Attribute) and call.args:
            attr = call.func.attr
            if attr in _POOL_SUBMIT_ATTRS or attr in _POOL_MAP_ATTRS:
                task_expr = call.args[0]
                task: FunctionInfo | None = None
                if isinstance(task_expr, ast.Name):
                    task = resolver.resolve_name_to_function(task_expr.id)
                    desc = task_expr.id
                elif isinstance(task_expr, ast.Lambda):
                    desc = "lambda"
                elif (chain := _attr_chain(task_expr)) is not None:
                    desc = ".".join(chain)
                else:
                    desc = type(task_expr).__name__
                self.pool_submissions.append(
                    PoolSubmission(
                        caller=fn.node_id,
                        path=fn.path,
                        rel=fn.rel,
                        line=task_expr.lineno,
                        col=task_expr.col_offset,
                        task=task,
                        task_desc=desc,
                    )
                )

    def reachable(self, roots: Iterable[str]) -> set[str]:
        """Every function node reachable from ``roots`` (roots included)."""
        seen: set[str] = set()
        queue = [r for r in roots if r in self.project.functions]
        while queue:
            cur = queue.pop()
            if cur in seen:
                continue
            seen.add(cur)
            for site in self.edges.get(cur, ()):
                if site.callee not in seen:
                    queue.append(site.callee)
        return seen

    def call_sites(self, caller: str) -> Iterator[CallSite]:
        yield from self.edges.get(caller, ())
