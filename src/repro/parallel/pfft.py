"""Slab-decomposed parallel 3D FFT (algorithm steps a.3–a.6).

Each rank starts with a *z-slab* (a contiguous block of xy-planes) of the
volume, applies the 2D DFT along x and y on its planes (a.3), exchanges
blocks so that every rank ends with a *y-slab* spanning all z (a.4 — an
all-to-all "global transpose"), applies the 1D DFT along z (a.5), and
finally allgathers so every rank holds the complete transform (a.6 — the
paper's replicate-D̂-everywhere choice, made to minimize communication in
the search loop).

The result is bit-identical (to FFT rounding) to ``numpy.fft.fftn`` of the
whole volume; the tests assert this.  Flop costs are charged to the virtual
clock with the standard 5·n·log₂n count per length-``n`` complex transform.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.comm import SimComm, run_spmd
from repro.parallel.machine import MachineSpec, SP2_LIKE
from repro.parallel.partition import slab_bounds

__all__ = ["parallel_fft3d", "parallel_fft3d_driver", "fft_flops_1d"]


def fft_flops_1d(n: int) -> float:
    """Classic operation count of one complex FFT of length ``n``."""
    if n <= 0:
        raise ValueError("n must be positive")
    return 5.0 * n * np.log2(max(n, 2))


def parallel_fft3d(comm: SimComm, zslab: np.ndarray, size: int, step_name: str = "3D DFT") -> np.ndarray:
    """Steps a.3–a.6 for this rank; returns the full 3D transform.

    Parameters
    ----------
    comm:
        The rank's communicator.
    zslab:
        This rank's block of xy-planes, shape ``(nz_local, size, size)``
        (complex or real).  Plane ownership must follow
        :func:`repro.parallel.partition.slab_bounds`.
    size:
        Full cube side ``l``.
    step_name:
        Timer step to charge the simulated cost under.
    """
    slab = np.asarray(zslab)
    if slab.ndim != 3 or slab.shape[1] != size or slab.shape[2] != size:
        raise ValueError(f"zslab must be (nz, {size}, {size}), got {slab.shape}")
    p = comm.size
    lo, hi = slab_bounds(size, p, comm.rank)
    if slab.shape[0] != hi - lo:
        raise ValueError(
            f"rank {comm.rank} slab has {slab.shape[0]} planes, expected {hi - lo}"
        )

    # a.3 — 2D DFT along x and y on each local plane.
    # repro-lint: allow[RL002] the slab-local DFT is the operation this
    # module implements; it works on unshifted slabs by design
    local = np.fft.fft2(slab, axes=(1, 2))
    comm.account_flops(2 * slab.shape[0] * size * fft_flops_1d(size), step_name)

    # a.4 — global exchange: z-slabs -> y-slabs.
    parts = [local[:, slab_bounds(size, p, dst)[0] : slab_bounds(size, p, dst)[1], :] for dst in range(p)]
    received = comm.alltoall(parts)
    yslab = np.concatenate(received, axis=0)  # all z, my y range, all x

    # a.5 — 1D DFT along z within the y-slab.
    yslab = np.fft.fft(yslab, axis=0)  # repro-lint: allow[RL002] slab-local DFT (see a.3)
    comm.account_flops(yslab.shape[1] * size * fft_flops_1d(size), step_name)

    # a.6 — allgather so every rank holds the entire transform.
    blocks = comm.allgather(yslab)
    return np.concatenate(blocks, axis=1)


def parallel_fft3d_driver(
    volume: np.ndarray,
    n_ranks: int,
    machine: MachineSpec = SP2_LIKE,
) -> tuple[np.ndarray, float, list]:
    """Scatter a volume as z-slabs and run the parallel FFT on all ranks.

    Returns ``(transform, simulated_seconds, per_rank_timers)``.  Rank 0
    plays the master (steps a.1–a.2: "read" the map and deal the slabs).
    """
    vol = np.asarray(volume)
    size = vol.shape[0]
    if vol.ndim != 3 or len(set(vol.shape)) != 1:
        raise ValueError("volume must be a cube")

    def worker(comm: SimComm):
        if comm.rank == 0:
            comm.account_io(vol.nbytes, "3D DFT")  # a.1 master read
            slabs = [
                vol[slab_bounds(size, comm.size, r)[0] : slab_bounds(size, comm.size, r)[1]]
                for r in range(comm.size)
            ]
        else:
            slabs = None
        my_slab = comm.scatter(slabs, root=0)  # a.2
        full = parallel_fft3d(comm, my_slab, size)
        comm.barrier()
        return full, comm.timer

    results, clock = run_spmd(n_ranks, worker, machine)
    transform = results[0][0]
    timers = [r[1] for r in results]
    return transform, clock.elapsed(), timers
