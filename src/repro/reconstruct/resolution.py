"""Resolution assessment by odd/even half-map correlation (Figure 4).

The paper's procedure: after refinement, reconstruct two maps — one from
the odd-numbered views, one from the even-numbered — and plot their
shell-wise correlation coefficient against resolution; the conservative
resolution estimate is where the curve crosses 0.5.  This module produces
exactly those curves (Figures 5 and 6 are two instances of them) and the
crossing estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ctf.model import CTFParams
from repro.density.map import DensityMap
from repro.geometry.euler import Orientation
from repro.reconstruct.stream import HalfSetAccumulator
from repro.utils import shell_radius_to_resolution

__all__ = [
    "split_odd_even",
    "half_map_fsc",
    "correlation_curve",
    "fsc_crossing",
    "resolution_at_threshold",
    "CorrelationCurve",
]


def split_odd_even(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Index arrays of the odd-numbered and even-numbered views.

    Views are numbered 1..n as in the paper, so "odd" is 0-based indices
    0, 2, 4, … — the convention only matters for reproducibility.
    """
    if n < 2:
        raise ValueError("need at least two views to split")
    idx = np.arange(n)
    return idx[idx % 2 == 0], idx[idx % 2 == 1]


@dataclass
class CorrelationCurve:
    """A correlation-vs-resolution series (one line of Figure 5/6).

    ``shells`` are integer Fourier radii, ``resolution_angstrom`` the
    corresponding resolutions, ``cc`` the correlation coefficients.
    """

    shells: np.ndarray
    resolution_angstrom: np.ndarray
    cc: np.ndarray
    label: str = ""

    def crossing(self, threshold: float = 0.5) -> float:
        """Resolution (Å) at which the curve first drops below ``threshold``."""
        return resolution_at_threshold(
            self.cc, self.resolution_angstrom, threshold=threshold
        )


def half_map_fsc(
    images: np.ndarray,
    orientations: list[Orientation],
    apix: float = 1.0,
    pad_factor: int = 2,
    ctf_params: list[CTFParams] | None = None,
) -> tuple[np.ndarray, DensityMap, DensityMap]:
    """Reconstruct odd/even half maps and return their FSC + both maps.

    Each view is Fourier-inserted exactly once, into its half's
    accumulator; the old implementation ran
    :func:`~repro.reconstruct.direct_fourier.reconstruct_from_views` once
    per half over the split sub-stacks.  Per-half insertion order is
    unchanged, so the maps are bit-identical to that two-pass path
    (asserted by ``tests/test_reconstruct_stream.py``).
    """
    imgs = np.asarray(images, dtype=float)
    if imgs.ndim != 3:
        raise ValueError("images must be a (m, l, l) stack")
    split_odd_even(imgs.shape[0])  # n >= 2, same error as the old path
    acc = HalfSetAccumulator(
        imgs, apix=apix, pad_factor=pad_factor, ctf_params=ctf_params
    )
    if len(orientations) != imgs.shape[0]:
        raise ValueError("need one orientation per view")
    acc.push_all(list(orientations))
    map_odd, map_even = acc.half_maps()
    return acc.fsc(), map_odd, map_even


def correlation_curve(
    images: np.ndarray,
    orientations: list[Orientation],
    apix: float = 1.0,
    label: str = "",
    pad_factor: int = 2,
    ctf_params: list[CTFParams] | None = None,
) -> CorrelationCurve:
    """The Figure 5/6 curve for one orientation set.

    Shell 0 (DC) is dropped; the x-axis is resolution in Å, decreasing
    (i.e. improving) with shell radius.
    """
    fsc, _, _ = half_map_fsc(
        images, orientations, apix=apix, pad_factor=pad_factor, ctf_params=ctf_params
    )
    size = np.asarray(images).shape[1]
    shells = np.arange(1, len(fsc))
    res = np.array([shell_radius_to_resolution(int(s), size, apix) for s in shells])
    return CorrelationCurve(shells=shells, resolution_angstrom=res, cc=fsc[1:], label=label)


def fsc_crossing(
    images: np.ndarray,
    orientations: list[Orientation],
    apix: float = 1.0,
    pad_factor: int = 2,
    ctf_params: list[CTFParams] | None = None,
    threshold: float = 0.5,
) -> float:
    """The half-map FSC threshold crossing (Å) for one orientation set.

    Convenience wrapper over :func:`correlation_curve` +
    :meth:`CorrelationCurve.crossing` — the single scalar the scenario
    matrix (DESIGN.md §12) scores a refinement's map quality with.
    """
    curve = correlation_curve(
        images, orientations, apix=apix, pad_factor=pad_factor, ctf_params=ctf_params
    )
    return curve.crossing(threshold)


def resolution_at_threshold(
    cc: np.ndarray, resolution_angstrom: np.ndarray, threshold: float = 0.5
) -> float:
    """Resolution where the correlation curve crosses ``threshold``.

    Scans from low resolution (large Å) toward high; linearly interpolates
    the crossing between the last shell above and the first below the
    threshold.  If the curve never drops below, the finest sampled
    resolution is returned (the estimate is bounded by the data); if it
    starts below, the coarsest is returned.
    """
    cc = np.asarray(cc, dtype=float)
    res = np.asarray(resolution_angstrom, dtype=float)
    if cc.shape != res.shape or cc.ndim != 1:
        raise ValueError("cc and resolution arrays must be 1D and matching")
    if cc.size == 0:
        raise ValueError("empty curve")
    if cc[0] < threshold:
        return float(res[0])
    for i in range(1, cc.size):
        if cc[i] < threshold:
            hi, lo = cc[i - 1], cc[i]
            frac = (hi - threshold) / (hi - lo) if hi != lo else 0.0
            # interpolate in spatial frequency (1/res), the natural axis
            f_prev, f_cur = 1.0 / res[i - 1], 1.0 / res[i]
            f_cross = f_prev + frac * (f_cur - f_prev)
            return float(1.0 / f_cross)
    return float(res[-1])
