"""Regenerate the golden refinement results committed under tests/golden/.

Run from the repo root after an *intentional* numerics change:

    PYTHONPATH=src python tools/gen_golden.py

The golden file pins the end-to-end refinement output (orientations and
distances) of a tiny deterministic problem on the 1° → 0.1° schedule.  Any
kernel, scheduler or recovery-path change that alters these bits is a
regression unless this file is regenerated on purpose in the same commit.
"""

from __future__ import annotations

import os

import numpy as np

from repro.density import asymmetric_phantom
from repro.imaging.simulate import simulate_views
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel
from repro.refine.refiner import OrientationRefiner

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "..", "tests", "golden", "refine_tiny.npz")


def tiny_problem():
    """The pinned problem: must match tests/test_e2e_golden.py exactly."""
    density = asymmetric_phantom(16, seed=11).normalized()
    views = simulate_views(density, 4, snr=10.0, initial_angle_error_deg=2.0, seed=11)
    schedule = MultiResolutionSchedule(
        (
            RefinementLevel(1.0, 1.0, half_steps=2),
            RefinementLevel(0.1, 0.1, half_steps=2),
        )
    )
    return density, views, schedule


def main() -> None:
    density, views, schedule = tiny_problem()
    result = OrientationRefiner(density, max_slides=2).refine(views, schedule=schedule)
    orientations = np.array([o.as_tuple() for o in result.orientations])
    path = os.path.abspath(GOLDEN_PATH)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    np.savez(
        path,
        orientations=orientations,
        distances=np.asarray(result.distances),
        schedule_fingerprint=np.array(schedule.fingerprint()),
    )
    print(f"wrote {path}")
    print(f"schedule fingerprint: {schedule.fingerprint()}")


if __name__ == "__main__":
    main()
