"""E4 — Figures 2 & 3: density maps from old vs refined orientations.

The paper shows cross-sections (Fig. 2) and surface renderings (Fig. 3) of
the Sindbis map reconstructed with old vs new orientations, noting that the
new map reveals more detail.  We regenerate the same artifacts as arrays
(central cross-sections, written as MRC + summarized as statistics) and
quantify "more detail" as correlation against the known ground truth and
per-shell FSC gain.
"""

import numpy as np
import pytest

from repro.pipeline import format_table
from repro.pipeline.experiments import run_map_comparison_experiment


def test_fig2_3_map_comparison(benchmark, figure_experiment_cache, save_artifact, out_dir):
    curves = figure_experiment_cache("sindbis")
    out = benchmark.pedantic(lambda: run_map_comparison_experiment(curves), rounds=1, iterations=1)

    old_sec = out["old_section"]
    new_sec = out["new_section"]
    truth_sec = out["truth_section"]
    assert old_sec.shape == new_sec.shape == truth_sec.shape

    def section_cc(a, b):
        a = a - a.mean()
        b = b - b.mean()
        return float((a * b).sum() / (np.linalg.norm(a) * np.linalg.norm(b)))

    cc_old = section_cc(old_sec, truth_sec)
    cc_new = section_cc(new_sec, truth_sec)
    # Figures 2/3: the refined map is at least as faithful, typically more
    assert out["new_cc_truth"] >= out["old_cc_truth"] - 0.01

    # write the actual image artifacts (MRC cross-sections, like Fig. 2)
    from repro.density import write_mrc

    write_mrc(str(out_dir / "fig2_old_section.mrc"), old_sec)
    write_mrc(str(out_dir / "fig2_new_section.mrc"), new_sec)
    write_mrc(str(out_dir / "fig2_truth_section.mrc"), truth_sec)

    table = format_table(
        ["quantity", "old orientations", "new (refined)"],
        [
            ["3D map cc vs ground truth", f"{out['old_cc_truth']:.4f}", f"{out['new_cc_truth']:.4f}"],
            ["central-section cc vs truth", f"{cc_old:.4f}", f"{cc_new:.4f}"],
        ],
        title="Figures 2/3 - map quality, old vs refined orientations",
    )
    table += (
        "\n\nsections written: fig2_old_section.mrc / fig2_new_section.mrc /"
        " fig2_truth_section.mrc"
        "\npaper: 'high magnification views do reveal more details in the new"
        " density map'"
    )
    save_artifact("fig2_3_map_comparison.txt", table)
