"""Adaptive control of the refine↔reconstruct loop.

The paper raises resolution "gradually" and stops "until we cannot further
refine the structure at that particular resolution" — decisions its
operators made by hand.  This module automates them:

* the next band limit ``r_max`` is set from the current odd/even FSC
  (refine only where the map is self-consistent, plus a small extension);
* the next angular step is matched to the arc the band edge can resolve;
* the loop stops when the estimated resolution stops improving.

This is the "future work" quality-of-life layer a production port would
need; benchmark E13 compares it against fixed schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arraytypes import Array
from repro.density.map import DensityMap
from repro.geometry.euler import Orientation
from repro.imaging.simulate import SimulatedViews
from repro.reconstruct.direct_fourier import reconstruct_from_views
from repro.reconstruct.resolution import correlation_curve
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel
from repro.refine.refiner import OrientationRefiner

__all__ = ["AdaptiveState", "choose_band_limit", "choose_angular_step", "adaptive_refinement_loop"]


@dataclass
class AdaptiveState:
    """One adaptive iteration's decisions and outcome."""

    iteration: int
    r_max: float
    angular_step_deg: float
    resolution_angstrom: float
    fsc_crossing_shell: float
    orientations: list[Orientation] = field(repr=False, default_factory=list)


def choose_band_limit(
    fsc: Array, threshold: float = 0.5, extend: float = 1.25, floor: float = 3.0
) -> float:
    """Band limit for the next refinement pass, from the current FSC.

    The last shell with FSC ≥ threshold, extended by ``extend`` (the next
    pass should look slightly beyond today's consistency to make progress),
    floored so the match never collapses to the DC region.
    """
    fsc = np.asarray(fsc, dtype=float)
    good = np.nonzero(fsc[1:] >= threshold)[0]
    crossing = (good[-1] + 1) if good.size else 1
    return float(max(floor, extend * crossing))


def choose_angular_step(r_max: float, arc_pixels: float = 0.5, coarsest: float = 2.0, finest: float = 0.05) -> float:
    """Angular step whose band-edge arc is ``arc_pixels``.

    A rotation by step δ moves the outermost matched sample by
    ``r_max·sin(δ)`` pixels; steps much finer than the interpolation error
    are wasted, much coarser ones skip over the minimum.
    """
    if r_max <= 0:
        raise ValueError("r_max must be positive")
    step = np.rad2deg(np.arcsin(min(1.0, arc_pixels / r_max)))
    return float(np.clip(step, finest, coarsest))


def adaptive_refinement_loop(
    views: SimulatedViews,
    initial_map: DensityMap,
    max_iterations: int = 4,
    min_improvement_angstrom: float = 0.01,
    half_steps: int = 3,
    pad_factor: int = 2,
    max_slides: int = 2,
) -> list[AdaptiveState]:
    """Self-scheduling refine↔reconstruct loop.

    Each iteration measures the odd/even FSC of the current orientations,
    derives (r_max, angular step) from it, refines, reconstructs, and stops
    once the 0.5-crossing resolution stops improving.
    """
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    orientations = list(views.initial_orientations)
    current = initial_map
    history: list[AdaptiveState] = []
    best_res = np.inf
    for it in range(max_iterations):
        curve = correlation_curve(
            views.images, orientations, apix=views.apix, pad_factor=pad_factor,
            ctf_params=views.ctf_params,
        )
        fsc = np.concatenate([[1.0], curve.cc])
        r_max = min(choose_band_limit(fsc), views.size / 2 - 1)
        step = choose_angular_step(r_max)
        schedule = MultiResolutionSchedule(
            (
                RefinementLevel(2.0 * step, 2.0 * step, half_steps=half_steps),
                RefinementLevel(step, step, half_steps=max(2, half_steps - 1)),
            )
        )
        refiner = OrientationRefiner(
            current, r_max=r_max, pad_factor=pad_factor, max_slides=max_slides
        )
        result = refiner.refine(views, initial_orientations=orientations, schedule=schedule)
        orientations = result.orientations
        current = reconstruct_from_views(
            views.images, orientations, apix=views.apix, pad_factor=pad_factor,
            ctf_params=views.ctf_params,
        )
        post = correlation_curve(
            views.images, orientations, apix=views.apix, pad_factor=pad_factor,
            ctf_params=views.ctf_params,
        )
        res = post.crossing(0.5)
        history.append(
            AdaptiveState(
                iteration=it,
                r_max=r_max,
                angular_step_deg=step,
                resolution_angstrom=res,
                fsc_crossing_shell=float(choose_band_limit(fsc, extend=1.0)),
                orientations=orientations,
            )
        )
        if res > best_res - min_improvement_angstrom and it > 0:
            break
        best_res = min(best_res, res)
    return history
