"""RL012 — candidate-window evaluation under ``refine/`` must be boundable.

The pruned search path (DESIGN.md §11) exists so that candidate windows
are scored under a k-th-best early-termination bound instead of
exhaustively.  A window-evaluation call sitting in a Python loop inside
the refinement drivers — a sliding-window re-scan, a per-seed fan-out, an
inner center/angle alternation — multiplies whatever that call costs, so
each such call must either thread a ``prune`` handle through to the
bounded engine or carry an explicit waiver naming why it is exhaustive on
purpose (the ``reference``/``fused`` oracle branches that pruned results
are verified against are the canonical waivers).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import Finding, ModuleUnderLint
from repro.analysis.rules._base import Rule

__all__ = ["NoUnboundedCandidateEval"]

_LOOPS = (ast.For, ast.AsyncFor, ast.While)

#: The window-evaluation entry points: each scores a whole candidate
#: window (or triggers a chain of window scans) per invocation.
_WINDOW_EVALS = frozenset(
    {
        "sliding_window_search",
        "match_view",
        "match_view_band",
        "match_view_window",
        "match_window",
    }
)


class NoUnboundedCandidateEval(Rule):
    rule_id = "RL012"
    name = "no-unbounded-candidate-eval"
    rationale = (
        "A window-evaluation call looping inside the refinement drivers "
        "multiplies an exhaustive scan; it must pass a `prune` handle so "
        "the bounded engine can abandon hopeless candidates, or carry a "
        "waiver naming why exhaustive evaluation is intended (equivalence "
        "oracles)."
    )
    include = ("repro/refine/",)

    def check(self, mod: ModuleUnderLint) -> Iterator[Finding]:
        yield from self._visit(mod, mod.tree, in_loop=False)

    def _visit(self, mod: ModuleUnderLint, node: ast.AST, in_loop: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_in_loop = in_loop or isinstance(child, _LOOPS)
            # a nested def starts a fresh lexical scope: its body only runs
            # per-iteration if *it* contains the loop, not its surroundings
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                child_in_loop = False
            if child_in_loop and isinstance(child, ast.Call):
                func = child.func
                name = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None
                )
                if name in _WINDOW_EVALS and not any(
                    kw.arg == "prune" for kw in child.keywords
                ):
                    yield self.finding(
                        mod,
                        child,
                        f"`{name}` called inside a loop without a `prune` "
                        "bound; thread PruneParams/PruneSearch through (or "
                        "waive the oracle branch explicitly)",
                    )
            yield from self._visit(mod, child, child_in_loop)
