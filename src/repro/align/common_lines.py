"""Common-lines machinery: the classical initial-orientation baseline.

Any two central slices of the same 3D transform intersect along a line
through the origin (the *common line*).  Detecting, for a pair of views,
the polar angles at which their transforms agree gives geometric
constraints on their relative orientation — the basis of the common-lines
method the paper cites ([12]) as one way to obtain the initial orientations
``O_init`` that the refinement then polishes.

We implement:

* :func:`sinogram` — the stack of central-line profiles of a view's 2D DFT
  over ``n`` polar angles (projection-slice dual of the Radon transform);
* :func:`common_line_angles` — the best-correlating pair of line angles
  between two views;
* :func:`predicted_common_line` — the geometric ground truth for two known
  orientations (used for validation and for candidate scoring);
* :func:`initial_orientations_common_lines` — a candidate-grid angular
  assigner: each view receives the orientation whose predicted common
  lines with the already-assigned anchor views best match the detected
  ones.  It is deliberately coarse (it seeds the refinement; it does not
  replace it).
"""

from __future__ import annotations

import numpy as np

from repro.arraytypes import Array
from repro.fourier.transforms import centered_fft2, fourier_center
from repro.geometry.euler import Orientation, euler_to_matrix
from repro.utils import require_square

__all__ = [
    "sinogram",
    "common_line_angles",
    "predicted_common_line",
    "initial_orientations_common_lines",
]


def sinogram(
    image: Array, n_angles: int = 64, n_radii: int | None = None, min_radius: int = 1
) -> Array:
    """Central-line magnitude profiles of a view's 2D DFT.

    Returns shape ``(n_angles, n_radii)``: row ``i`` is |F| sampled along
    the half-line at polar angle ``180°·i/n_angles`` for radii
    ``min_radius .. min_radius + n_radii − 1`` (bilinear interpolation).
    Only half the circle is needed: for real images the opposite half-line
    is the complex-conjugate mirror, so its magnitude is identical.

    ``min_radius`` skips the lowest-frequency samples, which are nearly
    identical across *all* central lines of a compact particle and would
    otherwise drown the discriminating high-frequency signal.
    """
    img = np.asarray(image, dtype=float)
    size = require_square(img)
    ft = np.abs(centered_fft2(img))
    c = fourier_center(size)
    if min_radius < 1:
        raise ValueError("min_radius must be >= 1")
    nr = size // 2 - min_radius if n_radii is None else int(n_radii)
    if nr < 1:
        raise ValueError("image too small for a sinogram")
    angles = np.pi * np.arange(n_angles) / n_angles
    radii = np.arange(min_radius, min_radius + nr, dtype=float)
    xs = np.cos(angles)[:, None] * radii[None, :]
    ys = np.sin(angles)[:, None] * radii[None, :]
    return _bilinear_2d(ft, c + ys, c + xs)


def _bilinear_2d(arr: Array, rows: Array, cols: Array) -> Array:
    l = arr.shape[0]
    r0 = np.floor(rows).astype(int, copy=False)
    c0 = np.floor(cols).astype(int, copy=False)
    fr = rows - r0
    fc = cols - c0
    out = np.zeros_like(rows, dtype=float)
    for dr in (0, 1):
        for dcol in (0, 1):
            rr = r0 + dr
            cc = c0 + dcol
            valid = (rr >= 0) & (rr < l) & (cc >= 0) & (cc < l)
            w = (fr if dr else 1 - fr) * (fc if dcol else 1 - fc)
            out += np.where(valid, w * arr[np.clip(rr, 0, l - 1), np.clip(cc, 0, l - 1)], 0.0)
    return out


def sinogram_complex(
    image: Array, n_angles: int = 64, n_radii: int | None = None, min_radius: int = 2
) -> Array:
    """Complex central-line profiles of a view's 2D DFT.

    Like :func:`sinogram` but keeps the complex values: two views' *true*
    common line has equal complex profiles (they sample the same 3D
    transform points), which is a much sharper criterion than magnitude
    agreement.
    """
    img = np.asarray(image, dtype=float)
    size = require_square(img)
    ft = centered_fft2(img)
    c = fourier_center(size)
    if min_radius < 1:
        raise ValueError("min_radius must be >= 1")
    nr = size // 2 - min_radius if n_radii is None else int(n_radii)
    if nr < 1:
        raise ValueError("image too small for a sinogram")
    angles = np.pi * np.arange(n_angles) / n_angles
    radii = np.arange(min_radius, min_radius + nr, dtype=float)
    xs = np.cos(angles)[:, None] * radii[None, :]
    ys = np.sin(angles)[:, None] * radii[None, :]
    real = _bilinear_2d(ft.real, c + ys, c + xs)
    imag = _bilinear_2d(ft.imag, c + ys, c + xs)
    return real + 1j * imag


def common_line_angles(
    image_a: Array, image_b: Array, n_angles: int = 64, min_radius: int = 2
) -> tuple[float, float, float]:
    """Detect the common line between two views.

    Returns ``(alpha_a_deg, alpha_b_deg, score)`` where the angles (mod 180°)
    locate the best-correlating central-line pair and ``score`` is their
    normalized correlation.  Matching uses *complex* line profiles — the
    common line samples identical 3D transform values, so the real part of
    the normalized complex correlation peaks there; the lowest
    ``min_radius − 1`` radii are skipped (they carry almost no
    line-discriminating information).  Both half-line pairings (v and −v,
    i.e. the conjugate profile) are tried.
    """
    sa = sinogram_complex(image_a, n_angles, min_radius=min_radius)
    sb = sinogram_complex(image_b, n_angles, min_radius=min_radius)
    na = np.linalg.norm(sa, axis=1)
    nb = np.linalg.norm(sb, axis=1)
    na[na == 0] = 1.0
    nb[nb == 0] = 1.0
    ua = sa / na[:, None]
    ub = sb / nb[:, None]
    corr_same = (ua @ np.conj(ub).T).real
    corr_conj = (ua @ ub.T).real  # b's opposite half-line
    corr = np.maximum(corr_same, corr_conj)
    i, j = np.unravel_index(int(np.argmax(corr)), corr.shape)
    step = 180.0 / n_angles
    return (float(i * step), float(j * step), float(corr[i, j]))


def predicted_common_line(rotation_a: Array, rotation_b: Array) -> tuple[float, float]:
    """Geometric common-line angles (degrees mod 180) for two orientations.

    The slice planes with normals ``n_a = R_a·ẑ`` and ``n_b = R_b·ẑ``
    intersect along ``v = n_a × n_b``; the in-plane polar angle of ``v`` in
    slice ``a`` is measured against the basis ``(R_a·x̂, R_a·ŷ)``.
    Parallel slice planes (identical view directions) raise ``ValueError``.
    """
    ra = np.asarray(rotation_a, dtype=float)
    rb = np.asarray(rotation_b, dtype=float)
    v = np.cross(ra[:, 2], rb[:, 2])
    norm = np.linalg.norm(v)
    if norm < 1e-9:
        raise ValueError("views share an axis: common line undefined")
    v = v / norm
    alpha_a = np.rad2deg(np.arctan2(np.dot(v, ra[:, 1]), np.dot(v, ra[:, 0]))) % 180.0
    alpha_b = np.rad2deg(np.arctan2(np.dot(v, rb[:, 1]), np.dot(v, rb[:, 0]))) % 180.0
    return (float(alpha_a), float(alpha_b))


def _circular_diff_180(a: float, b: float) -> float:
    d = abs(a - b) % 180.0
    return min(d, 180.0 - d)


def initial_orientations_common_lines(
    images: Array,
    n_candidates: int = 500,
    n_angles: int = 64,
    n_anchors: int = 2,
    seed: int = 0,
) -> list[Orientation]:
    """Assign coarse initial orientations to a stack of views.

    View 0 is fixed at the identity (the global frame is arbitrary).  Each
    subsequent view is assigned the candidate orientation (quasi-uniform
    over SO(3)) whose predicted common-line angles with up to ``n_anchors``
    already-assigned views best match the detected ones.

    Accuracy is coarse by construction — tens of degrees on noisy data —
    which is exactly the regime the paper's refinement is designed to start
    from ("a rough estimation of the orientation, say at 3°").
    """
    imgs = np.asarray(images, dtype=float)
    if imgs.ndim != 3:
        raise ValueError("images must be a (m, l, l) stack")
    m = imgs.shape[0]
    if m < 2:
        raise ValueError("need at least two views")
    from repro.geometry.euler import random_orientations

    candidates = random_orientations(n_candidates, seed=seed)
    cand_mats = np.stack([c.matrix() for c in candidates])

    assigned: list[Orientation] = [Orientation(0.0, 0.0, 0.0)]
    detections: dict[tuple[int, int], tuple[float, float]] = {}
    for q in range(1, m):
        anchors = list(range(max(0, q - n_anchors), q))
        for a in anchors:
            if (a, q) not in detections:
                aa, ab, _ = common_line_angles(imgs[a], imgs[q], n_angles)
                detections[(a, q)] = (aa, ab)
        best_idx, best_cost = 0, np.inf
        for ci in range(n_candidates):
            cost = 0.0
            ok = True
            for a in anchors:
                try:
                    pa, pb = predicted_common_line(assigned[a].matrix(), cand_mats[ci])
                except ValueError:
                    ok = False
                    break
                da, db = detections[(a, q)]
                cost += _circular_diff_180(pa, da) + _circular_diff_180(pb, db)
            if ok and cost < best_cost:
                best_cost = cost
                best_idx = ci
        assigned.append(candidates[best_idx])
    return assigned
