#!/usr/bin/env python
"""The repo's one-command quality gate.

Runs, in order:

1. ``ruff check`` (skipped when ruff is not installed),
2. ``mypy`` over the strict-typed core (skipped when mypy is not installed),
3. ``repro-lint`` — the AST invariant checker in :mod:`repro.analysis`:
   the per-module rules, the whole-program call-graph passes
   (``repro-lint-wp``, RL013–RL015), and the stale-waiver audit
   (``waivers`` — strict here: a stale ``allow[...]`` fails the gate),
4. ``config-gate`` — every ``examples/*.toml``/``*.json`` engine config
   must load and validate, and repro-lint RL011 must find no environment
   reads outside ``repro/engine/`` (:mod:`repro.engine.gate`),
5. the tier-1 pytest suite (``-m "not chaos"``) with
   ``REPRO_CHECK_CONTRACTS=1`` so every
   :func:`repro.analysis.contracts.array_contract` declaration is enforced
   while the tests exercise the kernels,
6. the bench-smoke subset (``-m bench_smoke``) as its own named step — the
   tiny batched-vs-reference equivalence slice of the kernel benchmarks,
   so a kernel regression is attributed to the right gate line,
7. the symmetry-smoke subset (``-m symmetry_smoke``) as its own named
   step — the tiny asymmetric-unit-restriction equivalence slice of the
   symmetry benchmark (restricted argmin == full-orbit argmin modulo the
   group, DESIGN.md §13),
8. the accuracy-gate subset (``-m accuracy_gate``) as its own named step —
   the toleranced gate the continuous polish ships under (objective
   non-regression vs the brute-force fine tail + step-resolution bound,
   DESIGN.md §11), kept apart from the bit-identity suites because its
   contract is a tolerance, not equality,
8b. the iterate-smoke subset (``-m iterate_smoke``) as its own named step
   — the tiny end-to-end slice of the outer refine↔reconstruct loop
   (streaming == barriered == checkpoint-resumed, DESIGN.md §14),
9. the scenario matrix (``-m scenarios``, tests/scenarios/) as its own
   named step — the accuracy-regression harness of DESIGN.md §12, which
   rewrites ``BENCH_scenarios.json`` and fails if any workload trips its
   thresholds; the step also asserts the suite's wall-clock budget so the
   matrix stays cheap enough to gate every change,
10. the chaos subset (``-m chaos``, tests/chaos/) separately — fault
   injection kills workers and restarts pools, so it runs apart from the
   main suite but under the same runtime contracts.

Exit status is nonzero if any ran-and-failed step fails; skipped tools do
not fail the gate (the container may not ship them).  Usage::

    python tools/check.py            # everything
    python tools/check.py --no-tests # static checks only
    python tools/check.py --no-chaos # skip the fault-injection subset
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"

#: Wall-clock budget for the scenario-matrix step.  The matrix itself
#: runs in a few seconds; the generous bound only exists to catch a
#: scenario accidentally scaled to non-gateable size (a paper-scale l
#: sneaking into a refinement scenario instead of the cost model).
SCENARIOS_BUDGET_S = 420.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--no-tests", action="store_true", help="skip the pytest steps")
    parser.add_argument(
        "--no-chaos", action="store_true", help="skip the fault-injection subset"
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(SRC))
    from repro.analysis.gate import run_gate
    from repro.engine.gate import run_config_gate

    failed = False
    results = list(run_gate(root=ROOT, strict_waivers=True))
    results.append(run_config_gate(root=ROOT))
    for result in results:
        print(f"[{result.status:>7}] {result.name}")
        if result.status == "failed":
            failed = True
            if result.detail:
                for line in result.detail.splitlines():
                    print(f"    {line}")

    if not args.no_tests:
        env = dict(os.environ)
        env["REPRO_CHECK_CONTRACTS"] = "1"
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        suites = [
            ("pytest", ["-x", "-q", "-m", "not chaos and not scenarios"]),
            ("pytest[bench-smoke]", ["-x", "-q", "-m", "bench_smoke"]),
            ("pytest[symmetry-smoke]", ["-x", "-q", "-m", "symmetry_smoke"]),
            ("pytest[accuracy-gate]", ["-x", "-q", "-m", "accuracy_gate"]),
            ("pytest[iterate-smoke]", ["-x", "-q", "-m", "iterate_smoke"]),
            ("pytest[scenarios]", ["-x", "-q", "-m", "scenarios"]),
        ]
        if not args.no_chaos:
            suites.append(("pytest[chaos]", ["-x", "-q", "-m", "chaos"]))
        for name, extra in suites:
            print(f"[    run] {name} (REPRO_CHECK_CONTRACTS=1)")
            start = time.perf_counter()
            proc = subprocess.run(
                [sys.executable, "-m", "pytest", *extra], cwd=ROOT, env=env
            )
            wall = time.perf_counter() - start
            if proc.returncode != 0:
                print(f"[ failed] {name}")
                failed = True
            elif name == "pytest[scenarios]" and wall > SCENARIOS_BUDGET_S:
                print(
                    f"[ failed] {name} blew its wall-clock budget: "
                    f"{wall:.1f}s > {SCENARIOS_BUDGET_S:.0f}s"
                )
                failed = True
            else:
                print(f"[     ok] {name} ({wall:.1f}s)")

    print("gate:", "FAILED" if failed else "ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
