"""The engine front door: one configured object that runs refinements.

:class:`RefinementEngine` is what drivers (CLI, experiment pipeline,
structure-determination loop, benchmarks) construct from an
:class:`~repro.engine.config.EngineConfig` and call, instead of each
wiring :class:`~repro.refine.refiner.OrientationRefiner` kwargs,
``ViewScheduler`` lifetimes and ``parallel_refine`` knobs by hand.  It

* applies the config's gather-chunk override for the run's scope (so
  pool workers spawned inside it inherit the value),
* routes serial/process configs through the level-granular refiner and
  sim configs through the whole-loop simulated cluster,
* and returns one :class:`EngineRunResult` shape either way, with the
  engine fingerprint that went into any checkpoints written.

All heavy ``repro.*`` imports are lazy — see :mod:`repro.engine.config`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.engine.backends import SimBackend, make_backend
from repro.engine.config import ConfigError, EngineConfig
from repro.engine.env import GATHER_CHUNK_ENV, temporary_env

if TYPE_CHECKING:  # pragma: no cover - type-only imports, avoids cycles
    import numpy as np

    from repro.ctf.model import CTFParams
    from repro.density.map import DensityMap
    from repro.faults.plan import FaultPlan
    from repro.geometry.euler import Orientation
    from repro.imaging.simulate import SimulatedViews
    from repro.parallel.prefine import ParallelRefinementReport
    from repro.perf import PerfCounters
    from repro.refine.refiner import RefinementResult

__all__ = ["EngineRunResult", "RefinementEngine"]


@dataclass
class EngineRunResult:
    """One refinement run's outcome, backend-independent.

    ``result`` (serial/process) or ``report`` (sim) carries the full
    driver-specific record; orientations/distances/perf are always here.
    """

    orientations: list["Orientation"]
    distances: "np.ndarray"
    backend: str
    fingerprint: str
    perf: "PerfCounters | None" = None
    result: "RefinementResult | None" = None
    report: "ParallelRefinementReport | None" = None
    #: point group the search was restricted by (configured or detected);
    #: ``None`` when symmetry handling was off, ``"C1"`` when detection
    #: found nothing.  ``symmetry_order`` is |G| of the applied
    #: restriction (1 when none was applied).
    symmetry_group: "str | None" = None
    symmetry_order: int = 1


class RefinementEngine:
    """Run refinements exactly as one frozen config describes.

    The engine is stateless between runs apart from the config itself;
    per-run resources (pools, shared D̂ replicas, the simulated fabric)
    live and die inside :meth:`run`.
    """

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()

    def fingerprint(self) -> str:
        """The config's result-relevant digest (checkpoint/bench header)."""
        return self.config.fingerprint()

    def run(
        self,
        views: "SimulatedViews | np.ndarray",
        density: "DensityMap",
        *,
        initial_orientations: list["Orientation"] | None = None,
        ctf_params: list["CTFParams"] | None = None,
        apix: float | None = None,
        keep_level_snapshots: bool = False,
        fault_plan: "FaultPlan | None" = None,
        machine: Any = None,
        orientation_file: str | None = None,
    ) -> EngineRunResult:
        """One full refinement iteration under this config.

        Serial/process configs run the level-granular refiner (honoring
        the config's checkpoint section); sim configs run the simulated
        cluster end-to-end.  ``fault_plan`` reaches whichever fabric the
        backend has; ``machine``/``orientation_file`` apply to sim only.
        """
        cfg = self.config
        chunk = cfg.kernel.gather_chunk
        with temporary_env(GATHER_CHUNK_ENV, None if chunk is None else str(chunk)):
            if cfg.parallel.backend == "sim":
                return self._run_sim(
                    views, density, fault_plan=fault_plan, machine=machine,
                    orientation_file=orientation_file,
                )
            return self._run_refiner(
                views, density,
                initial_orientations=initial_orientations,
                ctf_params=ctf_params, apix=apix,
                keep_level_snapshots=keep_level_snapshots,
                fault_plan=fault_plan,
                orientation_file=orientation_file,
            )

    # -- serial / process ----------------------------------------------------
    def _run_refiner(
        self,
        views: "SimulatedViews | np.ndarray",
        density: "DensityMap",
        *,
        initial_orientations: list["Orientation"] | None,
        ctf_params: list["CTFParams"] | None,
        apix: float | None,
        keep_level_snapshots: bool,
        fault_plan: "FaultPlan | None",
        orientation_file: str | None,
    ) -> EngineRunResult:
        from repro.refine.refiner import OrientationRefiner

        cfg = self.config
        refiner = OrientationRefiner(density, config=cfg)
        backend = make_backend(cfg, fault_plan=fault_plan)
        try:
            result = refiner.refine(
                views,
                initial_orientations=initial_orientations,
                schedule=cfg.schedule.to_schedule(),
                ctf_params=ctf_params,
                apix=apix,
                refine_centers=cfg.refine_centers,
                keep_level_snapshots=keep_level_snapshots,
                backend=backend,
                checkpoint_path=cfg.checkpoint.path,
                resume=cfg.checkpoint.resume,
            )
        finally:
            backend.close()
        if orientation_file is not None:
            from repro.refine.orientfile import write_orientation_file

            write_orientation_file(
                orientation_file, result.orientations, scores=result.distances
            )
        return EngineRunResult(
            orientations=result.orientations,
            distances=result.distances,
            backend=backend.name,
            fingerprint=cfg.fingerprint(),
            perf=result.perf,
            result=result,
            symmetry_group=result.symmetry_group,
            symmetry_order=result.symmetry_order,
        )

    # -- sim -----------------------------------------------------------------
    def _run_sim(
        self,
        views: "SimulatedViews | np.ndarray",
        density: "DensityMap",
        *,
        fault_plan: "FaultPlan | None",
        machine: Any,
        orientation_file: str | None,
    ) -> EngineRunResult:
        from repro.imaging.simulate import SimulatedViews

        if not isinstance(views, SimulatedViews):
            raise ConfigError(
                "the sim backend distributes a SimulatedViews workload "
                "(images + initial orientations + CTF) over the simulated "
                "cluster; raw image stacks are not supported there"
            )
        cfg = self.config
        if cfg.checkpoint.path is not None:
            raise ConfigError(
                "checkpointing is level-granular and lives in the serial/"
                "process drivers; the sim backend does not support it"
            )
        backend = SimBackend(cfg, fault_plan=fault_plan)
        report = backend.run_refinement(
            views, density, machine=machine, orientation_file=orientation_file
        )
        return EngineRunResult(
            orientations=report.orientations,
            distances=report.distances,
            backend=backend.name,
            fingerprint=cfg.fingerprint(),
            perf=report.perf,
            report=report,
        )
