"""E1 — Table 1: per-step times of one Sindbis refinement iteration.

Regenerates the table two ways:

* **model rows** — the calibrated analytic model evaluated at the paper's
  scale (l=331, m=7917, P=16, SP2-like machine).  Calibration uses only the
  1°-level refinement cell; every other cell is a prediction, asserted
  against the paper within 10%.
* **measured mini run** — the full simulated-cluster pipeline actually
  executed on a mini workload, establishing that the dataflow behind the
  numbers exists and that orientation refinement dominates the iteration.
"""

import numpy as np
import pytest

from repro.parallel import SINDBIS_WORKLOAD
from repro.pipeline import MiniWorkload, format_timing_table, run_timing_table_experiment
from repro.refine.refiner import STEP_REFINEMENT

PAPER_REFINEMENT_ROW = [4053.0, 4109.0, 7065.0, 26190.0]
PAPER_TOTAL_ROW = [4364.0, 4308.0, 7282.0, 27161.0]


def test_table1_sindbis(benchmark, calibrated_model, save_artifact):
    mini = MiniWorkload("sindbis-mini", "sindbis", size=32, n_views=12, snr=np.inf, perturbation_deg=2.0)

    def run():
        return run_timing_table_experiment(
            SINDBIS_WORKLOAD, mini=mini, n_ranks=4,
            calibrate_level=0, calibrate_seconds=PAPER_REFINEMENT_ROW[0],
        )

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = out["model_rows"]

    # --- paper-shape assertions -------------------------------------------
    for row, paper in zip(rows, PAPER_REFINEMENT_ROW):
        assert row["Orientation refinement"] == pytest.approx(paper, rel=0.10)
    # refinement dominates (the paper's "99% of the time")
    assert all(r["Orientation refinement"] / r["Total"] > 0.95 for r in rows)
    # the 0.002-deg level is by far the most expensive
    assert rows[3]["Total"] == max(r["Total"] for r in rows)
    # the measured mini run exhibits the same dominance
    report = out["mini_report"]
    assert report.refinement_fraction() > 0.5

    text = format_timing_table(rows, title="Table 1 (model, paper scale: Sindbis, P=16, SP2-like)")
    text += "\n\npaper refinement row:     " + "  ".join(f"{v:,.0f}" for v in PAPER_REFINEMENT_ROW)
    text += "\npaper total row:          " + "  ".join(f"{v:,.0f}" for v in PAPER_TOTAL_ROW)
    text += (
        f"\n\nmeasured mini run ({report.n_ranks} ranks, l={mini.size}, m={mini.n_views}):"
        f"\n  simulated step seconds: "
        + ", ".join(f"{k}={v:.3g}" for k, v in report.simulated_step_seconds.items())
        + f"\n  refinement fraction: {report.refinement_fraction():.3f}"
        + f"\n  host wall seconds: {out['mini_wall_seconds']:.1f}"
    )
    save_artifact("table1_sindbis.txt", text)
