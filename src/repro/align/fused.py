"""Fused in-band slice/distance kernel (steps f–h without the cut stacks).

The reference matching path materializes a full ``(w, l, l)`` stack of
central cuts (:func:`repro.fourier.slicing.extract_slices`) and only then
masks it down to the band ``r ≤ r_map``
(:meth:`repro.align.distance.DistanceComputer.distance_batch`).  Every
sample outside the band is gathered from D̂, copied, and thrown away, and
the coordinate meshgrids are rebuilt for every window of every slide.

:class:`MatchPlan` fuses the two stages.  Once per ``(l, r_map, weights,
volume_size, interpolation)`` it precomputes the in-band 2D frequency
coordinates ``(kx, ky)`` and the band weight vector; per window it rotates
*only those coordinates* into the volume frame and gathers trilinear
samples of D̂ at them, so the per-candidate cost drops from ``l²`` to
``≈ π·r_map²`` samples — a ``(l/2)²/r_map²`` FLOP and memory-traffic saving
at coarse levels where ``r_map ≪ l/2``.  Because the band radius bounds
every rotated coordinate, the interior/edge decision is made **once at
plan time**: in the common oversampled case the 8-corner trilinear gather
runs with no per-corner bounds checks at all.

The kernel is numerically *identical* to the reference path (same
coordinate arithmetic, same corner accumulation order, same reduction
shapes), so ``kernel="reference"`` remains available purely as a checkable
slow path.  The plan also carries the in-band phase-ramp machinery used by
the fused center search (steps k–l), where a candidate center shift
becomes an ``n_band``-element ramp instead of an ``l×l`` one.
"""

from __future__ import annotations

import numpy as np

from repro.align.distance import DistanceComputer
from repro.analysis.contracts import array_contract, spec
from repro.arraytypes import Array
from repro.fourier.slicing import _gather_nearest, _gather_trilinear, _gather_trilinear_interior
from repro.fourier.transforms import fourier_center, frequency_grid_2d

__all__ = ["MatchPlan", "get_match_plan"]

#: Safety margin (in voxels) for the plan-time interior test.  Rotated
#: coordinates are bounded by ``r_band·scale`` analytically; floating-point
#: rounding can exceed that bound by a few ulp, far below this margin.
_INTERIOR_MARGIN = 1e-9

#: Target band samples per gather chunk.  Large windows are processed in
#: rotation chunks of roughly this many samples so the coordinate and
#: per-corner temporaries stay cache-resident instead of streaming
#: tens-of-MB arrays through memory eight times per window.  Gathers and
#: distances are per-point/per-row, so chunking cannot change any value.
_CHUNK_SAMPLES = 1 << 18


class MatchPlan:
    """Precomputed in-band geometry for fused slice+distance evaluation.

    Parameters
    ----------
    distance_computer:
        The band mask, weights and normalization all come from here; the
        fused distances are bit-identical to ``distance_computer`` applied
        to reference cuts.
    volume_size:
        Side of the (possibly oversampled) 3D DFT the cuts are taken from.
    interpolation:
        ``"trilinear"`` (default) or ``"nearest"``.
    """

    def __init__(
        self,
        distance_computer: DistanceComputer,
        volume_size: int,
        interpolation: str = "trilinear",
    ) -> None:
        if interpolation not in ("trilinear", "nearest"):
            raise ValueError(f"unknown interpolation order {interpolation!r}")
        self.dc = distance_computer
        self.size = distance_computer.size
        self.volume_size = int(volume_size)
        if self.volume_size < self.size:
            raise ValueError("volume_size must be >= image size")
        self.interpolation = interpolation
        ky, kx = frequency_grid_2d(self.size)
        idx = distance_computer.band_indices
        # Integer band frequencies; int·float promotion reproduces the
        # reference meshgrid arithmetic exactly.
        self._kxb = kx.ravel()[idx]
        self._kyb = ky.ravel()[idx]
        self._scale = self.volume_size / self.size
        self._cv = fourier_center(self.volume_size)
        self.n_samples = distance_computer.n_samples
        if idx.size:
            r_band = float(
                np.sqrt(
                    self._kxb.astype(float, copy=False) ** 2
                    + self._kyb.astype(float, copy=False) ** 2
                ).max()
            )
        else:
            r_band = 0.0
        #: Largest in-band frequency radius (image units); rotation cannot
        #: push any sampled coordinate farther than ``r_band·scale`` from
        #: the volume center, so interior-ness is known before any gather.
        self.band_radius = r_band
        reach = r_band * self._scale
        self._interior = bool(
            self._cv - reach >= _INTERIOR_MARGIN
            and self._cv + reach <= self.volume_size - 1 - _INTERIOR_MARGIN
        )

    @property
    def all_interior(self) -> bool:
        """True when every possible sample has a full in-bounds 8-corner cell."""
        return self._interior

    # -- band gathers ------------------------------------------------------
    def gather_view(self, view_ft: Array) -> Array:
        """The view's in-band samples as a flat vector (alias of ``dc.gather``)."""
        return self.dc.gather(view_ft)

    def _band_coords(self, rotations: Array) -> tuple[Array, bool]:
        rots = np.asarray(rotations, dtype=float)
        single = rots.ndim == 2
        if single:
            rots = rots[None]
        if rots.ndim != 3 or rots.shape[1:] != (3, 3):
            raise ValueError(f"rotations must be (w, 3, 3) or (3, 3), got {rots.shape}")
        u = rots[:, :, 0]  # (w, 3)
        v = rots[:, :, 1]
        coords_xyz = (
            self._kxb[None, :, None] * u[:, None, :] + self._kyb[None, :, None] * v[:, None, :]
        ) * self._scale
        coords_zyx = coords_xyz[..., ::-1] + self._cv
        return coords_zyx, single

    def _rotation_chunk(self) -> int:
        """Rotations per gather chunk (cache sizing, not a result knob)."""
        return max(1, _CHUNK_SAMPLES // max(1, self.n_samples))

    def _gather_chunk(self, vol: Array, rotations: Array) -> Array:
        coords, single = self._band_coords(rotations)
        if self.interpolation == "nearest":
            out = _gather_nearest(vol, coords)
        elif self._interior:
            pts = coords.reshape(-1, 3)
            base = np.floor(pts).astype(np.int64, copy=False)
            frac = pts - base
            out = _gather_trilinear_interior(vol.ravel(), vol.shape[0], base, frac).reshape(
                coords.shape[:-1]
            )
        else:
            out = _gather_trilinear(vol, coords)
        return out[0] if single else out

    @array_contract(
        volume_ft=spec(shape=("v", "v", "v"), dtype="inexact", allow_none=False),
        rotations=spec(shape=[(3, 3), (None, 3, 3)], allow_none=False),
    )
    def cut_bands(self, volume_ft: Array, rotations: Array) -> Array:
        """In-band samples of the central cut(s) of D̂ — never an (w, l, l) stack.

        ``rotations`` is one ``(3, 3)`` matrix or a ``(w, 3, 3)`` stack; the
        result is ``(n_band,)`` or ``(w, n_band)`` complex samples.
        """
        vol = np.asarray(volume_ft)
        if vol.shape != (self.volume_size,) * 3:
            raise ValueError(
                f"volume_ft must be ({self.volume_size},)*3 for this plan, got {vol.shape}"
            )
        rots = np.asarray(rotations, dtype=float)
        step = self._rotation_chunk()
        if rots.ndim == 2 or rots.shape[0] <= step:
            return self._gather_chunk(vol, rots)
        out = np.empty((rots.shape[0], self.n_samples), dtype=vol.dtype)
        for lo in range(0, rots.shape[0], step):
            out[lo : lo + step] = self._gather_chunk(vol, rots[lo : lo + step])
        return out

    def cut_band(self, volume_ft: Array, rotation: Array) -> Array:
        """In-band samples of one cut (the fused analog of ``extract_slice``)."""
        return self.cut_bands(volume_ft, rotation)

    # -- fused matching ----------------------------------------------------
    @array_contract(
        volume_ft=spec(shape=("v", "v", "v"), dtype="inexact", allow_none=False),
        view_band=spec(shape=("n",), dtype="inexact", allow_none=False),
        rotations=spec(shape=[(3, 3), (None, 3, 3)], allow_none=False),
    )
    def distances(
        self,
        volume_ft: Array,
        view_band: Array,
        rotations: Array,
        cut_modulation: Array | None = None,
    ) -> Array:
        """§3 distances from one view to all ``w`` candidates, fused.

        ``view_band`` comes from :meth:`gather_view`; ``cut_modulation`` is
        a band vector (or full ``(l, l)`` array) imposed on every cut.

        Each rotation chunk is gathered *and* reduced while still hot in
        cache; distances are per-row, so chunking is invisible in the
        output.
        """
        rots = np.asarray(rotations, dtype=float)
        if rots.ndim == 2:
            rots = rots[None]
        vol = np.asarray(volume_ft)
        step = self._rotation_chunk()
        if rots.shape[0] <= step:
            cuts = self.cut_bands(vol, rots)
            return np.asarray(
                self.dc.distance_band(view_band, cuts, cut_modulation=cut_modulation)
            )
        out = np.empty(rots.shape[0])
        for lo in range(0, rots.shape[0], step):
            cuts = self.cut_bands(vol, rots[lo : lo + step])
            out[lo : lo + step] = self.dc.distance_band(
                view_band, cuts, cut_modulation=cut_modulation
            )
        return out

    # -- fused center machinery (steps k–l) --------------------------------
    def shift_ramps(self, dxs: Array, dys: Array) -> Array:
        """In-band phase ramps for a batch of candidate center corrections.

        Row ``i`` equals the reference ``_shift_stack`` ramp for
        ``(dxs[i], dys[i])`` restricted to the band.
        """
        dxs = np.asarray(dxs, dtype=float)
        dys = np.asarray(dys, dtype=float)
        return np.exp(
            2j
            * np.pi
            * (self._kxb[None, :] * dxs[:, None] + self._kyb[None, :] * dys[:, None])
            / self.size
        )

    def phase_shift_band(self, view_band: Array, dx: float, dy: float) -> Array:
        """Band-restricted :func:`repro.imaging.center.phase_shift_ft`."""
        if dx == 0.0 and dy == 0.0:
            return view_band
        ramp = np.exp(-2j * np.pi * (self._kxb * dx + self._kyb * dy) / self.size)
        return np.asarray(view_band) * ramp


def get_match_plan(
    distance_computer: DistanceComputer,
    volume_size: int,
    interpolation: str = "trilinear",
) -> MatchPlan:
    """The cached :class:`MatchPlan` for a computer/volume/interpolation triple.

    Plans attach to the :class:`DistanceComputer` instance (whose mask and
    weights they bake in), so every slide, inner iteration, level and view
    sharing a computer also shares one plan.
    """
    cache: dict[tuple[int, str], MatchPlan] | None = getattr(
        distance_computer, "_match_plans", None
    )
    if cache is None:
        cache = {}
        distance_computer._match_plans = cache  # type: ignore[attr-defined]
    key = (int(volume_size), interpolation)
    plan = cache.get(key)
    if plan is None:
        plan = MatchPlan(distance_computer, volume_size, interpolation)
        cache[key] = plan
    return plan
