"""Tests for center/shift handling (phase ramps, CoM, cross-correlation)."""

import numpy as np
import pytest

from repro.fourier import centered_fft2
from repro.imaging import (
    center_of_mass_shift,
    cross_correlation_shift,
    phase_shift_ft,
    shift_image,
)
from repro.density.phantom import gaussian_blob


def _blob_image(cx=0.0, cy=0.0, size=32, sigma=2.0):
    vol = gaussian_blob(size, [cx, cy, 0.0], sigma)
    return vol[size // 2]


def test_shift_image_moves_peak():
    img = _blob_image()
    shifted = shift_image(img, 3.0, -2.0)
    y, x = np.unravel_index(np.argmax(shifted), shifted.shape)
    assert (x - 16, y - 16) == (3, -2)


def test_shift_image_subpixel_exact_roundtrip():
    # use a band-limited image: taking .real after a subpixel shift loses
    # the asymmetric Nyquist component of white noise, which would break
    # exactness for reasons unrelated to the shift itself
    img = _blob_image(cx=1.0, cy=-2.0)
    out = shift_image(shift_image(img, 0.37, -1.21), -0.37, 1.21)
    assert np.allclose(out, img, atol=1e-9)


def test_phase_shift_ft_equals_real_shift(rng):
    img = rng.normal(size=(16, 16))
    from repro.fourier import centered_ifft2

    via_ft = centered_ifft2(phase_shift_ft(centered_fft2(img), 2.0, 5.0)).real
    direct = shift_image(img, 2.0, 5.0)
    assert np.allclose(via_ft, direct, atol=1e-10)


def test_phase_shift_zero_is_identity(rng):
    ft = centered_fft2(rng.normal(size=(8, 8)))
    assert np.allclose(phase_shift_ft(ft, 0.0, 0.0), ft)


def test_phase_shift_composes(rng):
    ft = centered_fft2(rng.normal(size=(8, 8)))
    a = phase_shift_ft(phase_shift_ft(ft, 1.0, 2.0), 3.0, -1.0)
    b = phase_shift_ft(ft, 4.0, 1.0)
    assert np.allclose(a, b, atol=1e-10)


def test_center_of_mass_shift_detects_offset():
    img = _blob_image(cx=4.0, cy=-3.0)
    cx, cy = center_of_mass_shift(img)
    assert cx == pytest.approx(4.0, abs=0.1)
    assert cy == pytest.approx(-3.0, abs=0.1)


def test_center_of_mass_zero_image():
    assert center_of_mass_shift(np.zeros((8, 8))) == (0.0, 0.0)


def test_cross_correlation_shift_integer():
    ref = _blob_image()
    moved = shift_image(ref, 3.0, -2.0)
    dx, dy = cross_correlation_shift(moved, ref)
    assert (dx, dy) == pytest.approx((-3.0, 2.0), abs=0.5)


def test_cross_correlation_shift_subpixel():
    ref = _blob_image()
    moved = shift_image(ref, 1.4, -0.6)
    dx, dy = cross_correlation_shift(moved, ref, upsample=4)
    assert dx == pytest.approx(-1.4, abs=0.25)
    assert dy == pytest.approx(0.6, abs=0.25)


def test_cross_correlation_shift_shape_mismatch():
    with pytest.raises(ValueError):
        cross_correlation_shift(np.zeros((8, 8)), np.zeros((16, 16)))
