"""Orientation geometry: Euler angles, rotations, sphere sampling, symmetry.

The paper parameterizes a view orientation by three angles ``(θ, φ, ω)``
(Figure 1a).  We use the ZYZ convention ``R = Rz(φ)·Ry(θ)·Rz(ω)``; the view
(projection) direction is ``R·ẑ`` and the in-plane rotation is ``ω``.
"""

from repro.geometry.euler import (
    Orientation,
    angular_distance_deg,
    euler_to_matrix,
    in_plane_distance_deg,
    matrix_to_euler,
    orientation_distance_deg,
    random_orientations,
)
from repro.geometry.rotations import (
    axis_angle_to_matrix,
    is_rotation_matrix,
    matrix_to_axis_angle,
    matrix_to_quaternion,
    quaternion_to_matrix,
    rotation_angle_deg,
    rotation_between,
)
from repro.geometry.sphere import (
    count_orientations,
    fibonacci_sphere,
    search_space_cardinality,
    view_directions_grid,
)
from repro.geometry.symmetry import (
    SymmetryGroup,
    cyclic_group,
    dihedral_group,
    icosahedral_group,
    identify_point_group,
    octahedral_group,
    reduce_to_asymmetric_unit,
    tetrahedral_group,
)

__all__ = [
    "Orientation",
    "euler_to_matrix",
    "matrix_to_euler",
    "random_orientations",
    "angular_distance_deg",
    "in_plane_distance_deg",
    "orientation_distance_deg",
    "axis_angle_to_matrix",
    "matrix_to_axis_angle",
    "quaternion_to_matrix",
    "matrix_to_quaternion",
    "is_rotation_matrix",
    "rotation_angle_deg",
    "rotation_between",
    "fibonacci_sphere",
    "view_directions_grid",
    "count_orientations",
    "search_space_cardinality",
    "SymmetryGroup",
    "cyclic_group",
    "dihedral_group",
    "tetrahedral_group",
    "octahedral_group",
    "icosahedral_group",
    "identify_point_group",
    "reduce_to_asymmetric_unit",
]
