"""Kernel and view-scheduler speedups, recorded into BENCH_kernels.json.

The acceptance claims: on the full multi-resolution schedule at l = 64 the
fused in-band kernel beats the reference slice-then-distance path by at
least 3×, the batched whole-window engine (with its orientation memo)
beats the fused kernel by at least 1.5× with a nonzero memo hit-rate —
both while returning bit-identical results — and the pruned search +
continuous polish evaluates at least 5× fewer full candidates than the
batched engine while running at least 2× faster, never regressing any
view's objective.  The asymmetric-unit restriction on an icosahedral
phantom must cut candidate evaluations at least 10× (it achieves the
full |G| = 60×) with the restricted argmin equal to the exhaustive
argmin modulo the group.  Worker scaling is recorded but only asserted
on hosts with at least two CPUs — on a single-CPU host the measurement
is skipped and recorded as such.
"""

from __future__ import annotations

import json
import os

from run_bench import (
    BENCH_FILE,
    engine_fingerprint,
    measure_batched_vs_fused,
    measure_fused_vs_reference,
    measure_pruned_vs_batched,
    measure_symmetric_vs_full,
    measure_worker_scaling,
)


def test_fused_kernel_speedup(save_artifact):
    stats = measure_fused_vs_reference(size=64, n_views=2)
    batched = measure_batched_vs_fused(size=64, n_views=2)
    pruned = measure_pruned_vs_batched(size=64, n_views=2)
    symmetric = measure_symmetric_vs_full(size=64)
    workers = measure_worker_scaling(size=32, n_views=8, worker_counts=(1, 2))
    data = {
        "engine_fingerprint": engine_fingerprint(),
        "fused_vs_reference": stats,
        "batched_vs_fused": batched,
        "pruned_vs_batched": pruned,
        "symmetric_vs_full": symmetric,
        "worker_scaling": workers,
    }
    BENCH_FILE.write_text(json.dumps(data, indent=2) + "\n")
    save_artifact("BENCH_kernels.json", json.dumps(data, indent=2))
    assert stats["identical_results"]
    assert stats["speedup"] >= 3.0, f"fused speedup {stats['speedup']}x < 3x"
    assert batched["identical_results"]
    assert batched["speedup"] >= 1.5, f"batched speedup {batched['speedup']}x < 1.5x"
    assert batched["memo_hit_rate"] > 0.0, "memo never hit on a re-centering run"
    assert pruned["pruned_identity"]["identical_results"]
    assert pruned["pruned_identity"]["candidates_pruned"] > 0
    pp = pruned["pruned_polish"]
    assert pp["distances_dominate_batched"]
    assert pp["eval_reduction"] >= 5.0, (
        f"prune+polish candidate-eval reduction {pp['eval_reduction']}x < 5x"
    )
    assert pp["speedup"] >= 2.0, f"prune+polish speedup {pp['speedup']}x < 2x"
    assert symmetric["argmin_equal_mod_group"]
    assert symmetric["candidate_eval_reduction"] >= 10.0, (
        f"AU restriction eval reduction {symmetric['candidate_eval_reduction']}x < 10x"
    )
    assert symmetric["speedup"] >= 10.0, (
        f"AU restriction wall-clock speedup {symmetric['speedup']}x < 10x"
    )
    if (os.cpu_count() or 1) >= 2:
        assert workers["status"] == "ok"
        assert workers["identical_results"]
    else:
        assert workers["status"] == "skipped"
        assert workers["reason"] == "insufficient cpus"
