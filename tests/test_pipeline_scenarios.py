"""Fast unit tests for the scenario spec/schema layer (no refinements).

The full matrix runs under ``-m scenarios`` (tests/scenarios/); these
cover the declarative pieces — spec validation, the perturbation stream,
symmetry-class parsing, engine-config merging, threshold evaluation, and
the ``BENCH_scenarios.json`` schema validator.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.engine.config import ConfigError
from repro.geometry.euler import Orientation, random_orientations
from repro.pipeline.scenarios import (
    SCENARIO_SCHEMA_VERSION,
    CostModelScenario,
    PerturbationSpec,
    Scenario,
    ScenarioRecord,
    ScenarioRunner,
    ScenarioThresholds,
    default_matrix,
    evaluate_thresholds,
    perturb_orientations,
    symmetry_group_for,
    validate_bench_payload,
    write_bench,
)


# -- spec validation ---------------------------------------------------------


def test_scenario_validation():
    with pytest.raises(ValueError):
        Scenario(name="")
    with pytest.raises(ValueError):
        Scenario(name="x", n_views=1)  # FSC needs the odd/even split
    with pytest.raises(ValueError):
        Scenario(name="x", snr=0.0)
    with pytest.raises(ValueError):
        Scenario(name="x", defocus_groups=(9000.0, -1.0))
    with pytest.raises(ValueError):
        Scenario(name="x", symmetry="Q")
    with pytest.raises(ValueError):
        CostModelScenario(name="x", workload="hiv")
    with pytest.raises(ValueError):
        PerturbationSpec(mode="lognormal")


def test_symmetry_group_for_classes():
    assert symmetry_group_for("C1") is None
    assert symmetry_group_for("C4").order == 4
    assert symmetry_group_for("D2").order == 4
    assert symmetry_group_for("T").order == 12
    assert symmetry_group_for("O").order == 24
    assert symmetry_group_for("I").order == 60
    with pytest.raises(ValueError):
        symmetry_group_for("C0")


# -- perturbation ------------------------------------------------------------


def test_perturb_none_resets_centers_only():
    truth = [Orientation(10.0, 20.0, 30.0, 1.5, -0.5)]
    (out,) = perturb_orientations(truth, PerturbationSpec(mode="none"))
    assert (out.theta, out.phi, out.omega) == (10.0, 20.0, 30.0)
    assert out.cx == 0.0 and out.cy == 0.0


def test_perturb_matches_historical_figure_stream():
    """Gaussian mode reproduces the legacy experiments.py jitter exactly."""
    from repro.utils import default_rng

    truth = random_orientations(5, seed=9)
    spec = PerturbationSpec(mode="gaussian", angle_deg=3.0, seed=1002)
    ours = perturb_orientations(truth, spec)
    rng = default_rng(1002)
    legacy = [
        Orientation(
            o.theta + rng.normal(0.0, 3.0),
            o.phi + rng.normal(0.0, 3.0),
            o.omega + rng.normal(0.0, 3.0),
            0.0,
            0.0,
        )
        for o in truth
    ]
    assert ours == legacy


def test_perturb_center_jitter():
    truth = random_orientations(4, seed=0)
    spec = PerturbationSpec(mode="uniform", angle_deg=1.0, center_px=2.0, seed=3)
    out = perturb_orientations(truth, spec)
    assert any(o.cx != 0.0 or o.cy != 0.0 for o in out)
    assert all(abs(o.cx) <= 2.0 and abs(o.cy) <= 2.0 for o in out)


# -- runner plumbing (no refinement executed) --------------------------------


def test_engine_config_reflects_scenario():
    s = Scenario(
        name="x",
        r_max=7.0,
        max_slides=5,
        schedule_levels=((1.0, 1.0, 2, 1),),
        engine={"prune": {"enabled": True}},
    )
    cfg = ScenarioRunner().engine_config(s)
    assert cfg.r_max == 7.0
    assert cfg.max_slides == 5
    assert cfg.schedule.levels == ((1.0, 1.0, 2, 1),)
    assert cfg.prune.enabled is True


def test_engine_override_rejects_unknown_fields():
    s = Scenario(name="x", engine={"sharding": {"n": 4}})
    with pytest.raises(ConfigError):
        ScenarioRunner().engine_config(s)


def test_dataset_streams_are_independent(phantom16):
    """Same scenario seed + different perturbation seed -> same images."""
    runner = ScenarioRunner()
    base = Scenario(name="x", size=16, n_views=3, snr=2.0)
    other = Scenario(
        name="x",
        size=16,
        n_views=3,
        snr=2.0,
        perturbation=PerturbationSpec(seed=999),
    )
    a, b = runner.dataset(base), runner.dataset(other)
    assert np.array_equal(a.images, b.images)
    assert a.initial_orientations != b.initial_orientations


def test_dataset_defocus_groups_round_robin():
    s = Scenario(name="x", size=16, n_views=4, defocus_groups=(9000.0, 15000.0))
    views = ScenarioRunner().dataset(s)
    assert [p.defocus_angstrom for p in views.ctf_params] == [
        9000.0, 15000.0, 9000.0, 15000.0,
    ]


def test_exact_snr_realized(phantom16):
    from repro.imaging.noise import estimate_snr
    from repro.imaging.project import project_map

    s = Scenario(name="x", size=16, n_views=3, snr=0.5, exact_snr=True)
    views = ScenarioRunner().dataset(s)
    clean = project_map(views.ground_truth, views.true_orientations[0])
    assert estimate_snr(views.images[0], clean) == pytest.approx(0.5, rel=1e-6)


# -- thresholds --------------------------------------------------------------


def test_evaluate_thresholds_directions():
    metrics = {
        "median_angular_error_deg": 2.0,
        "p90_angular_error_deg": 3.0,
        "improvement_ratio": 1.5,
        "total_hours": 12.0,
    }
    t = ScenarioThresholds(
        max_median_angular_error_deg=1.5,
        min_improvement_ratio=2.0,
        max_total_hours=10.0,
        min_total_hours=1.0,
    )
    failures = evaluate_thresholds(metrics, t)
    assert len(failures) == 3
    assert any("max_median_angular_error_deg" in f for f in failures)
    assert any("min_improvement_ratio" in f for f in failures)
    assert any("max_total_hours" in f for f in failures)
    assert evaluate_thresholds(metrics, ScenarioThresholds()) == []


def test_evaluate_thresholds_missing_metric_fails_loudly():
    failures = evaluate_thresholds({}, ScenarioThresholds(max_total_hours=1.0))
    assert failures and "missing" in failures[0]


# -- records & schema --------------------------------------------------------


def _record(name="x", **over) -> ScenarioRecord:
    base = dict(
        name=name,
        type="refinement",
        spec={"engine": {"checkpoint": {"path": "x"}, "prune": {"enabled": True}}},
        metrics={
            **{k: 1.0 for k in (
                "n_views",
                "median_angular_error_deg",
                "p90_angular_error_deg",
                "initial_median_angular_error_deg",
                "improvement_ratio",
                "median_center_error_px",
                "fsc_crossing_angstrom",
                "initial_fsc_crossing_angstrom",
                "candidate_reduction_factor",
            )},
            "detected_symmetry_group": None,
        },
        thresholds={},
        failures=[],
        passed=True,
        fingerprint="abc",
        perf={"backend": "serial"},
        timing={"wall_seconds": 0.1},
    )
    base.update(over)
    return ScenarioRecord(**base)


def test_comparable_strips_execution_detail():
    a = _record()
    b = _record(
        spec={"engine": {"checkpoint": {"path": "y", "resume": True},
                         "prune": {"enabled": True}}},
        perf={"backend": "process"},
        timing={"wall_seconds": 9.9},
    )
    assert a.comparable() == b.comparable()
    c = _record(metrics={**a.metrics, "median_angular_error_deg": 2.0})
    assert a.comparable() != c.comparable()


def test_write_bench_round_trip_and_validation(tmp_path):
    payload = write_bench([_record("a"), _record("b")], tmp_path / "bench.json")
    assert validate_bench_payload(payload) == []
    assert payload["counts"] == {"total": 2, "passed": 2, "failed": 0}

    with pytest.raises(ValueError, match="duplicate"):
        write_bench([_record("a"), _record("a")], tmp_path / "bench.json")


def test_validate_bench_payload_rejects_bad_shapes():
    assert validate_bench_payload([]) != []
    assert any("schema_version" in p for p in validate_bench_payload(
        {"schema_version": 99, "counts": {}, "scenarios": [_record().to_dict()]}
    ))
    bad = _record().to_dict()
    bad.pop("metrics")
    bad["extra"] = 1
    problems = validate_bench_payload(
        {"schema_version": SCENARIO_SCHEMA_VERSION, "counts": {}, "scenarios": [bad]}
    )
    assert any("missing field 'metrics'" in p for p in problems)
    assert any("unknown field(s) extra" in p for p in problems)

    liar = _record().to_dict()
    liar["failures"] = ["tripped"]
    problems = validate_bench_payload(
        {"schema_version": SCENARIO_SCHEMA_VERSION, "counts": {}, "scenarios": [liar]}
    )
    assert any("contradicts" in p for p in problems)


def test_default_matrix_is_well_formed():
    matrix = default_matrix()
    assert len(matrix) >= 6
    names = [s.name for s in matrix]
    assert len(set(names)) == len(names)
    # every refinement scenario's engine overrides must merge cleanly
    runner = ScenarioRunner()
    for s in matrix:
        if isinstance(s, Scenario):
            runner.engine_config(s)
    # spec dicts are JSON-safe (inf spelled as null)
    import json

    for s in matrix:
        json.dumps(s.spec_dict(), allow_nan=False)
    clean = next(s for s in matrix if s.name == "clean")
    assert math.isinf(clean.snr) and clean.spec_dict()["snr"] is None
