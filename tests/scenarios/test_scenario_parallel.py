"""Scenario-level parallel-backend sweep (DESIGN.md §12 + §14).

The bit-identity doctrine is asserted at the scenario level: the same
workload run under the process backend must produce a record identical to
the serial run under :meth:`ScenarioRecord.comparable` — every accuracy
metric to the last bit, with only wall-clock timing, perf counters and
the execution-strategy engine keys differing.  The sweep covers both the
single-refinement gate scenario and the outer-loop determination
scenario, whose streaming accumulator must be arrival-order-insensitive
for this to hold.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.pipeline.scenarios import Scenario, ScenarioRunner, default_matrix

pytestmark = pytest.mark.scenarios

_PROCESS = {"parallel": {"backend": "process", "n_workers": 2}}


def _scenario(name: str) -> Scenario:
    return next(s for s in default_matrix() if s.name == name)


def _with_engine(scenario: Scenario, overrides: dict) -> Scenario:
    return replace(scenario, engine={**dict(scenario.engine), **overrides})


def test_clean_scenario_process_backend_matches_serial():
    clean = _scenario("clean")
    runner = ScenarioRunner()
    serial = runner.run_scenario(clean)
    pooled = runner.run_scenario(_with_engine(clean, _PROCESS))
    assert pooled.metrics == serial.metrics
    assert pooled.fingerprint == serial.fingerprint
    assert pooled.comparable() == serial.comparable()
    assert pooled.perf["backend"] == "process"
    assert serial.perf["backend"] == "serial"


def test_loop_scenario_process_backend_matches_serial():
    """The determination loop streams from pool workers bit-identically."""
    loop = _scenario("loop_clean")
    runner = ScenarioRunner()
    serial = runner.run(loop)
    pooled = runner.run(_with_engine(loop, _PROCESS))
    assert pooled.metrics == serial.metrics
    assert pooled.fingerprint == serial.fingerprint
    assert pooled.comparable() == serial.comparable()
