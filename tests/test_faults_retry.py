"""Tests for the retry taxonomy: EXCEPTION_CLASSES and RetryPolicy.classify."""

from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool

from repro.faults.plan import FaultInjected
from repro.faults.retry import (
    EXCEPTION_CLASSES,
    ChunkIntegrityError,
    RetryPolicy,
    classify_exception_name,
)


def test_every_class_is_one_of_the_three_kinds():
    assert set(EXCEPTION_CLASSES.values()) <= {"retryable", "fatal", "degradation"}
    assert "retryable" in EXCEPTION_CLASSES.values()
    assert "fatal" in EXCEPTION_CLASSES.values()
    assert "degradation" in EXCEPTION_CLASSES.values()


def test_classify_by_name():
    assert classify_exception_name("ChunkIntegrityError") == "retryable"
    assert classify_exception_name("ValueError") == "fatal"
    assert classify_exception_name("FaultInjected") == "degradation"
    assert classify_exception_name("TotallyUnknownError") is None


def test_classify_live_exceptions_walks_the_mro():
    policy = RetryPolicy()
    # listed directly
    assert policy.classify(ChunkIntegrityError("bad chunk")) == "retryable"
    assert policy.classify(ValueError("nope")) == "fatal"
    assert policy.classify(FaultInjected("chaos")) == "degradation"
    # subclass of a listed base resolves through the MRO
    assert policy.classify(FileNotFoundError("gone")) == "fatal"  # via OSError

    class CustomIntegrity(ChunkIntegrityError):
        pass

    assert policy.classify(CustomIntegrity("still retryable")) == "retryable"


def test_subclass_listing_beats_base_listing():
    # ChunkIntegrityError subclasses RuntimeError (fatal) but is itself
    # listed retryable — the more specific entry must win.
    policy = RetryPolicy()
    assert EXCEPTION_CLASSES["RuntimeError"] == "fatal"
    assert policy.classify(ChunkIntegrityError("x")) == "retryable"


def test_pool_fault_types_are_retryable():
    policy = RetryPolicy()
    assert policy.classify(FuturesTimeoutError()) == "retryable"
    assert policy.classify(BrokenProcessPool("pool died")) == "retryable"


def test_unlisted_exception_classifies_to_none():
    class Mystery(Exception):
        pass

    assert RetryPolicy().classify(Mystery()) is None
