"""Tests for map resampling (Fourier crop/pad, box crop/pad)."""

import numpy as np
import pytest

from repro.density import DensityMap, crop_box, fourier_crop, fourier_pad, pad_box
from repro.density.phantom import gaussian_blob


@pytest.fixture()
def blob_map():
    # blob center on EVEN grid coordinates so the 2x-downsampled grid still
    # contains the exact peak sample
    return DensityMap(gaussian_blob(32, [2.0, -2.0, 4.0], sigma=3.0), apix=1.5)


def test_fourier_crop_basics(blob_map):
    small = fourier_crop(blob_map, 16)
    assert small.size == 16
    assert small.apix == pytest.approx(3.0)  # voxel size doubles
    # density values preserved (band-limited blob): peak value comparable
    assert small.data.max() == pytest.approx(blob_map.data.max(), rel=0.05)
    assert small.data.mean() == pytest.approx(blob_map.data.mean(), rel=1e-6)


def test_fourier_pad_then_crop_roundtrip(blob_map):
    up = fourier_pad(blob_map, 64)
    assert up.size == 64
    assert up.apix == pytest.approx(0.75)
    back = fourier_crop(up, 32)
    assert np.allclose(back.data, blob_map.data, atol=1e-5 * blob_map.data.max())


def test_fourier_pad_interpolates(blob_map):
    up = fourier_pad(blob_map, 64)
    # the upsampled grid contains the original samples at even indices
    assert np.allclose(up.data[::2, ::2, ::2], blob_map.data, atol=1e-8)


def test_fourier_crop_equals_lowpass_downsample(blob_map):
    # cropping at half size keeps exactly the frequencies below the new
    # Nyquist: compare against explicit low-pass + decimation in Fourier
    small = fourier_crop(blob_map, 16)
    from repro.fourier import centered_fftn

    ft_small = centered_fftn(small.data)
    ft_big = blob_map.fourier()
    # DC matches up to the volume-ratio normalization
    assert ft_small[8, 8, 8] * 32**3 / 16**3 == pytest.approx(ft_big[16, 16, 16], rel=1e-9)


def test_crop_box_keeps_particle(blob_map):
    cropped = crop_box(blob_map, 24)
    assert cropped.size == 24
    assert cropped.apix == blob_map.apix
    assert cropped.data.max() == pytest.approx(blob_map.data.max())


def test_crop_box_refuses_to_truncate():
    wide = DensityMap(gaussian_blob(32, [12.0, 0.0, 0.0], sigma=3.0))
    with pytest.raises(ValueError, match="mass"):
        crop_box(wide, 16)


def test_pad_box_roundtrip(blob_map):
    padded = pad_box(blob_map, 48)
    assert padded.size == 48
    assert padded.apix == blob_map.apix
    back = crop_box(padded, 32)
    assert np.allclose(back.data, blob_map.data)


def test_identity_operations(blob_map):
    for fn in (fourier_crop, fourier_pad, crop_box, pad_box):
        same = fn(blob_map, 32)
        assert same is not blob_map
        assert np.allclose(same.data, blob_map.data)


def test_validation(blob_map):
    with pytest.raises(ValueError):
        fourier_crop(blob_map, 0)
    with pytest.raises(ValueError):
        fourier_crop(blob_map, 64)
    with pytest.raises(ValueError):
        fourier_pad(blob_map, 16)
    with pytest.raises(ValueError):
        pad_box(blob_map, 16)


def test_crop_commutes_with_slicing(blob_map):
    """Fourier cropping then slicing == slicing then ring-cropping: the
    operator the multi-iteration pipeline relies on."""
    from repro.fourier.slicing import extract_slice
    from repro.geometry import euler_to_matrix

    r = euler_to_matrix(30.0, 50.0, 70.0)
    small = fourier_crop(blob_map, 16)
    cut_small = extract_slice(small.fourier(), r)
    cut_big = extract_slice(blob_map.fourier(), r)
    # compare the central 16-block of the big cut with the small cut
    block = cut_big[8:24, 8:24] * 16**3 / 32**3
    # interpolation differs off-axis; compare a generous correlation
    a = cut_small.ravel()
    b = block.ravel()
    cc = np.abs(np.vdot(a, b)) / (np.linalg.norm(a) * np.linalg.norm(b))
    assert cc > 0.98
