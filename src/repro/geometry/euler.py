"""Euler angles in the paper's (θ, φ, ω) parameterization.

Convention (DESIGN.md §6): ``R(θ, φ, ω) = Rz(φ) · Ry(θ) · Rz(ω)`` with all
angles in **degrees**.  The view direction of the projection is
``n = R·ẑ = (sinθ·cosφ, sinθ·sinφ, cosθ)`` — matching Figure 1a of the
paper where (θ=0, φ=0) is the Z axis, (90, 0) is X and (90, 90) is Y.
``ω`` rotates the image in its own plane.

The central slice through the 3D DFT for orientation ``R`` is spanned by the
first two columns of ``R`` (projection-slice theorem), so this module is the
single source of truth for how angles map to slice geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arraytypes import Array
from repro.utils import default_rng

__all__ = [
    "Orientation",
    "euler_to_matrix",
    "matrix_to_euler",
    "random_orientations",
    "angular_distance_deg",
    "in_plane_distance_deg",
    "orientation_distance_deg",
]


def _rot_z(angle_deg: float | Array) -> Array:
    a = np.deg2rad(angle_deg)
    c, s = np.cos(a), np.sin(a)
    out = np.zeros(np.shape(a) + (3, 3))
    out[..., 0, 0] = c
    out[..., 0, 1] = -s
    out[..., 1, 0] = s
    out[..., 1, 1] = c
    out[..., 2, 2] = 1.0
    return out


def _rot_y(angle_deg: float | Array) -> Array:
    a = np.deg2rad(angle_deg)
    c, s = np.cos(a), np.sin(a)
    out = np.zeros(np.shape(a) + (3, 3))
    out[..., 0, 0] = c
    out[..., 0, 2] = s
    out[..., 2, 0] = -s
    out[..., 2, 2] = c
    out[..., 1, 1] = 1.0
    return out


def euler_to_matrix(theta: float | Array, phi: float | Array, omega: float | Array) -> Array:
    """Rotation matrix (or stack of matrices) for Euler angles in degrees.

    Broadcasts over array inputs; scalar inputs yield a single ``(3, 3)``
    matrix, arrays of shape ``(n,)`` yield ``(n, 3, 3)``.
    """
    theta, phi, omega = np.broadcast_arrays(
        np.asarray(theta, dtype=float), np.asarray(phi, dtype=float), np.asarray(omega, dtype=float)
    )
    return _rot_z(phi) @ _rot_y(theta) @ _rot_z(omega)


def matrix_to_euler(matrix: Array) -> tuple[float, float, float]:
    """Inverse of :func:`euler_to_matrix` for a single matrix.

    Returns ``(theta, phi, omega)`` in degrees with ``theta ∈ [0, 180]``,
    ``phi, omega ∈ [0, 360)``.  At the gimbal-lock poles (θ = 0 or 180) the
    split between φ and ω is degenerate; we set φ = 0 there.
    """
    m = np.asarray(matrix, dtype=float)
    if m.shape != (3, 3):
        raise ValueError(f"expected a (3, 3) matrix, got {m.shape}")
    # R = Rz(phi) Ry(theta) Rz(omega):
    #   R[2,2] = cos(theta)
    #   R[0,2] = sin(theta) cos(phi);  R[1,2] = sin(theta) sin(phi)
    #   R[2,0] = -sin(theta) cos(omega); R[2,1] = sin(theta) sin(omega)
    ct = float(np.clip(m[2, 2], -1.0, 1.0))
    theta = np.rad2deg(np.arccos(ct))
    st = np.sqrt(max(0.0, 1.0 - ct * ct))
    # below this sine the off-pole formulas divide numerical noise by noise;
    # the gimbal-lock branch is exact there (phi and omega merge)
    if st < 1e-6:
        # Gimbal lock: R = Rz(phi ± omega). Assign everything to omega.
        phi = 0.0
        if ct > 0:
            omega = np.rad2deg(np.arctan2(m[1, 0], m[0, 0]))
        else:
            omega = np.rad2deg(np.arctan2(m[1, 0], -m[0, 0]))
    else:
        phi = np.rad2deg(np.arctan2(m[1, 2], m[0, 2]))
        omega = np.rad2deg(np.arctan2(m[2, 1], -m[2, 0]))
    return (float(theta), float(phi % 360.0), float(omega % 360.0))


@dataclass(frozen=True)
class Orientation:
    """A refined/candidate orientation plus optional center shift.

    ``theta``, ``phi``, ``omega`` are degrees.  ``cx``, ``cy`` are the view
    center offsets **in pixels** relative to the geometric box center (step k
    of the algorithm refines these).
    """

    theta: float
    phi: float
    omega: float
    cx: float = 0.0
    cy: float = 0.0

    def matrix(self) -> Array:
        """The 3×3 rotation matrix of this orientation."""
        return euler_to_matrix(self.theta, self.phi, self.omega)

    def view_direction(self) -> Array:
        """Unit vector along which the particle was projected (R·ẑ)."""
        return self.matrix()[:, 2]

    def with_angles(self, theta: float, phi: float, omega: float) -> "Orientation":
        return Orientation(theta, phi, omega, self.cx, self.cy)

    def with_center(self, cx: float, cy: float) -> "Orientation":
        return Orientation(self.theta, self.phi, self.omega, cx, cy)

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        return (self.theta, self.phi, self.omega, self.cx, self.cy)

    @staticmethod
    def from_matrix(matrix: Array, cx: float = 0.0, cy: float = 0.0) -> "Orientation":
        theta, phi, omega = matrix_to_euler(matrix)
        return Orientation(theta, phi, omega, cx, cy)


def random_orientations(
    n: int, seed: int | np.random.Generator | None = 0, theta_range: tuple[float, float] = (0.0, 180.0)
) -> list[Orientation]:
    """Draw ``n`` orientations uniformly over SO(3) (restricted in θ if asked).

    Uniformity over the sphere requires cos(θ) uniform; φ and ω are uniform
    in [0, 360).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = default_rng(seed)
    lo, hi = np.cos(np.deg2rad(theta_range[1])), np.cos(np.deg2rad(theta_range[0]))
    cos_t = rng.uniform(lo, hi, size=n)
    thetas = np.rad2deg(np.arccos(cos_t))
    phis = rng.uniform(0.0, 360.0, size=n)
    omegas = rng.uniform(0.0, 360.0, size=n)
    return [Orientation(float(t), float(p), float(o)) for t, p, o in zip(thetas, phis, omegas)]


def angular_distance_deg(a: Orientation, b: Orientation) -> float:
    """Angle (degrees) between the two view directions.

    This ignores the in-plane angle ω; use :func:`orientation_distance_deg`
    for the full SO(3) geodesic distance.
    """
    da, db = a.view_direction(), b.view_direction()
    return float(np.rad2deg(np.arccos(np.clip(np.dot(da, db), -1.0, 1.0))))


def in_plane_distance_deg(a: Orientation, b: Orientation) -> float:
    """Circular distance between the two in-plane angles ω, in degrees."""
    d = abs(a.omega - b.omega) % 360.0
    return float(min(d, 360.0 - d))


def orientation_distance_deg(a: Orientation, b: Orientation) -> float:
    """Geodesic distance on SO(3) between two orientations, in degrees.

    The rotation angle of ``R_a⁻¹·R_b``; zero iff the orientations produce
    identical projections of an asymmetric object (up to center shifts).
    """
    rel = a.matrix().T @ b.matrix()
    cos_angle = (np.trace(rel) - 1.0) / 2.0
    return float(np.rad2deg(np.arccos(np.clip(cos_angle, -1.0, 1.0))))
