"""Multi-resolution schedules (§4) and their matching-operation arithmetic.

The paper's worked example: refining one angle from a 10°-wide domain down
to 0.002° takes 5000 matchings in one step but only ~35 with the schedule
1° → 0.1° → 0.01° → 0.002°; cubed over three angles that is nearly four
orders of magnitude (benchmark E7).  :func:`matching_operations_single_step`
and :func:`matching_operations_multires` compute both sides of that
comparison exactly as §4 states them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = [
    "RefinementLevel",
    "MultiResolutionSchedule",
    "default_schedule",
    "split_below",
    "matching_operations_single_step",
    "matching_operations_multires",
]


@dataclass(frozen=True)
class RefinementLevel:
    """One (r_angular, δ_center) refinement level.

    Attributes
    ----------
    angular_step_deg:
        Angular resolution ``r_angular`` of this level.
    center_step_px:
        Center resolution ``δ_center`` of this level.
    half_steps:
        Angular window half-width in steps (window side = 2·half_steps+1).
    center_half_steps:
        Center box half-width in steps (1 → 3×3 box).
    """

    angular_step_deg: float
    center_step_px: float
    half_steps: int = 4
    center_half_steps: int = 1

    def __post_init__(self) -> None:
        if self.angular_step_deg <= 0 or self.center_step_px <= 0:
            raise ValueError("steps must be positive")
        if self.half_steps < 0 or self.center_half_steps < 0:
            raise ValueError("half-widths must be non-negative")

    @property
    def window_matches(self) -> int:
        """Matching operations in one (non-slid) window: w = w_θ·w_φ·w_ω."""
        side = 2 * self.half_steps + 1
        return side**3


@dataclass(frozen=True)
class MultiResolutionSchedule:
    """An ordered list of refinement levels, coarse to fine."""

    levels: tuple[RefinementLevel, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("schedule needs at least one level")
        steps = [lv.angular_step_deg for lv in self.levels]
        if any(b > a for a, b in zip(steps, steps[1:])):
            pass  # non-monotone schedules are unusual but legal
        object.__setattr__(self, "levels", tuple(self.levels))

    def __iter__(self):
        return iter(self.levels)

    def __len__(self) -> int:
        return len(self.levels)

    @property
    def final_angular_step(self) -> float:
        return self.levels[-1].angular_step_deg

    def total_window_matches(self) -> int:
        """Matching operations per view assuming no window slides."""
        return sum(lv.window_matches for lv in self.levels)

    def fingerprint(self) -> str:
        """A stable digest of every level parameter, for checkpoint/resume.

        A checkpoint written under one schedule must never seed a run with
        a different one: the per-level state (window widths, step sizes)
        is baked into the refined orientations.  ``repr`` of the floats is
        exact (round-trip), so equal schedules — and only equal schedules
        — share a fingerprint.
        """
        desc = ";".join(
            f"{lv.angular_step_deg!r},{lv.center_step_px!r},"
            f"{lv.half_steps},{lv.center_half_steps}"
            for lv in self.levels
        )
        return hashlib.sha256(desc.encode()).hexdigest()[:16]


def default_schedule(half_steps: int = 4, center_half_steps: int = 1) -> MultiResolutionSchedule:
    """The paper's production schedule: 1°, 0.1°, 0.01°, 0.002°.

    Center resolutions track the angular ones (1, 0.1, 0.01, 0.002 pixels),
    exactly as in §5.
    """
    return MultiResolutionSchedule(
        tuple(
            RefinementLevel(a, c, half_steps=half_steps, center_half_steps=center_half_steps)
            for a, c in [(1.0, 1.0), (0.1, 0.1), (0.01, 0.01), (0.002, 0.002)]
        )
    )


def split_below(
    schedule: MultiResolutionSchedule, below_deg: float
) -> tuple[MultiResolutionSchedule, tuple[RefinementLevel, ...]]:
    """Split a schedule into kept levels and the fine tail polish replaces.

    Levels with ``angular_step_deg >= below_deg`` are kept as the grid
    search; strictly finer levels form the replaced tail whose final
    angular step defines the polish accuracy-gate tolerance.  With the
    default schedule and ``below_deg=0.1`` the kept part is 1° → 0.1° and
    the tail (0.01°, 0.002°) is handed to the continuous polish.  The kept
    part must be non-empty — polish needs a grid hit to start from.
    """
    if below_deg <= 0:
        raise ValueError("below_deg must be positive")
    kept = tuple(lv for lv in schedule.levels if lv.angular_step_deg >= below_deg)
    replaced = tuple(lv for lv in schedule.levels if lv.angular_step_deg < below_deg)
    if not kept:
        raise ValueError(
            f"polish would replace every level (all angular steps < {below_deg}); "
            "keep at least one grid level to seed the polish"
        )
    return MultiResolutionSchedule(kept), replaced


def matching_operations_single_step(
    domain_width_deg: float, target_resolution_deg: float, n_angles: int = 1
) -> int:
    """Matchings for a one-shot scan of a domain at the target resolution.

    §4's example: domain 60°–70° (width 10°) at 0.002° → 5000 matchings per
    angle.  ``n_angles=3`` raises the per-angle count to the third power
    (the full (θ, φ, ω) grid).
    """
    if domain_width_deg <= 0 or target_resolution_deg <= 0:
        raise ValueError("widths must be positive")
    per_angle = int(round(domain_width_deg / target_resolution_deg))
    return per_angle**n_angles


def matching_operations_multires(
    domain_width_deg: float, steps_deg: list[float], n_angles: int = 1
) -> int:
    """Matchings for the multi-resolution schedule over the same domain.

    Level 1 scans the full domain at ``steps[0]``; every later level scans
    one coarse cell (width = previous step, i.e. ±½ step around the current
    estimate) at its own resolution.  §4's example: 10°/1° + 1°/0.1° +
    0.1°/0.01° + 0.01°/0.002° = 10+10+10+5 = 35 per angle.
    """
    if not steps_deg:
        raise ValueError("need at least one step")
    total_per_angle = int(round(domain_width_deg / steps_deg[0]))
    for prev, cur in zip(steps_deg, steps_deg[1:]):
        total_per_angle += int(round(prev / cur))
    return total_per_angle**n_angles
