"""Tests for the gate runner: stages, JSON output, waiver strictness, speed."""

import json
import time
from pathlib import Path

from repro.analysis.__main__ import main
from repro.analysis.gate import GateResult, _run_tool, gate_to_json, run_gate

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "fixtures" / "lint" / "repro"


# -- stage structure ---------------------------------------------------------
def test_gate_reports_named_lint_stages():
    results = run_gate(root=REPO, with_ruff=False, with_mypy=False)
    names = [r.name for r in results]
    assert names == ["repro-lint", "repro-lint-wp", "waivers"]
    assert all(r.status == "ok" for r in results), [(r.name, r.detail) for r in results]


def test_whole_program_findings_land_in_wp_stage():
    results = run_gate(
        [str(FIXTURES / "parallel" / "bad_worker_global.py")],
        root=REPO,
        with_ruff=False,
        with_mypy=False,
    )
    by_name = {r.name: r for r in results}
    assert by_name["repro-lint"].status == "ok"
    assert by_name["repro-lint-wp"].status == "failed"
    assert all(f.rule == "RL013" for f in by_name["repro-lint-wp"].findings)


# -- JSON format (machine-readable gate results) -----------------------------
def _validate_schema(doc):
    assert set(doc) == {"ok", "stages"}
    assert isinstance(doc["ok"], bool)
    assert isinstance(doc["stages"], list) and doc["stages"]
    for stage in doc["stages"]:
        assert set(stage) == {"name", "status", "detail", "findings"}
        assert isinstance(stage["name"], str) and stage["name"]
        assert stage["status"] in {"ok", "failed", "skipped"}
        assert isinstance(stage["detail"], str)
        assert isinstance(stage["findings"], list)
        for finding in stage["findings"]:
            assert set(finding) == {"rule", "path", "line", "col", "message"}
            assert isinstance(finding["rule"], str)
            assert isinstance(finding["path"], str)
            assert isinstance(finding["line"], int)
            assert isinstance(finding["col"], int)
            assert isinstance(finding["message"], str)


def test_json_format_schema_on_clean_repo(capsys):
    rc = main(["--lint-only", "--format", "json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    _validate_schema(doc)
    assert doc["ok"] is True


def test_json_format_schema_with_findings(capsys):
    rc = main(
        ["--lint-only", "--format", "json", str(FIXTURES / "align" / "bad_contract_flow.py")]
    )
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    _validate_schema(doc)
    assert doc["ok"] is False
    wp = next(s for s in doc["stages"] if s["name"] == "repro-lint-wp")
    assert wp["status"] == "failed"
    assert any(f["rule"] == "RL015" for f in wp["findings"])


def test_gate_to_json_roundtrips_results():
    results = [GateResult("x", "ok", "fine")]
    doc = gate_to_json(results)
    assert doc == {
        "ok": True,
        "stages": [{"name": "x", "status": "ok", "detail": "fine", "findings": []}],
    }


# -- subprocess launch failures are environment limits, not findings ---------
def test_run_tool_reports_skipped_when_binary_is_missing(tmp_path):
    result = _run_tool("ghost", ["/nonexistent/bin/ghost", "--version"], tmp_path)
    assert result.status == "skipped"
    assert "could not launch" in result.detail
    assert not result.failed


def test_run_tool_reports_skipped_on_non_executable(tmp_path):
    dud = tmp_path / "dud"
    dud.write_text("not a binary")
    result = _run_tool("dud", [str(dud)], tmp_path)
    assert result.status == "skipped"


# -- stale waivers: warn by default, fail under strict -----------------------
def _stale_tree(tmp_path):
    pkg = tmp_path / "repro" / "align"
    pkg.mkdir(parents=True)
    (pkg / "stale.py").write_text(
        "from __future__ import annotations\n\n\n"
        "def f(a):\n"
        "    return a + 1  # repro-lint: allow[RL002] nothing here needs it\n"
    )
    return pkg / "stale.py"


def test_stale_waiver_warns_by_default(tmp_path):
    target = _stale_tree(tmp_path)
    results = run_gate([str(target)], root=REPO, with_ruff=False, with_mypy=False)
    waivers = next(r for r in results if r.name == "waivers")
    assert waivers.status == "ok"
    assert "stale waiver" in waivers.detail
    assert waivers.findings  # surfaced even though the stage passes


def test_stale_waiver_fails_under_strict(tmp_path):
    target = _stale_tree(tmp_path)
    results = run_gate(
        [str(target)], root=REPO, with_ruff=False, with_mypy=False, strict_waivers=True
    )
    waivers = next(r for r in results if r.name == "waivers")
    assert waivers.status == "failed"
    assert any(f.rule == "RLW01" for f in waivers.findings)


def test_strict_waivers_cli_flag(tmp_path, capsys):
    target = _stale_tree(tmp_path)
    assert main(["--lint-only", str(target)]) == 0
    capsys.readouterr()
    assert main(["--lint-only", "--strict-waivers", str(target)]) == 1
    assert "RLW01" in capsys.readouterr().out


# -- the gate stays pre-commit fast ------------------------------------------
def test_full_gate_completes_under_ten_seconds():
    t0 = time.perf_counter()
    results = run_gate(root=REPO)
    elapsed = time.perf_counter() - t0
    assert not any(r.failed for r in results), [(r.name, r.detail) for r in results]
    assert elapsed < 10.0, f"gate took {elapsed:.1f}s; must stay a pre-commit-speed check"
