"""Centered discrete Fourier transforms and frequency grids.

The centered convention puts the DC sample of an ``l``-point transform at
index ``c = l // 2``; frequency index ``k`` at array index ``i`` is
``k = i - c`` with ``k ∈ [-c, l - 1 - c]``.  Round-trips are exact:
``centered_ifftn(centered_fftn(x)) == x`` to floating-point precision.
"""

from __future__ import annotations

import numpy as np

from repro.arraytypes import Array, ComplexArray, FloatArray, IntArray

__all__ = [
    "centered_fftn",
    "centered_ifftn",
    "centered_fft2",
    "centered_ifft2",
    "centered_fft1",
    "centered_ifft1",
    "circular_cross_correlation",
    "fourier_center",
    "frequency_grid_2d",
    "frequency_grid_3d",
    "to_centered_order",
    "to_standard_order",
]


def fourier_center(size: int) -> int:
    """Index of the zero-frequency sample along an axis of length ``size``."""
    if size <= 0:
        raise ValueError("size must be positive")
    return size // 2


def centered_fftn(volume: Array) -> ComplexArray:
    """3D (or nD) centered forward DFT."""
    return np.fft.fftshift(np.fft.fftn(np.fft.ifftshift(np.asarray(volume))))


def centered_ifftn(spectrum: Array) -> ComplexArray:
    """Inverse of :func:`centered_fftn` (complex output; take ``.real`` for maps)."""
    return np.fft.fftshift(np.fft.ifftn(np.fft.ifftshift(np.asarray(spectrum))))


def centered_fft2(image: Array) -> ComplexArray:
    """2D centered forward DFT over the last two axes."""
    arr = np.asarray(image)
    return np.fft.fftshift(
        np.fft.fft2(np.fft.ifftshift(arr, axes=(-2, -1)), axes=(-2, -1)), axes=(-2, -1)
    )


def centered_ifft2(spectrum: Array) -> ComplexArray:
    """Inverse of :func:`centered_fft2` over the last two axes."""
    arr = np.asarray(spectrum)
    return np.fft.fftshift(
        np.fft.ifft2(np.fft.ifftshift(arr, axes=(-2, -1)), axes=(-2, -1)), axes=(-2, -1)
    )


def centered_fft1(signal: Array, axis: int = -1) -> ComplexArray:
    """1D centered forward DFT along ``axis``."""
    arr = np.asarray(signal)
    return np.fft.fftshift(np.fft.fft(np.fft.ifftshift(arr, axes=axis), axis=axis), axes=axis)


def centered_ifft1(spectrum: Array, axis: int = -1) -> ComplexArray:
    """Inverse of :func:`centered_fft1`."""
    arr = np.asarray(spectrum)
    return np.fft.fftshift(np.fft.ifft(np.fft.ifftshift(arr, axes=axis), axis=axis), axes=axis)


def to_standard_order(array: Array) -> Array:
    """Reorder a centered array to numpy's standard (DC-first) layout.

    The inverse of :func:`to_centered_order`.  These are the *only*
    sanctioned shift entry points outside this module, so the question
    "which convention is this array in?" always has a greppable answer.
    """
    return np.fft.ifftshift(np.asarray(array))


def to_centered_order(array: Array) -> Array:
    """Reorder a standard (DC-first) array to the centered layout (DC at l // 2)."""
    return np.fft.fftshift(np.asarray(array))


def circular_cross_correlation(a: Array, b: Array, axis: int = 0) -> FloatArray:
    """Circular cross-correlation of two real arrays along ``axis`` via FFT.

    Entry ``s`` (along ``axis``) is ``Σ_t a[t] · b[t − s]`` with periodic
    wrap-around — the standard FFT correlation theorem, computed with the
    *uncentered* transform because circular correlation is shift-convention
    free.  Used by the in-plane rotation classifier on polar resamplings.
    """
    fa = np.fft.fft(np.asarray(a), axis=axis)
    fb = np.fft.fft(np.asarray(b), axis=axis)
    return np.fft.ifft(fa * np.conj(fb), axis=axis).real


# (ky, kx) meshgrids are rebuilt on every slice/shift/ramp call in the
# matching loop; they only depend on ``size``, so cache them read-only.
_FREQ_2D_CACHE: dict[int, tuple[IntArray, IntArray]] = {}


def frequency_grid_2d(size: int) -> tuple[IntArray, IntArray]:
    """Centered integer frequency coordinates ``(ky, kx)`` for an ``l×l`` image.

    Each returned array has shape ``(size, size)``; entry ``[i, j]`` holds the
    frequency index of pixel ``(i, j)``.  Arrays are cached per ``size`` and
    read-only; copy before mutating.
    """
    cached = _FREQ_2D_CACHE.get(size)
    if cached is None:
        c = fourier_center(size)
        k = np.arange(size) - c
        ky, kx = np.meshgrid(k, k, indexing="ij")
        ky.setflags(write=False)
        kx.setflags(write=False)
        cached = (ky, kx)
        # repro-lint: allow[RL013] pure memo of a deterministic function of
        # `size`; identical read-only values in every process.
        _FREQ_2D_CACHE[size] = cached
    return cached


def frequency_grid_3d(size: int) -> tuple[IntArray, IntArray, IntArray]:
    """Centered integer frequency coordinates ``(kz, ky, kx)`` for a cube."""
    c = fourier_center(size)
    k = np.arange(size) - c
    kz, ky, kx = np.meshgrid(k, k, k, indexing="ij")
    return kz, ky, kx
