"""Tests for SIRT iterative reconstruction."""

import numpy as np
import pytest

from repro.imaging import simulate_views
from repro.reconstruct import reconstruct_from_views, sirt_reconstruct


@pytest.fixture(scope="module")
def dataset(phantom24):
    return simulate_views(phantom24, 40, snr=6.0, seed=0)


def test_sirt_residual_decreases(phantom24, dataset):
    result = sirt_reconstruct(dataset.images, dataset.true_orientations, n_iterations=6)
    hist = result.residual_history
    assert len(hist) == 6
    assert hist[-1] < hist[0]
    # monotone up to small numerical wiggles
    assert all(b <= a * 1.05 for a, b in zip(hist, hist[1:]))


def test_sirt_reconstruction_quality(phantom24, dataset):
    result = sirt_reconstruct(dataset.images, dataset.true_orientations, n_iterations=8)
    cc = result.density.normalized().correlation(phantom24)
    assert cc > 0.65


def test_sirt_comparable_to_direct(phantom24, dataset):
    direct = reconstruct_from_views(dataset.images, dataset.true_orientations)
    sirt = sirt_reconstruct(dataset.images, dataset.true_orientations, n_iterations=8)
    cc_direct = direct.normalized().correlation(phantom24)
    cc_sirt = sirt.density.normalized().correlation(phantom24)
    assert cc_sirt > cc_direct - 0.1


def test_sirt_few_views_regime(phantom24):
    # sparse-coverage regime where iterative solvers earn their keep
    views = simulate_views(phantom24, 10, snr=10.0, seed=2)
    result = sirt_reconstruct(views.images, views.true_orientations, n_iterations=10)
    assert result.density.normalized().correlation(phantom24) > 0.4


def test_sirt_callback_and_validation(phantom24, dataset):
    seen = []
    sirt_reconstruct(
        dataset.images[:6], dataset.true_orientations[:6], n_iterations=2,
        callback=lambda it, res, _: seen.append((it, res)),
    )
    assert [it for it, _ in seen] == [0, 1]
    with pytest.raises(ValueError):
        sirt_reconstruct(dataset.images, dataset.true_orientations[:2])
    with pytest.raises(ValueError):
        sirt_reconstruct(dataset.images, dataset.true_orientations, relaxation=2.5)
    with pytest.raises(ValueError):
        sirt_reconstruct(dataset.images, dataset.true_orientations, n_iterations=0)


def test_sirt_honours_centers(phantom24):
    views = simulate_views(phantom24, 30, center_sigma_px=1.5, seed=3)
    with_centers = sirt_reconstruct(views.images, views.true_orientations, n_iterations=5)
    without = sirt_reconstruct(
        views.images, [o.with_center(0.0, 0.0) for o in views.true_orientations], n_iterations=5
    )
    assert (
        with_centers.density.normalized().correlation(phantom24)
        > without.density.normalized().correlation(phantom24)
    )
