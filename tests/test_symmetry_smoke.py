"""symmetry-smoke: the tiny always-on slice of the symmetry benchmark.

The full ``symmetric_vs_full`` measurement (benchmarks/run_bench.py,
l = 64, |G| = 60) is too slow for every tier-1 run, but its correctness
half — scoring one asymmetric unit finds the same winner as scoring the
full orbit expansion, modulo the group — must regress loudly without
waiting for a bench run.  This module pins that equivalence at l = 16 in
seconds, marked ``symmetry_smoke`` so the quality gate also runs it as a
named step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.align.distance import DistanceComputer
from repro.align.fused import get_match_plan
from repro.density.phantom import symmetric_phantom
from repro.fourier.slicing import extract_slice
from repro.geometry.euler import Orientation, euler_to_matrix
from repro.geometry.symmetry import icosahedral_group, tetrahedral_group
from repro.refine.restrict import SymmetryRestriction
from repro.refine.stats import angular_errors

pytestmark = pytest.mark.symmetry_smoke


@pytest.mark.parametrize("group_fn", [tetrahedral_group, icosahedral_group])
def test_restricted_argmin_equals_full_scan_mod_group(group_fn):
    group = group_fn()
    restriction = SymmetryRestriction.from_group(group)
    size = 16
    density = symmetric_phantom(group, size=size, seed=0).normalized()
    volume_ft = density.fourier_oversampled(2)

    res_deg = 12.0
    views_au = restriction.restricted_views(res_deg)
    omegas = np.arange(0.0, 360.0, 90.0)
    thetas = np.repeat([v[0] for v in views_au], len(omegas))
    phis = np.repeat([v[1] for v in views_au], len(omegas))
    oms = np.tile(omegas, len(views_au))
    rots_au = euler_to_matrix(thetas, phis, oms)
    rots_full = np.einsum(
        "gij,wjk->gwik", np.asarray(group.matrices), rots_au
    ).reshape(-1, 3, 3)
    assert len(rots_full) == group.order * len(rots_au)

    dc = DistanceComputer(size)
    plan = get_match_plan(dc, volume_ft.shape[0], "trilinear")
    # probe view cut at a restricted grid orientation: a clean minimum
    truth_idx = len(rots_au) // 2
    view_band = plan.gather_view(
        extract_slice(volume_ft, rots_au[truth_idx], out_size=size)
    )
    d_au = np.asarray(plan.match_window(volume_ft, view_band, rots_au))
    d_full = np.asarray(plan.match_window(volume_ft, view_band, rots_full))

    o_au = Orientation.from_matrix(rots_au[int(np.argmin(d_au))])
    o_full = Orientation.from_matrix(rots_full[int(np.argmin(d_full))])
    err = angular_errors([o_full], [o_au], symmetry=group)[0]
    assert err <= 1e-6, f"argmin differs modulo the group by {err} deg"
    assert int(np.argmin(d_au)) == truth_idx


def test_engine_smoke_run_with_restriction():
    """A whole tiny refinement with the restriction on runs clean and
    reports the group it searched under."""
    from repro.engine.config import EngineConfig
    from repro.engine.core import RefinementEngine
    from repro.imaging.simulate import simulate_views

    group = tetrahedral_group()
    density = symmetric_phantom(group, size=16, seed=2).normalized()
    views = simulate_views(
        density, 2, initial_angle_error_deg=2.0, center_sigma_px=0.0, seed=2
    )
    cfg = EngineConfig.from_dict({
        "schedule": {"levels": [[2.0, 1.0, 2, 1]]},
        "refine_centers": False,
        "symmetry": {"mode": "fixed:T"},
    })
    run = RefinementEngine(cfg).run(views, density)
    assert run.symmetry_group == "T"
    assert run.symmetry_order == 12
    assert len(run.orientations) == 2
    assert np.isfinite(run.distances).all()
