"""Tests for the adaptive refine<->reconstruct control loop."""

import numpy as np
import pytest

from repro.imaging import simulate_views
from repro.reconstruct import reconstruct_from_views
from repro.refine import (
    adaptive_refinement_loop,
    choose_angular_step,
    choose_band_limit,
)


def test_choose_band_limit_tracks_fsc():
    fsc = np.array([1.0, 0.95, 0.9, 0.7, 0.55, 0.3, 0.1])
    # last shell >= 0.5 is shell 4; extended by 1.25 -> 5
    assert choose_band_limit(fsc) == pytest.approx(5.0)
    # collapsed FSC still returns the floor
    assert choose_band_limit(np.array([1.0, 0.1, 0.1])) == 3.0


def test_choose_angular_step_scales_inverse_with_band():
    coarse = choose_angular_step(4.0)
    fine = choose_angular_step(16.0)
    assert fine < coarse
    # 0.5 px arc at radius 16 is ~1.79 deg
    assert fine == pytest.approx(np.rad2deg(np.arcsin(0.5 / 16.0)), rel=1e-6)
    assert choose_angular_step(1000.0) == 0.05  # clamped
    with pytest.raises(ValueError):
        choose_angular_step(0.0)


def test_adaptive_loop_runs_and_improves(phantom24):
    views = simulate_views(
        phantom24, 32, snr=4.0, initial_angle_error_deg=3.0, seed=0,
    )
    initial_map = reconstruct_from_views(views.images, views.initial_orientations)
    history = adaptive_refinement_loop(views, initial_map, max_iterations=2, half_steps=2)
    assert 1 <= len(history) <= 2
    first = history[0]
    assert first.r_max >= 3.0
    assert 0.05 <= first.angular_step_deg <= 2.0
    assert np.isfinite(first.resolution_angstrom)
    assert len(first.orientations) == 32
    from repro.refine.stats import angular_errors

    e0 = angular_errors(views.initial_orientations, views.true_orientations).mean()
    e1 = angular_errors(history[-1].orientations, views.true_orientations).mean()
    assert e1 < e0 + 0.5  # must not diverge; typically improves


def test_adaptive_loop_validation(phantom24):
    views = simulate_views(phantom24, 4, seed=1)
    with pytest.raises(ValueError):
        adaptive_refinement_loop(views, phantom24, max_iterations=0)
