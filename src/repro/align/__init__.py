"""Alignment kernel: the Fourier distance, orientation grids and matching.

This package implements steps (f)–(h) of the paper's algorithm — the inner
loop in which each experimental view's 2D DFT is compared with a window of
calculated cuts through the map's 3D DFT — plus the two baselines used for
comparison: common-lines initial orientation assignment and classic
real-space projection matching restricted to an icosahedral asymmetric unit
(the "old method").
"""

from repro.align.distance import (
    DistanceComputer,
    fourier_distance,
    fourier_distance_batch,
    radius_weights,
)
from repro.align.fused import MatchPlan, get_match_plan
from repro.align.grid import OrientationGrid, orientation_window, step_offsets
from repro.align.matcher import MatchResult, match_view, match_view_band, match_view_window
from repro.align.memo import MemoStore, OrientationMemo, memo_key
from repro.align.common_lines import (
    common_line_angles,
    sinogram,
    initial_orientations_common_lines,
)
from repro.align.projection_matching import (
    ProjectionLibrary,
    build_projection_library,
    match_against_library,
    refine_icosahedral,
)
from repro.align.classify import (
    align_to_reference,
    iterative_class_average,
    polar_resample,
    polar_rotation_align,
)
from repro.align.multireference import (
    ClassificationResult,
    classify_views,
    iterative_classification,
)

__all__ = [
    "fourier_distance",
    "fourier_distance_batch",
    "radius_weights",
    "DistanceComputer",
    "MatchPlan",
    "get_match_plan",
    "OrientationGrid",
    "orientation_window",
    "step_offsets",
    "MatchResult",
    "match_view",
    "match_view_band",
    "match_view_window",
    "MemoStore",
    "OrientationMemo",
    "memo_key",
    "sinogram",
    "common_line_angles",
    "initial_orientations_common_lines",
    "ProjectionLibrary",
    "build_projection_library",
    "match_against_library",
    "refine_icosahedral",
    "polar_resample",
    "polar_rotation_align",
    "align_to_reference",
    "iterative_class_average",
    "ClassificationResult",
    "classify_views",
    "iterative_classification",
]
