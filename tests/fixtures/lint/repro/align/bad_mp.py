"""RL005 fixture: an ad-hoc process pool outside repro/parallel/."""

from __future__ import annotations

import multiprocessing


def fan_out(tasks):
    with multiprocessing.Pool() as pool:
        return pool.map(str, tasks)
