"""Additive noise and SNR estimation for simulated views.

Cryo-EM views are extremely noisy (SNR well below 1 at high frequency);
the simulator adds white Gaussian noise scaled to a requested SNR defined
as signal variance / noise variance, measured over the whole box.
"""

from __future__ import annotations

import numpy as np

from repro.utils import default_rng

__all__ = ["add_noise", "estimate_snr"]


def add_noise(
    image: np.ndarray, snr: float, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Return ``image`` plus white Gaussian noise at the requested SNR.

    ``snr = var(signal) / var(noise)``.  ``snr = inf`` returns a copy.
    """
    img = np.asarray(image, dtype=float)
    if snr <= 0:
        raise ValueError("snr must be positive")
    if np.isinf(snr):
        return img.copy()
    signal_var = float(img.var())
    if signal_var == 0:
        raise ValueError("cannot scale noise to a constant image")
    sigma = np.sqrt(signal_var / snr)
    rng = default_rng(seed)
    return img + rng.normal(0.0, sigma, size=img.shape)


def estimate_snr(noisy: np.ndarray, clean: np.ndarray) -> float:
    """Empirical SNR of a noisy realization against its clean original."""
    n = np.asarray(noisy, dtype=float)
    c = np.asarray(clean, dtype=float)
    if n.shape != c.shape:
        raise ValueError("shapes must match")
    noise = n - c
    nv = float(noise.var())
    if nv == 0:
        return float("inf")
    return float(c.var() / nv)
