"""The repro-lint rule set: one class per machine-checked invariant.

Every rule carries its id, a one-line name, the *rationale* (why breaking
it produces wrong orientations, not just ugly code), and the path scope it
patrols.  ``all_rules()`` is the registry the lint driver and the docs
both read, so DESIGN.md's rule table cannot drift from the code.
"""

from __future__ import annotations

from repro.analysis.rules._base import ProgramRule, Rule
from repro.analysis.rules.batching import NoPerCandidateCutLoop
from repro.analysis.rules.configuration import ConfigReadsCentralized
from repro.analysis.rules.contract_flow import ContractFlowConsistent
from repro.analysis.rules.determinism import NoNondeterminism
from repro.analysis.rules.dtypes import NoSilentUpcast
from repro.analysis.rules.exception_flow import ExceptionFlowClassified
from repro.analysis.rules.exports import ExportListSync
from repro.analysis.rules.fourier import CenteredFFTOnly
from repro.analysis.rules.hygiene import FutureAnnotations
from repro.analysis.rules.kernels import KernelBoundaryContract, TwoKernelsOneTruth
from repro.analysis.rules.parallelism import MultiprocessingInParallelOnly
from repro.analysis.rules.pruning import NoUnboundedCandidateEval
from repro.analysis.rules.robustness import NoBareExcept
from repro.analysis.rules.worker_safety import WorkerPathSafety

__all__ = [
    "ProgramRule",
    "Rule",
    "all_rules",
    "program_rule_ids",
    "rule_table",
    "CenteredFFTOnly",
    "ConfigReadsCentralized",
    "ContractFlowConsistent",
    "ExceptionFlowClassified",
    "ExportListSync",
    "FutureAnnotations",
    "KernelBoundaryContract",
    "MultiprocessingInParallelOnly",
    "NoBareExcept",
    "NoNondeterminism",
    "NoPerCandidateCutLoop",
    "NoSilentUpcast",
    "NoUnboundedCandidateEval",
    "TwoKernelsOneTruth",
    "WorkerPathSafety",
]


def all_rules() -> list[Rule]:
    """Instantiate the full rule set, ordered by rule id."""
    rules: list[Rule] = [
        NoNondeterminism(),
        CenteredFFTOnly(),
        NoSilentUpcast(),
        ExportListSync(),
        MultiprocessingInParallelOnly(),
        TwoKernelsOneTruth(),
        KernelBoundaryContract(),
        FutureAnnotations(),
        NoBareExcept(),
        NoPerCandidateCutLoop(),
        ConfigReadsCentralized(),
        NoUnboundedCandidateEval(),
        WorkerPathSafety(),
        ExceptionFlowClassified(),
        ContractFlowConsistent(),
    ]
    rules.sort(key=lambda r: r.rule_id)
    return rules


def program_rule_ids() -> frozenset[str]:
    """Rule ids of the whole-program passes (the gate's second stage)."""
    return frozenset(r.rule_id for r in all_rules() if isinstance(r, ProgramRule))


def rule_table() -> list[tuple[str, str, str]]:
    """(id, name, rationale) for every rule — the docs/``--list-rules`` view."""
    return [(r.rule_id, r.name, r.rationale) for r in all_rules()]
