"""Machine cost models for the virtual clock.

A :class:`MachineSpec` prices the three things the algorithm spends time
on: floating-point work, message transfer (latency + bandwidth — the
classic α–β model) and file I/O at the master node.  ``SP2_LIKE``
approximates a 2002-era IBM SP2 node as used in the paper; its constants
are deliberately round numbers — the performance model additionally
supports calibrating the matching-cost constant against a measured table
cell (see :mod:`repro.parallel.perf_model`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "SP2_LIKE", "LAPTOP_LIKE"]


@dataclass(frozen=True)
class MachineSpec:
    """Cost constants of one simulated cluster.

    Attributes
    ----------
    name:
        Label for reports.
    flops:
        Sustained floating-point rate per processor (flop/s).
    net_latency:
        Per-message latency α in seconds.
    net_bandwidth:
        Per-link bandwidth β in bytes/s.
    io_bandwidth:
        Master-node file read/write rate in bytes/s.
    """

    name: str
    flops: float
    net_latency: float
    net_bandwidth: float
    io_bandwidth: float

    def __post_init__(self) -> None:
        for field_name in ("flops", "net_bandwidth", "io_bandwidth"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.net_latency < 0:
            raise ValueError("net_latency must be non-negative")

    def compute_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` floating-point operations."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        return flops / self.flops

    def message_time(self, nbytes: int) -> float:
        """Seconds for one point-to-point message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.net_latency + nbytes / self.net_bandwidth

    def io_time(self, nbytes: int) -> float:
        """Seconds for the master to read or write ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.io_bandwidth


#: A 2002-era IBM SP2 node: ~200 Mflop/s sustained per processor,
#: ~30 µs MPI latency, ~100 MB/s link, ~50 MB/s file system.
SP2_LIKE = MachineSpec(
    name="SP2-like",
    flops=2.0e8,
    net_latency=3.0e-5,
    net_bandwidth=1.0e8,
    io_bandwidth=5.0e7,
)

#: A modern laptop core, for comparing simulated eras in ablations.
LAPTOP_LIKE = MachineSpec(
    name="laptop-like",
    flops=2.0e10,
    net_latency=1.0e-6,
    net_bandwidth=1.0e10,
    io_bandwidth=2.0e9,
)
