"""Tests for the DensityMap container."""

import numpy as np
import pytest

from repro.density import DensityMap


def test_construction_validates(rng):
    with pytest.raises(ValueError):
        DensityMap(rng.normal(size=(4, 4)))
    with pytest.raises(ValueError):
        DensityMap(rng.normal(size=(4, 4, 5)))
    with pytest.raises(ValueError):
        DensityMap(rng.normal(size=(4, 4, 4)), apix=0.0)


def test_basic_properties(rng):
    m = DensityMap(rng.normal(size=(8, 8, 8)), apix=1.5)
    assert m.size == 8
    assert m.box_angstrom == 12.0


def test_fourier_cache_and_invalidate(rng):
    m = DensityMap(rng.normal(size=(8, 8, 8)))
    ft1 = m.fourier()
    assert m.fourier() is ft1
    m.data[0, 0, 0] += 1.0
    m.invalidate()
    ft2 = m.fourier()
    assert ft2 is not ft1
    assert not np.allclose(ft1, ft2)


def test_from_fourier_roundtrip(rng):
    m = DensityMap(rng.normal(size=(8, 8, 8)), apix=2.0)
    back = DensityMap.from_fourier(m.fourier(), apix=2.0)
    assert np.allclose(back.data, m.data, atol=1e-12)
    assert back.apix == 2.0


def test_fourier_oversampled_matches_continuous_ft(phantom16):
    # padded transform sampled at even indices equals the unpadded transform
    ft1 = phantom16.fourier()
    ft2 = phantom16.fourier_oversampled(2)
    c1, c2 = 8, 16
    assert ft2[c2, c2, c2] == pytest.approx(ft1[c1, c1, c1])
    assert ft2[c2, c2, c2 + 2] == pytest.approx(ft1[c1, c1, c1 + 1], rel=1e-9)


def test_fourier_oversampled_cached_and_validated(phantom16):
    a = phantom16.fourier_oversampled(2)
    assert phantom16.fourier_oversampled(2) is a
    with pytest.raises(ValueError):
        phantom16.fourier_oversampled(0)


def test_normalized(rng):
    m = DensityMap(rng.normal(size=(8, 8, 8)) * 3 + 7)
    n = m.normalized()
    assert n.data.mean() == pytest.approx(0.0, abs=1e-12)
    assert n.data.std() == pytest.approx(1.0)
    with pytest.raises(ValueError):
        DensityMap(np.ones((4, 4, 4))).normalized()


def test_low_pass_removes_high_frequencies(phantom16):
    lp = phantom16.low_pass(resolution_angstrom=8.0)  # keep only r <= 2
    ft = np.abs(lp.fourier(refresh=True))
    from repro.fourier import radial_shell_indices_3d

    shells = radial_shell_indices_3d(16)
    assert ft[shells > 3].max() < 1e-6 * ft.max()


def test_radial_mask(phantom16):
    shell = phantom16.radial_mask(inner=3.0, outer=6.0)
    c = 8
    assert shell.data[c, c, c] == 0.0  # center removed
    assert np.any(shell.data != 0.0)


def test_cross_section(phantom16):
    z = phantom16.cross_section("z")
    assert z.shape == (16, 16)
    assert np.allclose(z, phantom16.data[8])
    x = phantom16.cross_section("x", index=3)
    assert np.allclose(x, phantom16.data[:, :, 3])
    with pytest.raises(ValueError):
        phantom16.cross_section("w")
    with pytest.raises(IndexError):
        phantom16.cross_section("z", index=99)


def test_correlation(phantom16):
    assert phantom16.correlation(phantom16) == pytest.approx(1.0)
    flipped = DensityMap(-phantom16.data, phantom16.apix)
    assert phantom16.correlation(flipped) == pytest.approx(-1.0)
    with pytest.raises(ValueError):
        phantom16.correlation(DensityMap(np.zeros((8, 8, 8))))


def test_copy_is_independent(phantom16):
    c = phantom16.copy()
    c.data[0, 0, 0] += 5
    assert phantom16.data[0, 0, 0] != c.data[0, 0, 0]
