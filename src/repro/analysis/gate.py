"""The one-shot static-analysis gate: ruff + mypy + repro-lint + call graph.

``python -m repro.analysis`` (and ``tools/check.py``) call
:func:`run_gate`.  The two external tools are *optional* — this
reproduction runs in offline containers that may not ship them — so an
absent tool (or one whose subprocess cannot even launch) reports
``skipped`` rather than failing the gate; repro-lint is in-process and
always runs.  Lint is reported as three named stages:

* ``repro-lint`` — the per-module rules (RL001–RL012);
* ``repro-lint-wp`` — the whole-program passes (RL013–RL015) over the
  symbol-table/call-graph project;
* ``waivers`` — stale-waiver audit: ``ok`` (with a warning listing) by
  default, ``failed`` under ``strict_waivers``.

Any ``failed`` stage makes the gate exit nonzero.  :func:`gate_to_json`
renders the results machine-readably for ``--format json``.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis.lint import Finding, lint_collect

__all__ = [
    "GateResult",
    "gate_to_json",
    "repo_root",
    "run_gate",
    "run_lint",
    "run_mypy",
    "run_ruff",
]


@dataclass(frozen=True)
class GateResult:
    """Outcome of one gate stage (``findings`` feed the JSON output)."""

    name: str
    status: str  # "ok" | "failed" | "skipped"
    detail: str = ""
    findings: tuple[Finding, ...] = field(default=())

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "status": self.status,
            "detail": self.detail,
            "findings": [f.to_dict() for f in self.findings],
        }


def gate_to_json(results: Sequence[GateResult]) -> dict[str, object]:
    """The machine-readable gate report (``--format json`` schema).

    ``{"ok": bool, "stages": [{name, status, detail, findings: [{rule,
    path, line, col, message}]}]}``.
    """
    return {
        "ok": not any(r.failed for r in results),
        "stages": [r.to_dict() for r in results],
    }


def repo_root() -> Path:
    """The repository root (two levels above ``src/repro``)."""
    return Path(__file__).resolve().parents[3]


def _tool_available(module: str) -> bool:
    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):
        return False


def _run_tool(name: str, argv: list[str], cwd: Path) -> GateResult:
    try:
        proc = subprocess.run(argv, cwd=cwd, capture_output=True, text=True)
    except (FileNotFoundError, OSError) as exc:
        # Stripped-down containers can resolve a module spec yet fail to
        # spawn the subprocess (no exec permissions, missing interpreter).
        # That is an environment limitation, not a finding.
        return GateResult(name, "skipped", f"could not launch {argv[0]}: {exc}")
    output = (proc.stdout + proc.stderr).strip()
    if proc.returncode == 0:
        return GateResult(name, "ok", output)
    return GateResult(name, "failed", output)


def run_ruff(root: Path | None = None) -> GateResult:
    """``ruff check`` over src/ and tests/, or ``skipped`` when not installed."""
    root = root or repo_root()
    if not _tool_available("ruff"):
        return GateResult("ruff", "skipped", "ruff is not installed in this environment")
    return _run_tool("ruff", [sys.executable, "-m", "ruff", "check", "src", "tests"], root)


def run_mypy(root: Path | None = None) -> GateResult:
    """``mypy`` with the pyproject config, or ``skipped`` when not installed."""
    root = root or repo_root()
    if not _tool_available("mypy"):
        return GateResult("mypy", "skipped", "mypy is not installed in this environment")
    return _run_tool("mypy", [sys.executable, "-m", "mypy"], root)


def _lint_stages(
    paths: Sequence[str] | None,
    root: Path,
    *,
    strict_waivers: bool = False,
) -> list[GateResult]:
    """One lint run, reported as the three named lint stages."""
    from repro.analysis.rules import program_rule_ids

    targets = list(paths) if paths else [str(root / "src" / "repro")]
    report = lint_collect(targets)
    wp_ids = program_rule_ids()
    per_module = tuple(f for f in report.findings if f.rule not in wp_ids)
    whole_program = tuple(f for f in report.findings if f.rule in wp_ids)
    target_desc = ", ".join(targets)

    def stage(name: str, findings: tuple[Finding, ...], ok_detail: str) -> GateResult:
        if not findings:
            return GateResult(name, "ok", ok_detail, ())
        return GateResult(name, "failed", "\n".join(f.format() for f in findings), findings)

    results = [
        stage("repro-lint", per_module, f"0 findings over {target_desc}"),
        stage(
            "repro-lint-wp",
            whole_program,
            f"0 whole-program findings (RL013–RL015) over {target_desc}",
        ),
    ]
    stale = report.stale_waivers
    if not stale:
        results.append(GateResult("waivers", "ok", "no stale waivers", ()))
    elif strict_waivers:
        results.append(
            GateResult("waivers", "failed", "\n".join(f.format() for f in stale), stale)
        )
    else:
        detail = "\n".join(f.format() for f in stale) + "\n(warning only; --strict-waivers fails)"
        results.append(GateResult("waivers", "ok", detail, stale))
    return results


def run_lint(paths: Sequence[str] | None = None, root: Path | None = None) -> GateResult:
    """repro-lint over the given paths (default: ``src/repro``).

    Back-compat single-stage view: all rules, one combined result.  The
    gate itself reports the split stages from :func:`_lint_stages`.
    """
    root = root or repo_root()
    targets = list(paths) if paths else [str(root / "src" / "repro")]
    findings = tuple(lint_collect(targets).findings)
    if not findings:
        return GateResult("repro-lint", "ok", f"0 findings over {', '.join(targets)}")
    return GateResult("repro-lint", "failed", "\n".join(f.format() for f in findings), findings)


def run_gate(
    lint_targets: Sequence[str] | None = None,
    *,
    with_ruff: bool = True,
    with_mypy: bool = True,
    root: Path | None = None,
    strict_waivers: bool = False,
) -> list[GateResult]:
    """Run every requested stage; the gate fails if any result ``failed``."""
    root = root or repo_root()
    results: list[GateResult] = []
    if with_ruff:
        results.append(run_ruff(root))
    if with_mypy:
        results.append(run_mypy(root))
    results.extend(_lint_stages(lint_targets, root, strict_waivers=strict_waivers))
    return results
