"""Direct-Fourier 3D reconstruction from oriented views.

For every view ``E_q`` with orientation ``O_q = (θ, φ, ω, cx, cy)``:

1. ``F_q = DFT(E_q)``, re-centered by the refined center offsets (exact
   phase ramp);
2. optional CTF handling — phase flipping plus |CTF| insertion weights, so
   well-transferred frequencies dominate where several views overlap;
3. scatter ``F_q`` (and its Friedel mate) into an oversampled 3D transform
   with trilinear weights, accumulating a weight volume;
4. normalize, inverse transform, crop back to the original box.

This is the Cartesian-coordinate, no-symmetry-assumed reconstruction the
paper uses in step C (its refs [18], [20]): complexity O(m·l²) insertion +
O((p·l)³ log(p·l)) for the final inverse transform.
"""

from __future__ import annotations

import numpy as np

from repro.ctf.model import CTFParams, ctf_2d
from repro.density.map import DensityMap
from repro.fourier.insertion import insert_slice, normalize_insertion
from repro.fourier.transforms import centered_fft2, centered_ifftn
from repro.geometry.euler import Orientation
from repro.imaging.center import phase_shift_ft

__all__ = ["reconstruct_from_views"]


def reconstruct_from_views(
    images: np.ndarray,
    orientations: list[Orientation],
    apix: float = 1.0,
    pad_factor: int = 2,
    ctf_params: list[CTFParams] | None = None,
    ctf_mode: str = "phase_flip",
    min_weight: float = 1e-3,
) -> DensityMap:
    """Reconstruct a density map from oriented 2D views.

    Parameters
    ----------
    images:
        Real view stack ``(m, l, l)``.
    orientations:
        One refined :class:`Orientation` per view (centers are honoured).
    pad_factor:
        Fourier oversampling of the accumulation grid (2 = the same
        oversampling the refinement uses; 1 = raw grid, for ablations).
    ctf_params:
        Optional per-view CTF; with ``ctf_mode="phase_flip"`` each view is
        phase-flipped and inserted with |CTF| sample weights (a Wiener-like
        weighted average across views); ``"none"`` ignores the CTF.
    min_weight:
        Fourier voxels with accumulated weight below this stay zero.
    """
    imgs = np.asarray(images, dtype=float)
    if imgs.ndim != 3 or imgs.shape[1] != imgs.shape[2]:
        raise ValueError("images must be a (m, l, l) stack")
    m, l, _ = imgs.shape
    if len(orientations) != m:
        raise ValueError("need one orientation per view")
    if ctf_params is not None and len(ctf_params) != m:
        raise ValueError("need one CTFParams per view")
    if ctf_mode not in ("phase_flip", "none"):
        raise ValueError(f"unknown ctf_mode {ctf_mode!r}")
    if pad_factor < 1 or int(pad_factor) != pad_factor:
        raise ValueError("pad_factor must be a positive integer")

    big = int(pad_factor) * l
    accum = np.zeros((big, big, big), dtype=complex)
    weights = np.zeros((big, big, big))
    for q in range(m):
        ft = centered_fft2(imgs[q])
        o = orientations[q]
        if o.cx != 0.0 or o.cy != 0.0:
            ft = phase_shift_ft(ft, -o.cx, -o.cy)
        sample_w = None
        if ctf_params is not None and ctf_mode == "phase_flip":
            ctf = ctf_2d(ctf_params[q], l, apix)
            sign = np.sign(ctf)
            sign[sign == 0] = 1.0
            ft = ft * sign
            sample_w = np.abs(ctf)
        insert_slice(accum, weights, ft, o.matrix(), hermitian=True, sample_weights=sample_w)

    volume_ft = normalize_insertion(accum, weights, min_weight=min_weight)
    big_map = centered_ifftn(volume_ft).real
    if pad_factor == 1:
        data = big_map
    else:
        # The inserted samples follow the padded-grid DFT convention exactly
        # (a view's frequency k sits at padded index k·pad), so the padded
        # inverse transform *is* the padded map — crop the center box, no
        # rescaling.  Getting this right matters: the §3 distance is not
        # scale-invariant, so a mis-scaled map corrupts later refinement
        # iterations against it.
        off = (big - l) // 2
        data = big_map[off : off + l, off : off + l, off : off + l]
    return DensityMap(np.ascontiguousarray(data), apix)
