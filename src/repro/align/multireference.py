"""Multi-reference orientation assignment (heterogeneity substrate).

The paper assumes "all virus particles frozen in the sample are identical"
(§2) — real samples are not, and the natural extension of a
no-symmetry-assumed refinement is no-homogeneity-assumed *classification*:
match every view against K candidate maps, keep the best-fitting
(reference, orientation) pair, rebuild each class's map from its members,
repeat.  This module implements one such round plus the iteration driver,
reusing the exact matching machinery of the refinement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.align.distance import DistanceComputer
from repro.arraytypes import Array
from repro.density.map import DensityMap
from repro.fourier.transforms import centered_fft2
from repro.geometry.euler import Orientation
from repro.reconstruct.direct_fourier import reconstruct_from_views
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel
from repro.refine.single import refine_view_at_level

__all__ = ["ClassificationResult", "classify_views", "iterative_classification"]


@dataclass
class ClassificationResult:
    """Outcome of one classification round.

    ``assignments[q]`` is the winning reference index of view ``q``;
    ``orientations[q]`` its refined orientation against that reference;
    ``distances[q]`` the winning distance.
    """

    assignments: Array
    orientations: list[Orientation]
    distances: Array
    class_maps: list[DensityMap] = field(default_factory=list)

    def members(self, k: int) -> Array:
        return np.nonzero(self.assignments == k)[0]


def classify_views(
    images: Array,
    initial_orientations: list[Orientation],
    references: list[DensityMap],
    r_max: float | None = None,
    angular_step_deg: float = 1.0,
    half_steps: int = 2,
    pad_factor: int = 2,
    max_slides: int = 2,
) -> ClassificationResult:
    """One round: refine every view against every reference, keep the best.

    Cost is K× one refinement level; the window search per reference means
    assignment is robust to the initial orientation being a few steps off.
    """
    imgs = np.asarray(images, dtype=float)
    if imgs.ndim != 3 or imgs.shape[1] != imgs.shape[2]:
        raise ValueError("images must be (m, l, l)")
    if not references:
        raise ValueError("need at least one reference")
    if len(initial_orientations) != imgs.shape[0]:
        raise ValueError("need one initial orientation per view")
    size = imgs.shape[1]
    for ref in references:
        if ref.size != size:
            raise ValueError("reference size must match the views")

    dc = DistanceComputer(size, r_max=r_max)
    volume_fts = [ref.fourier_oversampled(pad_factor) for ref in references]
    m = imgs.shape[0]
    assignments = np.zeros(m, dtype=int)
    distances = np.full(m, np.inf)
    orientations: list[Orientation] = list(initial_orientations)
    fts = centered_fft2(imgs)
    for q in range(m):
        for k, vft in enumerate(volume_fts):
            res = refine_view_at_level(
                fts[q],
                vft,
                initial_orientations[q],
                angular_step_deg=angular_step_deg,
                center_step_px=1.0,
                half_steps=half_steps,
                center_half_steps=1,
                max_slides=max_slides,
                distance_computer=dc,
            )
            if res.distance < distances[q]:
                distances[q] = res.distance
                assignments[q] = k
                orientations[q] = res.orientation
    return ClassificationResult(
        assignments=assignments, orientations=orientations, distances=distances
    )


def iterative_classification(
    images: Array,
    initial_orientations: list[Orientation],
    initial_references: list[DensityMap],
    n_iterations: int = 2,
    apix: float = 1.0,
    r_max: float | None = None,
    pad_factor: int = 2,
    min_class_size: int = 2,
) -> ClassificationResult:
    """Alternate (assign views to classes) / (rebuild class maps).

    Classes that collapse below ``min_class_size`` keep their previous map
    (re-seeding strategies are an exercise for production systems).
    """
    if n_iterations < 1:
        raise ValueError("n_iterations must be >= 1")
    references = list(initial_references)
    orientations = list(initial_orientations)
    result: ClassificationResult | None = None
    for _ in range(n_iterations):
        result = classify_views(
            images, orientations, references, r_max=r_max, pad_factor=pad_factor
        )
        orientations = result.orientations
        new_refs: list[DensityMap] = []
        for k, old in enumerate(references):
            idx = result.members(k)
            if idx.size >= min_class_size:
                new_refs.append(
                    reconstruct_from_views(
                        np.asarray(images)[idx],
                        [orientations[i] for i in idx],
                        apix=apix,
                        pad_factor=pad_factor,
                    )
                )
            else:
                new_refs.append(old)
        references = new_refs
    assert result is not None
    result.class_maps = references
    return result
