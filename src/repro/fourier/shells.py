"""Radial shells, masks and Fourier Shell Correlation.

The paper's resolution assessment (Figure 4) reconstructs two half-set maps
and plots the correlation coefficient per resolution shell; the resolution
estimate is where that curve crosses 0.5.  That curve is the Fourier Shell
Correlation computed here.  The same shell machinery implements the
``r_map`` band limit of the distance computation (§3: "we use only the
Fourier coefficients up to r_map").
"""

from __future__ import annotations

import numpy as np

from repro.arraytypes import Array
from repro.fourier.transforms import centered_fft2, centered_fftn, fourier_center
from repro.utils import require_cube, require_square

__all__ = [
    "radial_shell_indices_2d",
    "radial_shell_indices_3d",
    "spherical_mask",
    "circular_mask",
    "shell_average",
    "fsc_curve",
    "ring_correlation",
]


# Shell-index grids are pure functions of ``size`` and sit on every hot
# path (distance masks, weights, FSC); they are cached as read-only arrays
# so repeated plan construction never rebuilds the meshgrids.
_SHELL_2D_CACHE: dict[int, Array] = {}
_SHELL_3D_CACHE: dict[int, Array] = {}


def radial_shell_indices_2d(size: int) -> Array:
    """Integer shell index (rounded radius) of every pixel of an l×l image.

    The returned array is cached per ``size`` and marked read-only; copy it
    before mutating.
    """
    cached = _SHELL_2D_CACHE.get(size)
    if cached is None:
        c = fourier_center(size)
        k = np.arange(size) - c
        ky, kx = np.meshgrid(k, k, indexing="ij")
        cached = np.rint(np.sqrt(ky * ky + kx * kx)).astype(np.int64, copy=False)
        cached.setflags(write=False)
        # repro-lint: allow[RL013] pure memo of a deterministic function of
        # `size`; identical read-only values in every process.
        _SHELL_2D_CACHE[size] = cached
    return cached


def radial_shell_indices_3d(size: int) -> Array:
    """Integer shell index (rounded radius) of every voxel of an l³ volume.

    Cached per ``size`` (read-only), like the 2D variant.
    """
    cached = _SHELL_3D_CACHE.get(size)
    if cached is None:
        c = fourier_center(size)
        k = np.arange(size) - c
        kz, ky, kx = np.meshgrid(k, k, k, indexing="ij")
        cached = np.rint(np.sqrt(kz * kz + ky * ky + kx * kx)).astype(np.int64, copy=False)
        cached.setflags(write=False)
        _SHELL_3D_CACHE[size] = cached
    return cached


def circular_mask(size: int, radius: float) -> Array:
    """Boolean mask of pixels within ``radius`` of the 2D Fourier center."""
    c = fourier_center(size)
    k = np.arange(size) - c
    ky, kx = np.meshgrid(k, k, indexing="ij")
    return ky * ky + kx * kx <= radius * radius


def spherical_mask(size: int, radius: float) -> Array:
    """Boolean mask of voxels within ``radius`` of the 3D Fourier center."""
    c = fourier_center(size)
    k = np.arange(size) - c
    kz, ky, kx = np.meshgrid(k, k, k, indexing="ij")
    return kz * kz + ky * ky + kx * kx <= radius * radius


def shell_average(values: Array, max_radius: int | None = None) -> Array:
    """Average of ``values`` over integer radial shells.

    Works for 2D or 3D arrays; returns an array of length
    ``max_radius + 1`` (default: the largest radius fully inside the box,
    ``size // 2``).
    """
    arr = np.asarray(values)
    if arr.ndim == 2:
        size = require_square(arr)
        shells = radial_shell_indices_2d(size)
    elif arr.ndim == 3:
        size = require_cube(arr)
        shells = radial_shell_indices_3d(size)
    else:
        raise ValueError("shell_average expects a 2D or 3D array")
    rmax = size // 2 if max_radius is None else int(max_radius)
    flat_s = shells.ravel()
    keep = flat_s <= rmax
    sums = np.bincount(flat_s[keep], weights=arr.ravel().real[keep], minlength=rmax + 1)
    if np.iscomplexobj(arr):
        sums = sums + 1j * np.bincount(
            flat_s[keep], weights=arr.ravel().imag[keep], minlength=rmax + 1
        )
    counts = np.bincount(flat_s[keep], minlength=rmax + 1)
    counts = np.maximum(counts, 1)
    return sums / counts


def fsc_curve(volume_a: Array, volume_b: Array, max_radius: int | None = None) -> Array:
    """Fourier Shell Correlation between two real-space volumes.

    ``FSC(r) = Re Σ_r F_a conj(F_b) / sqrt(Σ_r |F_a|² Σ_r |F_b|²)`` over each
    integer shell ``r``.  Returns an array indexed by shell radius
    (``fsc[0]`` is the DC shell and equals 1 for non-empty maps).
    """
    a = np.asarray(volume_a, dtype=float)
    b = np.asarray(volume_b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("volumes must have the same shape")
    size = require_cube(a)
    fa = centered_fftn(a)
    fb = centered_fftn(b)
    return _shell_correlation(fa, fb, radial_shell_indices_3d(size), size, max_radius)


def ring_correlation(image_a: Array, image_b: Array, max_radius: int | None = None) -> Array:
    """Fourier Ring Correlation between two real-space images (2D analog)."""
    a = np.asarray(image_a, dtype=float)
    b = np.asarray(image_b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("images must have the same shape")
    size = require_square(a)
    fa = centered_fft2(a)
    fb = centered_fft2(b)
    return _shell_correlation(fa, fb, radial_shell_indices_2d(size), size, max_radius)


def _shell_correlation(
    fa: Array, fb: Array, shells: Array, size: int, max_radius: int | None
) -> Array:
    rmax = size // 2 if max_radius is None else int(max_radius)
    flat_s = shells.ravel()
    keep = flat_s <= rmax
    s = flat_s[keep]
    cross = (fa * np.conj(fb)).ravel()[keep]
    num = np.bincount(s, weights=cross.real, minlength=rmax + 1)
    pa = np.bincount(s, weights=(np.abs(fa) ** 2).ravel()[keep], minlength=rmax + 1)
    pb = np.bincount(s, weights=(np.abs(fb) ** 2).ravel()[keep], minlength=rmax + 1)
    denom = np.sqrt(pa * pb)
    out = np.zeros(rmax + 1)
    good = denom > 0
    out[good] = num[good] / denom[good]
    return out
