"""bench-smoke: a tiny always-on slice of the kernel benchmark claims.

The full benchmark (benchmarks/run_bench.py, l = 64) is too slow for every
tier-1 run, but its *correctness* half — the batched whole-window engine
returns bit-identical results to the reference slice-then-distance path —
must never wait for a bench run to regress loudly.  This module pins that
equivalence at l = 16 in seconds, marked ``bench_smoke`` so the quality
gate can also run it as a named step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.density import asymmetric_phantom
from repro.imaging.simulate import simulate_views
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel
from repro.refine.refiner import OrientationRefiner

pytestmark = pytest.mark.bench_smoke


def test_batched_matches_reference_small():
    size = 16
    density = asymmetric_phantom(size, seed=0).normalized()
    views = simulate_views(
        density, 2, initial_angle_error_deg=3.0, center_sigma_px=0.5, seed=0
    )
    schedule = MultiResolutionSchedule(
        (
            RefinementLevel(2.0, 1.0, half_steps=2),
            RefinementLevel(1.0, 0.5, half_steps=2),
        )
    )
    results = {}
    for kernel in ("reference", "batched"):
        refiner = OrientationRefiner(density, kernel=kernel)
        results[kernel] = refiner.refine(views, schedule=schedule)
    ref, bat = results["reference"], results["batched"]
    assert [o.as_tuple() for o in ref.orientations] == [
        o.as_tuple() for o in bat.orientations
    ]
    assert np.array_equal(ref.distances, bat.distances)
    assert bat.perf is not None and bat.perf.memo_hits > 0


def test_pruned_matches_reference_small():
    """The pruned slice of the benchmark claim: the early-termination bound
    abandons a real fraction of the window at l = 16 while reproducing the
    reference bits exactly."""
    from repro.engine.config import EngineConfig

    size = 16
    density = asymmetric_phantom(size, seed=0).normalized()
    views = simulate_views(
        density, 2, initial_angle_error_deg=3.0, center_sigma_px=0.5, seed=0
    )
    schedule = MultiResolutionSchedule(
        (
            RefinementLevel(2.0, 1.0, half_steps=2),
            RefinementLevel(1.0, 0.5, half_steps=2),
        )
    )
    reference = OrientationRefiner(density, kernel="reference").refine(
        views, schedule=schedule
    )
    config = EngineConfig.from_dict(
        {**OrientationRefiner(density).config.to_dict(), "prune": {"enabled": True}}
    )
    pruned = OrientationRefiner(density, config=config).refine(views, schedule=schedule)
    assert [o.as_tuple() for o in reference.orientations] == [
        o.as_tuple() for o in pruned.orientations
    ]
    assert np.array_equal(reference.distances, pruned.distances)
    assert pruned.perf is not None and pruned.perf.pruned > 0
    assert pruned.perf.evaluated + pruned.perf.pruned == pruned.perf.gathers
