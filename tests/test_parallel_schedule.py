"""Tests for view scheduling policies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import (
    imbalance_factor,
    lpt_makespan,
    lpt_schedule,
    static_block_makespan,
    work_stealing_makespan,
)


def test_uniform_costs_all_policies_balanced():
    costs = np.ones(32)
    for policy in ("static", "lpt", "stealing"):
        assert imbalance_factor(costs, 8, policy) == pytest.approx(1.0)


def test_static_blocks_suffer_from_clustered_slides():
    # sliding views (2x cost) clustered in the first block: the paper's
    # contiguous distribution loads rank 0 with all of them
    costs = np.ones(32)
    costs[:8] = 2.0
    static = static_block_makespan(costs, 4)
    lpt = lpt_makespan(costs, 4)
    assert static == pytest.approx(16.0)  # rank 0 got all the 2x views
    assert lpt == pytest.approx(10.0)
    assert work_stealing_makespan(costs, 4) <= static


def test_lpt_schedule_is_partition():
    rng = np.random.default_rng(0)
    costs = rng.uniform(1, 5, size=23)
    parts = lpt_schedule(costs, 5)
    assert len(parts) == 5
    all_idx = np.concatenate(parts)
    assert sorted(all_idx.tolist()) == list(range(23))


@given(
    seed=st.integers(0, 200),
    n=st.integers(1, 60),
    p=st.integers(1, 8),
)
@settings(max_examples=60)
def test_makespans_bracket_the_ideal(seed, n, p):
    rng = np.random.default_rng(seed)
    costs = rng.uniform(0.1, 3.0, size=n)
    ideal = costs.sum() / p
    longest = costs.max()
    for fn in (static_block_makespan, lpt_makespan, work_stealing_makespan):
        ms = fn(costs, p)
        assert ms >= max(ideal, longest) - 1e-9  # lower bounds
        assert ms <= costs.sum() + 1e-9  # never worse than serial


@given(seed=st.integers(0, 100), n=st.integers(2, 50), p=st.integers(2, 6))
@settings(max_examples=60)
def test_lpt_within_graham_bound_of_static(seed, n, p):
    """LPT ≤ (4/3 − 1/(3p))·OPT (Graham 1969) and OPT ≤ any feasible
    schedule, so LPT is provably within that factor of the static block
    distribution.  (Plain "LPT ≤ static" is *not* a theorem — LPT can lose
    to a contiguous split by a hair, e.g. seed=44, n=47, p=2.)"""
    rng = np.random.default_rng(seed)
    costs = rng.uniform(0.1, 3.0, size=n)
    bound = (4.0 / 3.0 - 1.0 / (3.0 * p)) * static_block_makespan(costs, p)
    assert lpt_makespan(costs, p) <= bound + 1e-9


def test_dispatch_overhead_charged():
    costs = np.ones(8)
    free = work_stealing_makespan(costs, 2)
    taxed = work_stealing_makespan(costs, 2, dispatch_overhead=0.5)
    assert taxed == pytest.approx(free + 4 * 0.5)


def test_validation():
    with pytest.raises(ValueError):
        static_block_makespan(np.array([]), 2)
    with pytest.raises(ValueError):
        static_block_makespan(np.array([-1.0]), 2)
    with pytest.raises(ValueError):
        lpt_makespan(np.ones(4), 0)
    with pytest.raises(ValueError):
        work_stealing_makespan(np.ones(4), 2, dispatch_overhead=-1)
    with pytest.raises(ValueError):
        imbalance_factor(np.ones(4), 2, policy="magic")
