"""Experiment runners shared by the benchmark harness and the examples.

Each ``run_*`` function regenerates the data behind one of the paper's
artifacts (DESIGN.md §4 maps them to tables/figures) and returns plain
data structures the benches assert on and print.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.density.map import DensityMap
from repro.engine.config import EngineConfig, ParallelConfig, ScheduleConfig
from repro.geometry.euler import Orientation
from repro.geometry.sphere import (
    icosahedral_asymmetric_unit_views,
    search_space_cardinality,
)
from repro.imaging.simulate import SimulatedViews, simulate_views
from repro.parallel.machine import MachineSpec, SP2_LIKE
from repro.parallel.perf_model import PaperWorkload, PerformanceModel
from repro.parallel.prefine import parallel_refine
from repro.pipeline.config import ExperimentConfig, MiniWorkload, mini_schedule
from repro.pipeline.datasets import make_dataset, phantom_for
from repro.pipeline.scenarios import (
    PerturbationSpec,
    ScenarioRecord,
    ScenarioRunner,
    default_matrix,
    perturb_orientations,
    write_bench,
)
from repro.reconstruct.direct_fourier import reconstruct_from_views
from repro.reconstruct.resolution import CorrelationCurve, correlation_curve
from repro.refine.multires import MultiResolutionSchedule
from repro.refine.refiner import OrientationRefiner
from repro.refine.stats import angular_errors, center_errors
from repro.refine.symmetry_detect import detect_symmetry
from repro.refine.window import sliding_window_search

__all__ = [
    "FigureCurves",
    "run_figure_curves_experiment",
    "run_map_comparison_experiment",
    "run_scenario_matrix_experiment",
    "run_search_space_report",
    "run_sliding_window_experiment",
    "run_symmetry_detection_experiment",
    "run_timing_table_experiment",
    "refine_from_old_orientations",
]


@dataclass
class FigureCurves:
    """The data behind one instance of Figure 5/6."""

    old_curve: CorrelationCurve
    new_curve: CorrelationCurve
    old_crossing_angstrom: float
    new_crossing_angstrom: float
    old_angular_error_deg: float
    new_angular_error_deg: float
    old_map_cc_truth: float
    new_map_cc_truth: float
    views: SimulatedViews = field(repr=False, default=None)
    new_orientations: list[Orientation] = field(repr=False, default=None)
    old_orientations: list[Orientation] = field(repr=False, default=None)


def refine_from_old_orientations(
    views: SimulatedViews,
    old_orientations: list[Orientation],
    config: ExperimentConfig,
    schedule: MultiResolutionSchedule | None = None,
) -> tuple[list[Orientation], DensityMap]:
    """The honest refinement protocol of §3/§4.

    The algorithm never sees the ground truth: the starting map is
    reconstructed from the *old* orientations, refinement runs at a band
    limit ``r_max`` where that map is trustworthy, the map is rebuilt from
    the refined orientations, and the band limit is raised — one entry of
    ``config.r_max_sequence`` per outer iteration.
    """
    sched = schedule or mini_schedule()
    orientations = list(old_orientations)
    current = reconstruct_from_views(
        views.images, orientations, apix=views.apix, pad_factor=config.pad_factor,
        ctf_params=views.ctf_params,
    )
    for r_max in config.r_max_sequence[: config.n_iterations]:
        # One engine config per outer iteration (the band limit rises);
        # the refiner derives every knob from it.
        engine_cfg = config.engine_config(r_max, sched)
        refiner = OrientationRefiner(current, config=engine_cfg)
        result = refiner.refine(views, initial_orientations=orientations, schedule=sched)
        orientations = result.orientations
        current = reconstruct_from_views(
            views.images, orientations, apix=views.apix, pad_factor=config.pad_factor,
            ctf_params=views.ctf_params,
        )
    return orientations, current


def run_figure_curves_experiment(
    kind: str = "sindbis",
    size: int = 32,
    n_views: int = 80,
    snr: float = 3.0,
    perturbation_deg: float = 3.0,
    center_sigma_px: float = 0.5,
    seed: int = 2,
    config: ExperimentConfig | None = None,
) -> FigureCurves:
    """Figure 5 (kind="sindbis") / Figure 6 (kind="reo") reproduction.

    "Old" orientations are the truth jittered by ``perturbation_deg`` —
    the stand-in for the legacy method's accuracy ceiling; "new" are the
    result of the paper's refinement started from the old ones.  Both
    orientation sets then produce odd/even correlation-vs-resolution
    curves; the paper's claim is that the new curve crosses 0.5 at a finer
    resolution.
    """
    wl = MiniWorkload(
        name=f"{kind}-fig",
        kind=kind,
        size=size,
        n_views=n_views,
        snr=snr,
        center_sigma_px=center_sigma_px,
        perturbation_deg=0.0,
        seed=seed,
    )
    views = make_dataset(wl)
    truth_map = views.ground_truth
    # Same gaussian jitter the scenario matrix uses; the spec seed keeps
    # the historical seed+1000 stream, so figure numbers are unchanged.
    old = perturb_orientations(
        views.true_orientations,
        PerturbationSpec(mode="gaussian", angle_deg=perturbation_deg, seed=seed + 1000),
    )
    cfg = config or ExperimentConfig(workload=wl)
    new, new_map = refine_from_old_orientations(views, old, cfg)

    old_map = reconstruct_from_views(views.images, old, apix=views.apix, pad_factor=cfg.pad_factor)
    c_old = correlation_curve(views.images, old, apix=views.apix, label="old", pad_factor=cfg.pad_factor)
    c_new = correlation_curve(views.images, new, apix=views.apix, label="new", pad_factor=cfg.pad_factor)
    return FigureCurves(
        old_curve=c_old,
        new_curve=c_new,
        old_crossing_angstrom=c_old.crossing(0.5),
        new_crossing_angstrom=c_new.crossing(0.5),
        old_angular_error_deg=float(angular_errors(old, views.true_orientations).mean()),
        new_angular_error_deg=float(angular_errors(new, views.true_orientations).mean()),
        old_map_cc_truth=float(old_map.normalized().correlation(truth_map)),
        new_map_cc_truth=float(new_map.normalized().correlation(truth_map)),
        views=views,
        new_orientations=new,
        old_orientations=old,
    )


def run_map_comparison_experiment(curves: FigureCurves) -> dict[str, np.ndarray | float]:
    """Figures 2/3: cross-sections + global stats of old vs new maps."""
    views = curves.views
    old_map = reconstruct_from_views(views.images, curves.old_orientations, apix=views.apix)
    new_map = reconstruct_from_views(views.images, curves.new_orientations, apix=views.apix)
    return {
        "old_section": old_map.cross_section("z"),
        "new_section": new_map.cross_section("z"),
        "truth_section": views.ground_truth.cross_section("z"),
        "old_cc_truth": curves.old_map_cc_truth,
        "new_cc_truth": curves.new_map_cc_truth,
    }


def run_search_space_report(
    angular_resolutions=(3.0, 1.0, 0.1),
) -> list[dict[str, float]]:
    """E3 / Figure 1(b): icosahedral asymmetric unit vs full-sphere search.

    Returns one row per angular resolution with the icosahedral view count
    (Fig. 1b), the §3 brute-force cardinality |P| for an asymmetric
    particle, and their ratio.
    """
    rows = []
    for res in angular_resolutions:
        icos = len(icosahedral_asymmetric_unit_views(res))
        asym = search_space_cardinality(res)
        rows.append(
            {
                "angular_resolution_deg": res,
                "icosahedral_views": float(icos),
                "asymmetric_cardinality": float(asym),
                "ratio": asym / icos,
            }
        )
    return rows


def run_sliding_window_experiment(
    size: int = 32,
    offset_deg: float = 5.0,
    step_deg: float = 1.0,
    half_steps: int = 2,
    seed: int = 0,
) -> dict[str, float]:
    """E8: the sliding window recovers a truth outside the initial window.

    The initial window spans ±(half_steps·step) — smaller than
    ``offset_deg`` — so without sliding the search cannot reach the true
    orientation; with sliding it must walk there, spending extra matchings
    (the §5 "9 → 15" observation).
    """
    density = phantom_for("sindbis", size)
    truth = Orientation(60.0, 40.0, 25.0)
    views = simulate_views(
        density, 1, orientations=[truth], projection_method="fourier", seed=seed
    )
    from repro.fourier.transforms import centered_fft2
    from repro.align.distance import DistanceComputer

    view_ft = centered_fft2(views.images[0])
    start = Orientation(truth.theta + offset_deg, truth.phi, truth.omega)
    volume_ft = density.fourier_oversampled(2)
    dc = DistanceComputer(size, r_max=size * 0.4)
    slid = sliding_window_search(
        view_ft, volume_ft, start, step_deg=step_deg, half_steps=half_steps,
        max_slides=10, distance_computer=dc,
    )
    no_slide = sliding_window_search(
        view_ft, volume_ft, start, step_deg=step_deg, half_steps=half_steps,
        max_slides=0, distance_computer=dc,
    )
    from repro.geometry.euler import orientation_distance_deg

    return {
        "offset_deg": offset_deg,
        "window_half_width_deg": half_steps * step_deg,
        "slide_error_deg": orientation_distance_deg(slid.orientation, truth),
        "no_slide_error_deg": orientation_distance_deg(no_slide.orientation, truth),
        "slide_matches": float(slid.n_matches),
        "no_slide_matches": float(no_slide.n_matches),
        "n_windows": float(slid.n_windows),
    }


def run_symmetry_detection_experiment(
    kinds=("c4", "sindbis", "asymmetric"), size: int = 32, seed: int = 0
) -> dict[str, str]:
    """E11: detect the point group of phantoms with various symmetries."""
    out: dict[str, str] = {}
    for kind in kinds:
        density = phantom_for(kind, size, seed=seed)
        result = detect_symmetry(density, seed=seed)
        out[kind] = result.group_name
    return out


def run_scenario_matrix_experiment(
    scenarios=None,
    bench_path: str | None = None,
    base_config: EngineConfig | None = None,
) -> dict[str, object]:
    """The accuracy matrix (DESIGN.md §12): run, score, optionally persist.

    Runs ``scenarios`` (default: :func:`repro.pipeline.scenarios.default_matrix`)
    through a :class:`~repro.pipeline.scenarios.ScenarioRunner`; when
    ``bench_path`` is given the schema-versioned trajectory is written
    there (this is what regenerates ``BENCH_scenarios.json``).
    """
    matrix = default_matrix() if scenarios is None else tuple(scenarios)
    runner = ScenarioRunner(base_config=base_config)
    records: list[ScenarioRecord] = runner.run_matrix(matrix)
    out: dict[str, object] = {
        "records": records,
        "n_passed": sum(1 for r in records if r.passed),
        "n_failed": sum(1 for r in records if not r.passed),
        "failed": [r.name for r in records if not r.passed],
    }
    if bench_path is not None:
        out["payload"] = write_bench(records, bench_path)
    return out


def run_timing_table_experiment(
    workload: PaperWorkload,
    mini: MiniWorkload | None = None,
    n_ranks: int = 4,
    machine: MachineSpec = SP2_LIKE,
    calibrate_level: int | None = 0,
    calibrate_seconds: float | None = None,
) -> dict[str, object]:
    """Tables 1/2: measured mini-scale run + paper-scale model rows.

    The mini half actually executes the simulated-cluster pipeline
    (functional dataflow); the model half prices the paper's workload on
    the machine spec, optionally calibrated against a known cell.
    """
    mini = mini or MiniWorkload(name=f"{workload.name}-mini", kind="sindbis", n_views=16, size=32)
    views = make_dataset(mini)
    density = phantom_for(mini.kind, mini.size, mini.apix, mini.seed)
    engine_cfg = EngineConfig(
        schedule=ScheduleConfig.from_schedule(mini_schedule()),
        parallel=ParallelConfig(backend="sim", n_ranks=n_ranks),
        r_max=mini.size * 0.4,
    )
    t0 = time.perf_counter()
    report = parallel_refine(views, density, machine=machine, config=engine_cfg)
    wall = time.perf_counter() - t0
    model = PerformanceModel(machine=machine)
    if calibrate_seconds is not None and calibrate_level is not None:
        model.calibrate(workload, calibrate_level, calibrate_seconds)
    rows = model.predict_table(workload)
    return {
        "mini_report": report,
        "mini_wall_seconds": wall,
        "model_rows": rows,
        "model": model,
    }
