"""Tests for point-group construction, classification and reduction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import (
    Orientation,
    cyclic_group,
    dihedral_group,
    icosahedral_group,
    identify_point_group,
    octahedral_group,
    reduce_to_asymmetric_unit,
    tetrahedral_group,
)
from repro.geometry.rotations import is_rotation_matrix, rotation_angle_deg
from repro.geometry.symmetry import SymmetryGroup, close_group


@pytest.mark.parametrize(
    "group,order",
    [
        (cyclic_group(1), 1),
        (cyclic_group(5), 5),
        (dihedral_group(3), 6),
        (tetrahedral_group(), 12),
        (octahedral_group(), 24),
        (icosahedral_group(), 60),
    ],
)
def test_group_orders(group, order):
    assert group.order == order
    assert len(group) == order


@pytest.mark.parametrize(
    "group",
    [cyclic_group(4), dihedral_group(5), tetrahedral_group(), octahedral_group(), icosahedral_group()],
)
def test_groups_closed_under_multiplication(group):
    mats = group.matrices
    for a in mats[:6]:
        for b in mats[:6]:
            assert group.contains(a @ b, tol_deg=0.01)


@pytest.mark.parametrize(
    "group", [cyclic_group(3), dihedral_group(4), tetrahedral_group(), icosahedral_group()]
)
def test_groups_contain_inverses_and_identity(group):
    assert group.contains(np.eye(3), tol_deg=1e-6)
    for m in group.matrices[:8]:
        assert group.contains(m.T, tol_deg=0.01)


def test_all_elements_are_rotations():
    for g in icosahedral_group().matrices:
        assert is_rotation_matrix(g, tol=1e-8)


def test_icosahedral_axis_census():
    hist = icosahedral_group().axis_orders()
    assert hist == {2: 15, 3: 10, 5: 6}


def test_octahedral_axis_census():
    hist = octahedral_group().axis_orders()
    assert hist == {2: 6, 3: 4, 4: 3}


@pytest.mark.parametrize(
    "group,name",
    [
        (cyclic_group(1), "C1"),
        (cyclic_group(7), "C7"),
        (dihedral_group(2), "D2"),
        (dihedral_group(6), "D6"),
        (tetrahedral_group(), "T"),
        (octahedral_group(), "O"),
        (icosahedral_group(), "I"),
    ],
)
def test_identify_point_group(group, name):
    assert identify_point_group(group.matrices) == name


def test_close_group_guard():
    # an irrational-angle generator never closes: the guard must fire
    from repro.geometry.rotations import axis_angle_to_matrix

    with pytest.raises(ValueError):
        close_group([axis_angle_to_matrix([0, 0, 1], 360.0 * np.sqrt(2) / 7)], max_order=24)


def test_symmetry_group_shape_validation():
    with pytest.raises(ValueError):
        SymmetryGroup("bad", np.eye(3))  # missing stack dimension


@given(theta=st.floats(5, 175), phi=st.floats(0, 359), omega=st.floats(0, 359))
@settings(max_examples=25, deadline=None)
def test_reduce_to_asymmetric_unit_is_equivalent(theta, phi, omega):
    group = icosahedral_group()
    o = Orientation(theta, phi, omega)
    reduced = reduce_to_asymmetric_unit(o, group)
    # reduced must be g·R for some group element: R_red · R^-1 in group
    rel = reduced.matrix() @ o.matrix().T
    assert group.contains(rel, tol_deg=0.01)


def test_reduce_to_asymmetric_unit_idempotent():
    group = icosahedral_group()
    o = Orientation(77.0, 33.0, 10.0)
    once = reduce_to_asymmetric_unit(o, group)
    twice = reduce_to_asymmetric_unit(once, group)
    assert np.allclose(once.matrix(), twice.matrix(), atol=1e-9)


def test_reduce_same_class_to_same_representative():
    group = icosahedral_group()
    o = Orientation(50.0, 120.0, 40.0)
    g = group.matrices[17]
    other = Orientation.from_matrix(g @ o.matrix())
    a = reduce_to_asymmetric_unit(o, group)
    b = reduce_to_asymmetric_unit(other, group)
    assert np.allclose(a.matrix(), b.matrix(), atol=1e-7)


def test_contains_tolerance():
    group = cyclic_group(4)
    from repro.geometry.rotations import axis_angle_to_matrix

    near = axis_angle_to_matrix([0, 0, 1], 90.3)
    assert group.contains(near, tol_deg=0.5)
    assert not group.contains(near, tol_deg=0.1)
