"""The single place the process environment is read.

Every runtime knob of the refinement stack flows through
:mod:`repro.engine` — config files, CLI flags, and the environment all
resolve into one :class:`~repro.engine.config.EngineConfig` — so scattered
``os.environ.get`` calls in kernel or analysis code are forbidden
(repro-lint RL011 enforces it).  The two historical environment variables
are read *here* and nowhere else:

* ``REPRO_GATHER_CHUNK`` — samples-per-chunk override for the in-band
  gather kernels (a pure memory-footprint tuning knob; chunking cannot
  change any value);
* ``REPRO_CHECK_CONTRACTS`` — switches the runtime
  :func:`repro.analysis.contracts.array_contract` layer on.

This module must stay import-light (stdlib only): it is imported from the
kernel packages at module import time, before the rest of
:mod:`repro.engine` is guaranteed to be initialized.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "CONTRACTS_ENV",
    "GATHER_CHUNK_ENV",
    "contracts_enabled",
    "env_flag",
    "env_positive_int",
    "environment_overrides",
    "gather_chunk_override",
    "gather_chunk_samples",
    "temporary_env",
]

#: Environment variable overriding the gather chunk targets (samples/chunk).
GATHER_CHUNK_ENV = "REPRO_GATHER_CHUNK"

#: Environment flag that switches runtime array-contract enforcement on.
CONTRACTS_ENV = "REPRO_CHECK_CONTRACTS"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def env_flag(name: str) -> bool:
    """True when ``name`` is set to a truthy value (``1/true/yes/on``)."""
    return os.environ.get(name, "").strip().lower() in _TRUTHY


def env_positive_int(name: str, default: int) -> int:
    """Read a positive-integer override, or ``default`` when unset.

    A set-but-malformed value raises immediately: a silently ignored typo
    would quietly change the run's behaviour, which is exactly the failure
    mode centralizing configuration is meant to kill.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"{name} must be a positive integer, got {value}")
    return value


def gather_chunk_samples(default: int) -> int:
    """The samples-per-chunk target, honoring ``REPRO_GATHER_CHUNK``.

    The override must be a positive integer; anything else raises (see
    :func:`env_positive_int`).  Chunking never changes results — gathers
    are per-point and distances per-row — so this is a pure tuning knob.
    """
    try:
        return env_positive_int(GATHER_CHUNK_ENV, default)
    except ValueError:
        raise ValueError(
            f"{GATHER_CHUNK_ENV} must be a positive integer "
            f"(samples per gather chunk), got {os.environ.get(GATHER_CHUNK_ENV)!r}"
        ) from None


def gather_chunk_override() -> int | None:
    """The ``REPRO_GATHER_CHUNK`` value when set, else ``None`` (for resolve)."""
    if os.environ.get(GATHER_CHUNK_ENV) is None:
        return None
    return gather_chunk_samples(0)


def contracts_enabled() -> bool:
    """True when ``REPRO_CHECK_CONTRACTS`` requests runtime enforcement."""
    return env_flag(CONTRACTS_ENV)


def environment_overrides() -> dict[str, str]:
    """The repro environment variables currently set (for provenance views)."""
    out: dict[str, str] = {}
    for name in (GATHER_CHUNK_ENV, CONTRACTS_ENV):
        raw = os.environ.get(name)
        if raw is not None:
            out[name] = raw
    return out


@contextmanager
def temporary_env(name: str, value: str | None) -> Iterator[None]:
    """Set (or, with ``None``, leave untouched) an env var for a scope.

    Used by the engine to apply ``KernelConfig.gather_chunk`` for the
    duration of a run: worker processes spawned inside the scope inherit
    the value, so one config reaches every process of the fan-out.
    """
    if value is None:
        yield
        return
    previous = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = previous
