"""Tests for multi-resolution schedules and the §4 operation arithmetic."""

import pytest

from repro.refine import (
    MultiResolutionSchedule,
    RefinementLevel,
    default_schedule,
    matching_operations_multires,
    matching_operations_single_step,
)


def test_default_schedule_matches_paper():
    sched = default_schedule()
    assert [lv.angular_step_deg for lv in sched] == [1.0, 0.1, 0.01, 0.002]
    assert [lv.center_step_px for lv in sched] == [1.0, 0.1, 0.01, 0.002]
    assert sched.final_angular_step == 0.002


def test_level_validation():
    with pytest.raises(ValueError):
        RefinementLevel(0.0, 1.0)
    with pytest.raises(ValueError):
        RefinementLevel(1.0, -1.0)
    with pytest.raises(ValueError):
        RefinementLevel(1.0, 1.0, half_steps=-1)


def test_window_matches_per_level():
    lv = RefinementLevel(1.0, 1.0, half_steps=4)
    assert lv.window_matches == 9**3


def test_schedule_total_matches():
    sched = MultiResolutionSchedule((RefinementLevel(1, 1, half_steps=1), RefinementLevel(0.1, 0.1, half_steps=2)))
    assert sched.total_window_matches() == 27 + 125
    assert len(sched) == 2


def test_empty_schedule_rejected():
    with pytest.raises(ValueError):
        MultiResolutionSchedule(())


def test_paper_worked_example_single_step():
    # §4: domain 60..70 deg at 0.002 deg -> 5000 matchings for one angle
    assert matching_operations_single_step(10.0, 0.002) == 5000


def test_paper_worked_example_multires():
    # §4: 1 -> 0.1 -> 0.01 -> 0.002 gives 35 matchings for one angle
    assert matching_operations_multires(10.0, [1.0, 0.1, 0.01, 0.002]) == 35


def test_three_angle_reduction_four_orders():
    single = matching_operations_single_step(10.0, 0.002, n_angles=3)
    multi = matching_operations_multires(10.0, [1.0, 0.1, 0.01, 0.002], n_angles=3)
    assert single / multi > 1e3  # "almost four orders of magnitude"
    assert single == 5000**3
    assert multi == 35**3


def test_operation_count_validation():
    with pytest.raises(ValueError):
        matching_operations_single_step(0.0, 1.0)
    with pytest.raises(ValueError):
        matching_operations_multires(10.0, [])
