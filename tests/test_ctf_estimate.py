"""Tests for defocus estimation from power spectra."""

import numpy as np
import pytest

from repro.ctf import CTFParams, estimate_defocus, radial_power_spectrum
from repro.ctf.estimate import defocus_fit_score
from repro.imaging import simulate_views


@pytest.fixture(scope="module")
def ctf_dataset():
    # estimation needs (a) CTF zeros inside the band the specimen actually
    # fills — sharp blobs put signal out to shell ~25 — and (b) oscillations
    # slow enough for the 32-shell radial sampling (3000 A at apix 2)
    from repro.density.map import DensityMap
    from repro.density.phantom import place_blobs
    from repro.utils import default_rng

    rng = default_rng(9)
    positions = rng.uniform(-24, 24, size=(60, 3))
    density = DensityMap(place_blobs(64, positions, sigma=1.1), apix=2.0)
    true_df = 3000.0
    views = simulate_views(
        density, 12, snr=8.0, ctf=CTFParams(defocus_angstrom=true_df), seed=0
    )
    return views, true_df


def test_radial_power_spectrum_shape(phantom24):
    ps = radial_power_spectrum(phantom24.data.sum(axis=0))
    assert ps.shape == (13,)
    assert np.all(ps >= 0)


def test_estimate_defocus_recovers_truth(ctf_dataset):
    views, true_df = ctf_dataset
    est, score = estimate_defocus(views.images, apix=2.0, search_range=(1000.0, 8000.0))
    assert est == pytest.approx(true_df, rel=0.2)
    assert score > 0.05


def test_score_peaks_near_truth(ctf_dataset):
    views, true_df = ctf_dataset
    spectrum = np.zeros(views.size // 2 + 1)
    for img in views.images:
        spectrum += radial_power_spectrum(img)
    s_true = defocus_fit_score(spectrum, true_df, views.size, 2.0, CTFParams())
    s_far = defocus_fit_score(spectrum, true_df * 2.5, views.size, 2.0, CTFParams())
    assert s_true > s_far


def test_estimate_defocus_validation(ctf_dataset):
    views, _ = ctf_dataset
    with pytest.raises(ValueError):
        estimate_defocus(views.images, apix=2.0, search_range=(5000.0, 1000.0))
    with pytest.raises(ValueError):
        estimate_defocus(np.zeros((3, 4)), apix=2.0)


def test_single_image_accepted(ctf_dataset):
    views, _ = ctf_dataset
    est, _ = estimate_defocus(views.images[0], apix=2.0, search_range=(1000.0, 8000.0), n_grid=60)
    assert 1000.0 <= est <= 8000.0
