"""Unit tests for the per-view orientation memo (batched matching engine).

The memo's contract is narrow but strict: exact-float keys, values
immutable once stored, deterministic FIFO eviction, and lossless
export/import — every property the bit-identity of the memoized search
rests on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.align.memo import DEFAULT_CAPACITY, MemoStore, OrientationMemo, memo_key
from repro.geometry.euler import Orientation


def key(i: float) -> tuple[float, float, float, float, float]:
    return (float(i), 0.0, 0.0, 0.0, 0.0)


def test_memo_key_is_exact_floats():
    o = Orientation(10.1, 20.2, 30.3, cx=0.5, cy=-0.25)
    k = memo_key(o, (o.cx, o.cy))
    assert k == (10.1, 20.2, 30.3, 0.5, -0.25)
    # one-ulp difference is a different key — never a false hit
    assert memo_key(Orientation(np.nextafter(10.1, 11), 20.2, 30.3), (0.5, -0.25)) != k


def test_put_get_roundtrip_and_immutability():
    memo = OrientationMemo()
    memo.put(key(1), 0.25)
    assert memo.get(key(1)) == 0.25
    assert memo.get(key(2)) is None
    # a second put for the same key is a no-op: values are immutable
    memo.put(key(1), 99.0)
    assert memo.get(key(1)) == 0.25
    assert len(memo) == 1


def test_fifo_eviction_is_bounded_and_oldest_first():
    memo = OrientationMemo(capacity=3)
    for i in range(5):
        memo.put(key(i), float(i))
    assert len(memo) == 3
    assert memo.get(key(0)) is None and memo.get(key(1)) is None
    assert [memo.get(key(i)) for i in (2, 3, 4)] == [2.0, 3.0, 4.0]


def test_capacity_validation():
    with pytest.raises(ValueError):
        OrientationMemo(capacity=0)
    assert OrientationMemo().capacity == DEFAULT_CAPACITY


def test_lookup_block_and_store_block():
    memo = OrientationMemo()
    memo.put(key(0), 5.0)
    memo.put(key(2), 7.0)
    keys = [key(0), key(1), key(2), key(3)]
    values, hits = memo.lookup_block(keys)
    assert hits.tolist() == [True, False, True, False]
    assert values[0] == 5.0 and values[2] == 7.0
    memo.store_block([key(1), key(3)], np.array([6.0, 8.0]))
    values, hits = memo.lookup_block(keys)
    assert hits.all()
    assert values.tolist() == [5.0, 6.0, 7.0, 8.0]


def test_export_import_is_lossless():
    memo = OrientationMemo()
    rng = np.random.default_rng(0)
    keys = [tuple(row) for row in rng.standard_normal((10, 5))]
    for i, k in enumerate(keys):
        memo.put(k, float(rng.standard_normal()))
    exported_keys, exported_values = memo.export_arrays()
    assert exported_keys.shape == (10, 5)
    clone = OrientationMemo()
    clone.import_arrays(exported_keys, exported_values)
    for k in keys:
        assert clone.get(k) == memo.get(k)


def test_store_is_per_view_and_subsettable():
    store = MemoStore()
    store.for_view(0).put(key(0), 1.0)
    store.for_view(2).put(key(0), 2.0)
    store.for_view(3)  # touched but empty: must not appear in exports
    # same key, different views, different values — never shared
    assert store.for_view(0).get(key(0)) == 1.0
    assert store.for_view(2).get(key(0)) == 2.0
    assert store.view_indices() == [0, 2, 3]
    state = store.export_state()
    assert sorted(state) == [0, 2]
    subset = store.subset_state([2, 3, 7])
    assert sorted(subset) == [2]

    other = MemoStore()
    other.import_state(state)
    assert other.for_view(0).get(key(0)) == 1.0
    assert other.for_view(2).get(key(0)) == 2.0


def test_import_state_keeps_existing_values():
    a = MemoStore()
    a.for_view(0).put(key(0), 1.0)
    b = MemoStore()
    b.for_view(0).put(key(0), 99.0)  # conflicting value...
    b.for_view(0).put(key(1), 2.0)
    a.import_state(b.export_state())
    # ...loses: first-stored wins, imports can only add missing entries
    assert a.for_view(0).get(key(0)) == 1.0
    assert a.for_view(0).get(key(1)) == 2.0


def test_checkpoint_memo_header_roundtrip_is_exact(tmp_path):
    """Memo state survives the checkpoint text format bit-for-bit."""
    from repro.faults.checkpoint import (
        RefinementCheckpoint,
        load_checkpoint,
        save_checkpoint,
    )
    from repro.refine.stats import RefinementStats

    rng = np.random.default_rng(3)
    store = MemoStore()
    for view in (0, 4):
        memo = store.for_view(view)
        for row in rng.standard_normal((7, 5)) * 123.456:
            memo.put(tuple(row), float(rng.standard_normal()))
    path = str(tmp_path / "memo.ckpt")
    ckpt = RefinementCheckpoint(
        schedule_fingerprint="fp",
        levels_done=1,
        orientations=[Orientation(1.0, 2.0, 3.0)],
        distances=np.array([0.5]),
        stats=RefinementStats(),
        memo=store.export_state(),
    )
    save_checkpoint(path, ckpt)
    loaded = load_checkpoint(path)
    assert loaded.memo is not None
    assert sorted(loaded.memo) == [0, 4]
    for view, (keys, values) in loaded.memo.items():
        want_keys, want_values = ckpt.memo[view]
        assert np.array_equal(keys, want_keys)  # exact: float.hex round-trip
        assert np.array_equal(values, want_values)
