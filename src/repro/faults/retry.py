"""Retry policy and result validation for the fan-out recovery loop.

:class:`RetryPolicy` is the knob set DESIGN.md §8 documents: how many
times a chunk is re-queued, how the backoff between attempts grows, how
long one chunk may run before it is declared hung, and how many pool
rebuilds a level tolerates before the scheduler degrades to the serial
path.  :func:`validate_chunk_results` is the poison detector — the only
defense against a worker that *returns* instead of dying, but returns
garbage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.parallel.viewsched import ViewLevelResult

__all__ = [
    "ChunkIntegrityError",
    "EXCEPTION_CLASSES",
    "RetryPolicy",
    "classify_exception_name",
    "validate_chunk_results",
]


class ChunkIntegrityError(RuntimeError):
    """A worker returned a structurally or numerically invalid chunk result."""


#: The retry taxonomy: every exception type that may cross the worker /
#: scheduler boundary, mapped to how the recovery loop treats it.
#:
#: * ``retryable`` — transient pool faults; the chunk is re-queued with
#:   backoff (and the pool recycled where needed).
#: * ``fatal`` — programming or validation errors; retrying cannot help,
#:   so they propagate (the serial fallback surfaces them deterministically).
#: * ``degradation`` — modelled aborts that route to a weaker-but-correct
#:   path (serial execution, checkpoint/resume) rather than failing the run.
#:
#: Keyed by *type name* (base classes included at lookup time) so the
#: static RL014 pass and the runtime :meth:`RetryPolicy.classify` read the
#: same table.  An exception whose MRO never hits this table is exactly
#: what RL014 exists to catch: it would fall through the restart logic as
#: an anonymous crash.
EXCEPTION_CLASSES: dict[str, str] = {
    # retryable — transient pool/transport faults
    "ChunkIntegrityError": "retryable",
    "FuturesTimeoutError": "retryable",
    "TimeoutError": "retryable",
    "BrokenProcessPool": "retryable",
    "BrokenExecutor": "retryable",
    "ConnectionError": "retryable",
    # fatal — bugs and bad inputs; deterministic, so retrying is futile
    "ValueError": "fatal",
    "TypeError": "fatal",
    "KeyError": "fatal",
    "IndexError": "fatal",
    "AttributeError": "fatal",
    "RuntimeError": "fatal",
    "NotImplementedError": "fatal",
    "AssertionError": "fatal",
    "OSError": "fatal",
    "StopIteration": "fatal",
    "SystemExit": "fatal",
    # degradation — modelled aborts with a planned weaker path
    "FaultInjected": "degradation",
    "KeyboardInterrupt": "degradation",
}


def classify_exception_name(name: str) -> str | None:
    """The retry class for a bare exception type name, or ``None``."""
    return EXCEPTION_CLASSES.get(name)


@dataclass(frozen=True)
class RetryPolicy:
    """How the scheduler reacts to a lost, hung, or poisoned chunk.

    Attributes
    ----------
    max_attempts:
        Pool attempts per chunk before it falls back to the in-process
        serial path (which cannot be killed by a worker fault).
    backoff_s / backoff_factor:
        Sleep before re-queuing attempt ``k`` is
        ``backoff_s * backoff_factor**(k-1)`` — fixed, so recovery timing
        is as reproducible as the faults themselves.
    chunk_timeout_s:
        Wall-clock bound on waiting for one chunk future; ``None`` waits
        forever (trust the pool).  On expiry the pool is recycled and the
        chunk re-queued.
    max_pool_restarts:
        Pool rebuilds tolerated within one level; beyond it every chunk
        still pending runs serially ("the pool is exhausted").
    """

    max_attempts: int = 3
    backoff_s: float = 0.01
    backoff_factor: float = 2.0
    chunk_timeout_s: float | None = None
    max_pool_restarts: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_s must be >= 0 and backoff_factor >= 1")
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0:
            raise ValueError("chunk_timeout_s must be positive (or None)")
        if self.max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Seconds to sleep before re-queuing after ``attempt`` failures."""
        if attempt <= 0:
            return 0.0
        return float(self.backoff_s * self.backoff_factor ** (attempt - 1))

    def classify(self, exc: BaseException) -> str | None:
        """``retryable`` / ``fatal`` / ``degradation`` for a live exception.

        Walks the MRO so subclasses inherit their base's class unless
        listed themselves (``ChunkIntegrityError`` is retryable even
        though ``RuntimeError`` is fatal).  ``None`` means the type is
        outside the taxonomy — the static RL014 pass guarantees no such
        raise is reachable from worker/retry-critical code.
        """
        for klass in type(exc).__mro__:
            kind = EXCEPTION_CLASSES.get(klass.__name__)
            if kind is not None:
                return kind
        return None


def validate_chunk_results(
    indices: Sequence[int], results: "list[ViewLevelResult]"
) -> None:
    """Reject a chunk result that cannot have come from the real kernel.

    Checks structure (one result per requested view, global indices echoed
    back exactly, in order) and numerics (finite distance and orientation
    fields).  Raises :class:`ChunkIntegrityError`; the scheduler treats
    that exactly like a crashed worker and re-queues the chunk.
    """
    expected = [int(i) for i in indices]
    if not isinstance(results, list) or len(results) != len(expected):
        raise ChunkIntegrityError(
            f"chunk returned {len(results) if isinstance(results, list) else type(results)} "
            f"results for {len(expected)} views"
        )
    got = [int(r.index) for r in results]
    if got != expected:
        raise ChunkIntegrityError(f"chunk echoed indices {got}, expected {expected}")
    for r in results:
        o = r.orientation
        values = (r.distance, o.theta, o.phi, o.omega, o.cx, o.cy)
        if not all(np.isfinite(v) for v in values):
            raise ChunkIntegrityError(f"non-finite result for view {r.index}: {values}")
