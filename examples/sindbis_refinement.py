"""The Figure 5 protocol on the Sindbis-like dataset.

Reproduces the paper's central experiment end to end, never showing the
algorithm the ground truth:

1. "old" orientations = truth + 3 deg jitter (the legacy icosahedral
   method's accuracy ceiling stands in for the production orientations);
2. a map is reconstructed from the old orientations;
3. the paper's refinement polishes the orientations against that map,
   iterating reconstruct -> refine with a rising band limit;
4. odd/even correlation-vs-resolution curves are compared: the refined
   ("new") curve should cross 0.5 at a finer resolution — the paper saw
   10.0 A vs 11.2 A on the real Sindbis data.

Run:  python examples/sindbis_refinement.py   (takes a couple of minutes)
"""

from repro.pipeline import format_curve
from repro.pipeline.config import ExperimentConfig, MiniWorkload
from repro.pipeline.experiments import run_figure_curves_experiment


def main() -> None:
    print("running the Figure 5 protocol (72 views, 32^3 box, 2 outer iterations)...")
    cfg = ExperimentConfig(
        workload=MiniWorkload("fig5", "sindbis", size=32, n_views=72),
        r_max_sequence=(6.0, 8.0),
        n_iterations=2,
        max_slides=2,
    )
    res = run_figure_curves_experiment(
        kind="sindbis", size=32, n_views=72, snr=3.5, perturbation_deg=3.0, config=cfg
    )

    print()
    print(
        format_curve(
            res.old_curve.resolution_angstrom,
            {"cc_old": res.old_curve.cc, "cc_new": res.new_curve.cc},
            title="Figure 5 (Sindbis-like): odd/even correlation vs resolution",
        )
    )
    print()
    print(f"0.5 crossing, old orientations: {res.old_crossing_angstrom:.2f} A")
    print(f"0.5 crossing, new orientations: {res.new_crossing_angstrom:.2f} A")
    print("paper (real data):  old 11.2 A, new 10.0 A -- same direction, same shape")
    print()
    print(f"angular error vs (hidden) truth: old {res.old_angular_error_deg:.2f} deg,"
          f" new {res.new_angular_error_deg:.2f} deg")
    print(f"map correlation vs truth: old {res.old_map_cc_truth:.4f}, new {res.new_map_cc_truth:.4f}")


if __name__ == "__main__":
    main()
