"""Unit tests for the batched-engine perf counters."""

from __future__ import annotations

import pickle

from repro.perf import PerfCounters


def test_count_window_without_memo():
    c = PerfCounters()
    c.count_window(729, 729)
    assert c.window_calls == 1
    assert c.candidates == 729
    assert c.gathers == 729
    # memo never consulted: no lookup traffic recorded
    assert c.memo_lookups == 0 and c.memo_hits == 0
    assert c.memo_hit_rate() == 0.0


def test_count_window_with_memo_hits():
    c = PerfCounters()
    c.count_window(729, 600, n_hits=129)
    assert c.gathers == 600
    assert c.memo_lookups == 729
    assert c.memo_hits == 129
    assert c.memo_hit_rate() == 129 / 729
    # a fully-hit window still counts as lookups
    c.count_window(729, 0, n_hits=729)
    assert c.memo_lookups == 2 * 729
    assert c.gathers == 600


def test_record_level_accumulates_duplicates():
    c = PerfCounters()
    c.record_level("1deg", 2.0, 100)
    c.record_level("1deg", 3.0, 50)
    c.record_level("0.5deg", 5.0, 200)
    assert c.level_seconds == {"1deg": 5.0, "0.5deg": 5.0}
    assert c.level_candidates == {"1deg": 150, "0.5deg": 200}
    assert c.total_seconds() == 10.0
    assert c.candidates_per_second() == 35.0


def test_candidates_per_second_guards_zero_time():
    assert PerfCounters().candidates_per_second() == 0.0


def test_merge_folds_everything():
    a = PerfCounters()
    a.count_window(10, 8, n_hits=2)
    a.record_level("1deg", 1.0, 10)
    b = PerfCounters()
    b.count_window(20, 20)
    b.record_level("1deg", 2.0, 20)
    b.record_level("0.5deg", 4.0, 40)
    a.merge(b)
    assert a.window_calls == 2
    assert a.candidates == 30
    assert a.gathers == 28
    assert a.memo_lookups == 10 and a.memo_hits == 2
    assert a.level_seconds == {"1deg": 3.0, "0.5deg": 4.0}
    assert a.level_candidates == {"1deg": 30, "0.5deg": 40}


def test_counters_survive_pickle():
    c = PerfCounters()
    c.count_window(10, 5, n_hits=5)
    c.record_level("1deg", 1.5, 10)
    assert pickle.loads(pickle.dumps(c)) == c


def test_summary_is_one_line():
    c = PerfCounters()
    c.count_window(1000, 700, n_hits=300)
    c.record_level("1deg", 2.0, 1000)
    text = c.summary()
    assert "\n" not in text
    assert "1,000 candidates" in text
    assert "700 gathered" in text
    assert "30.0%" in text
    assert "cand/s" in text
    # memo-free summary omits the hit rate instead of printing 0%
    quiet = PerfCounters()
    quiet.count_window(10, 10)
    assert "hit-rate" not in quiet.summary()
