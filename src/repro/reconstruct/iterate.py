"""The refine ↔ reconstruct iteration (steps B and C alternated).

§3: "Steps B and C are executed iteratively until the 3D electron density
map cannot be further improved at a given resolution; then the resolution
is increased gradually."  :func:`determine_structure` runs that outer loop
as a first-class, checkpointable pipeline stage: each iteration refines
orientations against the current map through the configured
:class:`~repro.engine.backends.ExecutionBackend`, streams the refined
views into a :class:`~repro.reconstruct.stream.HalfSetAccumulator` (one
Fourier insertion per view per iteration — the map, both half maps and
the FSC curve all come from the same accumulator pair), and stops under
the FSC rule of :class:`~repro.engine.config.IterationConfig`.

The loop is governed end-to-end by one :class:`EngineConfig`:

- ``iteration.*`` — iteration budget, FSC threshold, minimum-improvement
  stopping rule, per-iteration ``r_max`` ladder, streaming on/off;
- ``checkpoint.path`` — a checkpoint *directory* for the outer loop
  (``loop.json`` + per-iteration orientation files + the in-flight
  iteration's level-granular inner checkpoint), so a killed run resumes
  mid-loop bit-identically (DESIGN.md §14);
- everything else — schedule, kernel, backend, pruning, polish, symmetry
  — exactly as in a single refinement run.

:func:`structure_determination_loop` remains as the thin legacy wrapper
returning only the per-iteration history.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

import numpy as np

from repro.density.map import DensityMap
from repro.engine.config import EngineConfig, ScheduleConfig
from repro.geometry.euler import Orientation
from repro.imaging.simulate import SimulatedViews
from repro.reconstruct.resolution import CorrelationCurve
from repro.reconstruct.stream import HalfSetAccumulator
from repro.refine.multires import MultiResolutionSchedule
from repro.refine.refiner import OrientationRefiner

__all__ = [
    "IterationRecord",
    "StructureDeterminationResult",
    "determine_structure",
    "iterations_until_stop",
    "should_stop",
    "structure_determination_loop",
]


@dataclass
class IterationRecord:
    """One outer iteration's outcome."""

    iteration: int
    orientations: list[Orientation]
    density: DensityMap
    resolution_angstrom: float
    mean_distance: float
    #: the FSC curve behind ``resolution_angstrom`` (``None`` only for
    #: records constructed by legacy callers that never had one)
    curve: CorrelationCurve | None = None
    #: the ``r_max`` this iteration refined with (the resolution ladder)
    r_max: float | None = None
    #: whether this record was replayed from a loop checkpoint rather
    #: than computed live — replayed records are bit-identical either way
    resumed: bool = False


@dataclass
class StructureDeterminationResult:
    """The full outcome of the outer loop (DESIGN.md §14).

    ``history`` holds one :class:`IterationRecord` per executed iteration
    (including checkpoint-replayed ones on resume); ``stop_reason`` is
    ``"converged"`` when the FSC rule fired and ``"max_iterations"`` when
    the budget ran out.  ``perf`` aggregates the batched kernel's
    :class:`~repro.parallel.viewsched.PerfCounters` across every
    iteration (``None`` for non-batched kernels).
    """

    history: list[IterationRecord] = field(default_factory=list)
    stop_reason: str = "max_iterations"
    perf: object | None = None
    #: how many leading history records were replayed from a checkpoint
    resumed_iterations: int = 0

    @property
    def curves(self) -> list[CorrelationCurve]:
        """Per-iteration FSC curves, in iteration order."""
        return [rec.curve for rec in self.history if rec.curve is not None]

    @property
    def resolutions(self) -> list[float]:
        """Per-iteration FSC-crossing estimates (Å), in iteration order."""
        return [rec.resolution_angstrom for rec in self.history]

    @property
    def final_map(self) -> DensityMap:
        return self.history[-1].density

    @property
    def final_orientations(self) -> list[Orientation]:
        return self.history[-1].orientations


def should_stop(resolutions: list[float], min_improvement_angstrom: float) -> bool:
    """Whether the FSC rule stops the loop after ``resolutions[-1]``.

    The paper's "cannot be further improved" criterion as a pure function
    so it can be property-tested: the loop stops when the latest estimate
    fails to improve on the best previous one by at least
    ``min_improvement_angstrom`` (lower Å is better); the first iteration
    never stops.  Monotone in ``min_improvement_angstrom``: raising the
    bar can only stop the loop sooner, never later.
    """
    if len(resolutions) < 2:
        return False
    best_prev = min(resolutions[:-1])
    return resolutions[-1] > best_prev - min_improvement_angstrom


def iterations_until_stop(
    resolutions: list[float],
    min_improvement_angstrom: float,
    max_iterations: int,
) -> int:
    """How many iterations a given resolution trajectory would run."""
    n = 0
    for i in range(min(len(resolutions), max_iterations)):
        n += 1
        if should_stop(resolutions[: i + 1], min_improvement_angstrom):
            break
    return n


def determine_structure(
    views: SimulatedViews | np.ndarray,
    initial_map: DensityMap,
    config: EngineConfig | None = None,
    *,
    initial_orientations: list[Orientation] | None = None,
    ctf_params=None,
    apix: float | None = None,
    fault_plan=None,
) -> StructureDeterminationResult:
    """Run the full structure-determination loop under one config.

    ``views`` may be a :class:`SimulatedViews` (initial orientations and
    CTF taken from it unless overridden) or a raw ``(m, l, l)`` stack
    with explicit ``initial_orientations``.  ``initial_map`` seeds
    iteration 0; every later iteration refines against its predecessor's
    reconstruction.

    One backend is built for the whole loop (a process pool and its
    shared-memory replicas are reused across iterations), and each
    iteration's final-stage results stream straight into the map
    accumulator as chunks complete when ``config.iteration.streaming`` is
    on — bit-identical to the barriered mode at any worker count.

    With ``config.checkpoint.path`` set (a directory), the loop records
    its progress after every iteration and, with
    ``config.checkpoint.resume`` on, replays completed iterations from
    disk: orientations are re-read at full precision, each map is
    deterministically rebuilt and *verified* against the recorded digest,
    and the in-flight iteration resumes from its own level-granular inner
    checkpoint.  ``fault_plan`` reaches the backend's scheduler for chaos
    testing.
    """
    cfg = config if config is not None else EngineConfig()
    it_cfg = cfg.iteration
    if isinstance(views, SimulatedViews):
        images = views.images
        init = (
            initial_orientations
            if initial_orientations is not None
            else views.initial_orientations
        )
        ctf = ctf_params if ctf_params is not None else views.ctf_params
        pix = apix if apix is not None else views.apix
    else:
        images = np.asarray(views, dtype=float)
        if initial_orientations is None:
            raise ValueError("raw image stacks need explicit initial_orientations")
        init = initial_orientations
        ctf = ctf_params
        pix = apix if apix is not None else initial_map.apix
    m = images.shape[0]
    if len(init) != m:
        raise ValueError("need one initial orientation per view")
    sched = cfg.schedule.to_schedule()
    pad_factor = cfg.pad_factor

    # Imported lazily like the refiner does: repro.engine.backends pulls
    # in repro.parallel, which imports repro.refine at package import time.
    from repro.engine.backends import make_backend
    from repro.faults.checkpoint import (
        LoopCheckpoint,
        LoopIterationEntry,
        density_digest,
        iteration_checkpoint_path,
        iteration_orientations_path,
        save_loop_checkpoint,
        try_load_loop_checkpoint,
    )
    from repro.refine.orientfile import read_orientation_file, write_orientation_file

    ckpt_dir = cfg.checkpoint.path
    base_fingerprint = cfg.fingerprint()
    initial_digest = ""
    entries: list[LoopIterationEntry] = []
    if ckpt_dir is not None:
        os.makedirs(ckpt_dir, exist_ok=True)
        initial_digest = density_digest(initial_map.data)

    orientations = list(init)
    current_map = initial_map
    history: list[IterationRecord] = []
    resolutions: list[float] = []
    perf = None
    start_iteration = 0
    stop_reason = "max_iterations"

    # -- resume: replay completed iterations from the loop checkpoint ----
    if ckpt_dir is not None and cfg.checkpoint.resume:
        found = try_load_loop_checkpoint(ckpt_dir, base_fingerprint, m, initial_digest)
        for entry in () if found is None else found.iterations:
            opath = iteration_orientations_path(ckpt_dir, entry.iteration)
            try:
                saved_orients, _saved_scores = read_orientation_file(opath)
            except (OSError, ValueError):
                break  # truncated record: recompute from here
            if len(saved_orients) != m:
                break
            acc = HalfSetAccumulator(
                images, apix=pix, pad_factor=pad_factor, ctf_params=ctf
            ).push_all(list(saved_orients))
            rebuilt = acc.full_map()
            if density_digest(rebuilt.data) != entry.map_digest:
                break  # stored orientations do not reproduce this map
            history.append(
                IterationRecord(
                    iteration=entry.iteration,
                    orientations=list(saved_orients),
                    density=rebuilt,
                    resolution_angstrom=entry.resolution_angstrom,
                    mean_distance=entry.mean_distance,
                    curve=acc.curve(label=f"iteration {entry.iteration}"),
                    r_max=entry.r_max,
                    resumed=True,
                )
            )
            resolutions.append(entry.resolution_angstrom)
            entries.append(entry)
            orientations = list(saved_orients)
            current_map = rebuilt
            start_iteration = entry.iteration + 1
        if resolutions and should_stop(resolutions, it_cfg.min_improvement_angstrom):
            # the interrupted run had already converged: nothing to re-run
            return StructureDeterminationResult(
                history=history,
                stop_reason="converged",
                perf=None,
                resumed_iterations=start_iteration,
            )

    backend = make_backend(cfg, fault_plan=fault_plan)
    try:
        for it in range(start_iteration, it_cfg.max_iterations):
            r_max_it = it_cfg.r_max_for(it, cfg.r_max)
            iter_cfg = cfg if r_max_it == cfg.r_max else replace(cfg, r_max=r_max_it)
            refiner = OrientationRefiner(current_map, config=iter_cfg)
            acc = HalfSetAccumulator(
                images, apix=pix, pad_factor=pad_factor, ctf_params=ctf
            )
            stream = None
            if it_cfg.streaming:
                def stream(r, _acc=acc):
                    _acc.push(r.index, r.orientation)
            inner_ckpt = (
                None if ckpt_dir is None else iteration_checkpoint_path(ckpt_dir, it)
            )
            result = refiner.refine(
                images,
                initial_orientations=orientations,
                schedule=sched,
                ctf_params=ctf,
                apix=pix,
                refine_centers=cfg.refine_centers,
                backend=backend,
                checkpoint_path=inner_ckpt,
                resume=cfg.checkpoint.resume,
                on_final_result=stream,
            )
            orientations = list(result.orientations)
            if result.perf is not None:
                if perf is None:
                    perf = result.perf
                else:
                    perf.merge(result.perf)
            # barriered mode (or an inner resume that skipped the final
            # stage) deposits everything here; a fully streamed iteration
            # has already completed and this is a no-op
            acc.push_remaining(orientations)
            current_map = acc.full_map()
            curve = acc.curve(label=f"iteration {it}")
            res = curve.crossing(it_cfg.fsc_threshold)
            mean_distance = float(np.asarray(result.distances, dtype=float).mean())
            history.append(
                IterationRecord(
                    iteration=it,
                    orientations=orientations,
                    density=current_map,
                    resolution_angstrom=res,
                    mean_distance=mean_distance,
                    curve=curve,
                    r_max=r_max_it,
                )
            )
            resolutions.append(res)
            if ckpt_dir is not None:
                write_orientation_file(
                    iteration_orientations_path(ckpt_dir, it),
                    orientations,
                    scores=np.asarray(result.distances, dtype=float),
                    full_precision=True,
                    atomic=True,
                )
                entries.append(
                    LoopIterationEntry(
                        iteration=it,
                        r_max=r_max_it,
                        resolution_angstrom=res,
                        mean_distance=mean_distance,
                        map_digest=density_digest(current_map.data),
                    )
                )
                save_loop_checkpoint(
                    ckpt_dir,
                    LoopCheckpoint(
                        engine_fingerprint=base_fingerprint,
                        n_views=m,
                        initial_map_digest=initial_digest,
                        iterations=tuple(entries),
                    ),
                )
                if inner_ckpt is not None:
                    # a finished iteration's inner checkpoint must never
                    # seed the next iteration's refinement
                    try:
                        os.unlink(inner_ckpt)
                    except FileNotFoundError:
                        pass
            if should_stop(resolutions, it_cfg.min_improvement_angstrom):
                stop_reason = "converged"
                break
    finally:
        backend.close()
    return StructureDeterminationResult(
        history=history,
        stop_reason=stop_reason,
        perf=perf,
        resumed_iterations=start_iteration,
    )


def structure_determination_loop(
    views: SimulatedViews,
    initial_map: DensityMap,
    schedule: MultiResolutionSchedule | None = None,
    max_iterations: int = 3,
    r_max: float | None = None,
    pad_factor: int = 2,
    min_improvement_angstrom: float = 0.0,
    refine_centers: bool = True,
    config: EngineConfig | None = None,
) -> list[IterationRecord]:
    """Alternate orientation refinement and reconstruction (legacy shim).

    Thin wrapper over :func:`determine_structure` returning only the
    per-iteration history.  ``config`` configures the whole loop as one
    solver; the individual kwargs are the deprecation shim —
    ``schedule``/``r_max``/``pad_factor``/``refine_centers`` are ignored
    when ``config`` is given, while ``max_iterations`` and
    ``min_improvement_angstrom`` (loop-level knobs that predate
    :class:`~repro.engine.config.IterationConfig`) always take effect by
    overriding the config's ``iteration`` section.
    """
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    if config is None:
        # deprecation shim: scattered kwargs → one validated config
        config = EngineConfig(
            schedule=(
                ScheduleConfig()
                if schedule is None
                else ScheduleConfig.from_schedule(schedule)
            ),
            r_max=None if r_max is None else float(r_max),
            refine_centers=bool(refine_centers),
            pad_factor=int(pad_factor),
        )
    config = replace(
        config,
        iteration=replace(
            config.iteration,
            max_iterations=int(max_iterations),
            min_improvement_angstrom=float(min_improvement_angstrom),
        ),
    )
    return determine_structure(views, initial_map, config).history
