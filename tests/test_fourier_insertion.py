"""Tests for slice insertion (the adjoint used by reconstruction)."""

import numpy as np
import pytest

from repro.fourier import (
    centered_fftn,
    extract_slice,
    insert_slice,
    normalize_insertion,
)
from repro.geometry import euler_to_matrix


def test_insert_then_extract_identity_orientation(phantom16):
    l = 16
    ft = phantom16.fourier()
    cut = extract_slice(ft, np.eye(3))
    accum = np.zeros((l, l, l), dtype=complex)
    weights = np.zeros((l, l, l))
    insert_slice(accum, weights, cut, np.eye(3), hermitian=False)
    vol = normalize_insertion(accum, weights)
    # the central z-plane of the volume must reproduce the cut exactly
    assert np.allclose(vol[l // 2], cut, atol=1e-8 * np.abs(cut).max())


def test_hermitian_insertion_preserves_real_map(phantom16):
    l = 16
    ft = phantom16.fourier()
    accum = np.zeros((l, l, l), dtype=complex)
    weights = np.zeros((l, l, l))
    for angles in [(0, 0, 0), (90, 0, 0), (90, 90, 0), (55, 30, 10)]:
        r = euler_to_matrix(*angles)
        insert_slice(accum, weights, extract_slice(ft, r), r, hermitian=True)
    vol = normalize_insertion(accum, weights)
    from repro.fourier import centered_ifftn

    back = centered_ifftn(vol)
    # trilinear scatter is Hermitian only up to interpolation asymmetry at
    # the Nyquist boundary; the residual imaginary part must stay tiny
    assert np.abs(back.imag).max() < 1e-3 * np.abs(back.real).max()


def test_weights_match_hit_counts(phantom16):
    l = 16
    accum = np.zeros((l, l, l), dtype=complex)
    weights = np.zeros((l, l, l))
    cut = np.ones((l, l), dtype=complex)
    insert_slice(accum, weights, cut, np.eye(3), hermitian=False)
    # identity insertion scatters each pixel onto exactly one voxel
    assert weights.sum() == pytest.approx(l * l)
    assert weights[l // 2].sum() == pytest.approx(l * l)


def test_normalize_insertion_zeroes_unmeasured():
    accum = np.zeros((4, 4, 4), dtype=complex)
    weights = np.zeros((4, 4, 4))
    accum[0, 0, 0] = 5.0
    weights[0, 0, 0] = 1e-9  # below threshold
    accum[1, 1, 1] = 6.0
    weights[1, 1, 1] = 2.0
    out = normalize_insertion(accum, weights, min_weight=1e-3)
    assert out[0, 0, 0] == 0.0
    assert out[1, 1, 1] == pytest.approx(3.0)


def test_normalize_insertion_shape_mismatch():
    with pytest.raises(ValueError):
        normalize_insertion(np.zeros((4, 4, 4), dtype=complex), np.zeros((5, 5, 5)))


def test_sample_weights_average():
    # two views insert different values at the same voxels with weights 1, 3
    l = 8
    accum = np.zeros((l, l, l), dtype=complex)
    weights = np.zeros((l, l, l))
    a = np.full((l, l), 2.0, dtype=complex)
    b = np.full((l, l), 6.0, dtype=complex)
    insert_slice(accum, weights, a, np.eye(3), hermitian=False, sample_weights=np.ones((l, l)))
    insert_slice(accum, weights, b, np.eye(3), hermitian=False, sample_weights=3 * np.ones((l, l)))
    out = normalize_insertion(accum, weights)
    # weighted average (2*1 + 6*3) / 4 = 5
    assert out[l // 2, l // 2, l // 2] == pytest.approx(5.0)


def test_insert_slice_validation(phantom16):
    accum = np.zeros((16, 16, 16), dtype=complex)
    weights = np.zeros((16, 16, 16))
    with pytest.raises(ValueError):
        insert_slice(accum, weights, np.zeros((32, 32), dtype=complex), np.eye(3))
    with pytest.raises(ValueError):
        insert_slice(
            accum, weights, np.zeros((16, 16), dtype=complex), np.eye(3),
            sample_weights=np.ones((8, 8)),
        )


def test_insertion_into_oversampled_grid(phantom16):
    # slice of size 16 into a 32-volume: lands at even indices
    accum = np.zeros((32, 32, 32), dtype=complex)
    weights = np.zeros((32, 32, 32))
    cut = extract_slice(phantom16.fourier(), np.eye(3))
    insert_slice(accum, weights, cut, np.eye(3), hermitian=False)
    assert accum[16, 16, 16] == pytest.approx(cut[8, 8])
    assert accum[16, 16, 18] == pytest.approx(cut[8, 9])
