"""Tests for Fourier-coverage diagnostics."""

import numpy as np
import pytest

from repro.geometry import Orientation, random_orientations
from repro.reconstruct.coverage import (
    coverage_fraction,
    coverage_volume,
    shell_coverage,
    views_needed_estimate,
)


def test_coverage_volume_single_slice():
    w = coverage_volume([Orientation(0, 0, 0)], 16)
    # the central z-plane is hit (hermitian doubles the deposit)
    assert w[8].sum() > 0
    assert w[0].sum() == 0  # far planes untouched


def test_coverage_grows_with_views():
    few = coverage_fraction(random_orientations(3, seed=0), 16, r_max=7)
    many = coverage_fraction(random_orientations(40, seed=0), 16, r_max=7)
    assert many > few
    assert 0.0 < few < 1.0


def test_full_coverage_at_high_view_count():
    frac = coverage_fraction(random_orientations(200, seed=1), 16, r_max=6)
    assert frac > 0.95


def test_shell_coverage_monotone_trend():
    cov = shell_coverage(random_orientations(10, seed=2), 24)
    # the DC/first shells are always fully covered; the edge is thinner
    assert cov[1] == pytest.approx(1.0)
    assert cov[-1] < cov[1]


def test_single_axis_views_leave_gaps():
    # views rotated only about omega share one plane: coverage stays thin
    orients = [Orientation(0, 0, o * 13.0) for o in range(20)]
    frac = coverage_fraction(orients, 16, r_max=7)
    assert frac < 0.35


def test_views_needed_crowther():
    # D = 1000 A at d = 10 A: pi * 100 ~ 314 equatorial views
    assert views_needed_estimate(1000.0, 10.0) == pytest.approx(np.pi * 100.0)
    with pytest.raises(ValueError):
        views_needed_estimate(-1, 10)


def test_coverage_validation():
    with pytest.raises(ValueError):
        coverage_volume([], 0)
