"""Central-slice extraction from a 3D DFT (the paper's "2D cuts of D̂").

By the projection-slice theorem the 2D DFT of the projection of a density
``ρ`` along direction ``R·ẑ`` equals the central plane of the 3D DFT of ρ
spanned by ``R·x̂`` and ``R·ŷ``:

    F_proj(kx, ky) = F_ρ(kx·R[:,0] + ky·R[:,1]).

The paper computes these cuts by interpolation in the 3D Fourier domain
(step f).  We provide nearest-neighbour and trilinear complex interpolation;
samples falling outside the transform cube evaluate to 0 (they lie beyond
the measured band anyway once the ``r_map`` cutoff is applied).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.contracts import array_contract, spec
from repro.arraytypes import Array
from repro.fourier.transforms import fourier_center, frequency_grid_2d
from repro.utils import require_cube

__all__ = ["slice_coordinates", "extract_slice", "extract_slices"]


def slice_coordinates(size: int, rotation: Array, volume_size: int | None = None) -> Array:
    """Fractional array coordinates of the central slice for one rotation.

    Returns an array of shape ``(size, size, 3)`` whose ``[i, j]`` entry is
    the **(z, y, x) array index** (fractional) inside a centered 3D DFT at
    which slice pixel ``(i, j)`` — i.e. frequency
    ``(ky, kx) = (i − c, j − c)`` — must be sampled.

    ``volume_size`` supports *oversampled* transforms: when the volume is a
    zero-padded copy of the ``size``-box map (padded by ``p = volume_size /
    size``), image frequency ``k`` lives at padded index ``k·p``, so
    trilinear interpolation error drops by the padding factor.  Defaults to
    ``size`` (no oversampling).
    """
    r = np.asarray(rotation, dtype=float)
    if r.shape != (3, 3):
        raise ValueError(f"rotation must be (3, 3), got {r.shape}")
    vsize = size if volume_size is None else int(volume_size)
    if vsize < size:
        raise ValueError("volume_size must be >= slice size")
    scale = vsize / size
    cv = fourier_center(vsize)
    ky, kx = frequency_grid_2d(size)
    # Math frame is (x, y, z); k-vector of slice pixel = kx·u + ky·v.
    u, v = r[:, 0], r[:, 1]
    coords_xyz = (kx[..., None] * u + ky[..., None] * v) * scale
    # Convert math (x, y, z) to array (z, y, x) index and re-center.
    coords_zyx = coords_xyz[..., ::-1] + cv
    return coords_zyx


def _gather_trilinear_interior(
    flat: Array, l: int, base: Array, frac: Array
) -> Array:
    """Trilinear gather when every 8-corner neighbourhood is in bounds.

    The corner accumulation order and the weight-product association match
    the bounds-checked path exactly, so both paths are bit-identical where
    they overlap.
    """
    out = np.zeros(base.shape[0], dtype=flat.dtype)
    lin0 = (base[:, 0] * l + base[:, 1]) * l + base[:, 2]
    for corner in range(8):
        dz, dy, dx = (corner >> 2) & 1, (corner >> 1) & 1, corner & 1
        w = (
            (frac[:, 0] if dz else 1.0 - frac[:, 0])
            * (frac[:, 1] if dy else 1.0 - frac[:, 1])
            * (frac[:, 2] if dx else 1.0 - frac[:, 2])
        )
        out += w * flat[lin0 + ((dz * l + dy) * l + dx)]
    return out


def _gather_trilinear(volume: Array, coords_zyx: Array) -> Array:
    """Vectorized trilinear gather of complex samples at fractional coords.

    ``coords_zyx`` has shape ``(..., 3)``; out-of-bounds samples return 0.
    When every sample's 8-corner neighbourhood is interior — the common case
    for an oversampled, band-limited search — a fast path skips the
    per-corner bounds checks entirely (one range test up front).
    """
    l = volume.shape[0]
    pts = coords_zyx.reshape(-1, 3)
    base = np.floor(pts).astype(np.int64, copy=False)
    frac = pts - base
    flat = volume.ravel()
    if base.size and base.min() >= 0 and base.max() <= l - 2:
        out = _gather_trilinear_interior(flat, l, base, frac)
        return out.reshape(coords_zyx.shape[:-1])
    # Mixed case: route each point down the cheapest path it qualifies for.
    # Per-point values are elementwise (no cross-point reduction), so the
    # split is bit-identical to running the checked loop on everything.
    inner = np.all((base >= 0) & (base <= l - 2), axis=1)
    out = np.zeros(pts.shape[0], dtype=volume.dtype)
    if inner.any():
        out[inner] = _gather_trilinear_interior(flat, l, base[inner], frac[inner])
    edge = ~inner
    if edge.any():
        base_e, frac_e = base[edge], frac[edge]
        acc = np.zeros(base_e.shape[0], dtype=volume.dtype)
        for corner in range(8):
            dz, dy, dx = (corner >> 2) & 1, (corner >> 1) & 1, corner & 1
            idx = base_e + np.array([dz, dy, dx])
            valid = np.all((idx >= 0) & (idx < l), axis=1)
            w = (
                (frac_e[:, 0] if dz else 1.0 - frac_e[:, 0])
                * (frac_e[:, 1] if dy else 1.0 - frac_e[:, 1])
                * (frac_e[:, 2] if dx else 1.0 - frac_e[:, 2])
            )
            lin = (idx[:, 0] * l + idx[:, 1]) * l + idx[:, 2]
            lin[~valid] = 0
            acc += np.where(valid, w, 0.0) * flat[lin]
        out[edge] = acc
    return out.reshape(coords_zyx.shape[:-1])


def _gather_nearest(volume: Array, coords_zyx: Array) -> Array:
    l = volume.shape[0]
    pts = coords_zyx.reshape(-1, 3)
    idx = np.rint(pts).astype(np.int64, copy=False)
    valid = np.all((idx >= 0) & (idx < l), axis=1)
    lin = (idx[:, 0] * l + idx[:, 1]) * l + idx[:, 2]
    lin[~valid] = 0
    out = volume.ravel()[lin]
    out = np.where(valid, out, 0)
    return out.reshape(coords_zyx.shape[:-1])


@array_contract(
    volume_ft=spec(shape=("v", "v", "v"), dtype="inexact", allow_none=False),
    rotation=spec(shape=(3, 3), allow_none=False),
)
def extract_slice(
    volume_ft: Array,
    rotation: Array,
    order: str = "trilinear",
    out_size: int | None = None,
) -> Array:
    """One central 2D cut ``C`` through a centered 3D DFT.

    Parameters
    ----------
    volume_ft:
        Centered 3D DFT of the density map (possibly oversampled), complex.
    rotation:
        3×3 rotation matrix of the candidate orientation.
    order:
        ``"trilinear"`` (paper's choice, default) or ``"nearest"``.
    out_size:
        Side of the output slice.  Defaults to the volume side; pass the
        *unpadded* map size when ``volume_ft`` is an oversampled transform.
    """
    l = require_cube(volume_ft, "volume_ft")
    size = l if out_size is None else int(out_size)
    coords = slice_coordinates(size, rotation, volume_size=l)
    if order == "trilinear":
        return _gather_trilinear(np.asarray(volume_ft), coords)
    if order == "nearest":
        return _gather_nearest(np.asarray(volume_ft), coords)
    raise ValueError(f"unknown interpolation order {order!r}")


@array_contract(
    volume_ft=spec(shape=("v", "v", "v"), dtype="inexact", allow_none=False),
    rotations=spec(shape=(None, 3, 3), allow_none=False),
)
def extract_slices(
    volume_ft: Array,
    rotations: Array,
    order: str = "trilinear",
    out_size: int | None = None,
) -> Array:
    """Batch of central cuts, one per rotation.

    ``rotations`` has shape ``(w, 3, 3)``; the result has shape
    ``(w, size, size)`` where ``size`` is ``out_size`` (default: the volume
    side).  This is the kernel of step (f): a full search window of
    ``w = w_θ·w_φ·w_ω`` cuts is produced in one vectorized gather.
    """
    l = require_cube(volume_ft, "volume_ft")
    size = l if out_size is None else int(out_size)
    if size > l:
        raise ValueError("out_size must be <= volume side")
    rots = np.asarray(rotations, dtype=float)
    if rots.ndim != 3 or rots.shape[1:] != (3, 3):
        raise ValueError(f"rotations must be (w, 3, 3), got {rots.shape}")
    scale = l / size
    cv = fourier_center(l)
    ky, kx = frequency_grid_2d(size)
    u = rots[:, :, 0]  # (w, 3)
    v = rots[:, :, 1]
    coords_xyz = (
        kx[None, ..., None] * u[:, None, None, :] + ky[None, ..., None] * v[:, None, None, :]
    ) * scale
    coords_zyx = coords_xyz[..., ::-1] + cv
    if order == "trilinear":
        return _gather_trilinear(np.asarray(volume_ft), coords_zyx)
    if order == "nearest":
        return _gather_nearest(np.asarray(volume_ft), coords_zyx)
    raise ValueError(f"unknown interpolation order {order!r}")
