"""The sliding-window search (steps f–i).

The window of candidates is scanned (``match_view``); if the winner lies on
a face of the window along any angle, the window is re-centered on it and
re-scanned, up to ``max_slides`` times.  The paper observed exactly this
mechanism firing in production: "at 0.01° instead of 9 matchings (search
range) we needed 15 for the Sindbis virus" (§5) — the extra matchings are
the re-scans counted in :attr:`SlidingWindowResult.n_matches`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.align.distance import DistanceComputer
from repro.align.fused import MatchPlan, get_match_plan
from repro.align.grid import orientation_window
from repro.align.matcher import MatchResult, match_view, match_view_band, match_view_window
from repro.align.memo import OrientationMemo
from repro.arraytypes import Array
from repro.geometry.euler import Orientation
from repro.perf import PerfCounters
from repro.refine.prune import PruneParams, PruneSearch

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a refine cycle)
    from repro.refine.restrict import SymmetryRestriction

__all__ = ["SlidingWindowResult", "sliding_window_search"]


@dataclass(frozen=True)
class SlidingWindowResult:
    """Outcome of one (possibly slid) window search.

    Attributes
    ----------
    orientation:
        Final minimum-distance orientation ``O_µ``.
    distance:
        Final minimum distance.
    n_windows:
        Window evaluations performed (1 if no slide; the paper's
        ``n_window``).
    n_matches:
        Total matching operations across all windows.
    slid:
        True when at least one re-centering occurred.
    centers:
        The window centers actually scanned, in order (the invariant the
        property tests assert: no center is ever revisited).
    final_on_edge:
        True when the search stopped *because* the slide budget ran out
        while the winner still sat on a window face — i.e. the final
        minimum is not known to be interior.
    basins:
        When a pruned search tracked more than one basin
        (``PruneParams.rank > 1``), the top-ranked distinct orientations
        over the whole search, best first.  Empty otherwise.
    """

    orientation: Orientation
    distance: float
    n_windows: int
    n_matches: int
    slid: bool
    centers: tuple[Orientation, ...] = ()
    final_on_edge: bool = False
    basins: tuple[Orientation, ...] = ()


def sliding_window_search(
    view_ft: Array | None,
    volume_ft: Array,
    center: Orientation,
    step_deg: float,
    half_steps: int | tuple[int, int, int] = 4,
    max_slides: int = 8,
    distance_computer: DistanceComputer | None = None,
    interpolation: str = "trilinear",
    cut_modulation: Array | None = None,
    kernel: str = "fused",
    plan: MatchPlan | None = None,
    view_band: Array | None = None,
    memo: OrientationMemo | None = None,
    memo_center: tuple[float, float] = (0.0, 0.0),
    counters: PerfCounters | None = None,
    prune: PruneParams | None = None,
    symmetry: "SymmetryRestriction | None" = None,
) -> SlidingWindowResult:
    """Steps f–i for one view at one angular resolution.

    Parameters
    ----------
    view_ft:
        Center-corrected, CTF-corrected centered 2D DFT of the view.  May
        be ``None`` when ``view_band`` (fused kernel) is supplied instead.
    volume_ft:
        Centered 3D DFT of the current map.
    center:
        The orientation the first window is centered on.
    step_deg:
        Angular resolution ``r_angular`` of this level.
    half_steps:
        Window half-width in steps per angle.
    max_slides:
        Safety bound on re-centerings (the paper's data slid at most once
        per level; noisy data could otherwise walk indefinitely).
    kernel:
        ``"fused"`` (default) matches on in-band samples only via a
        :class:`MatchPlan`; ``"batched"`` additionally evaluates each
        window through the whole-window engine
        (:meth:`MatchPlan.match_window`) and can consult an orientation
        ``memo``; ``"reference"`` extracts full cut stacks.  All three
        produce identical distances.
    plan / view_band:
        Optional precomputed fused state; derived from ``view_ft`` and the
        volume when omitted.
    memo / memo_center / counters:
        Batched-kernel extras: the per-view :class:`OrientationMemo`
        (``memo_center`` is the center correction baked into
        ``view_band`` — part of the memo key) and the run's
        :class:`PerfCounters`.  Ignored by the other kernels.
    prune:
        Optional :class:`~repro.refine.prune.PruneParams` enabling the
        early-termination bound on the batched kernel.  One
        :class:`~repro.refine.prune.PruneSearch` tracker spans the whole
        (possibly slid) search — candidates re-observed after a slide are
        deduplicated by exact orientation key, so the k-th-best bound only
        tightens.  Ignored by the other kernels (they score every
        candidate exactly anyway, which is what makes them the
        equivalence oracle).
    symmetry:
        Optional :class:`~repro.refine.restrict.SymmetryRestriction`.  The
        window itself stays local (centers are canonicalized into the
        asymmetric unit *before* this call, by the per-level refiner), but
        memo keys canonicalize modulo the group so equivalent candidates
        near AU boundaries share cache slots.  Batched kernel only.
    """
    if max_slides < 0:
        raise ValueError("max_slides must be non-negative")
    if kernel not in ("fused", "batched", "reference"):
        raise ValueError(f"unknown kernel {kernel!r}")
    if kernel in ("fused", "batched"):
        if plan is None:
            if view_ft is None:
                raise ValueError("need view_ft or an explicit plan for the fused kernel")
            dc = distance_computer or DistanceComputer(view_ft.shape[0])
            plan = get_match_plan(dc, volume_ft.shape[0], interpolation)
        if view_band is None:
            if view_ft is None:
                raise ValueError("need view_ft or view_band")
            view_band = plan.gather_view(view_ft)
    current = center
    n_windows = 0
    n_matches = 0
    slid = False
    centers: list[Orientation] = []
    final_on_edge = False
    best: MatchResult | None = None
    # One tracker per search: its k-th-best bound is only valid for this
    # view_band, and it deduplicates candidates re-observed across slides.
    search = PruneSearch(prune) if prune is not None and kernel == "batched" else None
    while True:
        centers.append(current)
        grid = orientation_window(current, step_deg, half_steps)
        if kernel == "batched":
            assert plan is not None and view_band is not None
            best = match_view_window(
                view_band,
                volume_ft,
                grid,
                plan,
                cut_modulation=cut_modulation,
                memo=memo,
                memo_center=memo_center,
                counters=counters,
                prune=search,
                symmetry=symmetry,
            )
        elif kernel == "fused":
            assert plan is not None and view_band is not None
            # repro-lint: allow[RL012] fused oracle branch: exhaustive by design
            best = match_view_band(
                view_band, volume_ft, grid, plan, cut_modulation=cut_modulation
            )
        else:
            # repro-lint: allow[RL012] reference oracle branch: exhaustive by design
            best = match_view(
                view_ft,
                volume_ft,
                grid,
                distance_computer=distance_computer,
                interpolation=interpolation,
                cut_modulation=cut_modulation,
            )
        n_windows += 1
        n_matches += best.n_matches
        if any(best.on_edge):
            if n_windows <= max_slides:
                slid = True
                current = best.orientation
                continue
            final_on_edge = True
        break
    assert best is not None
    basins: tuple[Orientation, ...] = ()
    if search is not None and search.params.rank > 1:
        basins = search.basins()
    return SlidingWindowResult(
        orientation=best.orientation,
        distance=best.distance,
        n_windows=n_windows,
        n_matches=n_matches,
        slid=slid,
        centers=tuple(centers),
        final_on_edge=final_on_edge,
        basins=basins,
    )
