"""Tests for the orientation file format (steps c and o)."""

import numpy as np
import pytest

from repro.geometry import Orientation
from repro.refine import read_orientation_file, write_orientation_file


def test_roundtrip(tmp_path):
    orients = [
        Orientation(10.5, 20.25, 30.125, 0.5, -0.25),
        Orientation(0.0, 0.0, 0.0),
        Orientation(179.9, 359.9, 359.9, -3.0, 3.0),
    ]
    scores = [0.1, 0.2, 0.3]
    path = str(tmp_path / "orients.txt")
    write_orientation_file(path, orients, scores=scores, header="iteration 3")
    back, back_scores = read_orientation_file(path)
    assert len(back) == 3
    for a, b in zip(orients, back):
        assert a.as_tuple() == pytest.approx(b.as_tuple(), abs=1e-5)
    assert np.allclose(back_scores, scores)


def test_roundtrip_without_scores(tmp_path):
    path = str(tmp_path / "o.txt")
    write_orientation_file(path, [Orientation(1, 2, 3)])
    back, scores = read_orientation_file(path)
    assert len(back) == 1
    assert scores[0] == 0.0


def test_score_length_checked(tmp_path):
    with pytest.raises(ValueError):
        write_orientation_file(str(tmp_path / "x.txt"), [Orientation(1, 2, 3)], scores=[1.0, 2.0])


def test_read_rejects_bad_field_count(tmp_path):
    p = tmp_path / "bad.txt"
    p.write_text("0 1.0 2.0\n")
    with pytest.raises(ValueError, match="fields"):
        read_orientation_file(str(p))


def test_read_rejects_non_consecutive_ids(tmp_path):
    p = tmp_path / "bad.txt"
    p.write_text("1 1 2 3 0 0\n")
    with pytest.raises(ValueError, match="consecutive"):
        read_orientation_file(str(p))


def test_read_skips_comments_and_blanks(tmp_path):
    p = tmp_path / "ok.txt"
    p.write_text("# header\n\n0 1 2 3 0 0 0.5\n# trailing comment\n")
    orients, scores = read_orientation_file(str(p))
    assert len(orients) == 1
    assert scores[0] == 0.5
