"""The documented public API surface must exist and be importable."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


@pytest.mark.parametrize(
    "module",
    [
        "repro.utils",
        "repro.geometry",
        "repro.fourier",
        "repro.density",
        "repro.ctf",
        "repro.imaging",
        "repro.align",
        "repro.refine",
        "repro.reconstruct",
        "repro.parallel",
        "repro.pipeline",
    ],
)
def test_subpackage_all_exports(module):
    mod = importlib.import_module(module)
    assert hasattr(mod, "__all__")
    for name in mod.__all__:
        assert hasattr(mod, name), f"{module}.{name} missing"


def test_quickstart_docstring_snippet_runs():
    from repro import (
        OrientationRefiner,
        default_schedule,
        reconstruct_from_views,
        simulate_views,
        sindbis_like_phantom,
    )
    from repro.refine.multires import MultiResolutionSchedule, RefinementLevel

    truth = sindbis_like_phantom(16).normalized()
    views = simulate_views(truth, 4, snr=4.0, initial_angle_error_deg=2.0)
    refiner = OrientationRefiner(truth, r_max=6)
    sched = MultiResolutionSchedule((RefinementLevel(1.0, 1.0, half_steps=1),))
    result = refiner.refine(views, schedule=sched)
    new_map = reconstruct_from_views(views.images, result.orientations)
    assert new_map.size == 16
    assert default_schedule().final_angular_step == 0.002


def test_public_docstrings_exist():
    from repro import OrientationRefiner, reconstruct_from_views, simulate_views
    from repro.align import DistanceComputer, match_view
    from repro.refine import refine_center, sliding_window_search

    for obj in (
        OrientationRefiner,
        reconstruct_from_views,
        simulate_views,
        DistanceComputer,
        match_view,
        sliding_window_search,
        refine_center,
    ):
        assert obj.__doc__ and len(obj.__doc__) > 40
