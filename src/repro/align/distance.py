"""The paper's Fourier-space distance between a view and a calculated cut.

§3 defines, for two ``l×l`` complex arrays ``F = a + ib`` and ``C = c + id``:

    d(F, C) = (1/l²) · sqrt( Σ_{j,k} (a−c)² + (b−d)² )

i.e. the Euclidean norm of the complex difference scaled by 1/l².  Two
refinements from the paper are supported:

* the sum runs only over Fourier samples with radius ≤ ``r_map`` (the
  current resolution limit), which also cuts the operation count;
* an optional radial weighting ``wt(j, k)`` emphasizes high-frequency
  components ("to give more weight to higher frequency components at higher
  resolution").

:class:`DistanceComputer` pre-computes the masked pixel index set and the
weights once per (l, r_map) pair so the per-candidate cost in the search
loop is a single gather + reduction — this is the O(w·l²) kernel that
dominates Tables 1 and 2.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.contracts import array_contract, spec
from repro.arraytypes import Array
from repro.fourier.shells import radial_shell_indices_2d
from repro.utils import require_square

__all__ = ["fourier_distance", "fourier_distance_batch", "radius_weights", "DistanceComputer"]


def radius_weights(size: int, kind: str = "none", r_max: float | None = None) -> Array:
    """Radial weighting functions ``wt(j, k)`` for the distance.

    ``kind``:
      * ``"none"`` — uniform weights (the plain §3 distance);
      * ``"radius"`` — weight ∝ shell radius, emphasizing high resolution;
      * ``"radius2"`` — weight ∝ radius², even stronger emphasis.

    Weights are normalized to mean 1 over the band ``r ≤ r_max`` so that
    distances with different weightings remain comparable in magnitude.
    """
    r = radial_shell_indices_2d(size).astype(float, copy=False)
    if kind == "none":
        w = np.ones_like(r)
    elif kind == "radius":
        w = r
    elif kind == "radius2":
        w = r * r
    else:
        raise ValueError(f"unknown weight kind {kind!r}")
    band = r <= (size // 2 if r_max is None else r_max)
    mean = w[band].mean()
    if mean > 0:
        w = w / mean
    return w


def fourier_distance(
    view_ft: Array,
    cut_ft: Array,
    r_max: float | None = None,
    weights: Array | None = None,
) -> float:
    """The §3 distance between one view transform and one cut.

    ``r_max`` restricts the sum to samples within that Fourier radius
    (default: the inscribed circle ``l // 2``).  ``weights`` is an optional
    ``wt(j, k)`` array.
    """
    size = require_square(view_ft, "view_ft")
    if np.asarray(cut_ft).shape != (size, size):
        raise ValueError("view and cut must have the same shape")
    dc = DistanceComputer(size, r_max=r_max, weights=weights)
    return dc.distance(view_ft, cut_ft)


def fourier_distance_batch(
    view_ft: Array,
    cuts_ft: Array,
    r_max: float | None = None,
    weights: Array | None = None,
) -> Array:
    """Distances from one view to a stack of cuts ``(w, l, l)`` (step g)."""
    size = require_square(view_ft, "view_ft")
    dc = DistanceComputer(size, r_max=r_max, weights=weights)
    return dc.distance_batch(view_ft, cuts_ft)


class DistanceComputer:
    """Pre-masked, pre-weighted distance evaluation for the search loop.

    Parameters
    ----------
    size:
        Image side ``l``.
    r_max:
        Fourier radius cutoff (``r_map`` in the paper); default ``l // 2``.
    weights:
        Full ``(l, l)`` weight array ``wt(j, k)`` or ``None`` for uniform.
    """

    def __init__(
        self,
        size: int,
        r_max: float | None = None,
        weights: Array | None = None,
        normalized: bool = False,
    ):
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = int(size)
        self.r_max = float(size // 2 if r_max is None else r_max)
        if self.r_max <= 0:
            raise ValueError("r_max must be positive")
        shells = radial_shell_indices_2d(size)
        mask = shells <= self.r_max
        self._flat_idx = np.flatnonzero(mask.ravel())
        if weights is None:
            self._w = None
        else:
            w = np.asarray(weights, dtype=float)
            if w.shape != (size, size):
                raise ValueError(f"weights must be ({size}, {size})")
            self._w = w.ravel()[self._flat_idx]
        #: When True, both arrays are scaled to unit band norm before the
        #: difference — a scale-invariant variant (not in the paper; offered
        #: as a robustness extension, see ablation E13).  Minimizing it is
        #: equivalent to maximizing the real part of the band correlation.
        self.normalized = bool(normalized)
        self.n_samples = int(self._flat_idx.size)

    @property
    def band_indices(self) -> Array:
        """Flat (row-major) pixel indices of the in-band samples."""
        return self._flat_idx

    @property
    def band_weights(self) -> Array | None:
        """In-band weight vector ``wt`` aligned with :attr:`band_indices`."""
        return self._w

    @property
    def band_radii(self) -> Array:
        """Per-sample Fourier shell radius aligned with :attr:`band_indices`.

        Used by the pruned window path to order the band into radial shell
        groups: low-frequency shells carry most of the distance mass, so
        accumulating them first lets hopeless candidates be abandoned
        after a fraction of the band has been gathered.
        """
        shells = radial_shell_indices_2d(self.size).astype(float, copy=False)
        return shells.ravel()[self._flat_idx]

    def _maybe_normalize(self, vec: Array) -> Array:
        if not self.normalized:
            return vec
        n = np.linalg.norm(np.ascontiguousarray(vec))
        return vec / n if n > 0 else vec

    def _normalize_rows(self, mat: Array) -> Array:
        if not self.normalized:
            return mat
        # Contiguous rows fix the pairwise-summation order (see distance_band).
        norms = np.linalg.norm(np.ascontiguousarray(mat), axis=-1, keepdims=True)
        norms[norms == 0] = 1.0
        return mat / norms

    def gather_modulation(self, modulation: Array | None) -> Array | None:
        """Pre-gather a per-view cut modulation (e.g. |CTF|) onto the band.

        A view recorded through a CTF carries amplitudes ``|CTF|·S``; the
        statistically consistent comparison multiplies each *calculated*
        cut by the same modulation before differencing (phase flipping
        alone leaves an amplitude mismatch that biases the scale-sensitive
        distance toward low-energy cuts).  Returns a flat vector aligned
        with :meth:`gather`, or ``None``.
        """
        if modulation is None:
            return None
        mod = np.asarray(modulation, dtype=float)
        if mod.shape != (self.size, self.size):
            raise ValueError(f"modulation must be ({self.size}, {self.size})")
        return mod.ravel()[self._flat_idx]

    @array_contract(
        image_ft=spec(shape=("l", "l"), allow_none=False),
        ret=spec(shape=("n",)),
    )
    def gather(self, image_ft: Array) -> Array:
        """The masked in-band samples of a transform, as a flat vector."""
        arr = np.asarray(image_ft)
        if arr.shape != (self.size, self.size):
            raise ValueError(f"expected ({self.size}, {self.size}), got {arr.shape}")
        return arr.reshape(-1)[self._flat_idx]

    def distance(
        self,
        view_ft: Array,
        cut_ft: Array,
        cut_modulation: Array | None = None,
    ) -> float:
        """d(F, C) over the band, with weights if configured.

        ``cut_modulation`` (flat vector from :meth:`gather_modulation` or a
        full (l, l) array) multiplies the cut before differencing — used to
        impose the view's |CTF| on the calculated cut.
        """
        return float(
            self.distance_band(
                self.gather(view_ft), self.gather(cut_ft), cut_modulation=cut_modulation
            )
        )

    def _apply_modulation(self, gathered_cut: Array, cut_modulation) -> Array:
        if cut_modulation is None:
            return gathered_cut
        mod = np.asarray(cut_modulation, dtype=float)
        if mod.ndim == 2:
            mod = self.gather_modulation(mod)
        if mod.shape[-1] != gathered_cut.shape[-1]:
            raise ValueError("cut_modulation does not match the band size")
        return gathered_cut * mod

    @array_contract(
        view_band=spec(shape=[("n",), (None, "n")], dtype="inexact", allow_none=False),
        cut_band=spec(shape=[("n",), (None, "n")], dtype="inexact", allow_none=False),
    )
    def distance_band(
        self,
        view_band: Array,
        cut_band: Array,
        cut_modulation: Array | None = None,
    ) -> Array | float:
        """The §3 distance from pre-gathered in-band vectors — no (w, l, l) stacks.

        Both arguments are flat band vectors (``(n_samples,)``) or stacks of
        them (``(m, n_samples)``), as produced by :meth:`gather` or by the
        fused kernel's in-band slice gather; broadcasting follows numpy
        rules, so one view against ``w`` cuts or ``n`` shifted views against
        one cut both work.  ``cut_modulation`` (a band vector or a full
        ``(l, l)`` array) multiplies the cut(s) before differencing.

        Returns a scalar when both inputs are single vectors, else an array
        of distances.
        """
        f = np.asarray(view_band)
        c = np.asarray(cut_band)
        if f.shape[-1] != self.n_samples or c.shape[-1] != self.n_samples:
            raise ValueError(
                f"band vectors must have {self.n_samples} samples, "
                f"got {f.shape} and {c.shape}"
            )
        if cut_modulation is not None:
            c = self._apply_modulation(c, cut_modulation)
        if self.normalized:
            f = self._maybe_normalize(f) if f.ndim == 1 else self._normalize_rows(f)
            c = self._maybe_normalize(c) if c.ndim == 1 else self._normalize_rows(c)
        diff = c - f
        sq = diff.real**2 + diff.imag**2
        if self._w is not None:
            sq = sq * self._w
        # A contiguous reduction keeps the pairwise-summation order identical
        # whether the band vectors came from a full-stack gather (reference
        # kernel, non-contiguous fancy-indexed rows) or the fused kernel.
        d = np.sqrt(np.ascontiguousarray(sq).sum(axis=-1)) / (self.size * self.size)
        return float(d) if np.ndim(d) == 0 else d

    def distance_batch(
        self,
        view_ft: Array,
        cuts_ft: Array,
        cut_modulation: Array | None = None,
    ) -> Array:
        """Distances from one view to each cut of a ``(w, l, l)`` stack."""
        cuts = np.asarray(cuts_ft)
        if cuts.ndim != 3 or cuts.shape[1:] != (self.size, self.size):
            raise ValueError(f"cuts must be (w, {self.size}, {self.size}), got {cuts.shape}")
        c = cuts.reshape(cuts.shape[0], -1)[:, self._flat_idx]
        return self.distance_band(self.gather(view_ft), c, cut_modulation=cut_modulation)

    def distance_many_to_one(
        self,
        views_ft: Array,
        cut_ft: Array,
        cut_modulation: Array | None = None,
    ) -> Array:
        """Distances from each view of a stack to one cut (used by step k)."""
        views = np.asarray(views_ft)
        if views.ndim != 3 or views.shape[1:] != (self.size, self.size):
            raise ValueError("views must be (n, l, l)")
        v = views.reshape(views.shape[0], -1)[:, self._flat_idx]
        return self.distance_band(v, self.gather(cut_ft), cut_modulation=cut_modulation)
