"""Tests for dataset presets and configs."""

import numpy as np
import pytest

from repro.pipeline import MiniWorkload, make_dataset, reo_like_dataset, sindbis_like_dataset
from repro.pipeline.config import ExperimentConfig, mini_schedule
from repro.pipeline.datasets import phantom_for


def test_phantom_for_kinds():
    assert phantom_for("sindbis", 16).size == 16
    assert phantom_for("reo", 16).size == 16
    assert phantom_for("asymmetric", 16).size == 16
    assert phantom_for("c5", 16).size == 16
    with pytest.raises(ValueError):
        phantom_for("weird", 16)


def test_make_dataset_respects_workload():
    wl = MiniWorkload("t", "sindbis", size=16, n_views=6, snr=5.0, perturbation_deg=2.0, seed=3)
    views = make_dataset(wl)
    assert views.images.shape == (6, 16, 16)
    from repro.refine.stats import angular_errors

    errs = angular_errors(views.initial_orientations, views.true_orientations)
    assert errs.mean() > 0.5


def test_named_presets():
    s = sindbis_like_dataset(size=16, n_views=4, snr=np.inf)
    r = reo_like_dataset(size=16, n_views=4, snr=np.inf)
    assert s.images.shape == r.images.shape == (4, 16, 16)
    assert not np.allclose(s.images, r.images)


def test_dataset_deterministic():
    a = sindbis_like_dataset(size=16, n_views=3, seed=5)
    b = sindbis_like_dataset(size=16, n_views=3, seed=5)
    assert np.array_equal(a.images, b.images)


def test_mini_schedule_is_multiresolution():
    sched = mini_schedule()
    steps = [lv.angular_step_deg for lv in sched]
    assert steps == sorted(steps, reverse=True)
    assert len(sched) == 3


def test_experiment_config_defaults():
    wl = MiniWorkload("t", "sindbis")
    cfg = ExperimentConfig(workload=wl)
    assert cfg.n_iterations == 3
    assert len(cfg.r_max_sequence) >= cfg.n_iterations
