"""Center refinement (steps k–l): slide the view center inside a small box.

With the best-fit cut ``C_µ`` fixed, the view's center is scanned over a
``(2·half_steps+1)²`` box of candidate offsets at the level's center
resolution ``δ_center``.  Each candidate is a pure Fourier phase ramp on
the view's transform (O(l²), no interpolation), so arbitrarily fine
sub-pixel steps — the paper goes down to 0.002 pixel — cost the same as
whole-pixel ones.  The same edge-triggered sliding rule as the angular
window applies.

Two evaluation kernels share the sliding-box loop: the reference path
builds full ``(n, l, l)`` shifted-transform stacks, the fused path
(default) applies the phase ramps only at the in-band samples via a
:class:`~repro.align.fused.MatchPlan`, cutting the per-candidate cost from
``l²`` to ``n_band`` with numerically identical distances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.align.distance import DistanceComputer
from repro.align.fused import MatchPlan, get_match_plan
from repro.align.grid import step_offsets
from repro.arraytypes import Array
from repro.fourier.transforms import frequency_grid_2d
from repro.utils import require_square

__all__ = ["CenterRefineResult", "refine_center"]


@dataclass(frozen=True)
class CenterRefineResult:
    """Outcome of the center search for one view at one level.

    ``cx``/``cy`` are the refined particle-center offsets in pixels
    (``x_center_opt``, ``y_center_opt`` of step k); ``n_evaluations`` counts
    candidate centers tried (the paper's ``n_center`` summed over slides).
    """

    cx: float
    cy: float
    distance: float
    n_boxes: int
    n_evaluations: int
    slid: bool


def _shift_stack(view_ft: Array, dxs: Array, dys: Array) -> Array:
    """Stack of center-corrected transforms, one per candidate (dx, dy).

    Correcting a particle at offset ``(dx, dy)`` means shifting content by
    ``(−dx, −dy)``: multiply by ``exp(+2πi(kx·dx + ky·dy)/l)``.
    """
    size = view_ft.shape[0]
    ky, kx = frequency_grid_2d(size)
    phase = np.exp(
        2j * np.pi * (kx[None] * dxs[:, None, None] + ky[None] * dys[:, None, None]) / size
    )
    return view_ft[None] * phase


def _box_search(
    evaluate: Callable[[Array, Array], Array],
    cx: float,
    cy: float,
    step_px: float,
    half_steps: int,
    max_slides: int,
) -> CenterRefineResult:
    """The sliding center-box loop, independent of the distance kernel.

    ``evaluate(dxs, dys)`` returns the distance per candidate absolute
    center; the box recenters on an edge winner up to ``max_slides`` times.
    """
    n_boxes = 0
    n_evals = 0
    slid = False
    nside = 2 * half_steps + 1
    while True:
        offs = step_offsets(half_steps, step_px)
        dxs = (cx + offs)[:, None].repeat(nside, axis=1).ravel()
        dys = (cy + offs)[None, :].repeat(nside, axis=0).ravel()
        d = evaluate(dxs, dys)
        i = int(np.argmin(d))
        n_boxes += 1
        n_evals += d.size
        best_cx, best_cy, best_d = float(dxs[i]), float(dys[i]), float(d[i])
        ix, iy = divmod(i, nside)
        on_edge = half_steps > 0 and (
            ix == 0 or ix == nside - 1 or iy == 0 or iy == nside - 1
        )
        if on_edge and n_boxes <= max_slides:
            slid = True
            cx, cy = best_cx, best_cy
            continue
        return CenterRefineResult(
            cx=best_cx, cy=best_cy, distance=best_d, n_boxes=n_boxes, n_evaluations=n_evals, slid=slid
        )


def refine_center(
    view_ft: Array | None,
    cut_ft: Array | None,
    center: tuple[float, float],
    step_px: float,
    half_steps: int = 1,
    max_slides: int = 8,
    distance_computer: DistanceComputer | None = None,
    cut_modulation: Array | None = None,
    kernel: str = "fused",
    plan: MatchPlan | None = None,
    view_band: Array | None = None,
    cut_band: Array | None = None,
) -> CenterRefineResult:
    """Steps k–l for one view against its best-fit cut.

    Parameters
    ----------
    view_ft:
        The *uncorrected* view transform (center offsets are applied here,
        not baked in, so successive levels can re-derive finer centers).
        May be ``None`` when ``view_band`` (and a fused kernel) is supplied.
    cut_ft:
        The minimum-distance cut ``C_µ`` from the angular search.  May be
        ``None`` when ``cut_band`` is supplied.
    center:
        Current center estimate ``(cx, cy)`` in pixels.
    step_px:
        Center resolution ``δ_center`` of this level.
    half_steps:
        Box half-width in steps (1 gives the paper's example 3×3 box,
        ``n_center = 9``).
    kernel:
        ``"fused"`` (default) evaluates candidates on the in-band samples
        only; ``"reference"`` builds full shifted-transform stacks.  Both
        produce identical distances.
    plan / view_band / cut_band:
        Optional precomputed fused-kernel state (from the per-view driver);
        derived on the fly from the full arrays when omitted.
    """
    if step_px <= 0:
        raise ValueError("step_px must be positive")
    if half_steps < 0:
        raise ValueError("half_steps must be non-negative")
    if kernel not in ("fused", "reference"):
        raise ValueError(f"unknown kernel {kernel!r}")
    cx, cy = float(center[0]), float(center[1])

    if kernel == "reference":
        if view_ft is None or cut_ft is None:
            raise ValueError("the reference kernel needs full view_ft and cut_ft arrays")
        size = require_square(view_ft, "view_ft")
        dc = distance_computer or DistanceComputer(size)

        def evaluate(dxs: Array, dys: Array) -> Array:
            stack = _shift_stack(np.asarray(view_ft), dxs, dys)
            return dc.distance_many_to_one(stack, cut_ft, cut_modulation=cut_modulation)

        return _box_search(evaluate, cx, cy, step_px, half_steps, max_slides)

    # fused kernel: everything happens on the band vectors
    if plan is None:
        if view_ft is None:
            raise ValueError("need view_ft or an explicit plan for the fused kernel")
        size = require_square(view_ft, "view_ft")
        dc = distance_computer or DistanceComputer(size)
        plan = get_match_plan(dc, size)
    dc = plan.dc
    if view_band is None:
        if view_ft is None:
            raise ValueError("need view_ft or view_band")
        view_band = dc.gather(view_ft)
    if cut_band is None:
        if cut_ft is None:
            raise ValueError("need cut_ft or cut_band")
        cut_band = dc.gather(cut_ft)

    def evaluate_band(dxs: Array, dys: Array) -> Array:
        stack_band = view_band[None, :] * plan.shift_ramps(dxs, dys)
        return np.asarray(
            dc.distance_band(stack_band, cut_band, cut_modulation=cut_modulation)
        )

    return _box_search(evaluate_band, cx, cy, step_px, half_steps, max_slides)
