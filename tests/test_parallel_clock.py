"""Tests for the virtual clock."""

import numpy as np
import pytest

from repro.parallel import VirtualClock


def test_advance_and_now():
    c = VirtualClock(3)
    c.advance(0, 1.5)
    c.advance(0, 0.5)
    assert c.now(0) == pytest.approx(2.0)
    assert c.now(1) == 0.0


def test_negative_advance_rejected():
    c = VirtualClock(2)
    with pytest.raises(ValueError):
        c.advance(0, -1.0)
    with pytest.raises(ValueError):
        VirtualClock(0)


def test_synchronize_all():
    c = VirtualClock(3)
    c.advance(0, 1.0)
    c.advance(1, 5.0)
    t = c.synchronize()
    assert t == 5.0
    assert all(c.now(r) == 5.0 for r in range(3))


def test_synchronize_subset():
    c = VirtualClock(3)
    c.advance(0, 1.0)
    c.advance(1, 5.0)
    c.advance(2, 9.0)
    c.synchronize([0, 1])
    assert c.now(0) == 5.0 and c.now(1) == 5.0
    assert c.now(2) == 9.0


def test_meet_two_ranks():
    c = VirtualClock(2)
    c.advance(0, 3.0)
    t = c.meet(0, 1)
    assert t == 3.0
    assert c.now(1) == 3.0


def test_elapsed_is_max():
    c = VirtualClock(4)
    c.advance(2, 7.0)
    assert c.elapsed() == 7.0
    snap = c.snapshot()
    assert np.array_equal(snap, [0, 0, 7.0, 0])
