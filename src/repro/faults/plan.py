"""Deterministic fault plans: the injection side of the robustness layer.

A :class:`FaultPlan` is a frozen, picklable description of *which* faults
fire *where*.  The consumers — :class:`~repro.parallel.viewsched.ViewScheduler`
worker processes and the simulated fabric in :mod:`repro.parallel.comm` —
consult the plan at named *sites* (one string per chunk attempt, message,
or level barrier), so a failure observed in a chaos test replays exactly
from the plan alone: no wall-clock, no shared mutable state, no
cross-process counters.

Fault kinds (the taxonomy of DESIGN.md §8):

``crash-before`` / ``crash-after``
    The worker process dies (``os._exit``) before / after computing its
    chunk — the pool sees a hard loss, the chunk must be re-queued.
``delay``
    The worker sleeps ``delay_s`` before returning — exercises the
    per-chunk timeout path.
``poison``
    The worker returns a structurally plausible but corrupt result (NaN
    distance) — exercises result validation.
``drop-message``
    The simulated fabric drops the message once and retransmits, charging
    the α–β cost twice plus ``delay_s`` of ack-timeout.
``abort-level``
    The scheduler raises :class:`FaultInjected` at a level barrier —
    models a killed run for checkpoint/resume tests.

Sites are matched with :func:`fnmatch.fnmatch`, so a spec can target one
chunk (``"L0.C2"``) or a family (``"L*.C*"``).  A spec fires while the
consumer's *attempt* counter is below ``times``; retries therefore escape
one-shot faults deterministically, with no state carried across the
processes the faults kill.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjected",
    "FaultLog",
    "FaultPlan",
    "FaultSpec",
    "chunk_site",
    "level_site",
    "message_site",
]

FAULT_KINDS = (
    "crash-before",
    "crash-after",
    "delay",
    "poison",
    "drop-message",
    "abort-level",
)


class FaultInjected(RuntimeError):
    """Raised where an injected fault models a killed run (``abort-level``)."""


def chunk_site(level_seq: int, chunk_id: int) -> str:
    """Site name of one scheduler chunk: ``L<level>.C<chunk>``."""
    return f"L{level_seq}.C{chunk_id}"


def message_site(src: int, dst: int, seq: int) -> str:
    """Site name of one fabric message: ``msg:<src>-><dst>#<seq>``."""
    return f"msg:{src}->{dst}#{seq}"


def level_site(level_seq: int) -> str:
    """Site name of one level barrier: ``level:<seq>``."""
    return f"level:{level_seq}"


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a kind, a site pattern, and how often it fires.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    site:
        Exact site name or :mod:`fnmatch` pattern (``"L0.C*"``).
    times:
        The spec fires while the consumer's attempt counter is below this
        (default 1: fire once per site, vanish on retry).
    delay_s:
        Sleep / retransmit-timeout duration for ``delay`` and
        ``drop-message`` faults.
    """

    kind: str
    site: str
    times: int = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")

    def matches(self, kind: str, site: str, attempt: int) -> bool:
        return kind == self.kind and attempt < self.times and fnmatch(site, self.site)


@dataclass(frozen=True)
class FaultPlan:
    """A frozen set of :class:`FaultSpec`, consulted by site name.

    The plan is immutable and picklable: scheduler workers receive a copy
    in every chunk payload and decide purely from ``(kind, site, attempt)``,
    so a worker that dies and is replaced reaches the same decision its
    predecessor did.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @staticmethod
    def none() -> "FaultPlan":
        """The empty plan (injects nothing); the default everywhere."""
        return FaultPlan()

    def lookup(self, kind: str, site: str, attempt: int = 0) -> FaultSpec | None:
        """First spec firing for ``(kind, site)`` at this attempt, if any."""
        for s in self.specs:
            if s.matches(kind, site, attempt):
                return s
        return None

    def should(self, kind: str, site: str, attempt: int = 0) -> bool:
        """Whether any spec fires for ``(kind, site)`` at this attempt."""
        return self.lookup(kind, site, attempt) is not None

    def with_spec(self, spec: FaultSpec) -> "FaultPlan":
        """A new plan with one more spec appended."""
        return FaultPlan(specs=self.specs + (spec,), seed=self.seed)

    @classmethod
    def scatter(
        cls,
        seed: int,
        sites: list[str],
        kinds: tuple[str, ...] = ("crash-before", "crash-after", "delay", "poison"),
        rate: float = 0.25,
        delay_s: float = 0.05,
    ) -> "FaultPlan":
        """Seeded random plan: each site draws one fault with prob. ``rate``.

        The draw happens *here*, once, from ``default_rng(seed)`` — the
        resulting plan is a plain frozen value, so the same seed always
        yields the same faults regardless of how many processes later
        consult it.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if not kinds:
            raise ValueError("need at least one fault kind")
        rng = np.random.default_rng(seed)
        specs: list[FaultSpec] = []
        for site in sites:
            if rng.random() < rate:
                kind = kinds[int(rng.integers(len(kinds)))]
                specs.append(FaultSpec(kind=kind, site=site, delay_s=delay_s))
        return cls(specs=tuple(specs), seed=seed)


@dataclass(frozen=True)
class FaultEvent:
    """One observed fault or recovery action, recorded for the chaos harness.

    ``action`` is what the consumer did about it: ``"injected"``,
    ``"retry"``, ``"pool-restart"``, ``"serial-fallback"``, ``"timeout"``,
    ``"poison-detected"``, ``"dropped"``, ``"delayed"``, ``"abort"``.
    """

    kind: str
    site: str
    attempt: int = 0
    action: str = "injected"
    detail: str = ""


@dataclass
class FaultLog:
    """An append-only event list shared by one scheduler / fabric run."""

    events: list[FaultEvent] = field(default_factory=list)

    def record(self, kind: str, site: str, attempt: int = 0, action: str = "injected",
               detail: str = "") -> None:
        self.events.append(FaultEvent(kind, site, attempt, action, detail))

    def actions(self) -> list[str]:
        return [e.action for e in self.events]

    def count(self, action: str) -> int:
        return sum(1 for e in self.events if e.action == action)
