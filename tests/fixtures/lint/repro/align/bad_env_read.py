"""Known-bad fixture: environment read outside ``repro/engine/`` (RL011)."""

from __future__ import annotations

import os

__all__ = ["hidden_knob"]


def hidden_knob() -> int:
    if os.getenv("REPRO_SECRET_TUNING"):
        return int(os.environ["REPRO_SECRET_TUNING"])
    return 0
