"""Tests for reference-free 2D alignment and class averaging."""

import numpy as np
import pytest
from scipy import ndimage

from repro.align import (
    align_to_reference,
    iterative_class_average,
    polar_resample,
    polar_rotation_align,
)
from repro.geometry import Orientation
from repro.imaging import project_map, shift_image
from repro.utils import default_rng


@pytest.fixture(scope="module")
def base_view(phantom24):
    return project_map(phantom24, Orientation(60.0, 40.0, 0.0), method="real")


def test_polar_resample_shape(base_view):
    p = polar_resample(base_view, n_angles=45, n_radii=8)
    assert p.shape == (45, 8)
    assert np.all(np.isfinite(p))


def test_polar_rotation_align_recovers_angle(base_view):
    rotated = ndimage.rotate(base_view, 30.0, reshape=False, order=1)
    angle = polar_rotation_align(rotated, base_view, n_angles=360)
    # magnitude spectra have a 180-deg ambiguity; answer mod 180 near 30
    assert min(abs(angle - 30.0), abs(angle + 150.0), abs(angle - 210.0)) < 4.0


def test_align_to_reference_full(base_view):
    moved = shift_image(ndimage.rotate(base_view, 22.0, reshape=False, order=1), 2.0, -1.0)
    aligned, angle, (dx, dy) = align_to_reference(moved, base_view, n_angles=360)

    def cc(a, b):
        a = a - a.mean()
        b = b - b.mean()
        return (a * b).sum() / (np.linalg.norm(a) * np.linalg.norm(b))

    assert cc(aligned, base_view) > cc(moved, base_view)
    assert cc(aligned, base_view) > 0.9


def test_class_average_raises_snr(base_view, rng):
    sigma = base_view.std()
    stack = []
    angles = [0.0, 15.0, -20.0, 8.0, -5.0, 30.0]
    for i, ang in enumerate(angles):
        img = ndimage.rotate(base_view, ang, reshape=False, order=1)
        img = shift_image(img, float(rng.uniform(-1, 1)), float(rng.uniform(-1, 1)))
        stack.append(img + 0.8 * sigma * rng.normal(size=img.shape))
    stack = np.asarray(stack)

    average, history = iterative_class_average(stack, n_iterations=3, n_angles=360)

    def cc(a, b):
        a = a - a.mean()
        b = b - b.mean()
        return (a * b).sum() / (np.linalg.norm(a) * np.linalg.norm(b))

    # the aligned average must beat the naive (unaligned) average
    naive = stack.mean(axis=0)
    assert cc(average, base_view) > cc(naive, base_view)
    # member-to-average coherence should not decrease over iterations
    assert history[-1] >= history[0] - 0.02


def test_class_average_validation(rng):
    with pytest.raises(ValueError):
        iterative_class_average(rng.normal(size=(8, 8)))
    with pytest.raises(ValueError):
        iterative_class_average(rng.normal(size=(1, 8, 8)))


def test_polar_resample_validation():
    with pytest.raises(ValueError):
        polar_resample(np.zeros((4, 4)), n_radii=0)
