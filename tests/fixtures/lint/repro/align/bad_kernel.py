"""RL006 fixture: a kernel= fork point that open-codes its own distance."""

from __future__ import annotations

import numpy as np


def match_window(view, cuts, kernel="fused"):
    if kernel == "turbo":
        cuts = cuts[::-1]
    return np.sqrt(((view - cuts) ** 2).sum(axis=-1))
