"""Tests for the analytic performance model (Tables 1/2 regeneration)."""

import pytest

from repro.parallel import (
    PerformanceModel,
    REO_WORKLOAD,
    SINDBIS_WORKLOAD,
)
from repro.parallel.machine import LAPTOP_LIKE, MachineSpec, SP2_LIKE
from repro.parallel.perf_model import LevelSpec, PaperWorkload

# Refinement-row seconds from the paper's tables (level 4 of reo carries a
# scan-corrupted leading digit; EXPERIMENTS.md documents the restoration).
PAPER_SINDBIS = [4053.0, 4109.0, 7065.0, 26190.0]
PAPER_REO = [19942.0, 21957.0, 69672.0, 143786.0]


@pytest.fixture()
def calibrated():
    pm = PerformanceModel()
    pm.calibrate(SINDBIS_WORKLOAD, 0, PAPER_SINDBIS[0])
    return pm


def test_machine_spec_validation():
    with pytest.raises(ValueError):
        MachineSpec("x", flops=0, net_latency=0, net_bandwidth=1, io_bandwidth=1)
    with pytest.raises(ValueError):
        MachineSpec("x", flops=1, net_latency=-1, net_bandwidth=1, io_bandwidth=1)
    assert SP2_LIKE.compute_time(2e8) == pytest.approx(1.0)
    assert SP2_LIKE.message_time(0) == SP2_LIKE.net_latency
    with pytest.raises(ValueError):
        SP2_LIKE.compute_time(-1)


def test_workload_definitions():
    assert SINDBIS_WORKLOAD.n_views == 7917
    assert SINDBIS_WORKLOAD.image_size == 331
    assert REO_WORKLOAD.n_views == 4422
    assert REO_WORKLOAD.image_size == 511
    assert len(SINDBIS_WORKLOAD.levels) == 4
    assert SINDBIS_WORKLOAD.levels[0].matchings_per_view == 729


def test_calibrated_model_reproduces_sindbis_table(calibrated):
    rows = calibrated.predict_table(SINDBIS_WORKLOAD)
    for row, paper in zip(rows, PAPER_SINDBIS):
        assert row["Orientation refinement"] == pytest.approx(paper, rel=0.10)


def test_calibrated_model_reproduces_reo_table(calibrated):
    # calibrated on a SINDBIS cell: reo rows are pure predictions
    rows = calibrated.predict_table(REO_WORKLOAD)
    for row, paper in zip(rows, PAPER_REO):
        assert row["Orientation refinement"] == pytest.approx(paper, rel=0.15)


def test_refinement_dominates_total(calibrated):
    # §5: "99% of the time for orientation refinement"
    for wl in (SINDBIS_WORKLOAD, REO_WORKLOAD):
        rows = calibrated.predict_table(wl)
        for row in rows[2:]:  # the fine-resolution levels
            assert row["Orientation refinement"] / row["Total"] > 0.95


def test_sliding_window_shows_in_level3(calibrated):
    rows = calibrated.predict_table(SINDBIS_WORKLOAD)
    # level 3 slid (9 -> 15 along one angle): more time than level 2
    assert rows[2]["Orientation refinement"] > 1.3 * rows[1]["Orientation refinement"]


def test_speedup_near_linear(calibrated):
    curve = calibrated.speedup_curve(SINDBIS_WORKLOAD, [1, 2, 4, 8, 16])
    ps = [p for p, _, _ in curve]
    speedups = [s for _, _, s in curve]
    assert ps == [1, 2, 4, 8, 16]
    assert speedups[0] == pytest.approx(1.0)
    assert speedups[-1] > 12.0  # near-linear at paper scale
    # totals decrease with P
    totals = [t for _, t, _ in curve]
    assert all(a > b for a, b in zip(totals, totals[1:]))


def test_calibration_validation(calibrated):
    with pytest.raises(ValueError):
        calibrated.calibrate(SINDBIS_WORKLOAD, 0, -5.0)


def test_memory_model_replicated_vs_bricked(calibrated):
    rep = calibrated.memory_per_node_bytes(331, replicate=True)
    brick = calibrated.memory_per_node_bytes(331, replicate=False, n_procs=16)
    assert rep > 10 * brick  # the paper's §6 tradeoff: replication costs memory
    # replicated D-hat of a 331 box is ~0.5-1 GB: consistent with the paper's
    # 2 GB nodes being tight
    assert 4e8 < rep < 2e9


def test_modern_machine_far_faster(calibrated):
    modern = PerformanceModel(machine=LAPTOP_LIKE, flops_per_match_sample=calibrated.flops_per_match_sample)
    old_total = sum(r["Total"] for r in calibrated.predict_table(SINDBIS_WORKLOAD))
    new_total = sum(r["Total"] for r in modern.predict_table(SINDBIS_WORKLOAD))
    assert new_total < old_total / 50


def test_custom_workload():
    wl = PaperWorkload(
        name="tiny", n_views=10, image_size=64,
        levels=(LevelSpec(1.0, (3, 3, 3)),), n_processors=2,
    )
    rows = PerformanceModel().predict_table(wl)
    assert len(rows) == 1
    assert rows[0]["search_range"] == 27
