"""Electron-density maps: container, synthetic phantoms and MRC file I/O."""

from repro.density.map import DensityMap
from repro.density.mrcio import read_mrc, write_mrc
from repro.density.resample import crop_box, fourier_crop, fourier_pad, pad_box
from repro.density.phantom import (
    asymmetric_phantom,
    cyclic_phantom,
    icosahedral_capsid_phantom,
    reo_like_phantom,
    sindbis_like_phantom,
)

__all__ = [
    "DensityMap",
    "read_mrc",
    "write_mrc",
    "fourier_crop",
    "fourier_pad",
    "crop_box",
    "pad_box",
    "asymmetric_phantom",
    "cyclic_phantom",
    "icosahedral_capsid_phantom",
    "sindbis_like_phantom",
    "reo_like_phantom",
]
