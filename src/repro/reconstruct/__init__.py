"""3D reconstruction (step C) and resolution assessment (Figure 4 procedure).

The paper pairs its orientation refinement with a Cartesian-coordinates
reconstruction algorithm for objects without symmetry (its refs [18], [20]).
We implement the direct-Fourier equivalent: insert every view's 2D DFT into
an (oversampled) 3D transform with trilinear weights, normalize, and invert
— plus the odd/even half-map correlation procedure used to estimate
resolution, and the refine↔reconstruct iteration loop.
"""

from repro.reconstruct.direct_fourier import reconstruct_from_views
from repro.reconstruct.resolution import (
    correlation_curve,
    fsc_crossing,
    half_map_fsc,
    resolution_at_threshold,
    split_odd_even,
)
from repro.reconstruct.iterate import (
    IterationRecord,
    StructureDeterminationResult,
    determine_structure,
    iterations_until_stop,
    should_stop,
    structure_determination_loop,
)
from repro.reconstruct.sirt import SIRTResult, sirt_reconstruct
from repro.reconstruct.stream import HalfSetAccumulator
from repro.reconstruct.coverage import (
    coverage_fraction,
    coverage_volume,
    shell_coverage,
    views_needed_estimate,
)

__all__ = [
    "reconstruct_from_views",
    "split_odd_even",
    "half_map_fsc",
    "correlation_curve",
    "fsc_crossing",
    "resolution_at_threshold",
    "structure_determination_loop",
    "determine_structure",
    "should_stop",
    "iterations_until_stop",
    "IterationRecord",
    "StructureDeterminationResult",
    "HalfSetAccumulator",
    "sirt_reconstruct",
    "SIRTResult",
    "coverage_volume",
    "coverage_fraction",
    "shell_coverage",
    "views_needed_estimate",
]
