"""Continuous least-squares polish of one view's orientation (DESIGN.md §11).

The finest schedule levels (0.01°, 0.002° in the paper's Table 1 run)
exist only to localize a minimum the 0.1° level has already bracketed —
thousands of exhaustively scored candidates per view for what is, by
then, a smooth 5-parameter least-squares problem.  This module replaces
them with a damped Gauss–Newton (Levenberg–Marquardt) descent on the
*continuous* fused-kernel objective

    r(θ, φ, ω, cx, cy) = √w · (Ĉ(θ, φ, ω)·m − F̂·shift(−cx, −cy)) ,
    d = ‖r‖ / l² ,

which is exactly the §3 distance the grid search minimizes: ``Ĉ`` is the
in-band central cut (:meth:`~repro.align.fused.MatchPlan.cut_band`),
``m`` the optional CTF modulation, ``F̂`` the phase-shifted view band and
``w`` the band weights.  Angle derivatives use central differences with
all six perturbed rotations gathered in **one** batched
:meth:`~repro.align.fused.MatchPlan.cut_bands` call; center derivatives
only touch the in-band phase ramp and cost no volume gathers at all.

Accepted distances go through :meth:`DistanceComputer.distance_band`, so
a polished value is the same number the grid search would report for that
continuous point, and every scalar evaluation is memoized under the exact
``(θ, φ, ω, cx, cy)`` key shared with the window engine's orientation
memo — the start point (a grid candidate) is typically already present.

Polish trades bit-identity for continuous optima, so it is gated by an
explicit accuracy tolerance (the replaced schedule tail's final angular
step) rather than the exhaustive-equivalence oracle; the monotone
accept-only LM loop guarantees the polished distance never exceeds the
start's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.arraytypes import Array
from repro.geometry.euler import Orientation, euler_to_matrix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.align.fused import MatchPlan
    from repro.align.memo import OrientationMemo
    from repro.perf import PerfCounters

__all__ = ["PolishResult", "polish_view"]

#: Central-difference steps: degrees for the three angles, pixels for the
#: center.  Small enough that the quadratic model is accurate near the
#: 0.1° basin, large enough to stay far above gather rounding noise.
_H_DEG = 1e-3
_H_PX = 1e-3

#: Damping ceiling: above this the trust region is sub-numerical-noise
#: sized and the current point is declared a (converged) local minimum.
_LAMBDA_MAX = 1e6


@dataclass(frozen=True)
class PolishResult:
    """Outcome of one view's polish: the continuous minimum found.

    ``final_step_deg`` is the largest angular component (degrees) of the
    last *accepted* LM update — the angular resolution the descent reached
    before the acceptance/tolerance tests stopped it.  The accuracy gate
    compares it against the replaced schedule tail's final angular step.
    It is 0.0 when no step was ever accepted (the start was already a
    local minimum at the probe resolution).
    """

    orientation: Orientation
    distance: float
    n_iterations: int
    converged: bool
    final_step_deg: float = 0.0


def polish_view(
    view_band: Array,
    volume_ft: Array,
    plan: MatchPlan,
    start: Orientation,
    *,
    cut_modulation: Array | None = None,
    max_iters: int = 30,
    tol: float = 1e-8,
    damping: float = 1e-3,
    memo: OrientationMemo | None = None,
    counters: PerfCounters | None = None,
) -> PolishResult:
    """Levenberg–Marquardt descent from ``start`` on the continuous objective.

    Only strictly-improving steps are accepted, so the returned distance
    is ≤ the start's §3 distance; ``converged`` is True when the loop
    stopped on the relative-improvement tolerance or damping ceiling
    rather than the iteration cap.
    """
    dc = plan.dc
    if dc.normalized:
        raise ValueError("polish_view requires the plain (unnormalized) §3 distance")
    if max_iters < 1:
        raise ValueError("max_iters must be >= 1")
    vol = np.asarray(volume_ft)
    view = np.asarray(view_band)
    mod_band: Array | None = None
    if cut_modulation is not None:
        arr = np.asarray(cut_modulation)
        mod_band = dc.gather_modulation(arr) if arr.ndim == 2 else arr
    weights = dc.band_weights
    sqrt_w = None if weights is None else np.sqrt(weights)

    def shifted_view(cx: float, cy: float) -> Array:
        return plan.phase_shift_band(view, -cx, -cy)

    def residual(cut: Array, view_shifted: Array) -> Array:
        r = (cut if mod_band is None else cut * mod_band) - view_shifted
        return r if sqrt_w is None else r * sqrt_w

    def distance_at(p: Array, cut: Array | None = None) -> tuple[float, Array | None]:
        """Scalar §3 distance at ``p``, memo-cached under the exact key."""
        key = (float(p[0]), float(p[1]), float(p[2]), float(p[3]), float(p[4]))
        if cut is None and memo is not None:
            hit = memo.get(key)
            if hit is not None:
                return float(hit), None
        if cut is None:
            cut = plan.cut_band(vol, euler_to_matrix(p[0], p[1], p[2]))
        d = float(
            dc.distance_band(shifted_view(p[3], p[4]), cut, cut_modulation=mod_band)
        )
        if memo is not None:
            memo.put(key, d)
        return d, cut

    p = np.array([start.theta, start.phi, start.omega, start.cx, start.cy], dtype=float)
    d, cut = distance_at(p)
    lam = float(damping)
    n_iters = 0
    converged = False
    final_step_deg = 0.0
    for _ in range(max_iters):
        n_iters += 1
        if cut is None:
            # A memo hit returned only the scalar; the Jacobian base point
            # needs the cut itself.  One single-rotation gather, outside
            # the per-candidate regime RL010 patrols.
            cut = plan.cut_band(vol, euler_to_matrix(p[0], p[1], p[2]))  # repro-lint: allow[RL010] single Jacobian base cut, not a candidate loop
        view_shifted = shifted_view(p[3], p[4])
        r = residual(cut, view_shifted)
        # All six angle-perturbed rotations through one batched gather.
        angles = np.repeat(p[None, :3], 6, axis=0)
        for j in range(3):
            angles[2 * j, j] += _H_DEG
            angles[2 * j + 1, j] -= _H_DEG
        rots = euler_to_matrix(angles[:, 0], angles[:, 1], angles[:, 2])
        cuts6 = plan.cut_bands(vol, rots)
        cols = [
            (residual(cuts6[2 * j], view_shifted) - residual(cuts6[2 * j + 1], view_shifted))
            / (2.0 * _H_DEG)
            for j in range(3)
        ]
        for axis in (3, 4):
            hi = p.copy()
            lo = p.copy()
            hi[axis] += _H_PX
            lo[axis] -= _H_PX
            cols.append(
                (residual(cut, shifted_view(hi[3], hi[4])) - residual(cut, shifted_view(lo[3], lo[4])))
                / (2.0 * _H_PX)
            )
        jac = np.stack(cols, axis=1)  # (n_band, 5) complex
        normal = np.real(jac.conj().T @ jac)
        grad = np.real(jac.conj().T @ r)
        diag = np.diag(normal).copy()
        diag[diag <= 0.0] = 1.0
        d_before = d
        accepted = False
        while lam <= _LAMBDA_MAX:
            try:
                delta = np.linalg.solve(normal + lam * np.diag(diag), -grad)
            except np.linalg.LinAlgError:
                lam *= 4.0
                continue
            d_trial, cut_trial = distance_at(p + delta)
            if d_trial < d:
                p = p + delta
                d, cut = d_trial, cut_trial
                lam = max(lam / 3.0, 1e-12)
                accepted = True
                final_step_deg = float(np.max(np.abs(delta[:3])))
                break
            lam *= 4.0
        if not accepted or d_before - d <= tol * d_before:
            converged = True
            break
    if counters is not None:
        counters.count_polish(n_iters)
    return PolishResult(
        orientation=Orientation(
            float(p[0]), float(p[1]), float(p[2]), float(p[3]), float(p[4])
        ),
        distance=d,
        n_iterations=n_iters,
        converged=converged,
        final_step_deg=final_step_deg,
    )
