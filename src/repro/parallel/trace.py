"""Execution tracing for simulated-cluster runs.

The virtual clock says *how long* a run took; a trace says *where the time
went per rank* — the tool you reach for when a Table-1-style row looks
wrong.  :class:`TraceRecorder` collects ``(rank, step, t0, t1)`` spans in
simulated time and renders an ASCII Gantt chart, so a run's structure
(compute bands, barrier waits, master I/O serialization) is visible in a
terminal, no plotting stack required.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Span", "TraceRecorder", "render_gantt"]


@dataclass(frozen=True)
class Span:
    """One contiguous activity of one rank, in simulated seconds."""

    rank: int
    step: str
    t_start: float
    t_stop: float

    def __post_init__(self) -> None:
        if self.t_stop < self.t_start:
            raise ValueError("span ends before it starts")
        if self.rank < 0:
            raise ValueError("rank must be non-negative")

    @property
    def duration(self) -> float:
        return self.t_stop - self.t_start


@dataclass
class TraceRecorder:
    """Collects spans; thread-safe appends are the caller's concern (the
    simulated communicator serializes per-rank activity anyway)."""

    spans: list[Span] = field(default_factory=list)

    def record(self, rank: int, step: str, t_start: float, t_stop: float) -> None:
        """Append one activity span (simulated seconds)."""
        self.spans.append(Span(rank, step, t_start, t_stop))

    def total_by_step(self) -> dict[str, float]:
        """Aggregate busy time per step name, over all ranks."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.step] = out.get(s.step, 0.0) + s.duration
        return out

    def total_by_rank(self) -> dict[int, float]:
        """Aggregate busy time per rank, over all steps."""
        out: dict[int, float] = {}
        for s in self.spans:
            out[s.rank] = out.get(s.rank, 0.0) + s.duration
        return out

    def makespan(self) -> float:
        """Latest span end — the simulated wall time of the traced run."""
        return max((s.t_stop for s in self.spans), default=0.0)

    def idle_fraction(self, n_ranks: int | None = None) -> float:
        """1 − busy/available: how much of the parallel machine sat idle."""
        if not self.spans:
            return 0.0
        ranks = n_ranks or (max(s.rank for s in self.spans) + 1)
        busy = sum(s.duration for s in self.spans)
        available = self.makespan() * ranks
        if available == 0:
            return 0.0
        return float(1.0 - busy / available)


def render_gantt(
    recorder: TraceRecorder, width: int = 72, legend: bool = True
) -> str:
    """ASCII Gantt chart: one row per rank, one letter per step.

    Steps are assigned letters in first-appearance order; overlapping spans
    on one rank overwrite left to right (the simulator serializes per-rank
    work, so overlaps indicate a recording bug and are rendered as-is).
    """
    if width < 10:
        raise ValueError("width too small to render")
    spans = recorder.spans
    if not spans:
        return "(empty trace)"
    t_max = recorder.makespan()
    if t_max <= 0:
        return "(zero-length trace)"
    steps: list[str] = []
    for s in spans:
        if s.step not in steps:
            steps.append(s.step)
    letters = {step: chr(ord("A") + i % 26) for i, step in enumerate(steps)}
    n_ranks = max(s.rank for s in spans) + 1
    rows = [[" "] * width for _ in range(n_ranks)]
    for s in spans:
        a = int(np.floor(s.t_start / t_max * (width - 1)))
        b = int(np.ceil(s.t_stop / t_max * (width - 1)))
        for i in range(a, max(b, a + 1)):
            rows[s.rank][i] = letters[s.step]
    lines = [f"rank {r:>2d} |{''.join(row)}|" for r, row in enumerate(rows)]
    lines.append(f"        0{' ' * (width - len(f'{t_max:.3g} s') - 1)}{t_max:.3g} s")
    if legend:
        lines.append("legend: " + "  ".join(f"{letters[s]}={s}" for s in steps))
    return "\n".join(lines)
