"""Pruned candidate search and continuous polish (DESIGN.md §11).

Two families of guarantees live here.  The pruning bound is *exact*: a
pruned batched search must reproduce the exhaustive search bit for bit
(hypothesis-checked at the window level, pinned again through the full
refiner), because a partial band sum is a monotone lower bound on the §3
distance.  The polish trades bit-identity for continuous optima, so its
tests assert the monotone contract (never worse than its start) and the
accuracy gate: polished distances dominate the brute-force fine tail it
replaces, at an angular resolution at least as fine as that tail's last
step (``accuracy_gate``-marked, also a named tools/check.py step).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align.distance import DistanceComputer
from repro.align.fused import get_match_plan
from repro.density import asymmetric_phantom
from repro.engine.config import EngineConfig
from repro.fourier import centered_fftn
from repro.fourier.slicing import extract_slice
from repro.geometry import Orientation, euler_to_matrix
from repro.imaging.simulate import simulate_views
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel
from repro.refine.polish import polish_view
from repro.refine.prune import PruneParams, PruneSearch, center_offsets
from repro.refine.refiner import OrientationRefiner
from repro.refine.window import sliding_window_search


def pruned_config(base: EngineConfig, **overrides) -> EngineConfig:
    prune = {"enabled": True, **overrides.pop("prune", {})}
    data = {**base.to_dict(), "prune": prune, **overrides}
    return EngineConfig.from_dict(data)


@pytest.fixture(scope="module")
def small_problem():
    density = asymmetric_phantom(16, seed=3).normalized()
    views = simulate_views(
        density, 3, initial_angle_error_deg=2.0, center_sigma_px=0.5, seed=3
    )
    schedule = MultiResolutionSchedule(
        (
            RefinementLevel(1.0, 1.0, half_steps=2),
            RefinementLevel(0.5, 0.5, half_steps=2),
        )
    )
    return density, views, schedule


# -- PruneParams / PruneSearch unit behavior ---------------------------------
def test_prune_params_validation():
    with pytest.raises(ValueError):
        PruneParams(rank=0)
    with pytest.raises(ValueError):
        PruneParams(rank=2, top_k=3)
    with pytest.raises(ValueError):
        PruneParams(margin=-1e-9)
    with pytest.raises(ValueError):
        PruneParams(shell_groups=0)


def test_prune_search_bound_opens_only_after_rank_filled():
    search = PruneSearch(PruneParams(rank=2, top_k=2))
    assert search.bound() == float("inf")
    search.observe([(0.0, 0.0, 0.0, 0.0, 0.0)], np.array([3.0]))
    assert search.bound() == float("inf"), "bound before the ranking exists"
    search.observe([(1.0, 0.0, 0.0, 0.0, 0.0)], np.array([5.0]))
    assert search.bound() == pytest.approx(5.0, rel=1e-8)
    # a better candidate tightens the k-th best
    search.observe([(2.0, 0.0, 0.0, 0.0, 0.0)], np.array([1.0]))
    assert search.bound() == pytest.approx(3.0, rel=1e-8)


def test_prune_search_deduplicates_reobserved_candidates():
    search = PruneSearch(PruneParams(rank=2, top_k=2))
    key = (10.0, 20.0, 30.0, 0.0, 0.0)
    search.observe([key, key], np.array([2.0, 2.0]))
    assert len(search) == 1, "same orientation key must occupy one slot"
    search.observe([(1.0, 0.0, 0.0, 0.0, 0.0)], np.array([4.0]))
    assert search.basins() == (Orientation(*key), Orientation(1.0, 0.0, 0.0, 0.0, 0.0))


def test_prune_search_ignores_abandoned_inf_values():
    search = PruneSearch(PruneParams(rank=1, top_k=1))
    search.observe(
        [(0.0,) * 5, (1.0, 0.0, 0.0, 0.0, 0.0)], np.array([np.inf, 2.0])
    )
    assert len(search) == 1
    assert search.bound() == pytest.approx(2.0, rel=1e-8)


def test_center_offsets_order_scores_center_first():
    flat = center_offsets((3, 3, 3))
    order = np.argsort(flat, kind="stable")
    assert flat[order[0]] == 0.0, "window center must be evaluated first"
    assert flat is center_offsets((3, 3, 3)), "per-shape cache"
    assert not flat.flags.writeable


# -- the exactness invariant: pruned == exhaustive, bit for bit --------------
@st.composite
def prune_problem(draw):
    seed = draw(st.integers(0, 10_000))
    step = draw(st.floats(min_value=0.3, max_value=2.0))
    half_steps = draw(st.integers(1, 3))
    rank = draw(st.integers(1, 4))
    rng = np.random.default_rng(seed)
    vol = rng.normal(size=(12, 12, 12))
    theta, phi, omega = rng.uniform(0.0, 360.0, size=3)
    return vol, (theta, phi, omega), step, half_steps, rank


@given(problem=prune_problem())
@settings(max_examples=20, deadline=None)
def test_pruned_window_search_is_bit_identical_to_exhaustive(problem):
    """The tested invariant behind DESIGN.md §11: for any data, any window
    and any tracker rank, the pruned batched search returns the exact bits
    of the exhaustive batched search — orientation and distance."""
    vol, (t, p, o), step, half_steps, rank = problem
    ft = centered_fftn(vol)
    view = extract_slice(ft, euler_to_matrix(t, p, o))
    center = Orientation(t + step / 3.0, p - step / 2.0, o + step / 4.0)
    kwargs = dict(step_deg=step, half_steps=half_steps, max_slides=2, kernel="batched")
    exhaustive = sliding_window_search(view, ft, center, **kwargs)
    pruned = sliding_window_search(
        view, ft, center,
        prune=PruneParams(rank=rank, top_k=rank, seed_chunk=8, chunk=16),
        **kwargs,
    )
    assert pruned.orientation.as_tuple() == exhaustive.orientation.as_tuple()
    assert pruned.distance == exhaustive.distance


def test_pruned_basins_match_exhaustive_top_k():
    """With rank k, the basin set is exactly the k best of the exhaustive
    ranking (same orientations, same order)."""
    rng = np.random.default_rng(5)
    vol = rng.normal(size=(12, 12, 12))
    ft = centered_fftn(vol)
    view = extract_slice(ft, euler_to_matrix(40.0, 70.0, 10.0))
    center = Orientation(40.3, 69.6, 10.2)
    k = 3
    kwargs = dict(step_deg=1.0, half_steps=2, max_slides=2, kernel="batched")
    wide = sliding_window_search(
        view, ft, center, prune=PruneParams(rank=1000, top_k=k), **kwargs
    )
    pruned = sliding_window_search(
        view, ft, center, prune=PruneParams(rank=k, top_k=k), **kwargs
    )
    assert pruned.basins == wide.basins[:k]


def test_refiner_pruned_run_is_bit_identical(small_problem):
    """Whole-stack pinning of the same invariant, with the memo on and the
    bound actually firing (perf counters prove candidates were abandoned)."""
    density, views, schedule = small_problem
    base = OrientationRefiner(density).refine(views, schedule=schedule)
    refiner = OrientationRefiner(
        density, config=pruned_config(OrientationRefiner(density).config)
    )
    pruned = refiner.refine(views, schedule=schedule)
    assert [o.as_tuple() for o in pruned.orientations] == [
        o.as_tuple() for o in base.orientations
    ]
    assert np.array_equal(pruned.distances, base.distances)
    assert pruned.perf is not None and pruned.perf.pruned > 0
    assert pruned.perf.evaluated + pruned.perf.pruned == pruned.perf.gathers
    assert "pruned" in pruned.perf.summary()
    assert pruned.perf.level_pruned, "per-level pruning ratios must be recorded"


def test_refiner_pruned_parallel_matches_serial(small_problem):
    """Prune trackers live inside each view's own search, so worker count
    cannot change one bit (nor one pruning decision in aggregate)."""
    density, views, schedule = small_problem
    config = pruned_config(OrientationRefiner(density).config)
    serial = OrientationRefiner(density, config=config).refine(views, schedule=schedule)
    pooled = OrientationRefiner(density, config=config).refine(
        views, schedule=schedule, n_workers=2
    )
    assert [o.as_tuple() for o in pooled.orientations] == [
        o.as_tuple() for o in serial.orientations
    ]
    assert np.array_equal(pooled.distances, serial.distances)
    assert pooled.perf is not None and serial.perf is not None
    assert pooled.perf.level_pruned == serial.perf.level_pruned
    assert pooled.perf.level_evaluated == serial.perf.level_evaluated


def test_refiner_top_k_seeds_never_lose_to_single_path(small_problem):
    """Multi-basin seeding can only find equal-or-better minima: each next
    level starts from the single-path seed *plus* alternates."""
    density, views, schedule = small_problem
    base = OrientationRefiner(density).refine(views, schedule=schedule)
    config = pruned_config(OrientationRefiner(density).config, prune={"top_k": 3})
    multi = OrientationRefiner(density, config=config).refine(views, schedule=schedule)
    assert np.all(np.asarray(multi.distances) <= np.asarray(base.distances) * (1 + 1e-12))


# -- polish: monotone contract and stack wiring ------------------------------
def polish_setup(size=16, seed=2):
    density = asymmetric_phantom(size, seed=seed).normalized()
    views = simulate_views(density, 1, initial_angle_error_deg=1.0, seed=seed)
    dc = DistanceComputer(size)
    vol_ft = density.fourier_oversampled(2)
    plan = get_match_plan(dc, vol_ft.shape[0], "trilinear")
    from repro.fourier.transforms import centered_fft2

    view_band = plan.gather_view(centered_fft2(np.asarray(views.images[0], dtype=float)))
    return views.initial_orientations[0], view_band, vol_ft, plan


def test_polish_never_worse_than_start():
    start, view_band, vol_ft, plan = polish_setup()
    d_start = float(
        plan.dc.distance_band(
            plan.phase_shift_band(view_band, -start.cx, -start.cy),
            plan.cut_band(vol_ft, euler_to_matrix(start.theta, start.phi, start.omega)),
        )
    )
    res = polish_view(view_band, vol_ft, plan, start)
    assert res.distance <= d_start
    assert res.n_iterations >= 1
    assert res.final_step_deg >= 0.0


def test_polish_requires_plain_distance():
    start, view_band, vol_ft, _ = polish_setup()
    dc = DistanceComputer(16, normalized=True)
    plan = get_match_plan(dc, vol_ft.shape[0], "trilinear")
    with pytest.raises(ValueError, match="unnormalized"):
        polish_view(view_band, vol_ft, plan, start)


def test_polish_counts_iterations():
    from repro.perf import PerfCounters

    start, view_band, vol_ft, plan = polish_setup()
    counters = PerfCounters()
    res = polish_view(view_band, vol_ft, plan, start, counters=counters)
    assert counters.polish_calls == 1
    assert counters.polish_iters == res.n_iterations
    assert "polish" in counters.summary()


def test_refiner_polish_runs_as_extra_stage(small_problem):
    """prune+polish through the refiner: the kept grid plus the polish
    stage, with polish counters surfaced on RefinementResult.perf."""
    density, views, _ = small_problem
    schedule = MultiResolutionSchedule(
        (
            RefinementLevel(1.0, 1.0, half_steps=2),
            RefinementLevel(0.5, 0.5, half_steps=2),
            RefinementLevel(0.05, 0.05, half_steps=2),
        )
    )
    base = OrientationRefiner(density).refine(views, schedule=schedule)
    config = pruned_config(
        OrientationRefiner(density).config,
        polish={"enabled": True, "replace_below_deg": 0.1},
    )
    run = OrientationRefiner(density, config=config).refine(
        views, schedule=schedule, keep_level_snapshots=True
    )
    # polish replaces the 0.05° level and must do at least as well
    assert np.all(np.asarray(run.distances) <= np.asarray(base.distances) * (1 + 1e-12))
    assert run.perf is not None
    assert run.perf.polish_calls == len(views)
    assert run.perf.polish_iters >= run.perf.polish_calls
    assert "polish" in run.perf.level_seconds
    assert len(run.per_level_orientations) == 3, "kept levels + polish snapshot"


def test_multi_basin_checkpoint_resumes_bit_identically(small_problem, tmp_path):
    """Multi-basin runs checkpoint now: the basin set rides the checkpoint
    header (DESIGN.md §14), so a checkpointed top_k run matches the plain
    one and a resume from the final checkpoint returns the same bits."""
    density, views, schedule = small_problem
    config = pruned_config(OrientationRefiner(density).config, prune={"top_k": 2})
    plain = OrientationRefiner(density, config=config).refine(views, schedule=schedule)

    ckpt = str(tmp_path / "run.ckpt")
    checkpointed = OrientationRefiner(density, config=config).refine(
        views, schedule=schedule, checkpoint_path=ckpt
    )
    resumed = OrientationRefiner(density, config=config).refine(
        views, schedule=schedule, checkpoint_path=ckpt, resume=True
    )
    for run in (checkpointed, resumed):
        assert [o.as_tuple() for o in run.orientations] == [
            o.as_tuple() for o in plain.orientations
        ]
        assert np.array_equal(run.distances, plain.distances)


def test_prune_polish_config_fingerprints_are_distinct(small_problem):
    density, _, _ = small_problem
    base = OrientationRefiner(density).config
    fps = {
        base.fingerprint(),
        pruned_config(base).fingerprint(),
        pruned_config(base, prune={"top_k": 3}).fingerprint(),
        pruned_config(base, polish={"enabled": True}).fingerprint(),
    }
    assert len(fps) == 4, "prune/polish settings must be resume-visible"


# -- the accuracy gate (also a named tools/check.py step) --------------------
@pytest.mark.accuracy_gate
def test_polish_accuracy_gate():
    """The gate the polish ships under, in place of the bit-identity oracle:

    1. *objective non-regression* — for every view the polished distance is
       ≤ the distance the brute-force full schedule (with its 0.05° tail)
       reaches, so dropping the tail never costs objective quality;
    2. *resolution* — the polish converged, and its last accepted step was
       at least as fine as the replaced tail's final angular step.
    """
    tail_step_deg = 0.05
    density = asymmetric_phantom(16, seed=11).normalized()
    views = simulate_views(
        density, 3, initial_angle_error_deg=2.0, center_sigma_px=0.5, seed=11
    )
    full = MultiResolutionSchedule(
        (
            RefinementLevel(1.0, 1.0, half_steps=2),
            RefinementLevel(0.5, 0.5, half_steps=2),
            RefinementLevel(tail_step_deg, tail_step_deg, half_steps=2),
        )
    )
    brute = OrientationRefiner(density).refine(views, schedule=full)

    config = pruned_config(
        OrientationRefiner(density).config,
        polish={"enabled": True, "replace_below_deg": 0.1, "n_best": 2},
        prune={"top_k": 1},
    )
    run = OrientationRefiner(density, config=config).refine(views, schedule=full)
    assert np.all(
        np.asarray(run.distances) <= np.asarray(brute.distances) * (1 + 1e-12)
    ), "polished objective regressed vs the brute-force fine tail"

    # resolution leg, on the polish primitive itself (final_step_deg is a
    # PolishResult detail the refiner folds away)
    kept = MultiResolutionSchedule(full.levels[:2])
    seeded = OrientationRefiner(density).refine(views, schedule=kept)
    dc = DistanceComputer(16)
    vol_ft = density.fourier_oversampled(2)
    plan = get_match_plan(dc, vol_ft.shape[0], "trilinear")
    from repro.fourier.transforms import centered_fft2

    fts = centered_fft2(np.asarray(views.images, dtype=float))
    for q, start in enumerate(seeded.orientations):
        res = polish_view(plan.gather_view(fts[q]), vol_ft, plan, start)
        assert res.converged, f"view {q}: polish hit the iteration cap"
        assert res.final_step_deg <= tail_step_deg, (
            f"view {q}: final accepted step {res.final_step_deg:.2e}° is coarser "
            f"than the replaced tail's {tail_step_deg}° resolution"
        )
