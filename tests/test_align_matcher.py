"""Tests for window matching (steps f-h)."""

import numpy as np
import pytest

from repro.align import DistanceComputer, match_view, orientation_window
from repro.fourier.slicing import extract_slice
from repro.geometry import Orientation


def test_match_recovers_exact_grid_orientation(phantom24):
    truth = Orientation(40.0, 55.0, 20.0)
    vft = phantom24.fourier_oversampled(2)
    view = extract_slice(vft, truth.matrix(), out_size=24)
    grid = orientation_window(truth, step_deg=2.0, half_steps=2)
    res = match_view(view, vft, grid, r_max=10)
    assert res.orientation.as_tuple() == pytest.approx(truth.as_tuple())
    assert res.distance == pytest.approx(0.0, abs=1e-9)
    assert res.n_matches == grid.size
    assert res.on_edge == (False, False, False)


def test_match_finds_nearest_when_truth_off_grid(phantom24):
    truth = Orientation(40.7, 55.0, 20.0)
    vft = phantom24.fourier_oversampled(2)
    view = extract_slice(vft, truth.matrix(), out_size=24)
    center = Orientation(40.0, 55.0, 20.0)
    grid = orientation_window(center, step_deg=1.0, half_steps=2)
    res = match_view(view, vft, grid, r_max=10)
    assert res.orientation.theta == pytest.approx(41.0)


def test_match_edge_flag_set_when_truth_outside(phantom24):
    truth = Orientation(46.0, 55.0, 20.0)
    vft = phantom24.fourier_oversampled(2)
    view = extract_slice(vft, truth.matrix(), out_size=24)
    center = Orientation(42.0, 55.0, 20.0)  # truth 4 deg away, window +-2
    grid = orientation_window(center, step_deg=1.0, half_steps=2)
    res = match_view(view, vft, grid, r_max=10)
    assert res.on_edge[0] is True
    assert res.orientation.theta == pytest.approx(44.0)


def test_match_distances_array_complete(phantom24):
    truth = Orientation(40.0, 55.0, 20.0)
    vft = phantom24.fourier_oversampled(2)
    view = extract_slice(vft, truth.matrix(), out_size=24)
    grid = orientation_window(truth, 1.0, half_steps=1)
    res = match_view(view, vft, grid, r_max=10)
    assert res.distances.shape == (27,)
    assert res.distances[res.flat_index] == res.distance
    assert np.all(res.distances >= res.distance)


def test_match_reuses_distance_computer(phantom24):
    truth = Orientation(40.0, 55.0, 20.0)
    vft = phantom24.fourier_oversampled(2)
    view = extract_slice(vft, truth.matrix(), out_size=24)
    dc = DistanceComputer(24, r_max=10)
    grid = orientation_window(truth, 1.0, half_steps=1)
    a = match_view(view, vft, grid, distance_computer=dc)
    b = match_view(view, vft, grid, r_max=10)
    assert a.distance == pytest.approx(b.distance)
    assert a.flat_index == b.flat_index
