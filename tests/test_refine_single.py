"""Tests for per-view per-level refinement (steps f–l combined)."""

import numpy as np
import pytest

from repro.align import DistanceComputer
from repro.fourier.slicing import extract_slice
from repro.geometry import Orientation, orientation_distance_deg
from repro.imaging import phase_shift_ft
from repro.refine import refine_view_at_level


@pytest.fixture(scope="module")
def setup():
    from repro.density import asymmetric_phantom

    density = asymmetric_phantom(24, seed=3).normalized()
    vft = density.fourier_oversampled(2)
    truth = Orientation(60.0, 40.0, 25.0, 1.0, -0.5)
    clean_cut = extract_slice(vft, truth.matrix(), out_size=24)
    view_ft = phase_shift_ft(clean_cut, truth.cx, truth.cy)
    dc = DistanceComputer(24, r_max=10)
    return vft, truth, view_ft, dc


def test_joint_angle_and_center_recovery(setup):
    vft, truth, view_ft, dc = setup
    start = Orientation(truth.theta + 1.5, truth.phi - 1.0, truth.omega + 1.0, 0.0, 0.0)
    res = refine_view_at_level(
        view_ft, vft, start,
        angular_step_deg=0.5, center_step_px=0.25,
        half_steps=4, center_half_steps=3, max_slides=4,
        distance_computer=dc,
    )
    assert orientation_distance_deg(res.orientation, truth) < 0.8
    assert res.orientation.cx == pytest.approx(truth.cx, abs=0.3)
    assert res.orientation.cy == pytest.approx(truth.cy, abs=0.3)


def test_counters_populated(setup):
    vft, truth, view_ft, dc = setup
    res = refine_view_at_level(
        view_ft, vft, truth, angular_step_deg=1.0, center_step_px=0.5,
        half_steps=1, center_half_steps=1, distance_computer=dc,
    )
    assert res.n_matches >= 27
    assert res.n_center_evals >= 9
    assert res.n_windows >= 1


def test_no_center_refinement_mode(setup):
    vft, truth, view_ft, dc = setup
    start = truth.with_center(truth.cx, truth.cy)
    res = refine_view_at_level(
        view_ft, vft, start, angular_step_deg=1.0, center_step_px=1.0,
        half_steps=1, distance_computer=dc, refine_centers=False,
    )
    assert res.n_center_evals == 0
    assert res.orientation.cx == truth.cx  # untouched


def test_early_exit_when_converged(setup):
    vft, truth, view_ft, dc = setup
    # start exactly at the truth: the second inner iteration must detect no
    # change and stop (n_windows stays at 1)
    res = refine_view_at_level(
        view_ft, vft, truth, angular_step_deg=1.0, center_step_px=0.5,
        half_steps=1, center_half_steps=1, distance_computer=dc, inner_iterations=3,
    )
    assert res.n_windows == 1


def test_inner_iterations_validated(setup):
    vft, truth, view_ft, dc = setup
    with pytest.raises(ValueError):
        refine_view_at_level(
            view_ft, vft, truth, 1.0, 1.0, distance_computer=dc, inner_iterations=0
        )


def test_center_error_corrupts_then_inner_loop_fixes(setup):
    # with a 1.5 px center error the first angular pass is biased; the
    # second inner pass (after center correction) must land closer
    vft, truth, view_ft, dc = setup
    start = Orientation(truth.theta + 1.0, truth.phi, truth.omega, 0.0, 0.0)
    res1 = refine_view_at_level(
        view_ft, vft, start, 0.5, 0.5, half_steps=3, center_half_steps=3,
        distance_computer=dc, inner_iterations=1,
    )
    res2 = refine_view_at_level(
        view_ft, vft, start, 0.5, 0.5, half_steps=3, center_half_steps=3,
        distance_computer=dc, inner_iterations=2,
    )
    e1 = orientation_distance_deg(res1.orientation, truth)
    e2 = orientation_distance_deg(res2.orientation, truth)
    assert e2 <= e1 + 1e-9
