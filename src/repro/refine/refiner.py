"""The serial orientation-refinement driver (steps a–o, single process).

:class:`OrientationRefiner` runs the complete per-iteration pipeline for a
whole view set: build D̂ once (step a), transform and CTF-correct each view
(steps d–e), then for each level of the multi-resolution schedule run the
sliding-window angular search and the center box search per view
(steps f–l), synchronizing between levels (steps m–n) and returning the
refined orientation set (step o).

Step times are accumulated under the same names as Tables 1 and 2 so the
serial and simulated-parallel drivers print identical table layouts.  The
distributed-memory version lives in :mod:`repro.parallel.prefine` and
reuses the same per-view kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.align.distance import DistanceComputer, radius_weights
from repro.align.memo import MemoStore
from repro.arraytypes import Array
from repro.ctf.correct import phase_flip
from repro.ctf.model import CTFParams
from repro.density.map import DensityMap
from repro.engine.config import (
    ConfigError,
    EngineConfig,
    KernelConfig,
    MemoConfig,
    ParallelConfig,
)
from repro.fourier.transforms import centered_fft2
from repro.geometry.euler import Orientation
from repro.imaging.simulate import SimulatedViews
from repro.perf import PerfCounters
from repro.refine.multires import (
    MultiResolutionSchedule,
    RefinementLevel,
    default_schedule,
    split_below,
)
from repro.refine.prune import PruneParams
from repro.refine.stats import RefinementStats
from repro.utils import StepTimer, Timer

__all__ = ["OrientationRefiner", "RefinementResult"]

# Canonical step names, matching the row labels of Tables 1 and 2.
STEP_3D_DFT = "3D DFT"
STEP_READ_IMAGE = "Read image"
STEP_FFT_ANALYSIS = "FFT analysis"
STEP_REFINEMENT = "Orientation refinement"
# Not a Table 1/2 row: symmetry handling postdates the paper's timings.
STEP_SYMMETRY = "Symmetry detection"


@dataclass
class RefinementResult:
    """Everything one refinement iteration produces.

    Attributes
    ----------
    orientations:
        Refined orientation (with center) per view.
    distances:
        Final minimum distance per view.
    stats:
        Operation counters per level.
    timer:
        Wall-clock per named step (Tables 1/2 rows).
    per_level_orientations:
        Snapshot of the orientations after each level (for convergence
        studies).
    perf:
        Batched-engine perf counters (per-level wall time, gathers vs.
        memo hits, candidates/second); ``None`` for the other kernels.
    symmetry_group:
        Schoenflies symbol of the point group the search was restricted
        by — configured (``fixed:<group>``) or detected.  ``None`` when
        symmetry handling was off; ``"C1"`` when detection ran and found
        nothing (no restriction was applied).
    symmetry_order:
        Order |G| of the applied restriction (1 when none was applied).
    """

    orientations: list[Orientation]
    distances: Array
    stats: RefinementStats
    timer: StepTimer
    per_level_orientations: list[list[Orientation]] = field(default_factory=list)
    perf: PerfCounters | None = None
    symmetry_group: str | None = None
    symmetry_order: int = 1


class OrientationRefiner:
    """Serial refinement engine bound to one current density map.

    Parameters
    ----------
    density:
        The current 3D electron-density map ``D``.
    r_max:
        Fourier radius cutoff ``r_map`` (defaults to the full band).
    weighting:
        Radial weighting kind for the distance (``"none"``, ``"radius"``,
        ``"radius2"``).
    interpolation:
        Cut interpolation, ``"trilinear"`` or ``"nearest"``.
    ctf_correction:
        ``"phase_flip"`` (default), ``"none"`` — how step (e) corrects view
        transforms when CTF parameters are provided.
    pad_factor:
        Oversampling of D̂ (zero-padding factor).  2 (default) keeps the
        trilinear slice error well below the signal differences the search
        must resolve; 1 reproduces the raw-grid behaviour for ablations.
    kernel:
        ``"batched"`` (default) evaluates whole candidate windows through
        one stacked in-band kernel with per-view orientation memoization;
        ``"fused"`` is the per-window in-band kernel without batching or
        memo (:mod:`repro.align.fused`); ``"reference"`` is the original
        slice-then-distance path kept for verification.  All three
        produce numerically identical results.
    memo:
        Enable the orientation memo cache (batched kernel only): window
        re-centers and level handoffs skip re-scoring candidates already
        seen for a view at the same center shift.  Memoized values are
        exact previous results, so this cannot change any output.
    n_workers:
        Process count for the view fan-out (``1`` = serial, the default).
        Workers share one D̂ replica via ``multiprocessing.shared_memory``
        and return bit-identical results to the serial loop.
    config:
        A complete :class:`~repro.engine.config.EngineConfig`.  When
        given, it is the single source of truth and the individual
        kwargs above are ignored; the kwargs form is a thin shim kept
        for existing callers — it builds the equivalent config and
        behaves identically.
    """

    def __init__(
        self,
        density: DensityMap,
        r_max: float | None = None,
        weighting: str = "none",
        interpolation: str = "trilinear",
        ctf_correction: str = "phase_flip",
        max_slides: int = 8,
        pad_factor: int = 2,
        normalized_distance: bool = False,
        kernel: str = "batched",
        memo: bool = True,
        n_workers: int = 1,
        config: EngineConfig | None = None,
    ) -> None:
        if config is None:
            # deprecation shim: scattered kwargs → one validated config
            # (ConfigError subclasses ValueError, so legacy callers that
            # catch ValueError on bad options keep working)
            config = EngineConfig(
                kernel=KernelConfig(kernel=kernel, interpolation=interpolation),
                parallel=ParallelConfig(
                    backend="serial" if int(n_workers) == 1 else "process",
                    n_workers=int(n_workers),
                ),
                memo=MemoConfig(enabled=bool(memo)),
                r_max=None if r_max is None else float(r_max),
                max_slides=int(max_slides),
                refine_centers=True,
                pad_factor=int(pad_factor),
                weighting=weighting,
                ctf_correction=ctf_correction,
                normalized_distance=bool(normalized_distance),
            )
        self.config = config
        self.density = density
        self.size = density.size
        self.r_max = float(self.size // 2 if config.r_max is None else config.r_max)
        w = (
            None
            if config.weighting == "none"
            else radius_weights(self.size, config.weighting, self.r_max)
        )
        self.distance_computer = DistanceComputer(
            self.size, r_max=self.r_max, weights=w,
            normalized=config.normalized_distance,
        )
        self.interpolation = config.kernel.interpolation
        self.ctf_correction = config.ctf_correction
        self.kernel = config.kernel.kernel
        self.memo = config.memo.enabled
        self.n_workers = config.parallel.n_workers
        self.max_slides = config.max_slides
        self.pad_factor = config.pad_factor
        self._volume_ft: Array | None = None
        # |CTF| band modulations are pure functions of (params, apix) for a
        # fixed distance computer; cache them across refine() calls so
        # repeated iterations over the same micrographs rebuild nothing.
        self._modulation_cache: dict[tuple[CTFParams, float], Array] = {}

    def _run_config(self, n_workers: int | None) -> EngineConfig:
        """The effective config for one ``refine()`` call.

        Applies the per-call worker override and keeps the backend kind
        consistent with it; the sim backend cannot drive the
        level-granular loop, so asking this refiner to run one is an
        error (use :class:`~repro.engine.core.RefinementEngine`).
        """
        from dataclasses import replace

        cfg = self.config
        if cfg.parallel.backend == "sim":
            raise ConfigError(
                "OrientationRefiner runs the serial/process backends; "
                "route parallel.backend = 'sim' configs through "
                "RefinementEngine.run() instead"
            )
        if n_workers is not None and int(n_workers) != cfg.parallel.n_workers:
            workers = int(n_workers)
            cfg = replace(
                cfg,
                parallel=replace(
                    cfg.parallel,
                    backend="serial" if workers == 1 else "process",
                    n_workers=workers,
                ),
            )
        return cfg

    # -- step a -------------------------------------------------------------
    def volume_ft(self, timer: StepTimer | None = None) -> Array:
        """D̂ = DFT(D) (oversampled), built once and cached (step a)."""
        if self._volume_ft is None:
            t = timer or StepTimer()
            with t.step(STEP_3D_DFT):
                self._volume_ft = self.density.fourier_oversampled(self.pad_factor)
        return self._volume_ft

    # -- steps d–e ----------------------------------------------------------
    def prepare_views(
        self,
        images: Array,
        ctf_params: list[CTFParams] | None,
        apix: float,
        timer: StepTimer | None = None,
    ) -> tuple[Array, list[Array | None]]:
        """2D DFT + CTF correction of every view (steps d and e).

        Returns ``(transforms, cut_modulations)``.  With phase flipping the
        view keeps |CTF|-attenuated amplitudes, so the matching loop must
        impose the same |CTF| on every calculated cut — the returned
        per-view modulation vectors (pre-gathered onto the distance band)
        do exactly that.  Views from the same micrograph share a CTF, so
        modulations are cached per parameter set.
        """
        t = timer or StepTimer()
        with t.step(STEP_FFT_ANALYSIS):
            fts = centered_fft2(np.asarray(images, dtype=float))
        modulations: list[Array | None] = [None] * fts.shape[0]
        if ctf_params is not None and self.ctf_correction == "phase_flip":
            from repro.ctf.model import ctf_2d

            with t.step(STEP_FFT_ANALYSIS):
                for i, p in enumerate(ctf_params):
                    fts[i] = phase_flip(fts[i], p, apix)
                    key = (p, float(apix))
                    if key not in self._modulation_cache:
                        self._modulation_cache[key] = self.distance_computer.gather_modulation(
                            np.abs(ctf_2d(p, self.size, apix))
                        )
                    modulations[i] = self._modulation_cache[key]
        return fts, modulations

    # -- the full iteration ---------------------------------------------------
    def refine(
        self,
        views: SimulatedViews | Array,
        initial_orientations: list[Orientation] | None = None,
        schedule: MultiResolutionSchedule | None = None,
        ctf_params: list[CTFParams] | None = None,
        apix: float | None = None,
        refine_centers: bool = True,
        keep_level_snapshots: bool = False,
        n_workers: int | None = None,
        scheduler=None,
        checkpoint_path: str | None = None,
        resume: bool = False,
        backend=None,
        on_final_result=None,
    ) -> RefinementResult:
        """Run one full refinement iteration over a view set.

        ``on_final_result`` is the streaming hook of the outer
        refine→reconstruct loop (DESIGN.md §14): a master-side callback
        fired once per view with that view's *final* per-view result —
        attached only to the last stage (the final grid level, or the
        polish when it is enabled), since earlier levels' orientations are
        still provisional.  It receives
        :class:`~repro.parallel.viewsched.ViewLevelResult` or
        :class:`~repro.parallel.viewsched.ViewPolishResult` objects with
        global view indices, in chunk-completion order.

        ``views`` may be a :class:`SimulatedViews` (orientations/CTF taken
        from it unless overridden) or a raw ``(m, l, l)`` image stack with
        explicit ``initial_orientations``.

        ``backend`` injects a pre-built
        :class:`~repro.engine.backends.ExecutionBackend` for the level
        fan-out (the caller owns its lifetime); by default the backend is
        built from the refiner's config.  ``n_workers`` overrides the
        config's worker count for this call; ``scheduler`` injects a
        pre-built (possibly shared)
        :class:`~repro.parallel.viewsched.ViewScheduler` instead — the
        caller then owns its lifetime.  All fan-out strategies are
        bit-identical.

        ``checkpoint_path`` enables level-granular fault tolerance: after
        every completed level the per-view orientations, distances and
        counters are written atomically (exact float64 round-trip) to that
        path.  With ``resume=True`` a usable checkpoint — same schedule
        fingerprint, same view count — seeds the run, skipping the levels
        it already covers; the resumed result is bit-identical to an
        uninterrupted run.  A missing or mismatched checkpoint is ignored
        (the run simply starts from scratch).  Level snapshots
        (``keep_level_snapshots``) cover only the levels this call
        actually executed.
        """
        if isinstance(views, SimulatedViews):
            images = views.images
            init = initial_orientations or views.initial_orientations
            ctf = ctf_params if ctf_params is not None else views.ctf_params
            pix = apix if apix is not None else views.apix
        else:
            images = np.asarray(views, dtype=float)
            if initial_orientations is None:
                raise ValueError("raw image stacks need explicit initial orientations")
            init = initial_orientations
            ctf = ctf_params
            pix = apix if apix is not None else self.density.apix
        if images.shape[1] != self.size:
            raise ValueError(
                f"view size {images.shape[1]} does not match map size {self.size}"
            )
        if len(init) != images.shape[0]:
            raise ValueError("need one initial orientation per view")
        sched = schedule or default_schedule()

        if resume and checkpoint_path is None:
            raise ValueError("resume=True requires a checkpoint_path")
        # Pruning/polish wiring (DESIGN.md §11).  The polish replaces the
        # finest grid levels, so the checkpointed schedule fingerprint below
        # covers only the *kept* levels; the polish itself checkpoints as
        # one extra stage.  Basin state (rank > 1) lives across stage
        # boundaries and rides the checkpoint header's ``basins`` tag.
        prune_cfg = self.config.prune
        polish_cfg = self.config.polish
        replaced_tail: tuple[RefinementLevel, ...] = ()
        if polish_cfg.enabled:
            sched, replaced_tail = split_below(sched, polish_cfg.replace_below_deg)
        prune_params: PruneParams | None = None
        if prune_cfg.enabled:
            top_k = prune_cfg.top_k or 1
            rank = max(top_k, polish_cfg.n_best if polish_cfg.enabled else 1)
            prune_params = PruneParams(
                rank=rank,
                top_k=top_k,
                margin=prune_cfg.margin,
                shell_groups=prune_cfg.shell_groups,
                seed_chunk=prune_cfg.seed_chunk,
                chunk=prune_cfg.chunk,
            )
        track_basins = prune_params is not None and prune_params.rank > 1
        n_stages = len(sched) + (1 if polish_cfg.enabled else 0)
        stats = RefinementStats(n_views=images.shape[0])
        orientations = list(init)
        distances = np.full(images.shape[0], np.inf)
        batched = self.kernel == "batched"
        memo_store = (
            MemoStore(capacity=self.config.memo.capacity)
            if (batched and self.memo)
            else None
        )
        counters = PerfCounters() if batched else None
        start_level = 0
        fingerprint = ""
        engine_fingerprint = ""
        restored_basins: list[tuple[Orientation, ...] | None] | None = None
        if checkpoint_path is not None:
            # Imported lazily: repro.faults.checkpoint reads/writes the
            # orientation-file format, which lives beside this module.
            from dataclasses import replace as _replace

            from repro.faults.checkpoint import (
                RefinementCheckpoint,
                save_checkpoint,
                try_load_checkpoint,
            )

            fingerprint = sched.fingerprint()
            # The engine fingerprint covers the *effective* run config:
            # the schedule actually refined plus kernel/memo/matching
            # settings — the fields a resume must not silently change.
            engine_fingerprint = _replace(
                self.config.with_schedule(sched),
                refine_centers=bool(refine_centers),
            ).fingerprint()
            if resume:
                found = try_load_checkpoint(
                    checkpoint_path,
                    fingerprint,
                    images.shape[0],
                    engine_fingerprint=engine_fingerprint,
                )
                if found is not None:
                    orientations = list(found.orientations)
                    distances = np.asarray(found.distances, dtype=float).copy()
                    stats = found.stats
                    start_level = found.levels_done
                    if memo_store is not None and found.memo is not None:
                        # warm memo from the killed run: resumed levels
                        # skip the gathers the dead run already paid for
                        memo_store.import_state(found.memo)
                    if track_basins and found.basins is not None:
                        # multi-basin state rides the checkpoint header:
                        # the resumed level re-seeds from the same basin
                        # centers the dead run would have used
                        restored_basins = list(found.basins)
        if start_level >= n_stages:
            # everything already done: no need to rebuild D̂ or transforms
            return RefinementResult(
                orientations=orientations,
                distances=distances,
                stats=stats,
                timer=StepTimer(),
                per_level_orientations=[],
                perf=counters,
            )

        timer = StepTimer()
        volume_ft = self.volume_ft(timer)
        with timer.step(STEP_READ_IMAGE):
            images = np.ascontiguousarray(images, dtype=float)
        fts, modulations = self.prepare_views(images, ctf, pix, timer)

        snapshots: list[list[Orientation]] = []
        # Imported lazily: repro.engine.backends pulls in repro.parallel,
        # which imports this module at package import time.
        from repro.engine.backends import ProcessBackend, make_backend

        own_backend = backend is None
        if backend is None:
            if scheduler is not None:
                # legacy injection contract: adopt the caller's pool,
                # never close it (ProcessBackend.close is a no-op then)
                backend = ProcessBackend(scheduler=scheduler)
            else:
                backend = make_backend(self._run_config(n_workers))
        # Symmetry restriction (DESIGN.md §13): resolved once per iteration
        # against the *current* map — a fixed group by name, or a detection
        # run fanned out through the backend.  The restriction then rides
        # every level (and memo key) below.
        restriction = None
        symmetry_group: str | None = None
        if self.config.symmetry.enabled:
            from repro.refine.restrict import resolve_restriction

            with timer.step(STEP_SYMMETRY):
                restriction, symmetry_group = resolve_restriction(
                    self.config.symmetry, self.density, backend=backend
                )
        basin_state: list[tuple[Orientation, ...] | None] | None = restored_basins
        final_level = len(sched) - 1
        try:
            for li, level in enumerate(sched):
                if li < start_level:
                    continue
                n_matches = n_center = n_wslides = n_cslides = 0
                candidates_before = 0 if counters is None else counters.candidates
                pruned_before = 0 if counters is None else counters.pruned
                evaluated_before = 0 if counters is None else counters.evaluated
                level_timer = Timer().start()
                with timer.step(STEP_REFINEMENT):
                    results = backend.run_level(
                        volume_ft,
                        fts,
                        orientations,
                        modulations,
                        level,
                        distance_computer=self.distance_computer,
                        kernel=self.kernel,
                        interpolation=self.interpolation,
                        max_slides=self.max_slides,
                        refine_centers=refine_centers,
                        memo_store=memo_store,
                        counters=counters,
                        prune=prune_params,
                        seed_basins=basin_state,
                        symmetry=restriction,
                        on_result=(
                            on_final_result
                            if li == final_level and not polish_cfg.enabled
                            else None
                        ),
                    )
                    if track_basins:
                        basin_state = [None] * len(orientations)
                    for res in results:
                        orientations[res.index] = res.orientation
                        distances[res.index] = res.distance
                        if track_basins and basin_state is not None:
                            basin_state[res.index] = res.basins or None
                        n_matches += res.n_matches
                        n_center += res.n_center_evals
                        n_wslides += int(res.slid_window)
                        n_cslides += int(res.slid_center)
                if counters is not None:
                    counters.record_level(
                        f"{level.angular_step_deg:g}deg",
                        level_timer.stop(),
                        counters.candidates - candidates_before,
                        pruned=counters.pruned - pruned_before,
                        evaluated=counters.evaluated - evaluated_before,
                    )
                stats.record_level(
                    level.angular_step_deg, n_matches, n_center, n_wslides, n_cslides
                )
                if keep_level_snapshots:
                    snapshots.append(list(orientations))
                if checkpoint_path is not None:
                    save_checkpoint(
                        checkpoint_path,
                        RefinementCheckpoint(
                            schedule_fingerprint=fingerprint,
                            levels_done=li + 1,
                            orientations=list(orientations),
                            distances=distances.copy(),
                            stats=stats,
                            memo=None if memo_store is None else memo_store.export_state(),
                            engine_fingerprint=engine_fingerprint,
                            basins=None if basin_state is None else list(basin_state),
                        ),
                    )
            if polish_cfg.enabled:
                # The continuous polish replacing the finest grid levels:
                # fanned out through the backend like every grid level
                # (views are independent; a handful of deterministic LM
                # iterations each), monotone per start, best start wins.
                level_timer = Timer().start()
                with timer.step(STEP_REFINEMENT):
                    polish_results = backend.run_polish(
                        volume_ft,
                        fts,
                        orientations,
                        distances,
                        modulations,
                        distance_computer=self.distance_computer,
                        interpolation=self.interpolation,
                        max_iters=polish_cfg.max_iters,
                        tol=polish_cfg.tol,
                        damping=polish_cfg.damping,
                        n_best=polish_cfg.n_best,
                        seed_basins=basin_state,
                        memo_store=memo_store,
                        counters=counters,
                        on_result=on_final_result,
                    )
                    for pres in polish_results:
                        orientations[pres.index] = pres.orientation
                        distances[pres.index] = pres.distance
                if counters is not None:
                    counters.record_level("polish", level_timer.stop(), 0)
                if keep_level_snapshots:
                    snapshots.append(list(orientations))
                if checkpoint_path is not None:
                    save_checkpoint(
                        checkpoint_path,
                        RefinementCheckpoint(
                            schedule_fingerprint=fingerprint,
                            levels_done=len(sched) + 1,
                            orientations=list(orientations),
                            distances=distances.copy(),
                            stats=stats,
                            memo=None if memo_store is None else memo_store.export_state(),
                            engine_fingerprint=engine_fingerprint,
                            basins=None if basin_state is None else list(basin_state),
                        ),
                    )
        finally:
            if own_backend:
                backend.close()
        return RefinementResult(
            orientations=orientations,
            distances=distances,
            stats=stats,
            timer=timer,
            per_level_orientations=snapshots,
            perf=counters,
            symmetry_group=symmetry_group,
            symmetry_order=1 if restriction is None else restriction.order,
        )
