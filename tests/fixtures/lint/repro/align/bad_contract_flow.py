"""Known-bad fixture: contradictory ``@array_contract`` flow (RL015).

``forward_image`` promises an ``("l", "l")`` complex image and passes it
verbatim to ``band_total``, whose contract demands a 1-D float band —
the two declarations cannot both be true of the same array.
"""

from __future__ import annotations

from repro.analysis.contracts import array_contract, spec

__all__ = ["band_total", "forward_image"]


@array_contract(band=spec(shape=("n",), dtype="float", allow_none=False))
def band_total(band):
    return band.sum()


@array_contract(image=spec(shape=("l", "l"), dtype="complex", allow_none=False))
def forward_image(image):
    return band_total(image)
