"""An MPI-like communicator over threads, with simulated-time accounting.

:func:`run_spmd` launches one thread per rank, each executing the same
function with its own :class:`SimComm`.  Point-to-point messages really
transfer the arrays (per-pair FIFO queues), so algorithms built on top —
the slab FFT, the master-I/O distribution — are *functionally* verified,
not just modeled.  Every operation simultaneously charges the virtual
clock using the machine's α–β message cost, and blocking semantics
synchronize the participants' clocks the way real blocking calls would.

The collective algorithms follow the classic implementations and charge
accordingly:

* ``bcast``/``scatter``/``gather`` — flat root-centred exchanges (the
  paper's master-node pattern);
* ``allgather`` — ring algorithm (P−1 steps of neighbour exchange);
* ``alltoall`` — pairwise exchange rounds;
* ``allreduce`` — reduce-to-root + bcast.

Messages are deep-copied on send so SPMD code cannot alias another rank's
buffers (shared-memory leakage would invalidate the distributed-memory
simulation).

Fault injection (DESIGN.md §8): a :class:`~repro.faults.plan.FaultPlan`
passed to :func:`run_spmd` is consulted per message site
(``msg:<src>-><dst>#<seq>``).  ``drop-message`` models a lost packet with
a deterministic ack-timeout retransmit — the payload still arrives
exactly once, but the sender is charged the α–β cost twice plus the
spec's ``delay_s`` — and ``delay`` charges extra latency.  Neither fault
can change delivered *values*, only simulated *time*, which is precisely
the recovery guarantee the chaos harness asserts.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable

import numpy as np

from repro.faults.plan import FaultLog, FaultPlan, message_site
from repro.parallel.clock import VirtualClock
from repro.parallel.machine import MachineSpec, SP2_LIKE
from repro.utils import StepTimer

__all__ = ["SimComm", "run_spmd"]


def _nbytes(obj: Any) -> int:
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(_nbytes(o) for o in obj)
    return 64  # small python object: headers only


def _copy(obj: Any) -> Any:
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, (list, tuple)):
        return type(obj)(_copy(o) for o in obj)
    return obj


class _Fabric:
    """Shared state of one SPMD run: queues, barrier, clock, abort flag."""

    def __init__(
        self,
        n_ranks: int,
        machine: MachineSpec,
        trace=None,
        fault_plan: FaultPlan | None = None,
        fault_log: FaultLog | None = None,
    ) -> None:
        self.n_ranks = n_ranks
        self.machine = machine
        self.clock = VirtualClock(n_ranks)
        self.queues: dict[tuple[int, int], queue.Queue] = {
            (src, dst): queue.Queue() for src in range(n_ranks) for dst in range(n_ranks)
        }
        self.barrier = threading.Barrier(n_ranks)
        # set when any rank dies, so blocked receivers wake up instead of
        # deadlocking on a message that will never arrive
        self.aborted = threading.Event()
        #: optional TraceRecorder collecting (rank, step, t0, t1) spans
        self.trace = trace
        self._trace_lock = threading.Lock()
        #: deterministic fault injection for the chaos harness
        self.fault_plan = fault_plan or FaultPlan.none()
        self.fault_log = fault_log if fault_log is not None else FaultLog()
        self._fault_lock = threading.Lock()


class SimComm:
    """One rank's endpoint of the simulated communicator."""

    def __init__(self, fabric: _Fabric, rank: int) -> None:
        self._fabric = fabric
        self.rank = rank
        self.size = fabric.n_ranks
        self.machine = fabric.machine
        self.timer = StepTimer()
        # per-destination message sequence numbers: deterministic site names
        # for the fault plan (rank-local, so no cross-thread coordination)
        self._msg_seq: dict[int, int] = {}

    # -- time accounting ---------------------------------------------------
    def account_compute(self, seconds: float, step: str | None = None) -> None:
        """Charge simulated compute time to this rank."""
        t0 = self._fabric.clock.now(self.rank)
        self._fabric.clock.advance(self.rank, seconds)
        if step:
            self.timer.add(step, seconds)
            if self._fabric.trace is not None:
                with self._fabric._trace_lock:
                    self._fabric.trace.record(self.rank, step, t0, t0 + seconds)

    def account_flops(self, flops: float, step: str | None = None) -> None:
        self.account_compute(self.machine.compute_time(flops), step)

    def account_io(self, nbytes: int, step: str | None = None) -> None:
        """Charge master-style file I/O time to this rank."""
        self.account_compute(self.machine.io_time(nbytes), step)

    def elapsed(self) -> float:
        """This rank's simulated time so far."""
        return self._fabric.clock.now(self.rank)

    # -- point to point ------------------------------------------------------
    def send(self, obj: Any, dest: int) -> None:
        """Blocking-ish send (buffered): charges the α–β cost to the sender.

        Consults the fabric's fault plan: a ``drop-message`` fault loses
        the first transmission (cost charged, nothing delivered) and
        retransmits after ``delay_s`` of ack-timeout — so delivery still
        happens exactly once, later; a ``delay`` fault adds latency.
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"bad destination {dest}")
        seq = self._msg_seq.get(dest, 0)
        self._msg_seq[dest] = seq + 1
        site = message_site(self.rank, dest, seq)
        plan = self._fabric.fault_plan
        cost = self.machine.message_time(_nbytes(obj))
        self._fabric.clock.advance(self.rank, cost)
        dropped = plan.lookup("drop-message", site)
        if dropped is not None:
            # lost on the wire: ack-timeout, then pay the α–β cost again
            self._fabric.clock.advance(self.rank, dropped.delay_s + cost)
            with self._fabric._fault_lock:
                self._fabric.fault_log.record(
                    "drop-message", site, action="dropped",
                    detail=f"retransmitted after {dropped.delay_s}s",
                )
        delayed = plan.lookup("delay", site)
        if delayed is not None:
            self._fabric.clock.advance(self.rank, delayed.delay_s)
            with self._fabric._fault_lock:
                self._fabric.fault_log.record("delay", site, action="delayed")
        self._fabric.queues[(self.rank, dest)].put((_copy(obj), self._fabric.clock.now(self.rank)))

    def recv(self, source: int) -> Any:
        """Blocking receive: the receiver's clock advances to max(arrival, own).

        Wakes with :class:`RuntimeError` if the run aborts (another rank
        died), so a failed master cannot deadlock the cluster.
        """
        if not 0 <= source < self.size:
            raise ValueError(f"bad source {source}")
        q = self._fabric.queues[(source, self.rank)]
        while True:
            try:
                obj, arrival = q.get(timeout=0.05)
                break
            except queue.Empty:
                if self._fabric.aborted.is_set():
                    raise RuntimeError(
                        f"rank {self.rank}: recv from {source} aborted (peer failure)"
                    ) from None
        now = self._fabric.clock.now(self.rank)
        if arrival > now:
            self._fabric.clock.advance(self.rank, arrival - now)
        return obj

    # -- collectives ---------------------------------------------------------
    def barrier(self) -> None:
        """Synchronize all ranks (and their simulated clocks) — step m."""
        self._fabric.barrier.wait()
        if self.rank == 0:
            self._fabric.clock.synchronize()
        self._fabric.barrier.wait()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Root sends to every other rank (flat, master-node pattern)."""
        if self.rank == root:
            for dst in range(self.size):
                if dst != root:
                    self.send(obj, dst)
            return obj
        return self.recv(root)

    def scatter(self, parts: list[Any] | None, root: int = 0) -> Any:
        """Root deals one part to each rank (including itself)."""
        if self.rank == root:
            if parts is None or len(parts) != self.size:
                raise ValueError("root must pass one part per rank")
            for dst in range(self.size):
                if dst != root:
                    self.send(parts[dst], dst)
            return _copy(parts[root])
        return self.recv(root)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Everyone sends to root; root returns the list in rank order."""
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = _copy(obj)
            for src in range(self.size):
                if src != root:
                    out[src] = self.recv(src)
            return out
        self.send(obj, root)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        """Ring allgather: P−1 neighbour exchange steps (step a.6)."""
        out: list[Any] = [None] * self.size
        out[self.rank] = _copy(obj)
        right = (self.rank + 1) % self.size
        left = (self.rank - 1) % self.size
        current = obj
        for step in range(self.size - 1):
            self.send(current, right)
            current = self.recv(left)
            out[(self.rank - 1 - step) % self.size] = current
        return out

    def alltoall(self, parts: list[Any]) -> list[Any]:
        """Pairwise-exchange all-to-all (the step a.4 global exchange)."""
        if len(parts) != self.size:
            raise ValueError("need one part per rank")
        out: list[Any] = [None] * self.size
        out[self.rank] = _copy(parts[self.rank])
        for offset in range(1, self.size):
            dst = (self.rank + offset) % self.size
            src = (self.rank - offset) % self.size
            self.send(parts[dst], dst)
            out[src] = self.recv(src)
        return out

    def allreduce(self, value: np.ndarray | float, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Reduce to rank 0, then broadcast (sum by default)."""
        gathered = self.gather(value, root=0)
        if self.rank == 0:
            assert gathered is not None
            acc = gathered[0]
            for v in gathered[1:]:
                acc = (acc + v) if op is None else op(acc, v)
            result = acc
        else:
            result = None
        return self.bcast(result, root=0)


def run_spmd(
    n_ranks: int,
    fn: Callable[[SimComm], Any],
    machine: MachineSpec = SP2_LIKE,
    trace=None,
    fault_plan: FaultPlan | None = None,
    fault_log: FaultLog | None = None,
) -> tuple[list[Any], VirtualClock]:
    """Run ``fn(comm)`` on ``n_ranks`` ranks (one thread each).

    Returns ``(per-rank results, virtual clock)``.  An exception on any
    rank aborts the barrier (so no deadlock) and is re-raised with its rank
    attached.  Pass a :class:`repro.parallel.trace.TraceRecorder` as
    ``trace`` to collect per-rank activity spans (renderable with
    :func:`repro.parallel.trace.render_gantt`), and a
    :class:`repro.faults.plan.FaultPlan` as ``fault_plan`` to inject
    deterministic message drops/delays (chaos harness).
    """
    if n_ranks <= 0:
        raise ValueError("n_ranks must be positive")
    fabric = _Fabric(n_ranks, machine, trace=trace, fault_plan=fault_plan, fault_log=fault_log)
    results: list[Any] = [None] * n_ranks
    errors: list[tuple[int, BaseException]] = []

    def worker(rank: int) -> None:
        comm = SimComm(fabric, rank)
        try:
            results[rank] = fn(comm)
        except BaseException as exc:  # noqa: BLE001 - propagated below
            errors.append((rank, exc))
            fabric.aborted.set()
            fabric.barrier.abort()

    threads = [threading.Thread(target=worker, args=(r,), daemon=True) for r in range(n_ranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        # secondary failures (abort wake-ups, broken barriers) are a
        # consequence, not the cause: report the original failure
        genuine = [
            (r, e)
            for r, e in errors
            if "aborted (peer failure)" not in str(e)
            and not isinstance(e, threading.BrokenBarrierError)
        ] or errors
        rank, exc = min(genuine, key=lambda t: t[0])
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return results, fabric.clock
