"""``python -m repro.analysis`` — the static-analysis gate CLI.

Exit status 0 means every stage passed (or was skipped because the tool
is not installed); any finding from ruff, mypy or repro-lint exits 1.

    python -m repro.analysis                  # full gate over the repo
    python -m repro.analysis --lint-only      # repro-lint only
    python -m repro.analysis --lint-only FILE # lint specific files/dirs
    python -m repro.analysis --format json    # machine-readable report
    python -m repro.analysis --strict-waivers # stale waivers fail the gate
    python -m repro.analysis --list-rules     # show the rule table
"""

from __future__ import annotations

import argparse
import json

from repro.analysis.gate import gate_to_json, run_gate
from repro.analysis.rules import rule_table

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro static-analysis gate: ruff + mypy + repro-lint",
    )
    parser.add_argument("paths", nargs="*", help="files/directories to lint (default: src/repro)")
    parser.add_argument("--lint-only", action="store_true", help="run repro-lint only")
    parser.add_argument("--skip-ruff", action="store_true", help="skip the ruff stage")
    parser.add_argument("--skip-mypy", action="store_true", help="skip the mypy stage")
    parser.add_argument("--list-rules", action="store_true", help="print the rule table and exit")
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--strict-waivers",
        action="store_true",
        help="fail the gate on stale repro-lint waivers instead of warning",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, name, rationale in rule_table():
            print(f"{rule_id}  {name}")
            print(f"       {rationale}")
        return 0

    results = run_gate(
        args.paths or None,
        with_ruff=not (args.lint_only or args.skip_ruff),
        with_mypy=not (args.lint_only or args.skip_mypy),
        strict_waivers=args.strict_waivers,
    )
    failed = any(r.failed for r in results)
    if args.format == "json":
        print(json.dumps(gate_to_json(results), indent=2))
        return 1 if failed else 0
    for result in results:
        print(f"[{result.status:>7}] {result.name}")
        if result.detail and result.status != "ok":
            for line in result.detail.splitlines():
                print(f"    {line}")
        elif result.name == "waivers" and result.findings:
            # stale waivers in warning mode: show them even though the
            # stage is ok, so they get cleaned up before --strict-waivers
            for line in result.detail.splitlines():
                print(f"    {line}")
    if failed:
        print("gate: FAILED")
        return 1
    print("gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
