"""The process-parallel view scheduler must be invisible to the numbers.

Whatever the worker count or chunking, the scheduler is required to return
*bit-identical* orientations and distances to the plain serial loop —
views are independent within a level, so parallelism is pure scheduling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.euler import Orientation
from repro.imaging.simulate import simulate_views
from repro.parallel.viewsched import (
    SharedVolume,
    ViewScheduler,
    chunk_indices,
    refine_level_serial,
)
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel
from repro.refine.refiner import OrientationRefiner


def test_chunk_indices_cover_and_order():
    chunks = chunk_indices(10, 3)
    assert len(chunks) == 3
    assert np.array_equal(np.concatenate(chunks), np.arange(10))
    # more chunks than items: one chunk per item, none empty
    chunks = chunk_indices(2, 8)
    assert [c.tolist() for c in chunks] == [[0], [1]]
    assert chunk_indices(0, 4) == []
    with pytest.raises(ValueError):
        chunk_indices(-1, 2)
    with pytest.raises(ValueError):
        chunk_indices(3, 0)


def test_shared_volume_roundtrip():
    arr = np.arange(24, dtype=complex).reshape(2, 3, 4) * (1 + 2j)
    sv = SharedVolume(arr)
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=sv.descriptor()[0])
        view = np.ndarray(sv.shape, dtype=sv.dtype, buffer=shm.buf)
        assert np.array_equal(view, arr)
        shm.close()
    finally:
        sv.close()
        sv.close()  # idempotent


def test_scheduler_validates_args():
    with pytest.raises(ValueError):
        ViewScheduler(n_workers=0)
    with pytest.raises(ValueError):
        ViewScheduler(chunks_per_worker=0)


@pytest.fixture(scope="module")
def small_problem(phantom16):
    views = simulate_views(
        phantom16, 5, initial_angle_error_deg=3.0, center_sigma_px=0.5, seed=11
    )
    volume_ft = phantom16.fourier_oversampled(2)
    from repro.fourier.transforms import centered_fft2

    fts = centered_fft2(np.asarray(views.images, dtype=float))
    return views, volume_ft, fts


def test_run_level_serial_fallback_is_serial_loop(small_problem):
    """n_workers=1 must take the exact refine_level_serial code path."""
    views, volume_ft, fts = small_problem
    level = RefinementLevel(2.0, 0.5, half_steps=2)
    orients = views.initial_orientations
    expected = refine_level_serial(volume_ft, fts, orients, None, level)
    with ViewScheduler(n_workers=1) as sched:
        got = sched.run_level(volume_ft, fts, orients, None, level)
    assert got == expected


def test_process_pool_bit_identical_to_serial(small_problem):
    views, volume_ft, fts = small_problem
    level = RefinementLevel(2.0, 0.5, half_steps=2)
    orients = views.initial_orientations
    serial = refine_level_serial(volume_ft, fts, orients, None, level)
    with ViewScheduler(n_workers=2, chunks_per_worker=2) as sched:
        pooled = sched.run_level(volume_ft, fts, orients, None, level)
    # frozen dataclasses with float fields: == is bitwise on every field
    assert pooled == serial


def test_refiner_n_workers_bit_identical(phantom16):
    """End-to-end: the full multi-level refinement matches serially."""
    views = simulate_views(
        phantom16, 4, initial_angle_error_deg=2.0, center_sigma_px=0.5, seed=5
    )
    sched = MultiResolutionSchedule(
        [RefinementLevel(2.0, 0.5, half_steps=2), RefinementLevel(0.5, 0.25, half_steps=2)]
    )
    r1 = OrientationRefiner(phantom16).refine(views, schedule=sched)
    r2 = OrientationRefiner(phantom16, n_workers=2).refine(views, schedule=sched)
    assert [o.as_tuple() for o in r1.orientations] == [o.as_tuple() for o in r2.orientations]
    assert np.array_equal(r1.distances, r2.distances)
    assert r1.stats == r2.stats


def test_scheduler_reuse_across_levels(small_problem):
    """One scheduler instance survives multiple levels and volume reuse."""
    views, volume_ft, fts = small_problem
    orients = list(views.initial_orientations)
    with ViewScheduler(n_workers=2) as sched:
        for level in (RefinementLevel(3.0, 0.5, half_steps=1), RefinementLevel(1.0, 0.25, half_steps=1)):
            results = sched.run_level(volume_ft, fts, orients, None, level)
            serial = refine_level_serial(volume_ft, fts, orients, None, level)
            assert results == serial
            for res in results:
                orients[res.index] = res.orientation


def test_pooled_memo_and_counters_thread_through(small_problem):
    """Workers ship memo state and perf counters back through the pool.

    A second pooled pass over the same level must answer (almost) every
    candidate from the absorbed memo, and the master counters must account
    for the workers' windows — all while staying bit-identical to the
    memo-less serial loop.
    """
    from repro.align.memo import MemoStore
    from repro.perf import PerfCounters

    views, volume_ft, fts = small_problem
    level = RefinementLevel(2.0, 0.5, half_steps=2)
    orients = views.initial_orientations
    serial = refine_level_serial(volume_ft, fts, orients, None, level, kernel="batched")
    memo_store = MemoStore()
    counters = PerfCounters()
    with ViewScheduler(n_workers=2, chunks_per_worker=2) as sched:
        first = sched.run_level(
            volume_ft, fts, orients, None, level,
            kernel="batched", memo_store=memo_store, counters=counters,
        )
        assert first == serial
        assert counters.window_calls > 0
        assert counters.gathers > 0
        # every view the chunks touched shipped its memo back
        assert memo_store.view_indices() == list(range(len(orients)))
        gathers_before = counters.gathers
        second = sched.run_level(
            volume_ft, fts, orients, None, level,
            kernel="batched", memo_store=memo_store, counters=counters,
        )
    assert second == serial
    # the re-run's windows were answered from the absorbed memo
    assert counters.gathers == gathers_before
    assert counters.memo_hits > 0


def test_run_polish_bit_identical_to_serial(small_problem):
    """The continuous polish stage must fan out invisibly, like run_level:
    any worker count returns bit-identical ViewPolishResults to the serial
    kernel, including the iteration/convergence bookkeeping."""
    from repro.parallel.viewsched import polish_level_serial

    views, volume_ft, fts = small_problem
    level = RefinementLevel(2.0, 0.5, half_steps=2)
    orients = list(views.initial_orientations)
    grid = refine_level_serial(volume_ft, fts, orients, None, level)
    for res in grid:
        orients[res.index] = res.orientation
    distances = [res.distance for res in grid]
    serial = polish_level_serial(volume_ft, fts, orients, distances, None)
    with ViewScheduler(n_workers=2, chunks_per_worker=2) as sched:
        pooled = sched.run_polish(volume_ft, fts, orients, distances, None)
    # frozen dataclasses with float fields: == is bitwise on every field
    assert pooled == serial
    assert [r.index for r in pooled] == list(range(len(orients)))
    assert any(r.n_iterations > 0 for r in pooled)
    # the polish never regresses a grid distance
    assert all(r.distance <= d for r, d in zip(pooled, distances))


def test_run_polish_single_worker_uses_serial_path(small_problem):
    views, volume_ft, fts = small_problem
    orients = list(views.initial_orientations)
    distances = [1.0] * len(orients)
    from repro.parallel.viewsched import polish_level_serial

    serial = polish_level_serial(volume_ft, fts, orients, distances, None)
    with ViewScheduler(n_workers=1) as sched:
        got = sched.run_polish(volume_ft, fts, orients, distances, None)
    assert got == serial


def _square_plus_one(x):
    # module-level so the pool can pickle it (fork or spawn)
    return x * x + 1


def test_run_tasks_matches_serial_map():
    """The generic fan-out: same values as a list comprehension, any pool."""
    payloads = [1, 2, 3, 4, 5, 6, 7]
    with ViewScheduler(n_workers=2) as sched:
        got = sched.run_tasks(_square_plus_one, payloads)
    assert got == [_square_plus_one(p) for p in payloads]
    with ViewScheduler(n_workers=1) as sched:
        assert sched.run_tasks(_square_plus_one, payloads) == got
