"""Experiment configuration records.

:class:`MiniWorkload` is the laptop-scale stand-in for a paper workload —
same pipeline, smaller box/view count — used by the measured halves of the
benchmark harness; the paper-scale analytic halves use
:class:`repro.parallel.perf_model.PaperWorkload`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.config import EngineConfig, ScheduleConfig
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel

__all__ = ["ExperimentConfig", "MiniWorkload", "mini_schedule"]


def mini_schedule() -> MultiResolutionSchedule:
    """A schedule proportioned like the paper's but ending at 0.25°.

    At test box sizes (l = 32–48) the distance landscape cannot resolve
    0.002°; the mini schedule keeps the multi-resolution *structure* (each
    level refines the previous step) at resolutions the box supports.
    """
    return MultiResolutionSchedule(
        (
            RefinementLevel(1.0, 1.0, half_steps=3),
            RefinementLevel(0.5, 0.5, half_steps=2),
            RefinementLevel(0.25, 0.25, half_steps=2),
        )
    )


@dataclass(frozen=True)
class MiniWorkload:
    """A scaled-down dataset + schedule for measured experiments."""

    name: str
    kind: str  # "sindbis" | "reo" | "asymmetric" | "cyclic"
    size: int = 32
    n_views: int = 80
    snr: float = 3.0
    center_sigma_px: float = 0.5
    perturbation_deg: float = 3.0
    apix: float = 1.0
    seed: int = 2


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by the figure experiments."""

    workload: MiniWorkload
    r_max_sequence: tuple[float, ...] = (5.0, 7.0, 9.0)
    n_iterations: int = 3
    pad_factor: int = 2
    max_slides: int = 2

    def engine_config(
        self,
        r_max: float,
        schedule: MultiResolutionSchedule | None = None,
    ) -> EngineConfig:
        """The :class:`~repro.engine.config.EngineConfig` for one outer
        iteration of the honest protocol (the band limit rises per
        iteration, so ``r_max`` is an argument, not a field)."""
        return EngineConfig(
            schedule=ScheduleConfig.from_schedule(schedule or mini_schedule()),
            r_max=float(r_max),
            pad_factor=self.pad_factor,
            max_slides=self.max_slides,
        )
