"""Data partitioning: slabs of the volume and blocks of the view set.

The paper distributes the ``l³`` lattice as *z-slabs* of ``l/P``
consecutive xy-planes (step a.2) and the ``m`` views in groups of ``m/P``
(step b).  Neither ``l`` nor ``m`` is generally divisible by ``P``; these
helpers produce the canonical balanced split (first ``remainder`` parts get
one extra element) used consistently by the FFT, the I/O distribution and
the refinement driver.
"""

from __future__ import annotations

import numpy as np

__all__ = ["slab_bounds", "slab_sizes", "block_distribution"]


def slab_sizes(total: int, parts: int) -> list[int]:
    """Balanced part sizes: ``total`` split into ``parts`` contiguous chunks."""
    if total < 0:
        raise ValueError("total must be non-negative")
    if parts <= 0:
        raise ValueError("parts must be positive")
    base, rem = divmod(total, parts)
    return [base + (1 if p < rem else 0) for p in range(parts)]


def slab_bounds(total: int, parts: int, rank: int) -> tuple[int, int]:
    """Half-open ``[start, stop)`` range owned by ``rank``."""
    if not 0 <= rank < parts:
        raise ValueError(f"rank {rank} outside [0, {parts})")
    sizes = slab_sizes(total, parts)
    start = int(np.sum(sizes[:rank], dtype=int))
    return start, start + sizes[rank]


def block_distribution(total: int, parts: int) -> list[np.ndarray]:
    """Index arrays of each rank's block (contiguous, balanced)."""
    out: list[np.ndarray] = []
    for rank in range(parts):
        lo, hi = slab_bounds(total, parts, rank)
        out.append(np.arange(lo, hi))
    return out
