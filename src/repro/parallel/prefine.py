"""The parallel orientation-refinement driver (the full algorithm, steps a–o).

Runs the complete per-iteration pipeline SPMD over the simulated cluster:

* rank 0 (master) "reads" the map, the views and the initial orientations
  and deals them out (steps a.1–a.2, b, c) — charged at file + α–β cost;
* all ranks cooperate in the slab-decomposed 3D FFT and end with a
  replicated (oversampled) D̂ (steps a.3–a.6);
* each rank 2D-transforms and CTF-corrects its own views (steps d–e) and
  refines them through the multi-resolution schedule (steps f–l), with a
  barrier per level (step m);
* refined orientations are gathered and written by the master (step o).

The report carries both *simulated* per-step times (what Tables 1/2 show)
and the measured host wall time of the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.align.distance import DistanceComputer
from repro.align.memo import MemoStore
from repro.ctf.correct import phase_flip
from repro.ctf.model import CTFParams
from repro.density.map import DensityMap
from repro.faults.plan import FaultEvent, FaultLog, FaultPlan
from repro.fourier.transforms import centered_fft2, to_centered_order, to_standard_order
from repro.geometry.euler import Orientation
from repro.imaging.simulate import SimulatedViews
from repro.parallel.comm import SimComm, run_spmd
from repro.parallel.machine import MachineSpec, SP2_LIKE
from repro.parallel.master_io import (
    BYTES_PER_PIXEL,
    distribute_orientations,
    distribute_views,
    distribute_volume_slabs,
)
from repro.parallel.pfft import fft_flops_1d, parallel_fft3d
from repro.perf import PerfCounters
from repro.refine.multires import MultiResolutionSchedule
from repro.refine.refiner import (
    STEP_3D_DFT,
    STEP_FFT_ANALYSIS,
    STEP_READ_IMAGE,
    STEP_REFINEMENT,
)
from repro.parallel.viewsched import refine_level_serial
from repro.utils import StepTimer, Timer

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids cycles
    from repro.engine.config import EngineConfig

__all__ = ["ParallelRefinementReport", "parallel_refine", "FLOPS_PER_MATCH_SAMPLE"]

#: Simulated flop charge per in-band Fourier sample of one matching
#: operation: 8-corner trilinear gather (~2×8 madds on complex parts) plus
#: the squared-difference reduction.  Calibrated against the paper's tables
#: in :mod:`repro.parallel.perf_model`; the same constant is used here so
#: simulated mini-runs and the analytic model agree.
FLOPS_PER_MATCH_SAMPLE = 50.0


@dataclass
class ParallelRefinementReport:
    """Everything a simulated parallel refinement run produces."""

    orientations: list[Orientation]
    distances: np.ndarray
    simulated_step_seconds: dict[str, float]
    simulated_total_seconds: float
    measured_wall_seconds: float
    n_ranks: int
    per_rank_matches: list[int] = field(default_factory=list)
    per_level_matches: list[int] = field(default_factory=list)
    #: message-level faults observed on the simulated fabric (chaos runs)
    fault_events: list[FaultEvent] = field(default_factory=list)
    #: batched-engine counters merged over all ranks (``None`` for the
    #: non-batched kernels); level wall times are real host seconds
    perf: PerfCounters | None = None

    def refinement_fraction(self) -> float:
        """Fraction of simulated time spent matching (the paper's 99%)."""
        total = sum(self.simulated_step_seconds.values())
        if total == 0:
            return 0.0
        return self.simulated_step_seconds.get(STEP_REFINEMENT, 0.0) / total


def parallel_refine(
    views: SimulatedViews,
    density: DensityMap,
    n_ranks: int = 4,
    schedule: MultiResolutionSchedule | None = None,
    machine: MachineSpec = SP2_LIKE,
    r_max: float | None = None,
    pad_factor: int = 2,
    refine_centers: bool = True,
    orientation_file: str | None = None,
    fault_plan: FaultPlan | None = None,
    kernel: str = "batched",
    config: "EngineConfig | None" = None,
) -> ParallelRefinementReport:
    """Run one full refinement iteration on the simulated cluster.

    ``fault_plan`` injects deterministic message drops/delays into the
    simulated fabric (see :mod:`repro.parallel.comm`); the observed events
    come back in :attr:`ParallelRefinementReport.fault_events`.  Injected
    fabric faults change simulated *time* only — refined orientations stay
    bit-identical to the fault-free run.

    ``kernel`` selects the matching implementation per rank (all are
    bit-identical); ``"batched"`` (default) additionally memoizes repeated
    candidates per view and fills :attr:`ParallelRefinementReport.perf`.

    ``config`` supplies everything as one validated
    :class:`~repro.engine.config.EngineConfig` (``parallel.n_ranks``,
    ``schedule``, ``r_max``, ``pad_factor``, ``refine_centers``,
    ``kernel.kernel``); the individual kwargs above are the deprecation
    shim and are ignored when it is given.  Both spellings run the
    identical simulation.
    """
    # Imported lazily: repro.engine must stay importable before this
    # package (its env module is read at kernel import time).
    from repro.engine.config import EngineConfig, KernelConfig, ParallelConfig, ScheduleConfig

    if config is None:
        # deprecation shim: scattered kwargs → one validated config
        sched_cfg = (
            ScheduleConfig() if schedule is None else ScheduleConfig.from_schedule(schedule)
        )
        config = EngineConfig(
            kernel=KernelConfig(kernel=kernel),
            schedule=sched_cfg,
            parallel=ParallelConfig(backend="sim", n_ranks=int(n_ranks)),
            r_max=None if r_max is None else float(r_max),
            refine_centers=bool(refine_centers),
            pad_factor=int(pad_factor),
        )
    kernel = config.kernel.kernel
    n_ranks = config.parallel.n_ranks
    sched = config.schedule.to_schedule()
    size = density.size
    rmax = float(size // 2 if config.r_max is None else config.r_max)
    pad_factor = config.pad_factor
    refine_centers = config.refine_centers
    m = len(views)
    if n_ranks > m:
        raise ValueError(f"more ranks ({n_ranks}) than views ({m}); shrink the cluster")

    # The master distributes the *padded* map so the cooperative FFT yields
    # the same oversampled D̂ the serial refiner uses.
    big = pad_factor * size
    padded = np.zeros((big, big, big))
    off = (big - size) // 2
    padded[off : off + size, off : off + size, off : off + size] = density.data
    # pre-shift so the distributed unshifted FFT produces the centered
    # convention after one final re-centering on each rank
    padded = to_standard_order(padded)

    wall = Timer().start()

    def worker(comm: SimComm):
        # steps a.1–a.6 — cooperative 3D DFT of the (padded) map
        slab = distribute_volume_slabs(comm, padded if comm.rank == 0 else None)
        full = parallel_fft3d(comm, slab, big)
        volume_ft = to_centered_order(full)

        # steps b–c — master deals views and initial orientations
        local_images, local_idx = distribute_views(
            comm, views.images if comm.rank == 0 else None
        )
        local_orients = distribute_orientations(
            comm, views.initial_orientations if comm.rank == 0 else None
        )
        local_ctf: list[CTFParams] | None = None
        if views.ctf_params is not None:
            local_ctf = [views.ctf_params[i] for i in local_idx]

        # step d — 2D DFT of each local view
        fts = centered_fft2(local_images)
        comm.account_flops(
            2 * local_images.shape[0] * size * fft_flops_1d(size), STEP_FFT_ANALYSIS
        )
        dc = DistanceComputer(size, r_max=rmax)
        # step e — CTF correction (one pass over each transform) plus the
        # matching |CTF| modulation imposed on cuts during the search
        modulations: list[np.ndarray | None] = [None] * local_images.shape[0]
        if local_ctf is not None:
            from repro.ctf.model import ctf_2d

            cache: dict[CTFParams, np.ndarray] = {}
            for i, p in enumerate(local_ctf):
                fts[i] = phase_flip(fts[i], p, views.apix)
                if p not in cache:
                    cache[p] = dc.gather_modulation(np.abs(ctf_2d(p, size, views.apix)))
                modulations[i] = cache[p]
            comm.account_flops(local_images.shape[0] * size * size * 2, STEP_FFT_ANALYSIS)
        orients = list(local_orients)
        dists = np.full(len(orients), np.inf)
        level_matches: list[int] = []
        total_matches = 0
        batched = kernel == "batched"
        memo_store = MemoStore() if batched else None
        counters = PerfCounters() if batched else None
        for level in sched:
            n_matches_level = 0
            candidates_before = 0 if counters is None else counters.candidates
            level_timer = Timer().start()
            # Same per-view kernel as the serial refiner and the process
            # pool — one shared loop, three drivers, identical numbers.
            for res in refine_level_serial(
                volume_ft,
                fts,
                orients,
                modulations,
                level,
                distance_computer=dc,
                refine_centers=refine_centers,
                kernel=kernel,
                memo_store=memo_store,
                view_indices=[int(i) for i in local_idx],
                counters=counters,
            ):
                orients[res.index] = res.orientation
                dists[res.index] = res.distance
                n_matches_level += res.n_matches + res.n_center_evals
            if counters is not None:
                counters.record_level(
                    f"{level.angular_step_deg:g}deg",
                    level_timer.stop(),
                    counters.candidates - candidates_before,
                )
            comm.account_flops(
                n_matches_level * FLOPS_PER_MATCH_SAMPLE * dc.n_samples, STEP_REFINEMENT
            )
            total_matches += n_matches_level
            level_matches.append(n_matches_level)
            comm.barrier()  # step m — wait for all nodes at this resolution

        # step o — gather refined orientations at the master
        gathered = comm.gather((local_idx, orients, dists), root=0)
        result = None
        if comm.rank == 0:
            all_orients: list[Orientation | None] = [None] * m
            all_dists = np.empty(m)
            assert gathered is not None
            for idx, ors, ds in gathered:
                for i, o, d in zip(idx, ors, ds):
                    all_orients[int(i)] = o
                    all_dists[int(i)] = d
            comm.account_io(m * 64, STEP_REFINEMENT)
            result = (all_orients, all_dists)
        comm.barrier()
        return result, comm.timer, total_matches, level_matches, counters

    fault_log = FaultLog()
    results, clock = run_spmd(n_ranks, worker, machine, fault_plan=fault_plan, fault_log=fault_log)
    wall.stop()

    master_result = results[0][0]
    assert master_result is not None
    orientations, distances = master_result
    # simulated per-step time = max over ranks (parallel sections overlap)
    step_seconds: dict[str, float] = {}
    for _, timer, _, _, _ in results:
        for name, seconds in timer.totals.items():
            step_seconds[name] = max(step_seconds.get(name, 0.0), seconds)
    per_rank_matches = [r[2] for r in results]
    n_levels = len(results[0][3])
    per_level = [sum(r[3][i] for r in results) for i in range(n_levels)]
    merged_perf: PerfCounters | None = None
    if kernel == "batched":
        merged_perf = PerfCounters()
        for r in results:
            if r[4] is not None:
                merged_perf.merge(r[4])
    if orientation_file is not None:
        from repro.refine.orientfile import write_orientation_file

        write_orientation_file(orientation_file, orientations, scores=distances)
    return ParallelRefinementReport(
        orientations=orientations,
        distances=distances,
        simulated_step_seconds=step_seconds,
        simulated_total_seconds=clock.elapsed(),
        measured_wall_seconds=wall.elapsed,
        n_ranks=n_ranks,
        per_rank_matches=per_rank_matches,
        per_level_matches=per_level,
        fault_events=list(fault_log.events),
        perf=merged_perf,
    )
