"""RL008 — every source module defers annotation evaluation.

The typing pass annotates hot-path signatures with ``numpy.typing``
aliases; without ``from __future__ import annotations`` those expressions
would be evaluated at import time (cost, and 3.10-incompatible unions in
older styles).  Requiring the future import everywhere keeps annotations
free and uniform.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import Finding, ModuleUnderLint
from repro.analysis.rules._base import Rule

__all__ = ["FutureAnnotations"]


class FutureAnnotations(Rule):
    rule_id = "RL008"
    name = "future-annotations"
    rationale = (
        "NDArray annotations must stay free at runtime: every module (except "
        "package __init__/__main__ shims) defers them with "
        "`from __future__ import annotations`."
    )

    def applies(self, mod: ModuleUnderLint) -> bool:
        if mod.rel.endswith(("/__init__.py", "/__main__.py")):
            return False
        return super().applies(mod)

    def check(self, mod: ModuleUnderLint) -> Iterator[Finding]:
        if not mod.tree.body:
            return
        for node in mod.tree.body:
            if isinstance(node, ast.ImportFrom) and node.module == "__future__":
                if any(alias.name == "annotations" for alias in node.names):
                    return
        yield self.finding(mod, 1, "missing `from __future__ import annotations`")
