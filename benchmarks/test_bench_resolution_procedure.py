"""E12 — Figure 4: the odd/even resolution-estimation procedure.

Validates the procedure itself: the odd/even FSC 0.5-crossing must track
data quality (better SNR / more views → finer estimated resolution) and
must respond to orientation accuracy, which is what makes Figures 5/6
meaningful.
"""

import numpy as np
import pytest

from repro.density import sindbis_like_phantom
from repro.imaging import simulate_views
from repro.pipeline import format_table
from repro.reconstruct import correlation_curve


def test_resolution_procedure_tracks_quality(benchmark, save_artifact):
    density = sindbis_like_phantom(32).normalized()

    def run():
        crossings = {}
        for label, snr, m in (("good (snr 10, m 96)", 10.0, 96), ("fair (snr 2, m 96)", 2.0, 96), ("poor (snr 0.5, m 48)", 0.5, 48)):
            views = simulate_views(density, m, snr=snr, seed=3)
            curve = correlation_curve(views.images, views.true_orientations, apix=2.0)
            crossings[label] = curve.crossing(0.5)
        return crossings

    crossings = benchmark.pedantic(run, rounds=1, iterations=1)
    values = list(crossings.values())
    # resolution (A) must get worse (larger) as data degrade
    assert values[0] <= values[1] <= values[2]

    table = format_table(
        ["dataset", "0.5-crossing resolution (A)"],
        [[k, f"{v:.2f}"] for k, v in crossings.items()],
        title="Figure 4 procedure: odd/even FSC resolution vs data quality",
    )
    table += "\n\npaper: 'correlation coefficient higher than 0.5 gives a conservative estimate'"
    save_artifact("resolution_procedure.txt", table)


def test_fsc_kernel(benchmark):
    from repro.fourier import fsc_curve

    density = sindbis_like_phantom(32).normalized()
    rng = np.random.default_rng(0)
    noisy = density.data + 0.3 * rng.normal(size=density.data.shape)
    fsc = benchmark(fsc_curve, density.data, noisy)
    assert fsc[1] > 0.9
