"""The :class:`DensityMap` container.

A density map is the ``l³`` real-space lattice ``D`` of §3, together with
its physical sampling rate (``apix``, Å per voxel).  The container caches
the centered 3D DFT ``D̂`` — the paper computes ``D̂`` once per refinement
iteration (step a) and reuses it for every cut — and offers the small set of
operations the pipeline needs (masking, normalization, cross-sections,
correlation).
"""

from __future__ import annotations

import numpy as np

from repro.fourier.transforms import centered_fftn, centered_ifftn
from repro.utils import require_cube, require_positive

__all__ = ["DensityMap"]


class DensityMap:
    """A cubic electron-density map with voxel size in Å.

    Parameters
    ----------
    data:
        Real 3D cubic array, indexed ``[z, y, x]``.
    apix:
        Voxel size in Å/pixel.
    """

    def __init__(self, data: np.ndarray, apix: float = 1.0) -> None:
        arr = np.asarray(data, dtype=float)
        require_cube(arr, "density data")
        require_positive(apix, "apix")
        self.data = arr
        self.apix = float(apix)
        self._ft_cache: np.ndarray | None = None
        self._padded_cache: dict[int, np.ndarray] = {}

    # -- basic properties -------------------------------------------------
    @property
    def size(self) -> int:
        """Side length ``l`` in voxels."""
        return self.data.shape[0]

    @property
    def box_angstrom(self) -> float:
        """Physical box side in Å."""
        return self.size * self.apix

    def copy(self) -> "DensityMap":
        return DensityMap(self.data.copy(), self.apix)

    # -- Fourier ----------------------------------------------------------
    def fourier(self, refresh: bool = False) -> np.ndarray:
        """Centered 3D DFT ``D̂`` of the map (cached).

        Pass ``refresh=True`` after mutating :attr:`data` in place.
        """
        if self._ft_cache is None or refresh:
            self._ft_cache = centered_fftn(self.data)
        return self._ft_cache

    def invalidate(self) -> None:
        """Drop the cached transforms (call after in-place edits)."""
        self._ft_cache = None
        self._padded_cache = {}

    def fourier_oversampled(self, pad_factor: int = 2) -> np.ndarray:
        """Centered 3D DFT of the zero-padded map (cached per factor).

        Padding the map ``pad_factor×`` in real space samples the same
        continuous transform ``pad_factor×`` more finely, which reduces the
        trilinear slice-interpolation error by roughly that factor — the
        standard gridding trick.  ``pad_factor=1`` is :meth:`fourier`.
        """
        if pad_factor < 1 or int(pad_factor) != pad_factor:
            raise ValueError("pad_factor must be a positive integer")
        pad_factor = int(pad_factor)
        if pad_factor == 1:
            return self.fourier()
        if not hasattr(self, "_padded_cache"):
            self._padded_cache: dict[int, np.ndarray] = {}
        cached = self._padded_cache.get(pad_factor)
        if cached is not None:
            return cached
        l = self.size
        big = pad_factor * l
        padded = np.zeros((big, big, big))
        off = (big - l) // 2
        padded[off : off + l, off : off + l, off : off + l] = self.data
        ft = centered_fftn(padded)
        self._padded_cache[pad_factor] = ft
        return ft

    @staticmethod
    def from_fourier(volume_ft: np.ndarray, apix: float = 1.0) -> "DensityMap":
        """Build a map from a centered 3D DFT (imaginary part discarded)."""
        data = centered_ifftn(volume_ft).real
        return DensityMap(data, apix)

    # -- transformations ---------------------------------------------------
    def normalized(self) -> "DensityMap":
        """Zero-mean, unit-std copy (degenerate maps raise)."""
        std = float(self.data.std())
        if std == 0:
            raise ValueError("cannot normalize a constant map")
        return DensityMap((self.data - self.data.mean()) / std, self.apix)

    def low_pass(self, resolution_angstrom: float) -> "DensityMap":
        """Copy band-limited to the given resolution (hard spherical cutoff)."""
        from repro.fourier.shells import spherical_mask
        from repro.utils import resolution_to_shell_radius

        radius = resolution_to_shell_radius(resolution_angstrom, self.size, self.apix)
        ft = self.fourier().copy()
        ft[~spherical_mask(self.size, radius)] = 0.0
        return DensityMap.from_fourier(ft, self.apix)

    def radial_mask(self, inner: float = 0.0, outer: float | None = None) -> "DensityMap":
        """Copy with density kept only in the real-space shell [inner, outer] voxels.

        The paper notes that icosahedral comparisons can use only the capsid
        shell; this implements that masking for any map.
        """
        l = self.size
        c = l // 2
        k = np.arange(l) - c
        kz, ky, kx = np.meshgrid(k, k, k, indexing="ij")
        r = np.sqrt(kz * kz + ky * ky + kx * kx)
        hi = (l // 2) if outer is None else outer
        mask = (r >= inner) & (r <= hi)
        return DensityMap(np.where(mask, self.data, 0.0), self.apix)

    # -- analysis -----------------------------------------------------------
    def cross_section(self, axis: str = "z", index: int | None = None) -> np.ndarray:
        """A central (or specified) planar cross-section, as in Figure 2."""
        i = self.size // 2 if index is None else int(index)
        if not 0 <= i < self.size:
            raise IndexError(f"section index {i} outside [0, {self.size})")
        if axis == "z":
            return self.data[i, :, :].copy()
        if axis == "y":
            return self.data[:, i, :].copy()
        if axis == "x":
            return self.data[:, :, i].copy()
        raise ValueError(f"axis must be x, y or z, got {axis!r}")

    def correlation(self, other: "DensityMap") -> float:
        """Global real-space Pearson correlation with another map."""
        if other.size != self.size:
            raise ValueError("maps must have the same size")
        a = self.data.ravel()
        b = other.data.ravel()
        a = a - a.mean()
        b = b - b.mean()
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        if denom == 0:
            raise ValueError("cannot correlate constant maps")
        return float(np.dot(a, b) / denom)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DensityMap(size={self.size}, apix={self.apix:.3g} A/px)"
