"""Wall-clock timing helpers used to build paper-style per-step time tables.

Tables 1 and 2 of the paper break one refinement iteration into named steps
(3D DFT, read image, FFT analysis, orientation refinement).  The
:class:`StepTimer` accumulates named durations the same way, so both the
serial and the simulated-parallel drivers can emit identical table rows.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import contextmanager

__all__ = ["Timer", "StepTimer", "format_seconds"]


class Timer:
    """A simple start/stop wall-clock timer.

    Can be used as a context manager::

        with Timer() as t:
            work()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class StepTimer:
    """Accumulate wall-clock time under named steps.

    >>> st = StepTimer()
    >>> with st.step("fft analysis"):
    ...     pass
    >>> "fft analysis" in st.totals
    True
    """

    def __init__(self) -> None:
        self.totals: OrderedDict[str, float] = OrderedDict()
        self.counts: OrderedDict[str, int] = OrderedDict()

    @contextmanager
    def step(self, name: str):
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            dt = time.perf_counter() - t0
            self.add(name, dt)

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Record ``seconds`` (possibly simulated time) under ``name``."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + count

    def merge(self, other: "StepTimer") -> None:
        for name, seconds in other.totals.items():
            self.add(name, seconds, other.counts.get(name, 1))

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def fraction(self, name: str) -> float:
        """Fraction of total time spent in ``name`` (0 if nothing recorded)."""
        total = self.total
        return self.totals.get(name, 0.0) / total if total > 0 else 0.0

    def as_dict(self) -> dict[str, float]:
        return dict(self.totals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows = ", ".join(f"{k}={v:.3g}s" for k, v in self.totals.items())
        return f"StepTimer({rows})"


def format_seconds(seconds: float) -> str:
    """Human-friendly rendering used in the reported tables."""
    if seconds < 0:
        raise ValueError("negative duration")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.1f}min"
    return f"{seconds / 3600.0:.2f}h"
