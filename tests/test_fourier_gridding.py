"""Tests for Kaiser-Bessel gridding interpolation."""

import numpy as np
import pytest

from repro.fourier import (
    KaiserBesselKernel,
    centered_fft2,
    gridding_extract_slice,
    prepare_gridding_volume,
)
from repro.geometry import euler_to_matrix
from repro.imaging import real_project


def test_kernel_construction():
    k = KaiserBesselKernel.for_oversampling(width=4.0, oversampling=2.0)
    assert k.width == 4.0
    assert k.beta > 0
    with pytest.raises(ValueError):
        KaiserBesselKernel(width=0, beta=1)
    with pytest.raises(ValueError):
        KaiserBesselKernel.for_oversampling(oversampling=0.3)


def test_kernel_shape_properties():
    k = KaiserBesselKernel.for_oversampling()
    u = np.linspace(-3, 3, 101)
    vals = k.evaluate(u)
    assert vals[50] == pytest.approx(1.0)  # peak at 0 (normalized by i0(beta))
    assert np.all(vals >= 0)
    assert vals[0] == 0.0  # outside support
    # monotone decay away from center on each side
    assert np.all(np.diff(vals[50:85]) <= 1e-12)


def test_deapodization_profile():
    k = KaiserBesselKernel.for_oversampling()
    prof = k.deapodization(32)
    assert prof.shape == (32,)
    assert prof[16] == pytest.approx(1.0)
    assert np.all(prof > 0)
    assert prof[0] < prof[16]  # decays toward the box edge


def _analytic_gaussian_scene(l=24, pos=(4.0, -3.0, 5.0), sigma=2.0):
    """A Gaussian blob whose continuous FT is known exactly."""
    from repro.density.map import DensityMap
    from repro.density.phantom import gaussian_blob

    pos = np.asarray(pos, dtype=float)
    density = DensityMap(gaussian_blob(l, pos, sigma))

    def exact_slice(rotation):
        c = l // 2
        k = np.arange(l) - c
        ky, kx = np.meshgrid(k, k, indexing="ij")
        u, v = rotation[:, 0], rotation[:, 1]
        k3 = kx[..., None] * u + ky[..., None] * v
        k2 = (k3**2).sum(-1)
        amp = (2 * np.pi * sigma**2) ** 1.5 * np.exp(-2 * np.pi**2 * sigma**2 * k2 / l**2)
        phase = np.exp(-2j * np.pi * (k3 @ pos) / l)
        return amp * phase

    return density, exact_slice


def test_gridding_slice_near_exact_for_bandlimited():
    density, exact_slice = _analytic_gaussian_scene()
    kernel = KaiserBesselKernel.for_oversampling(width=4.0, oversampling=2.0)
    vol_ft = prepare_gridding_volume(density, kernel, pad_factor=2)
    from repro.fourier.shells import circular_mask

    band = circular_mask(24, 9.0)
    r = euler_to_matrix(37.0, 61.0, 23.0)
    cut = gridding_extract_slice(vol_ft, r, kernel, out_size=24)
    expected = exact_slice(r)
    rel = np.abs(cut - expected)[band].sum() / np.abs(expected)[band].sum()
    assert rel < 0.01


def test_gridding_far_more_accurate_than_trilinear():
    from repro.fourier.slicing import extract_slice
    from repro.fourier.shells import circular_mask

    density, exact_slice = _analytic_gaussian_scene()
    kernel = KaiserBesselKernel.for_oversampling(width=4.0, oversampling=2.0)
    vol_kb = prepare_gridding_volume(density, kernel, pad_factor=2)
    vol_tri = density.fourier_oversampled(2)
    band = circular_mask(24, 9.0)
    errs = {"kb": 0.0, "tri": 0.0}
    for angles in [(37, 61, 23), (80, 15, 140), (55, 200, 10)]:
        r = euler_to_matrix(*angles)
        expected = exact_slice(r)
        errs["kb"] += np.abs(gridding_extract_slice(vol_kb, r, kernel, out_size=24) - expected)[band].sum()
        errs["tri"] += np.abs(extract_slice(vol_tri, r, out_size=24) - expected)[band].sum()
    assert errs["kb"] < 0.1 * errs["tri"]  # an order of magnitude better


def test_gridding_validation(phantom24):
    kernel = KaiserBesselKernel.for_oversampling()
    vol_ft = prepare_gridding_volume(phantom24, kernel, pad_factor=2)
    with pytest.raises(ValueError):
        gridding_extract_slice(vol_ft, np.eye(3), kernel, out_size=100)
