"""RL010 — no per-candidate ``cut_band`` loops in the matching packages.

The batched window engine exists so that a whole candidate window is
gathered and scored in one vectorized call (``MatchPlan.match_window``);
calling ``cut_band`` once per candidate inside a Python ``for``/``while``
loop reintroduces the per-candidate interpreter overhead the engine was
built to remove — typically a multiple-× slowdown that no test catches
because the results stay bit-identical.  Single straight-line calls (for
example the center pass, which scores exactly one cut) are fine; it is the
*loop* that marks a regression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import Finding, ModuleUnderLint
from repro.analysis.rules._base import Rule

__all__ = ["NoPerCandidateCutLoop"]

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


class NoPerCandidateCutLoop(Rule):
    rule_id = "RL010"
    name = "no-per-candidate-cut-loop"
    rationale = (
        "A `cut_band` call inside a Python loop scores candidates one at a "
        "time; window evaluation must go through the batched engine "
        "(`MatchPlan.match_window` / `cut_bands_batched`), which gathers "
        "the whole candidate stack in one vectorized call."
    )
    include = ("repro/align/", "repro/refine/")

    def check(self, mod: ModuleUnderLint) -> Iterator[Finding]:
        yield from self._visit(mod, mod.tree, in_loop=False)

    def _visit(self, mod: ModuleUnderLint, node: ast.AST, in_loop: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_in_loop = in_loop or isinstance(child, _LOOPS)
            # a nested def starts a fresh lexical scope: its body only runs
            # per-iteration if *it* contains the loop, not its surroundings
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                child_in_loop = False
            if child_in_loop and isinstance(child, ast.Call):
                func = child.func
                name = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None
                )
                if name == "cut_band":
                    yield self.finding(
                        mod,
                        child,
                        "`cut_band` called inside a loop (per-candidate "
                        "scoring); batch the window through "
                        "`MatchPlan.match_window` instead",
                    )
            yield from self._visit(mod, child, child_in_loop)
