"""Analytic performance model — regenerates Tables 1 and 2 at paper scale.

The paper gives explicit operation counts for every step (§4): O(l³·log₂l)
for the 3D DFT, O(l²·log₂l) per view for step (d), O(n_window·w·l²) per
view for the matching loop.  The model prices those counts with a
:class:`~repro.parallel.machine.MachineSpec` and one tunable constant —
the flops charged per in-band Fourier sample of one matching operation —
which can be *calibrated* so a chosen table cell matches the paper, after
which all other cells are predictions.

Workload definitions: the per-level "search range" values (matchings per
angle, including sliding-window re-scans) are partially corrupted in the
available scan of the paper, so they are inferred from the per-level
refinement-time ratios; `EXPERIMENTS.md` documents the inference.  The
headline §5 facts they encode: the same 9-wide window at 1° and 0.1°, the
window sliding at 0.01° ("instead of 9 matchings we needed 15"), and a
larger effective range at 0.002°.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.parallel.machine import MachineSpec, SP2_LIKE
from repro.parallel.pfft import fft_flops_1d

__all__ = [
    "LevelSpec",
    "PaperWorkload",
    "PerformanceModel",
    "SINDBIS_WORKLOAD",
    "REO_WORKLOAD",
]

#: default flops per (matching operation × in-band sample): 8-corner complex
#: trilinear gather + squared-difference accumulation.
DEFAULT_FLOPS_PER_SAMPLE = 50.0


@dataclass(frozen=True)
class LevelSpec:
    """One angular-resolution level of a workload.

    ``ranges`` are the effective per-angle matching counts (θ, φ, ω)
    including sliding re-scans; their product is the per-view matching
    count at this level.
    """

    angular_resolution_deg: float
    ranges: tuple[int, int, int]

    @property
    def matchings_per_view(self) -> int:
        a, b, c = self.ranges
        return a * b * c


@dataclass(frozen=True)
class PaperWorkload:
    """A full dataset + schedule, as in Table 1 or Table 2."""

    name: str
    n_views: int
    image_size: int
    levels: tuple[LevelSpec, ...]
    r_map_fraction: float = 0.45  # fraction of l/2 used as the band limit
    n_processors: int = 16
    bytes_per_pixel: int = 2

    @property
    def r_map(self) -> float:
        return self.r_map_fraction * self.image_size / 2.0

    @property
    def band_samples(self) -> float:
        """In-band Fourier samples per view (π·r_map²)."""
        return float(np.pi * self.r_map**2)


# Level ranges inferred from the per-level refinement-time ratios of the
# paper's tables (see module docstring).  Level 1 and 2 use the nominal
# 9-wide window; level 3 encodes the observed slide (9 → 15 along one
# angle for Sindbis); level 4's larger effective range reproduces the
# jump in refinement time at 0.002°.
SINDBIS_WORKLOAD = PaperWorkload(
    name="Sindbis",
    n_views=7917,
    image_size=331,
    levels=(
        LevelSpec(1.0, (9, 9, 9)),
        LevelSpec(0.1, (9, 9, 9)),
        LevelSpec(0.01, (9, 9, 15)),
        LevelSpec(0.002, (15, 15, 21)),
    ),
)

# Reovirus was refined to 8.0 Å in a 511-pixel box versus Sindbis' 10.0 Å in
# a 331-pixel box; the reo band limit r_map therefore sits much closer to
# Nyquist.  The fraction below (0.865 of l/2 vs Sindbis' 0.45) is inferred
# from the ratio of per-view refinement times between Tables 1 and 2.
REO_WORKLOAD = PaperWorkload(
    name="reo",
    n_views=4422,
    image_size=511,
    levels=(
        LevelSpec(1.0, (9, 9, 9)),
        LevelSpec(0.1, (9, 9, 10)),
        LevelSpec(0.01, (13, 13, 15)),
        LevelSpec(0.002, (15, 15, 23)),
    ),
    r_map_fraction=0.865,
)


@dataclass
class PerformanceModel:
    """Prices the paper's operation counts on a machine model."""

    machine: MachineSpec = SP2_LIKE
    flops_per_match_sample: float = DEFAULT_FLOPS_PER_SAMPLE

    # -- step costs -----------------------------------------------------------
    def time_3d_dft(self, size: int, n_procs: int) -> float:
        """Steps a.1–a.6: master read, scatter, 2D+1D FFTs, exchange, allgather."""
        l = size
        p = n_procs
        vol_bytes = l**3 * 8  # float64 map on disk/memory
        t_read = self.machine.io_time(vol_bytes)
        t_scatter = (p - 1) * self.machine.message_time(vol_bytes // p)
        flops_2d = 2 * (l / p) * l * fft_flops_1d(l)  # per rank: nz_local planes
        flops_1d = (l / p) * l * fft_flops_1d(l)
        t_fft = self.machine.compute_time(flops_2d + flops_1d)
        slab_bytes = (l**3 // p) * 16  # complex128 slabs
        t_exchange = (p - 1) * self.machine.message_time(slab_bytes // p)
        t_allgather = (p - 1) * self.machine.message_time(slab_bytes)
        return t_read + t_scatter + t_fft + t_exchange + t_allgather

    def time_read_images(self, workload: PaperWorkload) -> float:
        """Step b: master reads m views at b bytes/pixel and deals them."""
        total = workload.n_views * workload.image_size**2 * workload.bytes_per_pixel
        t_read = self.machine.io_time(total)
        t_deal = (workload.n_processors - 1) * self.machine.message_time(
            total // workload.n_processors
        )
        return t_read + t_deal

    def time_fft_analysis(self, workload: PaperWorkload) -> float:
        """Steps d–e: per-view 2D DFT + CTF pass, views split over processors."""
        l = workload.image_size
        per_view = 2 * l * fft_flops_1d(l) + 2 * l * l
        views_per_proc = np.ceil(workload.n_views / workload.n_processors)
        return self.machine.compute_time(per_view * views_per_proc)

    def time_refinement_level(self, workload: PaperWorkload, level: LevelSpec) -> float:
        """Steps f–l at one level: w matchings per view over the band."""
        per_match = self.flops_per_match_sample * workload.band_samples
        views_per_proc = np.ceil(workload.n_views / workload.n_processors)
        return self.machine.compute_time(
            per_match * level.matchings_per_view * views_per_proc
        )

    # -- tables ---------------------------------------------------------------
    def calibrate(
        self, workload: PaperWorkload, level_index: int, measured_seconds: float
    ) -> None:
        """Scale ``flops_per_match_sample`` so one level matches a known time.

        After calibration against a single table cell, all other cells are
        genuine predictions of the model.
        """
        if measured_seconds <= 0:
            raise ValueError("measured time must be positive")
        current = self.time_refinement_level(workload, workload.levels[level_index])
        self.flops_per_match_sample *= measured_seconds / current

    def predict_table(self, workload: PaperWorkload) -> list[dict[str, float]]:
        """One row per level with the Table 1/2 fields."""
        rows: list[dict[str, float]] = []
        t_dft = self.time_3d_dft(workload.image_size, workload.n_processors)
        t_read = self.time_read_images(workload)
        t_fft = self.time_fft_analysis(workload)
        for level in workload.levels:
            t_ref = self.time_refinement_level(workload, level)
            rows.append(
                {
                    "angular_resolution_deg": level.angular_resolution_deg,
                    "search_range": float(level.matchings_per_view),
                    "3D DFT": t_dft,
                    "Read image": t_read,
                    "FFT analysis": t_fft,
                    "Orientation refinement": t_ref,
                    "Total": t_dft + t_read + t_fft + t_ref,
                }
            )
        return rows

    def speedup_curve(
        self, workload: PaperWorkload, processor_counts: list[int]
    ) -> list[tuple[int, float, float]]:
        """(P, total_seconds, speedup) rows for the scalability study (E9).

        Serial baseline is the P=1 prediction of the same model.
        """
        rows: list[tuple[int, float, float]] = []
        base = None
        for p in processor_counts:
            w = PaperWorkload(
                name=workload.name,
                n_views=workload.n_views,
                image_size=workload.image_size,
                levels=workload.levels,
                r_map_fraction=workload.r_map_fraction,
                n_processors=p,
                bytes_per_pixel=workload.bytes_per_pixel,
            )
            total = sum(r["Total"] for r in self.predict_table(w))
            if base is None:
                base = total * (p / processor_counts[0]) if processor_counts[0] != 1 else total
            rows.append((p, total, rows[0][1] * processor_counts[0] / total if rows else 1.0))
        # recompute speedups against the first entry normalized to P=1
        first_p, first_total, _ = rows[0]
        serial_total = first_total * first_p  # compute scales ~1/P; comm ≈ small
        rows = [(p, t, serial_total / t) for p, t, _ in rows]
        return rows

    def memory_per_node_bytes(self, size: int, replicate: bool = True, n_procs: int = 16) -> float:
        """§6 design-choice ablation: replicated D̂ vs distributed bricks."""
        full = size**3 * 16  # complex128
        if replicate:
            return float(full + size**3 * 8)  # D̂ + the real map
        return float(full / n_procs + size**3 * 8 / n_procs)
