"""E10 — step (a): slab-decomposed parallel 3D DFT.

Correctness (identical to ``numpy.fft.fftn``), per-phase cost accounting,
and the model-vs-paper observation that the 3D DFT is a small fraction of
an iteration.
"""

import numpy as np
import pytest

from repro.parallel import SINDBIS_WORKLOAD, parallel_fft3d_driver
from repro.parallel.machine import SP2_LIKE
from repro.pipeline import format_table


def test_pfft_correct_and_timed(benchmark, calibrated_model, save_artifact):
    rng = np.random.default_rng(0)
    vol = rng.normal(size=(48, 48, 48))

    def run():
        return parallel_fft3d_driver(vol, 4, SP2_LIKE)

    out, sim_seconds, timers = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.allclose(out, np.fft.fftn(vol), atol=1e-8)
    assert sim_seconds > 0

    # paper-scale model: the 3D DFT is a tiny fraction of an iteration
    t_dft = calibrated_model.time_3d_dft(331, 16)
    rows = calibrated_model.predict_table(SINDBIS_WORKLOAD)
    total = rows[0]["Total"]
    assert t_dft / total < 0.05

    table = format_table(
        ["quantity", "value"],
        [
            ["mini run size / ranks", "48^3 / 4"],
            ["matches numpy fftn", "yes (atol 1e-8)"],
            ["virtual seconds (SP2-like)", f"{sim_seconds:.4f}"],
            ["model 3D DFT at paper scale (s)", f"{t_dft:.1f}"],
            ["fraction of 1-deg iteration", f"{t_dft / total:.4f}"],
        ],
        title="Step (a): slab-decomposed parallel 3D DFT",
    )
    save_artifact("pfft.txt", table)


@pytest.mark.parametrize("n_ranks", [1, 2, 4, 8])
def test_pfft_wall_time_by_ranks(benchmark, n_ranks):
    """Host wall time of the cooperative FFT at several rank counts."""
    rng = np.random.default_rng(1)
    vol = rng.normal(size=(32, 32, 32))
    out, _, _ = benchmark(parallel_fft3d_driver, vol, n_ranks, SP2_LIKE)
    assert out.shape == (32, 32, 32)
