"""SIRT — iterative algebraic reconstruction in Fourier space.

The paper's §2 frames single-particle reconstruction as CAT's harder
sibling and cites the algebraic-reconstruction literature (its refs [13],
[16], [23]).  Direct Fourier inversion (our default, step C) divides the
accumulated transform by its sampling weights — exact where coverage is
dense, noisy where a voxel was grazed by few slices.  SIRT instead solves
the least-squares system iteratively:

    x_{k+1} = x_k + λ · Aᵀ W (b − A x_k)

with ``A`` = central-slice extraction at the view orientations (the exact
forward model of the refinement), ``Aᵀ`` = trilinear slice insertion (its
adjoint), and ``W`` a per-sample normalization.  Useful when the view set
is small or anisotropic; benchmark E13 compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.density.map import DensityMap
from repro.fourier.insertion import insert_slice, normalize_insertion
from repro.fourier.slicing import extract_slices
from repro.fourier.transforms import centered_fft2, centered_fftn, centered_ifftn
from repro.geometry.euler import Orientation
from repro.imaging.center import phase_shift_ft

__all__ = ["SIRTResult", "sirt_reconstruct"]


@dataclass
class SIRTResult:
    """Reconstruction plus convergence diagnostics."""

    density: DensityMap
    residual_history: list[float]
    n_iterations: int


def _forward(volume_ft: np.ndarray, rotations: np.ndarray, out_size: int) -> np.ndarray:
    return extract_slices(volume_ft, rotations, out_size=out_size)


def _adjoint(
    slices: np.ndarray, rotations: np.ndarray, big: int
) -> tuple[np.ndarray, np.ndarray]:
    accum = np.zeros((big, big, big), dtype=complex)
    weights = np.zeros((big, big, big))
    for q in range(slices.shape[0]):
        insert_slice(accum, weights, slices[q], rotations[q], hermitian=True)
    return accum, weights


def sirt_reconstruct(
    images: np.ndarray,
    orientations: list[Orientation],
    n_iterations: int = 10,
    relaxation: float = 1.0,
    apix: float = 1.0,
    pad_factor: int = 2,
    min_weight: float = 1e-3,
    ctf_params=None,
    callback=None,
) -> SIRTResult:
    """Iterative (SIRT) reconstruction from oriented views.

    Parameters
    ----------
    images:
        Real view stack ``(m, l, l)``.
    orientations:
        One :class:`Orientation` per view (centers honoured).
    n_iterations:
        Gradient sweeps; the direct-Fourier solution is the fixed point of
        the normalized update, so convergence is fast (5–15 sweeps).
    relaxation:
        Step size λ in (0, 2) for the normalized update.
    ctf_params:
        Optional per-view :class:`~repro.ctf.model.CTFParams`; views are
        phase-flipped before the solve (an uncorrected CTF would make the
        least-squares solution contrast-inverted at low frequency).
    callback:
        Optional ``callback(iteration, residual, density)`` hook.
    """
    imgs = np.asarray(images, dtype=float)
    if imgs.ndim != 3 or imgs.shape[1] != imgs.shape[2]:
        raise ValueError("images must be a (m, l, l) stack")
    if len(orientations) != imgs.shape[0]:
        raise ValueError("need one orientation per view")
    if ctf_params is not None and len(ctf_params) != imgs.shape[0]:
        raise ValueError("need one CTFParams per view")
    if not 0 < relaxation < 2:
        raise ValueError("relaxation must be in (0, 2)")
    if n_iterations < 1:
        raise ValueError("n_iterations must be >= 1")

    m, l, _ = imgs.shape
    big = pad_factor * l
    rotations = np.stack([o.matrix() for o in orientations])
    # measured data: centered, center-corrected, phase-flipped 2D DFTs
    b = np.empty((m, l, l), dtype=complex)
    for q in range(m):
        ft = centered_fft2(imgs[q])
        o = orientations[q]
        if o.cx != 0.0 or o.cy != 0.0:
            ft = phase_shift_ft(ft, -o.cx, -o.cy)
        if ctf_params is not None:
            from repro.ctf.correct import phase_flip

            ft = phase_flip(ft, ctf_params[q], apix)
        b[q] = ft

    # the sampling-weight volume of Aᵀ, reused as the SIRT normalizer
    _, weights = _adjoint(b, rotations, big)
    good = weights >= min_weight

    x = np.zeros((big, big, big), dtype=complex)
    residuals: list[float] = []
    b_norm = float(np.linalg.norm(b))
    for it in range(n_iterations):
        pred = _forward(x, rotations, l)
        resid = b - pred
        residuals.append(float(np.linalg.norm(resid)) / max(b_norm, 1e-30))
        accum, _ = _adjoint(resid, rotations, big)
        update = np.zeros_like(x)
        update[good] = accum[good] / weights[good]
        x = x + relaxation * update
        if callback is not None:
            callback(it, residuals[-1], None)

    big_map = centered_ifftn(x).real
    off = (big - l) // 2
    data = big_map[off : off + l, off : off + l, off : off + l] if pad_factor > 1 else big_map
    return SIRTResult(
        density=DensityMap(np.ascontiguousarray(data), apix),
        residual_history=residuals,
        n_iterations=n_iterations,
    )
