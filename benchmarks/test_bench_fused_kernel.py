"""Fused-kernel and view-scheduler speedups, recorded into BENCH_kernels.json.

The acceptance claim: on the full multi-resolution schedule at l = 64 the
fused in-band kernel beats the reference slice-then-distance path by at
least 3× while returning bit-identical results.  Worker scaling is
recorded but not asserted — it is a property of the host's core count,
not of the code.
"""

from __future__ import annotations

import json

from run_bench import BENCH_FILE, measure_fused_vs_reference, measure_worker_scaling


def test_fused_kernel_speedup(save_artifact):
    stats = measure_fused_vs_reference(size=64, n_views=2)
    workers = measure_worker_scaling(size=32, n_views=8, worker_counts=(1, 2))
    data = {"fused_vs_reference": stats, "worker_scaling": workers}
    BENCH_FILE.write_text(json.dumps(data, indent=2) + "\n")
    save_artifact("BENCH_kernels.json", json.dumps(data, indent=2))
    assert stats["identical_results"]
    assert workers["identical_results"]
    assert stats["speedup"] >= 3.0, f"fused speedup {stats['speedup']}x < 3x"
