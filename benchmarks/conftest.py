"""Shared fixtures for the benchmark/reproduction harness.

Every benchmark writes the regenerated table/figure data as plain text
under ``benchmarks/out/`` (the per-experiment artifacts referenced by
EXPERIMENTS.md) and also prints it, so a ``pytest benchmarks/
--benchmark-only -s`` run shows the paper-style rows inline.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def save_artifact(out_dir):
    def _save(name: str, text: str) -> None:
        path = out_dir / name
        path.write_text(text + "\n")
        print(f"\n--- {name} ---\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def calibrated_model():
    """The Table-1-calibrated performance model shared by timing benches."""
    from repro.parallel import PerformanceModel, SINDBIS_WORKLOAD

    pm = PerformanceModel()
    pm.calibrate(SINDBIS_WORKLOAD, 0, 4053.0)  # Table 1, 1-degree level
    return pm


@pytest.fixture(scope="session")
def figure_experiment_cache():
    """Expensive Figure 2/3/5/6 experiments, run once per kind per session."""
    from repro.pipeline.config import ExperimentConfig, MiniWorkload
    from repro.pipeline.experiments import run_figure_curves_experiment

    cache: dict[str, object] = {}

    def _get(kind: str):
        if kind not in cache:
            cfg = ExperimentConfig(
                workload=MiniWorkload(f"{kind}-bench", kind, size=32, n_views=72),
                r_max_sequence=(6.0, 8.0),
                n_iterations=2,
                max_slides=2,
            )
            cache[kind] = run_figure_curves_experiment(
                kind=kind, size=32, n_views=72, snr=3.5, perturbation_deg=3.0, config=cfg
            )
        return cache[kind]

    return _get
