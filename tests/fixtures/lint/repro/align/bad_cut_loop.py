"""RL010 fixture: per-candidate cut_band loop instead of the batched engine."""

from __future__ import annotations

import numpy as np


def match_window_slow(plan, volume_ft, rotations, view_band, dc):
    distances = np.empty(len(rotations))
    for i, rot in enumerate(rotations):
        cut = plan.cut_band(volume_ft, rot)
        distances[i] = dc.distance_band(view_band, cut)
    return distances
