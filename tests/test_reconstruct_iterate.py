"""Tests for the refine <-> reconstruct outer loop."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.config import CheckpointConfig, EngineConfig, IterationConfig, ScheduleConfig
from repro.imaging import simulate_views
from repro.reconstruct import (
    determine_structure,
    iterations_until_stop,
    should_stop,
    structure_determination_loop,
)
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel


@pytest.fixture(scope="module")
def mini_sched():
    return MultiResolutionSchedule((RefinementLevel(1.0, 1.0, half_steps=2),))


def _loop_config(sched, streaming=True, path=None, resume=False, **iteration):
    iteration.setdefault("max_iterations", 2)
    return EngineConfig(
        schedule=ScheduleConfig.from_schedule(sched),
        r_max=6.0,
        iteration=IterationConfig(streaming=streaming, **iteration),
        checkpoint=CheckpointConfig(path=path, resume=resume),
    )


@pytest.fixture(scope="module")
def small_views(phantom16):
    return simulate_views(
        phantom16, 6, snr=10.0, initial_angle_error_deg=2.0, seed=7
    )


def test_loop_produces_history(phantom24, mini_sched):
    views = simulate_views(
        phantom24, 20, snr=5.0, initial_angle_error_deg=2.0,
        projection_method="fourier", seed=0,
    )
    start = phantom24.low_pass(10.0)
    history = structure_determination_loop(
        views, start, schedule=mini_sched, max_iterations=2, r_max=8
    )
    assert 1 <= len(history) <= 2
    rec = history[-1]
    assert rec.density.size == 24
    assert np.isfinite(rec.resolution_angstrom)
    assert rec.mean_distance >= 0
    assert len(rec.orientations) == 20


def test_loop_improves_map_against_truth(phantom24, mini_sched):
    views = simulate_views(
        phantom24, 30, snr=5.0, initial_angle_error_deg=3.0,
        projection_method="fourier", seed=1,
    )
    from repro.reconstruct import reconstruct_from_views

    initial_map = reconstruct_from_views(views.images, views.initial_orientations)
    history = structure_determination_loop(
        views, initial_map, schedule=mini_sched, max_iterations=2, r_max=7
    )
    cc_before = initial_map.normalized().correlation(phantom24)
    cc_after = history[-1].density.normalized().correlation(phantom24)
    assert cc_after > cc_before - 0.02  # must not degrade; usually improves


def test_loop_validation(phantom24, mini_sched):
    views = simulate_views(phantom24, 4, seed=2)
    with pytest.raises(ValueError):
        structure_determination_loop(views, phantom24, schedule=mini_sched, max_iterations=0)


# -- the FSC stopping rule (pure function) -----------------------------------

def test_should_stop_basics():
    assert not should_stop([], 0.0)
    assert not should_stop([8.0], 0.0)  # first iteration never stops
    assert not should_stop([8.0, 7.0], 0.0)  # strict improvement continues
    assert should_stop([8.0, 8.5], 0.0)  # got worse: stop
    assert not should_stop([8.0, 8.0], 0.0)  # equal is not worse at mi=0
    assert should_stop([8.0, 8.0], 0.1)  # ... but fails a positive bar
    assert should_stop([8.0, 7.95], 0.1)  # improved, but less than the bar
    # "best previous" is the min over the whole prefix, not the last entry
    assert should_stop([6.0, 9.0, 6.5], 0.0)


@settings(max_examples=200, deadline=None)
@given(
    resolutions=st.lists(
        st.floats(min_value=1.0, max_value=100.0, allow_nan=False), max_size=8
    ),
    mi_a=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    mi_b=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    max_iterations=st.integers(min_value=1, max_value=8),
)
def test_stopping_rule_monotone_in_min_improvement(
    resolutions, mi_a, mi_b, max_iterations
):
    """A stricter improvement bar can only stop the loop sooner."""
    lo, hi = sorted((mi_a, mi_b))
    if should_stop(resolutions, lo):
        assert should_stop(resolutions, hi)
    assert iterations_until_stop(resolutions, hi, max_iterations) <= (
        iterations_until_stop(resolutions, lo, max_iterations)
    )


# -- determine_structure ------------------------------------------------------

def test_determine_structure_result_surface(small_views, phantom16, mini_sched):
    cfg = _loop_config(mini_sched, fsc_threshold=0.5, r_max_schedule=(8.0, 6.0))
    result = determine_structure(small_views, phantom16, cfg)
    assert result.stop_reason in ("converged", "max_iterations")
    assert 1 <= len(result.history) <= 2
    assert result.resumed_iterations == 0
    assert len(result.curves) == len(result.history)
    assert result.resolutions == [
        rec.resolution_angstrom for rec in result.history
    ]
    assert result.final_map is result.history[-1].density
    assert result.final_orientations == result.history[-1].orientations
    for it, rec in enumerate(result.history):
        assert rec.iteration == it
        assert rec.r_max == cfg.iteration.r_max_for(it, cfg.r_max)
        assert not rec.resumed
        assert np.isfinite(rec.resolution_angstrom)
        assert rec.curve is not None and rec.curve.cc.size > 0
    if result.perf is not None:
        assert result.perf.candidates > 0


def test_streaming_matches_barriered_bit_for_bit(small_views, phantom16, mini_sched):
    streamed = determine_structure(
        small_views, phantom16, _loop_config(mini_sched, streaming=True)
    )
    barriered = determine_structure(
        small_views, phantom16, _loop_config(mini_sched, streaming=False)
    )
    assert len(streamed.history) == len(barriered.history)
    assert streamed.stop_reason == barriered.stop_reason
    for a, b in zip(streamed.history, barriered.history):
        assert [o.as_tuple() for o in a.orientations] == [
            o.as_tuple() for o in b.orientations
        ]
        assert np.array_equal(a.density.data, b.density.data)
        assert a.resolution_angstrom == b.resolution_angstrom
        assert np.array_equal(a.curve.cc, b.curve.cc)


def _assert_identical_histories(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.iteration == y.iteration
        assert [o.as_tuple() for o in x.orientations] == [
            o.as_tuple() for o in y.orientations
        ]
        assert np.array_equal(x.density.data, y.density.data)
        assert x.resolution_angstrom == y.resolution_angstrom
        assert x.mean_distance == y.mean_distance


def test_loop_checkpoint_resume_replays_identically(
    small_views, phantom16, mini_sched, tmp_path
):
    plain = determine_structure(small_views, phantom16, _loop_config(mini_sched))
    ckpt = str(tmp_path / "loop")
    first = determine_structure(
        small_views, phantom16, _loop_config(mini_sched, path=ckpt, resume=True)
    )
    _assert_identical_histories(plain.history, first.history)

    # a second run replays every iteration from disk, bit-identically
    replayed = determine_structure(
        small_views, phantom16, _loop_config(mini_sched, path=ckpt, resume=True)
    )
    assert replayed.resumed_iterations == len(first.history)
    assert all(rec.resumed for rec in replayed.history)
    _assert_identical_histories(first.history, replayed.history)

    # truncating the loop record mid-way resumes from the cut point and
    # still reproduces the uninterrupted history exactly
    import json

    loop_json = tmp_path / "loop" / "loop.json"
    payload = json.loads(loop_json.read_text())
    payload["iterations"] = payload["iterations"][:1]
    loop_json.write_text(json.dumps(payload))
    partial = determine_structure(
        small_views, phantom16, _loop_config(mini_sched, path=ckpt, resume=True)
    )
    assert partial.resumed_iterations == 1
    _assert_identical_histories(first.history, partial.history)


def test_loop_checkpoint_refuses_foreign_initial_map(
    small_views, phantom16, phantom24, mini_sched, tmp_path
):
    """A loop checkpoint for a different initial map is ignored, not reused."""
    ckpt = str(tmp_path / "loop")
    determine_structure(
        small_views, phantom16, _loop_config(mini_sched, path=ckpt, resume=True)
    )
    other_start = phantom16.low_pass(6.0)
    fresh = determine_structure(
        small_views, other_start, _loop_config(mini_sched, path=ckpt, resume=True)
    )
    assert fresh.resumed_iterations == 0


def test_legacy_wrapper_matches_determine_structure(
    small_views, phantom16, mini_sched
):
    history = structure_determination_loop(
        small_views, phantom16, schedule=mini_sched, max_iterations=2, r_max=6.0
    )
    result = determine_structure(small_views, phantom16, _loop_config(mini_sched))
    _assert_identical_histories(history, result.history)


def test_determine_structure_raw_stack_requires_orientations(phantom16, small_views):
    with pytest.raises(ValueError, match="initial_orientations"):
        determine_structure(small_views.images, phantom16, _loop_config(
            MultiResolutionSchedule((RefinementLevel(1.0, 1.0, half_steps=2),))
        ))
    with pytest.raises(ValueError, match="one initial orientation"):
        determine_structure(
            small_views.images,
            phantom16,
            _loop_config(
                MultiResolutionSchedule((RefinementLevel(1.0, 1.0, half_steps=2),))
            ),
            initial_orientations=small_views.initial_orientations[:2],
        )
