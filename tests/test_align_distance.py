"""Tests for the paper's Fourier distance (§3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align import DistanceComputer, fourier_distance, fourier_distance_batch, radius_weights


def _rand_ft(rng, l=16):
    return rng.normal(size=(l, l)) + 1j * rng.normal(size=(l, l))


def test_distance_zero_for_identical(rng):
    f = _rand_ft(rng)
    assert fourier_distance(f, f) == 0.0


def test_distance_formula_matches_definition(rng):
    # full-band distance (r_max covering everything) must equal the explicit
    # 1/l^2 * sqrt(sum |F-C|^2) over the in-band pixels
    f, c = _rand_ft(rng), _rand_ft(rng)
    dc = DistanceComputer(16, r_max=8)
    from repro.fourier import radial_shell_indices_2d

    band = radial_shell_indices_2d(16) <= 8
    expected = np.sqrt((np.abs(f - c)[band] ** 2).sum()) / 16**2
    assert dc.distance(f, c) == pytest.approx(expected, rel=1e-12)


def test_distance_symmetry(rng):
    f, c = _rand_ft(rng), _rand_ft(rng)
    dc = DistanceComputer(16)
    assert dc.distance(f, c) == pytest.approx(dc.distance(c, f))


@given(seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_triangle_inequality(seed):
    rng = np.random.default_rng(seed)
    a, b, c = (_rand_ft(rng, 8) for _ in range(3))
    dc = DistanceComputer(8)
    assert dc.distance(a, c) <= dc.distance(a, b) + dc.distance(b, c) + 1e-12


def test_rmax_restricts_band(rng):
    f, c = _rand_ft(rng), _rand_ft(rng)
    # difference only outside radius 4
    from repro.fourier import radial_shell_indices_2d

    shells = radial_shell_indices_2d(16)
    c2 = f.copy()
    c2[shells > 4] = c[shells > 4]
    assert DistanceComputer(16, r_max=4).distance(f, c2) == 0.0
    assert DistanceComputer(16, r_max=8).distance(f, c2) > 0.0


def test_batch_matches_scalar(rng):
    f = _rand_ft(rng)
    cuts = np.stack([_rand_ft(rng) for _ in range(5)])
    dc = DistanceComputer(16, r_max=6)
    batch = dc.distance_batch(f, cuts)
    for i in range(5):
        assert batch[i] == pytest.approx(dc.distance(f, cuts[i]))
    assert np.allclose(fourier_distance_batch(f, cuts, r_max=6), batch)


def test_many_to_one_matches_scalar(rng):
    views = np.stack([_rand_ft(rng) for _ in range(4)])
    c = _rand_ft(rng)
    dc = DistanceComputer(16, r_max=6)
    d = dc.distance_many_to_one(views, c)
    for i in range(4):
        assert d[i] == pytest.approx(dc.distance(views[i], c))


def test_weights_change_distance(rng):
    f, c = _rand_ft(rng), _rand_ft(rng)
    w = radius_weights(16, "radius", r_max=8)
    d_plain = DistanceComputer(16, r_max=8).distance(f, c)
    d_weighted = DistanceComputer(16, r_max=8, weights=w).distance(f, c)
    assert d_plain != pytest.approx(d_weighted)


def test_radius_weights_properties():
    for kind in ("none", "radius", "radius2"):
        w = radius_weights(16, kind, r_max=8)
        assert w.shape == (16, 16)
        assert np.all(w >= 0)
        from repro.fourier import radial_shell_indices_2d

        band = radial_shell_indices_2d(16) <= 8
        assert w[band].mean() == pytest.approx(1.0)
    with pytest.raises(ValueError):
        radius_weights(16, "cubic")


def test_radius2_emphasizes_high_frequencies():
    w = radius_weights(16, "radius2", r_max=8)
    c = 8
    assert w[c, c + 7] > w[c, c + 2]


def test_normalized_mode_scale_invariant(rng):
    f = _rand_ft(rng)
    c = _rand_ft(rng)
    dc = DistanceComputer(16, normalized=True)
    assert dc.distance(f, 100.0 * c) == pytest.approx(dc.distance(f, c), rel=1e-9)
    assert dc.distance(f, 5.0 * f) == pytest.approx(0.0, abs=1e-12)


def test_normalized_batch_consistent(rng):
    f = _rand_ft(rng)
    cuts = np.stack([_rand_ft(rng) for _ in range(3)])
    dc = DistanceComputer(16, normalized=True)
    batch = dc.distance_batch(f, cuts)
    for i in range(3):
        assert batch[i] == pytest.approx(dc.distance(f, cuts[i]))


def test_gather_and_validation(rng):
    dc = DistanceComputer(16, r_max=4)
    assert dc.n_samples == int((dc.gather(_rand_ft(rng)) != object()).size)
    with pytest.raises(ValueError):
        dc.gather(np.zeros((8, 8)))
    with pytest.raises(ValueError):
        dc.distance_batch(_rand_ft(rng), np.zeros((3, 8, 8)))
    with pytest.raises(ValueError):
        DistanceComputer(0)
    with pytest.raises(ValueError):
        DistanceComputer(16, r_max=-1)
    with pytest.raises(ValueError):
        DistanceComputer(16, weights=np.ones((4, 4)))
