"""Advanced pipeline: defocus estimation, adaptive refinement, SIRT, coverage.

A tour of the extension layer around the paper's core algorithm:

1. estimate the (shared) defocus of a view stack from its power spectrum;
2. check Fourier-space coverage of the orientation set before committing;
3. run the *adaptive* refine<->reconstruct loop (band limit and angular
   step derived from the measured FSC each iteration — automating the
   paper's "increase the resolution gradually");
4. reconstruct with both direct Fourier inversion and SIRT and compare.

Run:  python examples/advanced_pipeline.py   (takes a minute or two)
"""

import numpy as np

from repro import CTFParams, reconstruct_from_views, simulate_views
from repro.ctf import estimate_defocus
from repro.density.map import DensityMap
from repro.density.phantom import place_blobs
from repro.reconstruct import sirt_reconstruct
from repro.reconstruct.coverage import coverage_fraction, views_needed_estimate
from repro.refine import adaptive_refinement_loop
from repro.refine.stats import angular_errors
from repro.utils import default_rng


def main() -> None:
    rng = default_rng(9)
    print("1. synthetic specimen: 60 sharp blobs in a 64^3 box at 2.0 A/px")
    positions = rng.uniform(-24, 24, size=(60, 3))
    truth = DensityMap(place_blobs(64, positions, sigma=1.1), apix=2.0).normalized()

    true_defocus = 3000.0
    views = simulate_views(
        truth, 48, snr=8.0, ctf=CTFParams(defocus_angstrom=true_defocus),
        center_sigma_px=0.4, initial_angle_error_deg=3.0, seed=3,
    )

    print("2. estimating the micrograph defocus from the stack's power spectrum")
    est, score = estimate_defocus(views.images, apix=2.0, search_range=(1000.0, 8000.0))
    print(f"   true {true_defocus:.0f} A, estimated {est:.0f} A (score {score:.3f})")

    print("3. checking Fourier coverage of the view set")
    frac = coverage_fraction(views.true_orientations, truth.size, r_max=16)
    crowther = views_needed_estimate(truth.size * truth.apix, 4 * truth.apix)
    print(f"   {len(views)} views cover {frac:.1%} of the r<=16 band "
          f"(Crowther estimate for this box: ~{crowther:.0f} equatorial views)")

    print("4. adaptive refine<->reconstruct loop (self-chosen r_max and steps)")
    initial_map = reconstruct_from_views(
        views.images, views.initial_orientations, apix=views.apix, ctf_params=views.ctf_params
    )
    history = adaptive_refinement_loop(views, initial_map, max_iterations=2, half_steps=2)
    for state in history:
        print(
            f"   iter {state.iteration}: r_max {state.r_max:.1f}, "
            f"step {state.angular_step_deg:.2f} deg, "
            f"odd/even resolution {state.resolution_angstrom:.2f} A"
        )
    refined = history[-1].orientations
    e0 = angular_errors(views.initial_orientations, views.true_orientations).mean()
    e1 = angular_errors(refined, views.true_orientations).mean()
    print(f"   angular error vs hidden truth: {e0:.2f} -> {e1:.2f} deg")

    print("5. direct-Fourier vs SIRT reconstruction from the refined orientations")
    direct = reconstruct_from_views(
        views.images, refined, apix=views.apix, ctf_params=views.ctf_params
    )
    sirt = sirt_reconstruct(
        views.images, refined, n_iterations=8, apix=views.apix, ctf_params=views.ctf_params
    )
    print(f"   direct cc vs truth: {direct.normalized().correlation(truth):.4f}")
    print(f"   SIRT   cc vs truth: {sirt.density.normalized().correlation(truth):.4f} "
          f"(residual {sirt.residual_history[0]:.3f} -> {sirt.residual_history[-1]:.3f})")


if __name__ == "__main__":
    main()
