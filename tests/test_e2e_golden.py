"""Golden-file end-to-end regression of the full refinement pipeline.

The committed ``tests/golden/refine_tiny.npz`` pins the exact bits a tiny
phantom refines to on the 1° → 0.1° schedule.  Every execution
configuration — fused and reference kernels, serial and pooled schedulers
— must reproduce those bits, which nails down three properties at once:
the kernels agree, the pool is bit-identical to the serial loop, and the
numerics have not drifted since the golden file was generated
(``tools/gen_golden.py`` regenerates it after an intentional change).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.density import asymmetric_phantom
from repro.imaging.simulate import simulate_views
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel
from repro.refine.refiner import OrientationRefiner

pytestmark = pytest.mark.slow

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "refine_tiny.npz")


@pytest.fixture(scope="module")
def golden():
    data = np.load(GOLDEN_PATH)
    return data["orientations"], data["distances"], str(data["schedule_fingerprint"])


@pytest.fixture(scope="module")
def tiny_problem():
    # pinned problem — keep in sync with tools/gen_golden.py
    density = asymmetric_phantom(16, seed=11).normalized()
    views = simulate_views(density, 4, snr=10.0, initial_angle_error_deg=2.0, seed=11)
    schedule = MultiResolutionSchedule(
        (
            RefinementLevel(1.0, 1.0, half_steps=2),
            RefinementLevel(0.1, 0.1, half_steps=2),
        )
    )
    return density, views, schedule


def test_golden_schedule_fingerprint(tiny_problem, golden):
    """The golden file was generated for *this* schedule, not a stale one."""
    _, _, schedule = tiny_problem
    assert schedule.fingerprint() == golden[2]


@pytest.mark.parametrize("backend", ["serial", "process", "sim"])
def test_engine_backends_match_golden(tiny_problem, golden, backend):
    """All three execution backends, driven through the config'd engine,
    reproduce the pre-refactor golden bits."""
    from repro.engine import EngineConfig, ParallelConfig, RefinementEngine, ScheduleConfig

    density, views, schedule = tiny_problem
    parallel = {
        "serial": ParallelConfig(),
        "process": ParallelConfig(backend="process", n_workers=2),
        "sim": ParallelConfig(backend="sim", n_ranks=2),
    }[backend]
    config = EngineConfig(
        schedule=ScheduleConfig.from_schedule(schedule),
        parallel=parallel,
        max_slides=2,
    )
    run = RefinementEngine(config).run(views, density)
    assert run.backend == backend
    assert run.fingerprint == config.fingerprint()
    got = np.array([o.as_tuple() for o in run.orientations])
    want_orient, want_dist, _ = golden
    assert np.array_equal(got, want_orient), (
        f"engine backend={backend} drifted from the golden result; "
        "if the numerics change was intentional, regenerate with tools/gen_golden.py"
    )
    assert np.array_equal(np.asarray(run.distances), want_dist)


def test_pruned_engine_matches_golden(tiny_problem, golden):
    """Best-first pruning (top_k=None) is an exact optimization: the pruned
    batched engine must land on the pre-pruning golden bits while actually
    abandoning candidates (otherwise the bound never fired and this test
    proves nothing)."""
    from repro.engine import EngineConfig, RefinementEngine, ScheduleConfig

    density, views, schedule = tiny_problem
    config = EngineConfig.from_dict(
        {
            **EngineConfig(
                schedule=ScheduleConfig.from_schedule(schedule), max_slides=2
            ).to_dict(),
            "prune": {"enabled": True},
        }
    )
    run = RefinementEngine(config).run(views, density)
    got = np.array([o.as_tuple() for o in run.orientations])
    want_orient, want_dist, _ = golden
    assert np.array_equal(got, want_orient), (
        "pruned engine drifted from the golden result; the early-termination "
        "bound must be exact at top_k=None"
    )
    assert np.array_equal(np.asarray(run.distances), want_dist)
    assert run.perf is not None and run.perf.pruned > 0


@pytest.mark.parametrize("kernel", ["fused", "reference"])
@pytest.mark.parametrize("n_workers", [1, 2])
def test_refinement_matches_golden(tiny_problem, golden, kernel, n_workers):
    density, views, schedule = tiny_problem
    refiner = OrientationRefiner(density, max_slides=2, kernel=kernel, n_workers=n_workers)
    result = refiner.refine(views, schedule=schedule)
    got = np.array([o.as_tuple() for o in result.orientations])
    want_orient, want_dist, _ = golden
    assert np.array_equal(got, want_orient), (
        f"kernel={kernel} n_workers={n_workers} drifted from the golden result; "
        "if the numerics change was intentional, regenerate with tools/gen_golden.py"
    )
    assert np.array_equal(np.asarray(result.distances), want_dist)
