"""Shared fixtures: small cached phantoms and RNGs for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.density import DensityMap, asymmetric_phantom, sindbis_like_phantom
from repro.geometry import Orientation


@pytest.fixture(scope="session")
def phantom16() -> DensityMap:
    """A 16³ asymmetric phantom (cheap; transforms cached for the session)."""
    return asymmetric_phantom(16, seed=0).normalized()


@pytest.fixture(scope="session")
def phantom24() -> DensityMap:
    """A 24³ asymmetric phantom for tests needing angular resolution."""
    return asymmetric_phantom(24, seed=1).normalized()


@pytest.fixture(scope="session")
def capsid32() -> DensityMap:
    """A 32³ icosahedral (Sindbis-like) phantom for symmetric-object tests."""
    return sindbis_like_phantom(32).normalized()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def some_orientation() -> Orientation:
    return Orientation(57.3, 123.4, 31.2)
