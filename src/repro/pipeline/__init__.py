"""Experiment pipeline: dataset presets, experiment runners, paper-style reports.

Everything the benchmarks and examples share lives here, so a table or
figure can be regenerated either by ``pytest benchmarks/`` or by running an
example script, with identical numbers.
"""

from repro.pipeline.config import ExperimentConfig, MiniWorkload
from repro.pipeline.datasets import make_dataset, reo_like_dataset, sindbis_like_dataset
from repro.pipeline.reporting import format_curve, format_table, format_timing_table
from repro.pipeline.scenarios import (
    SCENARIO_SCHEMA_VERSION,
    CostModelScenario,
    PerturbationSpec,
    Scenario,
    ScenarioRecord,
    ScenarioRunner,
    ScenarioThresholds,
    default_matrix,
    load_bench,
    perturb_orientations,
    symmetry_group_for,
    validate_bench_payload,
    write_bench,
)
from repro.pipeline.experiments import (
    FigureCurves,
    run_figure_curves_experiment,
    run_map_comparison_experiment,
    run_scenario_matrix_experiment,
    run_search_space_report,
    run_sliding_window_experiment,
    run_symmetry_detection_experiment,
    run_timing_table_experiment,
)

__all__ = [
    "ExperimentConfig",
    "MiniWorkload",
    "make_dataset",
    "sindbis_like_dataset",
    "reo_like_dataset",
    "format_table",
    "format_curve",
    "format_timing_table",
    "SCENARIO_SCHEMA_VERSION",
    "CostModelScenario",
    "PerturbationSpec",
    "Scenario",
    "ScenarioRecord",
    "ScenarioRunner",
    "ScenarioThresholds",
    "default_matrix",
    "load_bench",
    "perturb_orientations",
    "symmetry_group_for",
    "validate_bench_payload",
    "write_bench",
    "FigureCurves",
    "run_figure_curves_experiment",
    "run_map_comparison_experiment",
    "run_scenario_matrix_experiment",
    "run_search_space_report",
    "run_sliding_window_experiment",
    "run_symmetry_detection_experiment",
    "run_timing_table_experiment",
]
