"""Tests for phantom builders (symmetry properties, determinism)."""

import numpy as np
import pytest

from repro.density import (
    asymmetric_phantom,
    cyclic_phantom,
    icosahedral_capsid_phantom,
    reo_like_phantom,
    sindbis_like_phantom,
)
from repro.density.phantom import gaussian_blob, place_blobs, spherical_shell
from repro.geometry import cyclic_group, icosahedral_group
from scipy import ndimage


def _rotated_correlation(data, rotation):
    l = data.shape[0]
    c = l // 2
    k = np.arange(l) - c
    zz, yy, xx = np.meshgrid(k, k, k, indexing="ij")
    pts = np.stack([xx, yy, zz], axis=-1).reshape(-1, 3) @ rotation.T
    coords = (pts[:, ::-1] + c).T.reshape(3, l, l, l)
    rot = ndimage.map_coordinates(data, coords, order=1, mode="constant")
    a = data.ravel() - data.mean()
    b = rot.ravel() - rot.mean()
    return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))


def test_gaussian_blob_peak_location():
    b = gaussian_blob(16, [3, -2, 1], sigma=1.5)
    z, y, x = np.unravel_index(np.argmax(b), b.shape)
    assert (x - 8, y - 8, z - 8) == (3, -2, 1)


def test_gaussian_blob_validation():
    with pytest.raises(ValueError):
        gaussian_blob(16, [0, 0, 0], sigma=0.0)


def test_spherical_shell_profile():
    s = spherical_shell(32, radius=10.0, thickness=1.5)
    c = 16
    assert s[c, c, c + 10] == pytest.approx(1.0, rel=1e-6)
    assert s[c, c, c] < 0.01


def test_spherical_shell_validation():
    with pytest.raises(ValueError):
        spherical_shell(16, radius=-1, thickness=1)


def test_place_blobs_superposition():
    a = place_blobs(16, [[2, 0, 0]], sigma=1.0)
    b = place_blobs(16, [[0, 3, 0]], sigma=1.0)
    both = place_blobs(16, [[2, 0, 0], [0, 3, 0]], sigma=1.0)
    assert np.allclose(both, a + b, atol=1e-12)


def test_asymmetric_phantom_reproducible():
    a = asymmetric_phantom(16, seed=4)
    b = asymmetric_phantom(16, seed=4)
    assert np.array_equal(a.data, b.data)
    c = asymmetric_phantom(16, seed=5)
    assert not np.allclose(a.data, c.data)


def test_asymmetric_phantom_has_no_twofold():
    m = asymmetric_phantom(24, seed=0)
    from repro.geometry.rotations import axis_angle_to_matrix

    for axis in ([0, 0, 1], [1, 0, 0], [0, 1, 0]):
        cc = _rotated_correlation(m.data, axis_angle_to_matrix(axis, 180.0))
        assert cc < 0.9


def test_cyclic_phantom_symmetric_under_its_group():
    m = cyclic_phantom(24, n=4, seed=0)
    for g in cyclic_group(4).matrices[1:]:
        assert _rotated_correlation(m.data, g) > 0.98


def test_cyclic_phantom_not_higher_symmetry():
    m = cyclic_phantom(24, n=4, seed=0)
    from repro.geometry.rotations import axis_angle_to_matrix

    cc = _rotated_correlation(m.data, axis_angle_to_matrix([0, 0, 1], 45.0))
    assert cc < 0.95


def test_icosahedral_phantom_symmetric():
    m = icosahedral_capsid_phantom(24, seed=0)
    group = icosahedral_group()
    for g in group.matrices[1:10]:
        assert _rotated_correlation(m.data, g) > 0.97


def test_icosahedral_phantom_not_spherical():
    # the subunits must break full rotational symmetry
    m = icosahedral_capsid_phantom(24, seed=0)
    from repro.geometry.rotations import axis_angle_to_matrix

    cc = _rotated_correlation(m.data, axis_angle_to_matrix([0, 0, 1], 36.0))
    assert cc < 0.995


def test_named_presets_build_and_differ():
    s = sindbis_like_phantom(16)
    r = reo_like_phantom(16)
    assert s.size == r.size == 16
    sd = s.normalized().data
    rd = r.normalized().data
    assert np.abs(sd - rd).max() > 0.1


def test_phantom_density_nonnegative():
    for m in (sindbis_like_phantom(16), reo_like_phantom(16), asymmetric_phantom(16)):
        assert m.data.min() >= 0.0
        assert m.data.max() > 0.0
