"""Applying and correcting the CTF on view transforms (steps in §3/step e).

Two standard corrections are provided:

* **phase flipping** — multiply by sign(CTF); restores phases exactly while
  leaving amplitudes attenuated.  O(l²) per view, the cost the paper quotes
  for step (e).
* **Wiener filtering** — divide by CTF with an SNR-dependent regularizer,
  restoring amplitudes where the CTF has signal.
"""

from __future__ import annotations

import numpy as np

from repro.ctf.model import CTFParams, ctf_2d
from repro.utils import require_square

__all__ = ["apply_ctf", "phase_flip", "wiener_correct"]


def apply_ctf(image_ft: np.ndarray, params: CTFParams, apix: float) -> np.ndarray:
    """Multiply a centered 2D DFT by the CTF (forward simulation)."""
    size = require_square(image_ft, "image_ft")
    return np.asarray(image_ft) * ctf_2d(params, size, apix)


def phase_flip(image_ft: np.ndarray, params: CTFParams, apix: float) -> np.ndarray:
    """Correct phase reversals: multiply by sign(CTF).

    Zero-crossing pixels (CTF == 0) are left unchanged.
    """
    size = require_square(image_ft, "image_ft")
    ctf = ctf_2d(params, size, apix)
    sign = np.sign(ctf)
    sign[sign == 0] = 1.0
    return np.asarray(image_ft) * sign


def wiener_correct(
    image_ft: np.ndarray, params: CTFParams, apix: float, snr: float = 10.0
) -> np.ndarray:
    """Wiener-filter correction ``F · CTF / (CTF² + 1/SNR)``.

    For large SNR this approaches division by the CTF away from its zeros
    while staying bounded at them.
    """
    if snr <= 0:
        raise ValueError("snr must be positive")
    size = require_square(image_ft, "image_ft")
    ctf = ctf_2d(params, size, apix)
    return np.asarray(image_ft) * ctf / (ctf * ctf + 1.0 / snr)
