"""Fourier-space coverage diagnostics for an orientation set.

Every view fills one central plane of the 3D transform; reconstruction
quality at a shell depends on how completely the view set tiles it.  These
diagnostics answer "do I have enough views, and are they well spread?" —
the question behind the paper's §2 estimate that ~2000 views are needed
for a 1000 Å particle at 10 Å resolution (its ref [24]).
"""

from __future__ import annotations

import numpy as np

from repro.fourier.insertion import insert_slice
from repro.fourier.shells import radial_shell_indices_3d
from repro.geometry.euler import Orientation

__all__ = ["coverage_volume", "coverage_fraction", "shell_coverage", "views_needed_estimate"]


def coverage_volume(
    orientations: list[Orientation], size: int, pad_factor: int = 1
) -> np.ndarray:
    """The insertion-weight volume of a unit slice per orientation.

    A voxel's value is (approximately) the number of slices that touched
    it; zero means unmeasured Fourier space.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    big = pad_factor * size
    accum = np.zeros((big, big, big), dtype=complex)
    weights = np.zeros((big, big, big))
    ones = np.ones((size, size), dtype=complex)
    for o in orientations:
        insert_slice(accum, weights, ones, o.matrix(), hermitian=True)
    return weights


def coverage_fraction(
    orientations: list[Orientation], size: int, r_max: float | None = None,
    min_weight: float = 1e-3,
) -> float:
    """Fraction of in-band Fourier voxels touched by at least one view."""
    w = coverage_volume(orientations, size)
    shells = radial_shell_indices_3d(size)
    rmax = size // 2 if r_max is None else r_max
    band = shells <= rmax
    return float(np.mean(w[band] >= min_weight))


def shell_coverage(
    orientations: list[Orientation], size: int, min_weight: float = 1e-3
) -> np.ndarray:
    """Per-shell covered fraction (index = shell radius).

    Central shells are always full (every slice passes through the origin);
    coverage thins toward the band edge — how fast depends on the view
    count, which is the geometric content of the paper's ~2000-view rule.
    """
    w = coverage_volume(orientations, size)
    shells = radial_shell_indices_3d(size)
    rmax = size // 2
    out = np.zeros(rmax + 1)
    covered = (w >= min_weight).ravel()
    flat = shells.ravel()
    keep = flat <= rmax
    hits = np.bincount(flat[keep], weights=covered[keep], minlength=rmax + 1)
    counts = np.maximum(np.bincount(flat[keep], minlength=rmax + 1), 1)
    return hits / counts


def views_needed_estimate(diameter_angstrom: float, resolution_angstrom: float) -> float:
    """The classic Crowther view-count estimate ``m ≈ π·D/d``.

    For D = 1000 Å at d = 10 Å this gives ~314 *unique equatorial* views;
    with random orientations and noise the practical requirement is an
    order of magnitude higher — the paper's §2 quotes ~2000 particle
    images for exactly this case (its ref [24]).
    """
    if diameter_angstrom <= 0 or resolution_angstrom <= 0:
        raise ValueError("diameter and resolution must be positive")
    return float(np.pi * diameter_angstrom / resolution_angstrom)
