"""Incremental odd/even direct-Fourier accumulation for the outer loop.

The paper's §3 loop alternates refining orientations (step B) with
rebuilding the map and its odd/even FSC curve (step C).  The prototype
barriered on the full refinement, then ran :func:`reconstruct_from_views`
three times per iteration — once for the map, twice more inside
:func:`~repro.reconstruct.resolution.half_map_fsc`.  This module replaces
all three passes with one :class:`HalfSetAccumulator`: every view is
Fourier-inserted exactly once, into the odd or the even half-volume, and
the full map, both half maps and the FSC curve are all derived from those
two accumulator pairs.

Streaming and bit-identity (DESIGN.md §14)
------------------------------------------
``np.add.at`` scatter makes floating-point accumulation order-sensitive,
so "deposit views as the backend emits them" would tie the map's bits to
worker timing.  :meth:`HalfSetAccumulator.push` therefore routes every
view through a reorder buffer: deposits happen strictly in ascending
global view index no matter the arrival order.  Ascending global order
implies ascending order *within each half*, which is exactly the order
the legacy two-pass :func:`half_map_fsc` inserted its sub-stacks in — so
the half maps are bit-identical to the old path, and a streaming run is
bit-identical to a barriered one at any worker count.  The full map is
the elementwise reduction ``(accum_odd + accum_even) /
(weights_odd + weights_even)`` — a single deterministic add, shared by
both modes.
"""

from __future__ import annotations

import numpy as np

from repro.ctf.model import CTFParams, ctf_2d
from repro.density.map import DensityMap
from repro.fourier.insertion import insert_slice, normalize_insertion
from repro.fourier.shells import fsc_curve
from repro.fourier.transforms import centered_fft2, centered_ifftn
from repro.geometry.euler import Orientation
from repro.imaging.center import phase_shift_ft
from repro.utils import shell_radius_to_resolution

__all__ = ["HalfSetAccumulator"]


class HalfSetAccumulator:
    """Order-insensitive incremental reconstruction of odd/even half sets.

    Construct one per map rebuild, :meth:`push` every ``(index,
    orientation)`` pair as it becomes available (any arrival order), then
    read :meth:`full_map`, :meth:`half_maps`, :meth:`fsc` or
    :meth:`curve` once all views are deposited.  The per-view math —
    centering phase ramp, CTF phase flip with |CTF| sample weights,
    Hermitian trilinear insertion — replicates
    :func:`~repro.reconstruct.direct_fourier.reconstruct_from_views`
    exactly; only the accumulation bookkeeping differs.
    """

    def __init__(
        self,
        images: np.ndarray,
        apix: float = 1.0,
        pad_factor: int = 2,
        ctf_params: list[CTFParams] | None = None,
        ctf_mode: str = "phase_flip",
        min_weight: float = 1e-3,
    ) -> None:
        imgs = np.asarray(images, dtype=float)
        if imgs.ndim != 3 or imgs.shape[1] != imgs.shape[2]:
            raise ValueError("images must be a (m, l, l) stack")
        if ctf_params is not None and len(ctf_params) != imgs.shape[0]:
            raise ValueError("need one CTFParams per view")
        if ctf_mode not in ("phase_flip", "none"):
            raise ValueError(f"unknown ctf_mode {ctf_mode!r}")
        if pad_factor < 1 or int(pad_factor) != pad_factor:
            raise ValueError("pad_factor must be a positive integer")
        self.images = imgs
        self.apix = float(apix)
        self.pad_factor = int(pad_factor)
        self.ctf_params = ctf_params
        self.ctf_mode = ctf_mode
        self.min_weight = float(min_weight)
        m, l, _ = imgs.shape
        self.n_views = m
        self.size = l
        big = self.pad_factor * l
        # index % 2 == 0 is the paper's "odd" half (views are numbered
        # 1..m), matching resolution.split_odd_even.
        self._accum = (np.zeros((big, big, big), dtype=complex),
                       np.zeros((big, big, big), dtype=complex))
        self._weights = (np.zeros((big, big, big)), np.zeros((big, big, big)))
        self._pending: dict[int, Orientation] = {}
        self._next = 0

    # -- accumulation --------------------------------------------------------
    @property
    def deposited(self) -> int:
        """How many views have actually been inserted (in-order prefix)."""
        return self._next

    @property
    def complete(self) -> bool:
        """Whether every view has been deposited."""
        return self._next == self.n_views

    def push(self, index: int, orientation: Orientation) -> None:
        """Stage view ``index`` for deposit with its refined orientation.

        Views may arrive in any order; the reorder buffer holds
        out-of-order arrivals and deposits the longest contiguous prefix,
        so insertion order — and therefore every output bit — is
        independent of arrival order.
        """
        if not 0 <= index < self.n_views:
            raise ValueError(f"view index {index} outside stack of {self.n_views}")
        if index < self._next or index in self._pending:
            raise ValueError(f"view {index} pushed twice")
        self._pending[index] = orientation
        while self._next in self._pending:
            self._deposit(self._next, self._pending.pop(self._next))
            self._next += 1

    def push_all(self, orientations: list[Orientation]) -> "HalfSetAccumulator":
        """Deposit a complete orientation list (the barriered spelling)."""
        if len(orientations) != self.n_views:
            raise ValueError("need one orientation per view")
        for q, o in enumerate(orientations):
            self.push(q, o)
        return self

    def push_remaining(
        self, orientations: list[Orientation]
    ) -> "HalfSetAccumulator":
        """Deposit whatever has not been pushed yet from a complete list.

        The barriered counterpart of a (possibly partial) streaming pass:
        views already deposited or staged are skipped, everything else is
        pushed in ascending index order.  A fully streamed accumulator is
        left untouched; on a fresh one this equals :meth:`push_all`.
        """
        if len(orientations) != self.n_views:
            raise ValueError("need one orientation per view")
        for q, o in enumerate(orientations):
            if q < self._next or q in self._pending:
                continue
            self.push(q, o)
        return self

    def _deposit(self, q: int, o: Orientation) -> None:
        ft = centered_fft2(self.images[q])
        if o.cx != 0.0 or o.cy != 0.0:
            ft = phase_shift_ft(ft, -o.cx, -o.cy)
        sample_w = None
        if self.ctf_params is not None and self.ctf_mode == "phase_flip":
            ctf = ctf_2d(self.ctf_params[q], self.size, self.apix)
            sign = np.sign(ctf)
            sign[sign == 0] = 1.0
            ft = ft * sign
            sample_w = np.abs(ctf)
        half = q % 2
        insert_slice(self._accum[half], self._weights[half], ft, o.matrix(),
                     hermitian=True, sample_weights=sample_w)

    # -- finalization --------------------------------------------------------
    def _require_complete(self) -> None:
        if not self.complete:
            raise ValueError(
                f"only {self._next} of {self.n_views} views deposited; "
                f"push the rest before reading maps"
            )

    def _finalize(self, accum: np.ndarray, weights: np.ndarray) -> DensityMap:
        volume_ft = normalize_insertion(accum, weights, min_weight=self.min_weight)
        big_map = centered_ifftn(volume_ft).real
        l = self.size
        if self.pad_factor == 1:
            data = big_map
        else:
            off = (self.pad_factor * l - l) // 2
            data = big_map[off : off + l, off : off + l, off : off + l]
        return DensityMap(np.ascontiguousarray(data), self.apix)

    def full_map(self) -> DensityMap:
        """The map from *all* views: elementwise sum of the two halves."""
        self._require_complete()
        return self._finalize(self._accum[0] + self._accum[1],
                              self._weights[0] + self._weights[1])

    def half_maps(self) -> tuple[DensityMap, DensityMap]:
        """The odd and even half maps (bit-identical to the two-pass path)."""
        self._require_complete()
        if self.n_views < 2:
            raise ValueError("need at least two views to split")
        return (self._finalize(self._accum[0], self._weights[0]),
                self._finalize(self._accum[1], self._weights[1]))

    def fsc(self) -> np.ndarray:
        """Shell-wise correlation of the two half maps (incl. DC shell)."""
        map_odd, map_even = self.half_maps()
        return fsc_curve(map_odd.data, map_even.data)

    def curve(self, label: str = ""):
        """The Figure 5/6 :class:`CorrelationCurve` (DC shell dropped)."""
        from repro.reconstruct.resolution import CorrelationCurve

        fsc = self.fsc()
        shells = np.arange(1, len(fsc))
        res = np.array([
            shell_radius_to_resolution(int(s), self.size, self.apix) for s in shells
        ])
        return CorrelationCurve(
            shells=shells, resolution_angstrom=res, cc=fsc[1:], label=label
        )
