"""Unknown-symmetry capabilities: asymmetric refinement + symmetry detection.

The paper's method makes no symmetry assumption, so it can (a) refine
orientations of a particle with NO symmetry — impossible for the classic
icosahedral projection-matching programs — and (b) *detect* the symmetry
group of a particle when one exists (sec. 3: "if the virus exhibits any
symmetry this method allows us to determine its symmetry group").

Run:  python examples/unknown_symmetry.py
"""

from repro import OrientationRefiner, asymmetric_phantom, detect_symmetry, simulate_views
from repro.density import cyclic_phantom, icosahedral_capsid_phantom
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel
from repro.refine.stats import angular_errors


def refine_asymmetric() -> None:
    print("== refining an ASYMMETRIC particle (no symmetry to exploit) ==")
    truth = asymmetric_phantom(28, seed=4).normalized()
    views = simulate_views(truth, 16, snr=4.0, initial_angle_error_deg=3.0, seed=1)
    schedule = MultiResolutionSchedule(
        (RefinementLevel(1.0, 1.0, half_steps=3), RefinementLevel(0.5, 0.5, half_steps=2))
    )
    refiner = OrientationRefiner(truth, r_max=10, max_slides=2)
    result = refiner.refine(views, schedule=schedule)
    e0 = angular_errors(views.initial_orientations, views.true_orientations).mean()
    e1 = angular_errors(result.orientations, views.true_orientations).mean()
    print(f"   mean angular error: {e0:.2f} deg -> {e1:.2f} deg")
    print()


def detect_groups() -> None:
    print("== detecting symmetry groups from density maps alone ==")
    cases = {
        "asymmetric blob assembly": asymmetric_phantom(28, seed=0).normalized(),
        "C4 tetramer": cyclic_phantom(28, n=4, seed=0).normalized(),
        "icosahedral capsid": icosahedral_capsid_phantom(32, seed=0).normalized(),
    }
    for name, density in cases.items():
        result = detect_symmetry(density, max_order=6, n_axes=150, seed=0)
        axes = ", ".join(f"{o}-fold" for _, o, _ in result.axes) or "none"
        print(f"   {name:<28s} -> {result.group_name:<4s} (axes found: {axes})")
    print()
    print("   (an icosahedral detection reporting a 5-/3-/2-fold subgroup still")
    print("   identifies the particle as symmetric; closing the full 60-element")
    print("   group requires axis precision beyond a 32-pixel map)")


if __name__ == "__main__":
    refine_asymmetric()
    detect_groups()
