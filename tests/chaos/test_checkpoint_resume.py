"""Chaos tests for level-granular checkpoint/resume (DESIGN.md §8).

The killed run is modeled with an ``abort-level`` fault: the scheduler
raises at a level barrier exactly where a SIGKILL would leave a real run —
after the previous level's checkpoint hit the disk, before the next level
touched anything.  Resume must then produce a result bit-identical to an
uninterrupted run.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.faults.checkpoint import (
    RefinementCheckpoint,
    load_checkpoint,
    save_checkpoint,
    try_load_checkpoint,
)
from repro.faults.plan import FaultInjected, FaultPlan, FaultSpec
from repro.parallel.viewsched import ViewScheduler

from tests.chaos.conftest import assert_identical

pytestmark = pytest.mark.chaos


def interrupted_run(chaos_problem, ckpt_path, level_seq=1):
    """Run until an injected abort at ``level:<level_seq>`` kills it."""
    views, refiner, schedule = chaos_problem
    plan = FaultPlan((FaultSpec("abort-level", f"level:{level_seq}"),))
    scheduler = ViewScheduler(n_workers=1, fault_plan=plan)
    try:
        with pytest.raises(FaultInjected):
            refiner.refine(
                views, schedule=schedule, scheduler=scheduler, checkpoint_path=ckpt_path
            )
    finally:
        scheduler.close()


def test_resume_after_abort_is_bit_identical(chaos_problem, baseline, tmp_path):
    views, refiner, schedule = chaos_problem
    ckpt = str(tmp_path / "run.ckpt")
    interrupted_run(chaos_problem, ckpt)
    saved = load_checkpoint(ckpt)
    assert saved.levels_done == 1

    resumed = refiner.refine(views, schedule=schedule, checkpoint_path=ckpt, resume=True)
    assert_identical(resumed, baseline)
    assert resumed.stats == baseline.stats


def test_resume_of_finished_run_is_a_noop(chaos_problem, baseline, tmp_path):
    views, refiner, schedule = chaos_problem
    ckpt = str(tmp_path / "run.ckpt")
    refiner.refine(views, schedule=schedule, checkpoint_path=ckpt)
    assert load_checkpoint(ckpt).levels_done == len(schedule)

    # all levels done: resume returns the checkpointed state untouched
    resumed = refiner.refine(views, schedule=schedule, checkpoint_path=ckpt, resume=True)
    assert_identical(resumed, baseline)
    assert resumed.stats == baseline.stats


def test_fingerprint_mismatch_starts_fresh(chaos_problem, baseline, tmp_path):
    from repro.refine.multires import MultiResolutionSchedule, RefinementLevel

    views, refiner, schedule = chaos_problem
    ckpt = str(tmp_path / "run.ckpt")
    other = MultiResolutionSchedule((RefinementLevel(2.0, 2.0, half_steps=1),))
    refiner.refine(views, schedule=other, checkpoint_path=ckpt)

    assert try_load_checkpoint(ckpt, schedule.fingerprint(), len(views)) is None
    resumed = refiner.refine(views, schedule=schedule, checkpoint_path=ckpt, resume=True)
    assert_identical(resumed, baseline)


def test_engine_fingerprint_mismatch_fails_loudly(chaos_problem, tmp_path):
    """Same schedule, different kernel/memo config: resume must *raise*.

    The old schedule-only fingerprint silently accepted these resumes; the
    engine fingerprint in the checkpoint header turns them into a
    :class:`CheckpointConfigMismatch` instead of a quietly mixed result.
    """
    from repro.faults.checkpoint import CheckpointConfigMismatch
    from repro.refine.refiner import OrientationRefiner

    views, refiner, schedule = chaos_problem
    ckpt = str(tmp_path / "run.ckpt")
    refiner.refine(views, schedule=schedule, checkpoint_path=ckpt)

    density = refiner.density
    for variant in (
        OrientationRefiner(density, max_slides=2, kernel="fused"),
        OrientationRefiner(density, max_slides=2, memo=False),
    ):
        with pytest.raises(CheckpointConfigMismatch):
            variant.refine(views, schedule=schedule, checkpoint_path=ckpt, resume=True)

    # the matching config still resumes cleanly
    again = OrientationRefiner(density, max_slides=2)
    again.refine(views, schedule=schedule, checkpoint_path=ckpt, resume=True)


def test_legacy_checkpoint_without_engine_fingerprint_resumes(
    chaos_problem, baseline, tmp_path
):
    """Pre-engine checkpoints (no engine fingerprint header) stay loadable."""
    views, refiner, schedule = chaos_problem
    ckpt = str(tmp_path / "run.ckpt")
    interrupted_run(chaos_problem, ckpt)
    saved = load_checkpoint(ckpt)
    stripped = RefinementCheckpoint(
        schedule_fingerprint=saved.schedule_fingerprint,
        levels_done=saved.levels_done,
        orientations=saved.orientations,
        distances=saved.distances,
        stats=saved.stats,
        memo=saved.memo,
        engine_fingerprint="",
    )
    save_checkpoint(ckpt, stripped)

    resumed = refiner.refine(views, schedule=schedule, checkpoint_path=ckpt, resume=True)
    assert_identical(resumed, baseline)


def test_engine_routed_abort_and_resume(chaos_problem, baseline, tmp_path):
    """The config'd engine path survives an abort-level fault and resumes
    bit-identically — same contract as the legacy kwargs path."""
    from repro.engine import (
        EngineConfig,
        ParallelConfig,
        RefinementEngine,
        ScheduleConfig,
    )

    views, refiner, schedule = chaos_problem
    ckpt = str(tmp_path / "run.ckpt")
    config = EngineConfig(
        schedule=ScheduleConfig.from_schedule(schedule),
        parallel=ParallelConfig(backend="process", n_workers=1),
        max_slides=2,
    )
    ckpt_config = EngineConfig.from_dict(
        {**config.to_dict(), "checkpoint": {"path": ckpt}}
    )
    plan = FaultPlan((FaultSpec("abort-level", "level:1"),))
    with pytest.raises(FaultInjected):
        RefinementEngine(ckpt_config).run(views, refiner.density, fault_plan=plan)
    assert load_checkpoint(ckpt).levels_done == 1

    resume_config = EngineConfig.from_dict(
        {**config.to_dict(), "checkpoint": {"path": ckpt, "resume": True}}
    )
    run = RefinementEngine(resume_config).run(views, refiner.density)
    assert_identical(run.result, baseline)
    assert run.result.stats == baseline.stats


def test_garbage_checkpoint_is_ignored(chaos_problem, baseline, tmp_path):
    views, refiner, schedule = chaos_problem
    ckpt = str(tmp_path / "run.ckpt")
    with open(ckpt, "w") as fh:
        fh.write("not a checkpoint\n")
    resumed = refiner.refine(views, schedule=schedule, checkpoint_path=ckpt, resume=True)
    assert_identical(resumed, baseline)


def test_checkpoint_write_is_atomic(tmp_path, baseline, monkeypatch):
    """A crash mid-save leaves the previous checkpoint intact, never a torn file."""
    path = str(tmp_path / "ckpt.orient")
    good = RefinementCheckpoint(
        schedule_fingerprint="f" * 16,
        levels_done=1,
        orientations=baseline.orientations,
        distances=np.asarray(baseline.distances),
        stats=baseline.stats,
    )
    save_checkpoint(path, good)
    before = open(path).read()

    # simulate the crash between temp-file write and publication: the
    # rename never happens, so the prior checkpoint must stay untouched
    def crashed_replace(src, dst):
        raise OSError("injected crash during checkpoint publication")

    monkeypatch.setattr("repro.faults.checkpoint.os.replace", crashed_replace)
    with pytest.raises(OSError, match="injected crash"):
        save_checkpoint(path, good)
    monkeypatch.undo()
    assert open(path).read() == before
    assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    loaded = load_checkpoint(path)
    for got, want in zip(loaded.orientations, baseline.orientations):
        assert got.as_tuple() == want.as_tuple()
    assert np.array_equal(loaded.distances, baseline.distances)
    assert loaded.stats == baseline.stats


def test_checkpoint_roundtrip_is_exact(tmp_path):
    """17-digit serialization: pathological floats survive the round trip."""
    from repro.geometry.euler import Orientation
    from repro.refine.stats import RefinementStats

    rng = np.random.default_rng(0)
    orients = [
        Orientation(*(float(x) for x in rng.uniform(-180, 180, 3)),
                    cx=float(rng.normal()), cy=float(rng.normal()))
        for _ in range(5)
    ]
    dists = rng.normal(size=5) * 1e-7
    ckpt = RefinementCheckpoint(
        schedule_fingerprint="a" * 16,
        levels_done=2,
        orientations=orients,
        distances=dists,
        stats=RefinementStats(n_views=5),
    )
    path = str(tmp_path / "ckpt.orient")
    save_checkpoint(path, ckpt)
    loaded = load_checkpoint(path)
    for got, want in zip(loaded.orientations, orients):
        assert got.as_tuple() == want.as_tuple()
    assert np.array_equal(loaded.distances, dists)


# -- warm orientation memo through kill/resume (batched kernel) ---------------
def test_checkpoint_carries_memo_state(chaos_problem, tmp_path):
    """The default (batched) kernel serializes its memo into the checkpoint."""
    views, refiner, schedule = chaos_problem
    ckpt = str(tmp_path / "run.ckpt")
    interrupted_run(chaos_problem, ckpt)
    saved = load_checkpoint(ckpt)
    assert saved.memo is not None and len(saved.memo) == len(views)
    for keys, values in saved.memo.values():
        assert keys.shape[1] == 5 and keys.shape[0] == values.shape[0] > 0


def test_resume_with_warm_memo_is_bit_identical(chaos_problem, baseline, tmp_path):
    """Killed run -> resume with the deserialized (warm) memo == fault-free run.

    The warm memo changes *work* (level-2 candidates already scored in the
    killed run come from the cache) but must not change one bit of output;
    the perf counters prove the cache actually fired.
    """
    views, refiner, schedule = chaos_problem
    ckpt = str(tmp_path / "run.ckpt")
    interrupted_run(chaos_problem, ckpt)

    resumed = refiner.refine(views, schedule=schedule, checkpoint_path=ckpt, resume=True)
    assert_identical(resumed, baseline)
    assert resumed.stats == baseline.stats
    assert resumed.perf is not None
    assert resumed.perf.memo_hits > 0, "warm memo never consulted on resume"


def test_pruned_resume_replays_same_prune_decisions(chaos_problem, tmp_path):
    """Kill a pruned run at a level barrier, resume it, and the replayed
    level must make the *same pruning decisions* as the uninterrupted
    pruned run — same abandoned/evaluated counts per level, same bits out.

    This holds because the k-th-best tracker lives inside one view's
    sliding-window search (it never crosses the checkpoint boundary) and
    the warm memo restored from the checkpoint is the exact memo state the
    killed run had at that barrier.
    """
    from repro.engine.config import EngineConfig
    from repro.refine.refiner import OrientationRefiner

    views, refiner, schedule = chaos_problem
    config = EngineConfig.from_dict(
        {**refiner.config.to_dict(), "prune": {"enabled": True}}
    )
    pruned_baseline = OrientationRefiner(refiner.density, config=config).refine(
        views, schedule=schedule
    )
    assert pruned_baseline.perf is not None and pruned_baseline.perf.pruned > 0

    ckpt = str(tmp_path / "run.ckpt")
    plan = FaultPlan((FaultSpec("abort-level", "level:1"),))
    scheduler = ViewScheduler(n_workers=1, fault_plan=plan)
    interrupted = OrientationRefiner(refiner.density, config=config)
    try:
        with pytest.raises(FaultInjected):
            interrupted.refine(
                views, schedule=schedule, scheduler=scheduler, checkpoint_path=ckpt
            )
    finally:
        scheduler.close()
    assert load_checkpoint(ckpt).levels_done == 1

    resumed = OrientationRefiner(refiner.density, config=config).refine(
        views, schedule=schedule, checkpoint_path=ckpt, resume=True
    )
    assert_identical(resumed, pruned_baseline)
    assert resumed.stats == pruned_baseline.stats
    # the replayed level 2 pruned/evaluated exactly what the fault-free
    # pruned run pruned/evaluated there
    label = f"{schedule.levels[1].angular_step_deg:g}deg"
    assert resumed.perf is not None
    assert resumed.perf.level_pruned[label] == pruned_baseline.perf.level_pruned[label]
    assert (
        resumed.perf.level_evaluated[label]
        == pruned_baseline.perf.level_evaluated[label]
    )


def test_resume_without_memo_is_also_bit_identical(chaos_problem, baseline, tmp_path):
    """A legacy checkpoint (no memo header) resumes cold to the same bits."""
    views, refiner, schedule = chaos_problem
    ckpt = str(tmp_path / "run.ckpt")
    interrupted_run(chaos_problem, ckpt)
    saved = load_checkpoint(ckpt)
    stripped = RefinementCheckpoint(
        schedule_fingerprint=saved.schedule_fingerprint,
        levels_done=saved.levels_done,
        orientations=saved.orientations,
        distances=saved.distances,
        stats=saved.stats,
        memo=None,
    )
    save_checkpoint(ckpt, stripped)
    assert load_checkpoint(ckpt).memo is None

    resumed = refiner.refine(views, schedule=schedule, checkpoint_path=ckpt, resume=True)
    assert_identical(resumed, baseline)
    assert resumed.stats == baseline.stats


def test_symmetry_mode_mismatch_fails_loudly(chaos_problem, tmp_path):
    """A checkpoint written without a symmetry restriction must refuse to
    resume under one (and vice versa): the restriction changes the
    candidate space, so mixing levels across modes would silently blend
    two different searches.  The symmetry section is part of the engine
    fingerprint, which the checkpoint header pins."""
    from repro.engine.config import EngineConfig
    from repro.faults.checkpoint import CheckpointConfigMismatch
    from repro.refine.refiner import OrientationRefiner

    views, refiner, schedule = chaos_problem
    ckpt = str(tmp_path / "run.ckpt")
    refiner.refine(views, schedule=schedule, checkpoint_path=ckpt)

    density = refiner.density
    base = refiner.config.to_dict()
    for mode in ("fixed:C4", "detect"):
        cfg = EngineConfig.from_dict({**base, "symmetry": {"mode": mode}})
        variant = OrientationRefiner(density, config=cfg)
        with pytest.raises(CheckpointConfigMismatch):
            variant.refine(views, schedule=schedule, checkpoint_path=ckpt, resume=True)
