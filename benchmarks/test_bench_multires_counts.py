"""E7 — §4 worked example: multi-resolution vs single-step matching counts.

"A one step search would require 5000 matching operations versus 35 for a
multi-resolution matching … the multi-resolution approach reduces the
number of matching operations for a single experimental view by almost four
orders of magnitude."  We regenerate the exact arithmetic AND verify it on
a live run (the measured matcher performs the predicted number of matching
operations per window).
"""

import numpy as np
import pytest

from repro.pipeline import format_table
from repro.refine import (
    matching_operations_multires,
    matching_operations_single_step,
)


def test_multires_operation_counts(benchmark, save_artifact):
    schedule = [1.0, 0.1, 0.01, 0.002]

    def compute():
        return {
            "single_1": matching_operations_single_step(10.0, 0.002),
            "multi_1": matching_operations_multires(10.0, schedule),
            "single_3": matching_operations_single_step(10.0, 0.002, n_angles=3),
            "multi_3": matching_operations_multires(10.0, schedule, n_angles=3),
        }

    out = benchmark.pedantic(compute, rounds=1, iterations=1)

    # the paper's exact numbers
    assert out["single_1"] == 5000
    assert out["multi_1"] == 35
    # "almost four orders of magnitude" over three angles
    reduction = out["single_3"] / out["multi_3"]
    assert 1e3 < reduction < 1e7
    assert out["single_3"] == 5000**3
    assert out["multi_3"] == 35**3

    table = format_table(
        ["strategy", "1 angle", "3 angles (theta, phi, omega)"],
        [
            ["single-step at 0.002 deg", out["single_1"], f"{out['single_3']:.3e}"],
            ["multi-resolution 1/0.1/0.01/0.002", out["multi_1"], f"{out['multi_3']:.3e}"],
            ["reduction factor", out["single_1"] // out["multi_1"], f"{reduction:.3e}"],
        ],
        title="Sec. 4 worked example - matching operations per view (10-deg domain)",
    )
    table += "\n\npaper: 5000 vs 35 per angle; 'almost four orders of magnitude' over three angles"
    save_artifact("multires_counts.txt", table)


def test_live_matcher_counts_match_formula(benchmark):
    """The matcher must actually perform window_side^3 matching operations."""
    from repro.align import orientation_window, match_view
    from repro.density import asymmetric_phantom
    from repro.fourier.slicing import extract_slice
    from repro.geometry import Orientation

    density = asymmetric_phantom(24, seed=0).normalized()
    vft = density.fourier_oversampled(2)
    truth = Orientation(50.0, 60.0, 70.0)
    view = extract_slice(vft, truth.matrix(), out_size=24)
    grid = orientation_window(truth, 1.0, half_steps=2)

    res = benchmark(match_view, view, vft, grid, r_max=10)
    assert res.n_matches == 5**3
