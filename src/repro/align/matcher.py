"""Matching one view against a window of calculated cuts (steps f, g, h).

A *matching operation* — the unit the paper counts when analysing
complexity — is: construct one cut ``C_s`` of D̂ at a candidate orientation
and evaluate ``d(F, C_s)``.  :func:`match_view` performs one full window of
``w`` matching operations, vectorized, and reports the minimum together
with whether it lies on the window edge (which triggers the slide in
step i).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.align.distance import DistanceComputer
from repro.align.fused import MatchPlan
from repro.align.grid import OrientationGrid
from repro.align.memo import MemoKey, OrientationMemo
from repro.arraytypes import Array
from repro.fourier.slicing import extract_slices
from repro.geometry.euler import Orientation
from repro.perf import PerfCounters

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an align->refine cycle)
    from repro.refine.prune import PruneSearch
    from repro.refine.restrict import SymmetryRestriction

__all__ = ["MatchResult", "match_view", "match_view_band", "match_view_window"]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of one window search for one view.

    Attributes
    ----------
    orientation:
        The minimum-distance candidate ``O_µ``.
    distance:
        The minimum distance ``d_µ``.
    flat_index:
        Index of the winner in the grid's C-ordering.
    on_edge:
        Per-angle booleans: winner on the window boundary (step i trigger).
    distances:
        The full distance array over the window (``w`` values), kept for
        diagnostics and for the symmetry detector.
    n_matches:
        Matching operations performed (== grid size).
    """

    orientation: Orientation
    distance: float
    flat_index: int
    on_edge: tuple[bool, bool, bool]
    distances: Array
    n_matches: int


def match_view(
    view_ft: Array,
    volume_ft: Array,
    grid: OrientationGrid,
    distance_computer: DistanceComputer | None = None,
    r_max: float | None = None,
    weights: Array | None = None,
    interpolation: str = "trilinear",
    cut_modulation: Array | None = None,
) -> MatchResult:
    """Steps f–h for one view and one window.

    Parameters
    ----------
    view_ft:
        The (CTF-corrected, center-corrected) centered 2D DFT ``F``.
    volume_ft:
        The centered 3D DFT ``D̂`` of the current map.
    grid:
        Candidate orientations (from :func:`repro.align.orientation_window`).
    distance_computer:
        Reusable pre-masked computer; built on the fly from ``r_max`` /
        ``weights`` when omitted.
    interpolation:
        Cut interpolation order (``"trilinear"`` default).
    cut_modulation:
        Optional per-view |CTF| imposed on every calculated cut before the
        distance (the consistent forward model for phase-flipped views).
    """
    size = view_ft.shape[0]
    dc = distance_computer or DistanceComputer(size, r_max=r_max, weights=weights)
    rotations = grid.rotation_stack()
    # volume_ft may be an oversampled (padded) transform; cuts come back at
    # the view's size either way.
    cuts = extract_slices(volume_ft, rotations, order=interpolation, out_size=size)
    distances = dc.distance_batch(view_ft, cuts, cut_modulation=cut_modulation)
    flat = int(np.argmin(distances))
    return MatchResult(
        orientation=grid.orientation_at(flat),
        distance=float(distances[flat]),
        flat_index=flat,
        on_edge=grid.on_edge(flat),
        distances=distances,
        n_matches=grid.size,
    )


def match_view_band(
    view_band: Array,
    volume_ft: Array,
    grid: OrientationGrid,
    plan: MatchPlan,
    cut_modulation: Array | None = None,
) -> MatchResult:
    """Steps f–h with the fused in-band kernel — no ``(w, l, l)`` cut stack.

    ``view_band`` is the view's pre-gathered in-band vector
    (:meth:`MatchPlan.gather_view`); the distances are numerically identical
    to :func:`match_view` with the plan's distance computer.
    """
    distances = plan.distances(
        volume_ft, view_band, grid.rotation_stack(), cut_modulation=cut_modulation
    )
    flat = int(np.argmin(distances))
    return MatchResult(
        orientation=grid.orientation_at(flat),
        distance=float(distances[flat]),
        flat_index=flat,
        on_edge=grid.on_edge(flat),
        distances=distances,
        n_matches=grid.size,
    )


def _grid_memo_keys(
    grid: OrientationGrid,
    center: tuple[float, float],
    symmetry: "SymmetryRestriction | None" = None,
) -> list[MemoKey]:
    """Memo keys for every grid candidate in :meth:`rotation_stack` C-order.

    Without ``symmetry`` the keys are the exact-float Euler tuples (the
    bit-identity doctrine of :mod:`repro.align.memo`).  With a restriction
    they are the *canonical quantized* keys of
    :meth:`repro.refine.restrict.SymmetryRestriction.memo_keys`, so
    G-equivalent candidates share one memo slot (DESIGN.md §13).
    """
    if symmetry is not None:
        return symmetry.memo_keys(grid.rotation_stack(), center)
    cx, cy = float(center[0]), float(center[1])
    return [
        (t, p, o, cx, cy)
        for t in grid.thetas.tolist()
        for p in grid.phis.tolist()
        for o in grid.omegas.tolist()
    ]


def match_view_window(
    view_band: Array,
    volume_ft: Array,
    grid: OrientationGrid,
    plan: MatchPlan,
    cut_modulation: Array | None = None,
    memo: OrientationMemo | None = None,
    memo_center: tuple[float, float] = (0.0, 0.0),
    counters: PerfCounters | None = None,
    prune: PruneSearch | None = None,
    symmetry: "SymmetryRestriction | None" = None,
) -> MatchResult:
    """Steps f–h with the batched window engine and the orientation memo.

    The whole window goes through
    :meth:`repro.align.fused.MatchPlan.match_window` — one chunked stacked
    gather, no per-candidate Python — after the ``memo`` (if given) is
    consulted: candidates already scored for this view at the same center
    shift reuse their cached distance, and only the misses are gathered.

    ``memo_center`` is the ``(cx, cy)`` center correction already baked
    into ``view_band`` — it is part of the memo key because a different
    correction phase-shifts the whole band, changing every distance.
    Cached values are exact previous results and misses are scored by a
    per-row kernel on a rotation subset, so the assembled distance array —
    and therefore the argmin — is bit-identical to the memo-disabled call.

    With ``prune`` (a :class:`repro.refine.prune.PruneSearch`) the misses
    are scored best-first — nearest the window center first, in growing
    chunks — through :meth:`MatchPlan.match_window_pruned`, abandoning
    candidates whose partial band distance exceeds the search's running
    k-th-best bound.  Memo hits seed the bound before any gather.
    Abandoned candidates are recorded as ``inf`` and **never** stored in
    the memo (only their lower bound is known); every candidate at or
    below the k-th best is exactly scored, so the argmin — and the
    reported minimum — stay bit-identical to the exhaustive call.

    ``symmetry`` (a :class:`repro.refine.restrict.SymmetryRestriction`)
    switches the memo/prune keys to canonical-modulo-G quantized keys, so
    symmetry-equivalent candidates share cache slots; the result contract
    relaxes from bit-identity to equal-modulo-the-group (DESIGN.md §13).
    """
    w = grid.size
    n_pruned = 0
    if memo is None and prune is None:
        distances = np.asarray(
            plan.match_window(
                volume_ft, view_band, grid.rotation_stack(), cut_modulation=cut_modulation
            )
        )
        n_gathered, n_hits = w, 0
    else:
        keys = _grid_memo_keys(grid, memo_center, symmetry=symmetry)
        if memo is None:
            distances = np.zeros(w)
            hits = np.zeros(w, dtype=bool)
        else:
            distances, hits = memo.lookup_block(keys)
        miss_idx = np.flatnonzero(~hits)
        if miss_idx.size:
            rots = grid.rotation_stack()
            if prune is None:
                miss_distances = np.asarray(
                    plan.match_window(
                        volume_ft, view_band, rots[miss_idx], cut_modulation=cut_modulation
                    )
                )
                distances[miss_idx] = miss_distances
            else:
                from repro.refine.prune import center_offsets

                hit_idx = np.flatnonzero(hits)
                if hit_idx.size:
                    prune.observe([keys[i] for i in hit_idx.tolist()], distances[hit_idx])
                offsets = center_offsets(grid.shape)
                order = miss_idx[np.argsort(offsets[miss_idx], kind="stable")]
                pos = 0
                chunk_size = prune.params.seed_chunk
                while pos < order.size:
                    take = order[pos : pos + chunk_size]
                    chunk_distances, n_abandoned = plan.match_window_pruned(
                        volume_ft,
                        view_band,
                        rots[take],
                        cut_modulation=cut_modulation,
                        bound=prune.bound(),
                        n_groups=prune.params.shell_groups,
                    )
                    distances[take] = chunk_distances
                    n_pruned += n_abandoned
                    prune.observe([keys[i] for i in take.tolist()], chunk_distances)
                    pos += take.size
                    chunk_size = prune.params.chunk
            if memo is not None:
                scored = miss_idx[np.isfinite(distances[miss_idx])]
                if scored.size:
                    memo.store_block([keys[i] for i in scored.tolist()], distances[scored])
        n_gathered = int(miss_idx.size)
        n_hits = w - n_gathered
    if counters is not None:
        counters.count_window(w, n_gathered, n_hits, n_pruned=n_pruned)
    flat = int(np.argmin(distances))
    return MatchResult(
        orientation=grid.orientation_at(flat),
        distance=float(distances[flat]),
        flat_index=flat,
        on_edge=grid.on_edge(flat),
        distances=distances,
        n_matches=grid.size,
    )
