"""Rotation-matrix utilities: axis-angle, quaternions, validity checks.

These are the substrate for symmetry-group construction (a point group is a
finite set of rotation matrices) and for symmetry *detection*, which searches
over candidate rotation axes.
"""

from __future__ import annotations

import numpy as np

from repro.arraytypes import Array

__all__ = [
    "axis_angle_to_matrix",
    "matrix_to_axis_angle",
    "quaternion_to_matrix",
    "matrix_to_quaternion",
    "is_rotation_matrix",
    "rotation_angle_deg",
    "rotation_between",
]


def axis_angle_to_matrix(axis: Array, angle_deg: float) -> Array:
    """Rodrigues rotation matrix about ``axis`` by ``angle_deg`` degrees."""
    axis = np.asarray(axis, dtype=float)
    norm = np.linalg.norm(axis)
    if norm == 0:
        raise ValueError("rotation axis must be non-zero")
    x, y, z = axis / norm
    a = np.deg2rad(angle_deg)
    c, s = np.cos(a), np.sin(a)
    k = np.array([[0.0, -z, y], [z, 0.0, -x], [-y, x, 0.0]])
    return np.eye(3) + s * k + (1.0 - c) * (k @ k)


def matrix_to_axis_angle(matrix: Array) -> tuple[Array, float]:
    """Inverse of :func:`axis_angle_to_matrix`.

    Returns ``(axis, angle_deg)`` with ``angle ∈ [0, 180]``.  For the
    identity the axis is arbitrary (ẑ is returned).
    """
    m = np.asarray(matrix, dtype=float)
    angle = np.arccos(np.clip((np.trace(m) - 1.0) / 2.0, -1.0, 1.0))
    if angle < 1e-9:
        return np.array([0.0, 0.0, 1.0]), 0.0
    if np.pi - angle < 1e-6:
        # 180 degrees: axis from the symmetric part, M = 2 a aᵀ - I.
        sym = (m + np.eye(3)) / 2.0
        axis = np.sqrt(np.clip(np.diag(sym), 0.0, None))
        # fix signs using the largest component
        i = int(np.argmax(axis))
        if axis[i] > 0:
            for j in range(3):
                if j != i and sym[i, j] < 0:
                    axis[j] = -axis[j]
        return axis / np.linalg.norm(axis), 180.0
    axis = np.array([m[2, 1] - m[1, 2], m[0, 2] - m[2, 0], m[1, 0] - m[0, 1]]) / (2.0 * np.sin(angle))
    return axis / np.linalg.norm(axis), float(np.rad2deg(angle))


def quaternion_to_matrix(q: Array) -> Array:
    """Rotation matrix of a unit quaternion ``(w, x, y, z)``."""
    q = np.asarray(q, dtype=float)
    if q.shape != (4,):
        raise ValueError("quaternion must have shape (4,)")
    n = np.linalg.norm(q)
    if n == 0:
        raise ValueError("zero quaternion")
    w, x, y, z = q / n
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ]
    )


def matrix_to_quaternion(matrix: Array) -> Array:
    """Unit quaternion ``(w, x, y, z)`` with ``w >= 0`` for a rotation matrix."""
    m = np.asarray(matrix, dtype=float)
    t = np.trace(m)
    if t > 0:
        s = np.sqrt(t + 1.0) * 2.0
        q = np.array(
            [0.25 * s, (m[2, 1] - m[1, 2]) / s, (m[0, 2] - m[2, 0]) / s, (m[1, 0] - m[0, 1]) / s]
        )
    else:
        i = int(np.argmax(np.diag(m)))
        if i == 0:
            s = np.sqrt(1.0 + m[0, 0] - m[1, 1] - m[2, 2]) * 2.0
            q = np.array(
                [(m[2, 1] - m[1, 2]) / s, 0.25 * s, (m[0, 1] + m[1, 0]) / s, (m[0, 2] + m[2, 0]) / s]
            )
        elif i == 1:
            s = np.sqrt(1.0 + m[1, 1] - m[0, 0] - m[2, 2]) * 2.0
            q = np.array(
                [(m[0, 2] - m[2, 0]) / s, (m[0, 1] + m[1, 0]) / s, 0.25 * s, (m[1, 2] + m[2, 1]) / s]
            )
        else:
            s = np.sqrt(1.0 + m[2, 2] - m[0, 0] - m[1, 1]) * 2.0
            q = np.array(
                [(m[1, 0] - m[0, 1]) / s, (m[0, 2] + m[2, 0]) / s, (m[1, 2] + m[2, 1]) / s, 0.25 * s]
            )
    q = q / np.linalg.norm(q)
    if q[0] < 0:
        q = -q
    return q


def is_rotation_matrix(matrix: Array, tol: float = 1e-8) -> bool:
    """True if ``matrix`` is orthogonal with determinant +1 (within ``tol``)."""
    m = np.asarray(matrix, dtype=float)
    if m.shape != (3, 3):
        return False
    return bool(
        np.allclose(m @ m.T, np.eye(3), atol=tol) and abs(np.linalg.det(m) - 1.0) < max(tol, 1e-6)
    )


def rotation_angle_deg(matrix: Array) -> float:
    """The rotation angle (degrees, in [0, 180]) of a rotation matrix."""
    t = np.clip((np.trace(np.asarray(matrix, dtype=float)) - 1.0) / 2.0, -1.0, 1.0)
    return float(np.rad2deg(np.arccos(t)))


def rotation_between(a: Array, b: Array) -> float:
    """Geodesic distance (degrees) between two rotation matrices."""
    return rotation_angle_deg(np.asarray(a).T @ np.asarray(b))
