"""Unit conversions between resolution (Å), spatial frequency and shell radius.

Conventions (see DESIGN.md §6): a cubic map of side ``l`` voxels sampled at
``apix`` Å/pixel has Fourier samples at integer radii ``r = 0 .. l//2``.
Shell radius ``r`` corresponds to spatial frequency ``r / (l * apix)``
cycles/Å, hence to resolution ``l * apix / r`` Å.  These conversions are used
everywhere a "resolution" appears: the ``r_map`` cutoff of the distance
computation, and the x-axis of the Figure 5/6 correlation plots.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "resolution_to_shell_radius",
    "shell_radius_to_resolution",
    "frequency_to_resolution",
    "resolution_to_frequency",
    "nyquist_resolution",
]


def resolution_to_shell_radius(resolution_angstrom: float, box_size: int, apix: float) -> float:
    """Shell radius (in Fourier pixels) corresponding to a resolution in Å."""
    if resolution_angstrom <= 0:
        raise ValueError("resolution must be positive")
    if box_size <= 0 or apix <= 0:
        raise ValueError("box_size and apix must be positive")
    return box_size * apix / resolution_angstrom


def shell_radius_to_resolution(radius_pixels: float, box_size: int, apix: float) -> float:
    """Resolution in Å corresponding to a Fourier shell radius in pixels."""
    if radius_pixels <= 0:
        raise ValueError("shell radius must be positive")
    return box_size * apix / radius_pixels


def frequency_to_resolution(frequency_per_angstrom: float) -> float:
    """Resolution (Å) of a spatial frequency given in cycles/Å."""
    if frequency_per_angstrom <= 0:
        raise ValueError("frequency must be positive")
    return 1.0 / frequency_per_angstrom


def resolution_to_frequency(resolution_angstrom: float) -> float:
    """Spatial frequency (cycles/Å) of a resolution given in Å."""
    if resolution_angstrom <= 0:
        raise ValueError("resolution must be positive")
    return 1.0 / resolution_angstrom


def nyquist_resolution(apix: float) -> float:
    """The best (smallest) resolution representable at sampling ``apix``."""
    if apix <= 0:
        raise ValueError("apix must be positive")
    return 2.0 * apix


def shell_radii(box_size: int) -> np.ndarray:
    """Integer shell radii available in a box of side ``box_size``."""
    if box_size <= 0:
        raise ValueError("box_size must be positive")
    return np.arange(1, box_size // 2 + 1)
