"""RL013: the process-pool worker path must be picklable and race-free.

Every function reachable from a pool submission site crosses a process
boundary: the task must pickle, and the code it runs executes in a child
interpreter whose module globals are *copies* of the parent's.  A task
that is a lambda/nested function/bound method fails at submit time; a
reachable function that mutates module-global state silently diverges
between parent and workers (the parent never sees the write, replays
differ per worker count); and SharedVolume lifecycle (create/unlink of
POSIX shared memory) belongs to the scheduler that owns the segment —
a worker that creates or unlinks one leaks or yanks memory the other
processes still map.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.lint import Finding
from repro.analysis.rules._base import ProgramRule, attribute_chain

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.callgraph import FunctionInfo, Project

__all__ = ["WorkerPathSafety"]

#: mutating container methods — calling one on a module-global binding is
#: a cross-process write even though the name itself is never rebound.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "add", "update", "clear", "pop", "popitem",
        "remove", "discard", "insert", "setdefault",
    }
)

#: path prefixes whose pool submissions define the worker path roots.
_POOL_ENTRY_PREFIXES = ("repro/parallel/", "repro/engine/")


class WorkerPathSafety(ProgramRule):
    rule_id = "RL013"
    name = "worker-path-safety"
    rationale = (
        "Pool tasks must be module-level (picklable) and everything they "
        "reach must neither mutate module-global state (each worker is a "
        "separate interpreter; writes diverge silently) nor own "
        "SharedVolume create/unlink (the scheduler owns segment lifecycle)."
    )
    include = ("repro/",)

    def check_program(self, project: "Project") -> Iterator[Finding]:
        graph = project.graph()
        roots: list[str] = []
        for sub in graph.pool_submissions:
            if not sub.rel.startswith(_POOL_ENTRY_PREFIXES):
                continue
            if sub.task is None:
                # Submissions of names we cannot resolve to a project
                # function (e.g. library callables) are out of scope, but
                # lambdas and attribute chains are definitely not
                # module-level defs — flag those.
                if sub.task_desc == "lambda" or "." in sub.task_desc:
                    yield self.finding_at(
                        sub.path,
                        sub.line,
                        f"pool task `{sub.task_desc}` is not a module-level "
                        "function; it cannot pickle across the process boundary",
                    )
                continue
            if not sub.task.is_module_level:
                kind = "method" if sub.task.is_method else "nested function"
                yield self.finding_at(
                    sub.path,
                    sub.line,
                    f"pool task `{sub.task_desc}` is a {kind}; only "
                    "module-level functions pickle across the process boundary",
                )
                continue
            roots.append(sub.task.node_id)
        for node_id in sorted(graph.reachable(roots)):
            yield from self._check_function(project, project.functions[node_id])

    def _check_function(
        self, project: "Project", fn: "FunctionInfo"
    ) -> Iterator[Finding]:
        minfo = project.modules[fn.module]
        globals_ = minfo.global_names

        def root_name(expr: ast.expr) -> str | None:
            while isinstance(expr, (ast.Subscript, ast.Attribute)):
                expr = expr.value
            return expr.id if isinstance(expr, ast.Name) else None

        def target_globals(targets: list[ast.expr]) -> Iterator[tuple[ast.expr, str]]:
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    name = root_name(target)
                    if name is not None and name in globals_:
                        yield target, name

        def walk(node: ast.AST) -> Iterator[Finding]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue  # nested defs are their own reachability nodes
                if isinstance(child, ast.Global):
                    names = ", ".join(child.names)
                    yield self.finding_at(
                        fn.path,
                        child,
                        f"`{fn.qualname}` is on the worker path but declares "
                        f"`global {names}`: the rebinding happens in the worker "
                        "interpreter only and diverges from the parent",
                    )
                elif isinstance(child, ast.Assign):
                    for target, name in target_globals(child.targets):
                        yield self.finding_at(
                            fn.path,
                            target,
                            f"`{fn.qualname}` is on the worker path but writes "
                            f"into module-global `{name}`: per-process state "
                            "diverges silently across workers",
                        )
                elif isinstance(child, ast.AugAssign):
                    for target, name in target_globals([child.target]):
                        yield self.finding_at(
                            fn.path,
                            target,
                            f"`{fn.qualname}` is on the worker path but augments "
                            f"module-global `{name}` in place",
                        )
                elif isinstance(child, ast.Delete):
                    for target, name in target_globals(child.targets):
                        yield self.finding_at(
                            fn.path,
                            target,
                            f"`{fn.qualname}` is on the worker path but deletes "
                            f"from module-global `{name}`",
                        )
                elif isinstance(child, ast.Call):
                    yield from check_call(child)
                yield from walk(child)

        def check_call(call: ast.Call) -> Iterator[Finding]:
            chain = attribute_chain(call.func)
            if chain is None:
                return
            # mutator method on a module-global container
            if (
                len(chain) == 2
                and chain[0] in globals_
                and chain[1] in _MUTATOR_METHODS
            ):
                yield self.finding_at(
                    fn.path,
                    call,
                    f"`{fn.qualname}` is on the worker path but calls "
                    f"`.{chain[1]}()` on module-global `{chain[0]}`: "
                    "per-process state diverges silently across workers",
                )
            leaf = chain[-1]
            # SharedVolume lifecycle outside the owning scope
            if leaf == "SharedVolume":
                cls = project.resolve_class_name(".".join(chain), minfo)
                if cls is not None or chain == ["SharedVolume"]:
                    yield self.finding_at(
                        fn.path,
                        call,
                        f"`{fn.qualname}` is on the worker path but constructs a "
                        "SharedVolume: segment creation belongs to the owning "
                        "scheduler scope",
                    )
            elif leaf == "unlink":
                yield self.finding_at(
                    fn.path,
                    call,
                    f"`{fn.qualname}` is on the worker path but calls "
                    "`.unlink()`: only the owning scope may destroy a "
                    "shared-memory segment other processes still map",
                )
            elif leaf == "SharedMemory" and any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and bool(kw.value.value)
                for kw in call.keywords
            ):
                yield self.finding_at(
                    fn.path,
                    call,
                    f"`{fn.qualname}` is on the worker path but creates a "
                    "SharedMemory segment: workers may only attach by name",
                )

        yield from walk(fn.node)
