"""Tests for the MRC2014 reader/writer."""

import numpy as np
import pytest

from repro.density import read_mrc, write_mrc
from repro.density.mrcio import MRC_HEADER_BYTES


def test_volume_roundtrip(tmp_path, rng):
    vol = rng.normal(size=(8, 10, 12)).astype(np.float32)
    path = str(tmp_path / "v.mrc")
    write_mrc(path, vol, apix=1.7)
    data, apix = read_mrc(path)
    assert data.shape == (8, 10, 12)
    assert np.allclose(data, vol)
    assert apix == pytest.approx(1.7, rel=1e-5)


def test_image_roundtrip(tmp_path, rng):
    img = rng.normal(size=(16, 16))
    path = str(tmp_path / "i.mrc")
    write_mrc(path, img, apix=2.0)
    data, apix = read_mrc(path)
    assert data.shape == (16, 16)
    assert np.allclose(data, img.astype(np.float32))


def test_stack_roundtrip(tmp_path, rng):
    stack = rng.normal(size=(5, 8, 8))
    path = str(tmp_path / "s.mrc")
    write_mrc(path, stack)
    data, _ = read_mrc(path)
    assert data.shape == (5, 8, 8)


def test_header_fields(tmp_path, rng):
    vol = rng.normal(size=(4, 4, 4))
    path = str(tmp_path / "h.mrc")
    write_mrc(path, vol, apix=1.0)
    with open(path, "rb") as fh:
        raw = fh.read()
    assert len(raw) == MRC_HEADER_BYTES + 4**3 * 4
    assert raw[208:212] == b"MAP "
    # mode 2 little-endian at offset 12
    assert int.from_bytes(raw[12:16], "little") == 2


def test_write_rejects_bad_shapes(tmp_path):
    with pytest.raises(ValueError):
        write_mrc(str(tmp_path / "x.mrc"), np.zeros(10))
    with pytest.raises(ValueError):
        write_mrc(str(tmp_path / "x.mrc"), np.zeros((2, 2, 2, 2)))
    with pytest.raises(ValueError):
        write_mrc(str(tmp_path / "x.mrc"), np.zeros((4, 4)), apix=-1)


def test_read_rejects_garbage(tmp_path):
    path = tmp_path / "bad.mrc"
    path.write_bytes(b"not an mrc file")
    with pytest.raises(ValueError, match="too short"):
        read_mrc(str(path))


def test_read_rejects_wrong_magic(tmp_path, rng):
    path = tmp_path / "m.mrc"
    vol = rng.normal(size=(4, 4, 4))
    write_mrc(str(path), vol)
    raw = bytearray(path.read_bytes())
    raw[208:212] = b"XXXX"
    path.write_bytes(bytes(raw))
    with pytest.raises(ValueError, match="magic"):
        read_mrc(str(path))


def test_read_rejects_truncated(tmp_path, rng):
    path = tmp_path / "t.mrc"
    write_mrc(str(path), rng.normal(size=(8, 8, 8)))
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - 100])
    with pytest.raises(ValueError, match="truncated"):
        read_mrc(str(path))


def test_roundtrip_preserves_statistics(tmp_path, phantom16):
    path = str(tmp_path / "p.mrc")
    write_mrc(path, phantom16.data, apix=phantom16.apix)
    data, _ = read_mrc(path)
    assert data.mean() == pytest.approx(phantom16.data.mean(), abs=1e-6)
    assert data.std() == pytest.approx(phantom16.data.std(), rel=1e-5)
