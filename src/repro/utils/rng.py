"""Seeded random number generation.

Every stochastic routine in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps the
whole pipeline reproducible: the same seed always yields the same synthetic
dataset, the same noise realization, and the same refinement trajectory.
"""

from __future__ import annotations

import numpy as np

__all__ = ["default_rng", "spawn_rngs"]


def default_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (non-deterministic), an integer seed, or an existing
        generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Used to give each simulated cluster rank (or each view) its own stream so
    results are identical regardless of execution interleaving.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    root = default_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(n)]
