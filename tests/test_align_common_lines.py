"""Tests for the common-lines baseline."""

import numpy as np
import pytest

from repro.align import (
    common_line_angles,
    initial_orientations_common_lines,
    sinogram,
)
from repro.align.common_lines import predicted_common_line
from repro.geometry import Orientation, euler_to_matrix
from repro.imaging import project_map


def _circ_diff(a, b):
    d = abs(a - b) % 180.0
    return min(d, 180.0 - d)


def test_sinogram_shape(phantom24):
    img = project_map(phantom24, Orientation(30, 40, 50), method="real")
    s = sinogram(img, n_angles=32)
    assert s.shape == (32, 24 // 2 - 1)
    assert np.all(np.isfinite(s))
    s2 = sinogram(img, n_angles=16, n_radii=6)
    assert s2.shape == (16, 6)


def test_sinogram_too_small():
    with pytest.raises(ValueError):
        sinogram(np.zeros((3, 3)))


def test_predicted_common_line_geometry():
    # views along z and along x intersect along the y axis
    ra = euler_to_matrix(0.0, 0.0, 0.0)
    rb = euler_to_matrix(90.0, 0.0, 0.0)
    aa, ab = predicted_common_line(ra, rb)
    # y axis in slice a (basis x,y): 90 deg
    assert _circ_diff(aa, 90.0) < 1e-6


def test_predicted_common_line_parallel_raises():
    r = euler_to_matrix(30.0, 40.0, 0.0)
    r2 = euler_to_matrix(30.0, 40.0, 120.0)  # same view axis, different omega
    with pytest.raises(ValueError):
        predicted_common_line(r, r2)


def test_detected_common_line_matches_prediction(phantom24):
    # clean views of an ASYMMETRIC particle: a symmetric one has 60
    # equivalent common lines and the detector may legitimately pick any.
    # use a well-conditioned pair (both views far from the poles, slices
    # intersecting at a wide angle)
    oa = Orientation(100.0, 100.0, 0.0)
    ob = Orientation(20.0, 250.0, 0.0)
    ia = project_map(phantom24, oa, method="real")
    ib = project_map(phantom24, ob, method="real")
    pa, pb = predicted_common_line(oa.matrix(), ob.matrix())
    da, db, score = common_line_angles(ia, ib, n_angles=90)
    assert score > 0.9
    assert _circ_diff(da, pa) < 12.0
    assert _circ_diff(db, pb) < 12.0


def test_predicted_pair_scores_near_optimum(phantom24):
    # even where the argmax lands elsewhere, the predicted line pair must
    # correlate nearly as well as the global best — the detector's signal
    # is real, only its peak localization is resolution-limited
    from repro.align.common_lines import sinogram_complex

    pairs = [
        (Orientation(30, 10, 0), Orientation(80, 140, 0)),
        (Orientation(50, 200, 0), Orientation(120, 30, 0)),
        (Orientation(70, 300, 0), Orientation(140, 45, 0)),
    ]
    for oa, ob in pairs:
        ia = project_map(phantom24, oa, method="real")
        ib = project_map(phantom24, ob, method="real")
        sa = sinogram_complex(ia, 90)
        sb = sinogram_complex(ib, 90)
        ua = sa / np.linalg.norm(sa, axis=1, keepdims=True)
        ub = sb / np.linalg.norm(sb, axis=1, keepdims=True)
        corr = np.maximum((ua @ np.conj(ub).T).real, (ua @ ub.T).real)
        pa, pb = predicted_common_line(oa.matrix(), ob.matrix())
        i, j = int(round(pa / 2)) % 90, int(round(pb / 2)) % 90
        assert corr[i, j] > 0.9 * corr.max()


def test_initial_orientations_assigns_all(phantom24):
    from repro.imaging import simulate_views

    views = simulate_views(phantom24, 4, seed=0)
    orients = initial_orientations_common_lines(views.images, n_candidates=150, seed=1)
    assert len(orients) == 4
    assert orients[0].as_tuple() == (0.0, 0.0, 0.0, 0.0, 0.0)


def test_initial_orientations_validation(phantom24):
    with pytest.raises(ValueError):
        initial_orientations_common_lines(np.zeros((1, 8, 8)))
    with pytest.raises(ValueError):
        initial_orientations_common_lines(np.zeros((8, 8)))
