"""RL014: every worker-reachable raise must be classifiable by RetryPolicy.

The fan-out recovery loop (DESIGN.md §8) decides per exception whether a
chunk is re-queued (retryable), the run fails (fatal), or a weaker path
takes over (degradation).  That decision reads the
``EXCEPTION_CLASSES`` taxonomy in :mod:`repro.faults.retry` — so an
exception type absent from the table, raised anywhere reachable from
worker or retry-critical code, would fall through the restart logic as
an anonymous crash the scheduler can neither retry nor report honestly.
This pass walks the call graph from the pool tasks and everything in
``parallel``/``faults`` and audits each statically-typed ``raise``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.lint import Finding
from repro.analysis.rules._base import ProgramRule, attribute_chain

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.callgraph import FunctionInfo, Project

__all__ = ["ExceptionFlowClassified"]

#: modules whose every function is retry-critical (roots of the audit).
_CRITICAL_PREFIXES = ("repro/parallel/", "repro/faults/")


class ExceptionFlowClassified(ProgramRule):
    rule_id = "RL014"
    name = "exception-flow-classified"
    rationale = (
        "Exceptions reaching the retry loop must be classified "
        "retryable/fatal/degradation by RetryPolicy's taxonomy; an "
        "unclassified type falls through pool-restart logic as an "
        "anonymous crash that can neither be retried nor degraded."
    )
    include = ("repro/",)

    def check_program(self, project: "Project") -> Iterator[Finding]:
        graph = project.graph()
        roots = [
            sub.task.node_id
            for sub in graph.pool_submissions
            if sub.task is not None
        ]
        roots += [
            fn.node_id
            for fn in project.functions.values()
            if fn.rel.startswith(_CRITICAL_PREFIXES)
        ]
        for node_id in sorted(graph.reachable(roots)):
            yield from self._check_function(project, project.functions[node_id])

    def _check_function(
        self, project: "Project", fn: "FunctionInfo"
    ) -> Iterator[Finding]:
        for node in self._own_nodes(fn.node):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            chain = attribute_chain(target)
            if chain is None:
                continue  # dynamic expression; nothing static to audit
            name = chain[-1]
            if not name[:1].isupper():
                continue  # re-raise of a caught/local exception object
            if self._classified(project, fn, name):
                continue
            yield self.finding_at(
                fn.path,
                node,
                f"`{fn.qualname}` is reachable from worker/retry-critical "
                f"code but raises `{name}`, which RetryPolicy's "
                "EXCEPTION_CLASSES taxonomy does not classify as "
                "retryable, fatal, or degradation",
            )

    @staticmethod
    def _own_nodes(root: ast.AST) -> Iterator[ast.AST]:
        """Walk a function body, skipping nested def/class bodies."""
        for child in ast.iter_child_nodes(root):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield child
            yield from ExceptionFlowClassified._own_nodes(child)

    def _classified(self, project: "Project", fn: "FunctionInfo", name: str) -> bool:
        from repro.faults.retry import EXCEPTION_CLASSES

        if name in EXCEPTION_CLASSES:
            return True
        minfo = project.modules[fn.module]
        cls = project.resolve_class_name(name, minfo)
        seen: set[str] = set()
        while cls is not None and cls.node_id not in seen:
            seen.add(cls.node_id)
            for raw in cls.bases:
                if raw.rsplit(".", 1)[-1] in EXCEPTION_CLASSES:
                    return True
            bases = project.class_bases(cls)
            cls = bases[0] if bases else None
        return False
