"""repro-lint: AST-based checks for this repo's correctness invariants.

PR 1 split every hot path into two kernels that must stay bit-identical
(fused vs reference) and a scheduler that must stay deterministic at any
worker count.  Those invariants are conventions — a centered-FFT grid
layout, seeded RNG plumbing, float32-free band math, one distance
reduction — that ordinary linters cannot see.  Each rule in
:mod:`repro.analysis.rules` encodes one of them as an AST check, so a
future perf PR that quietly breaks a convention fails the gate instead of
producing plausible-but-wrong orientations.

Usage (also via ``python -m repro.analysis``)::

    from repro.analysis.lint import lint_paths
    findings = lint_paths(["src/repro"])    # [] when clean

A finding can be waived *in place* with a justification comment on the
offending line::

    local = np.fft.fft2(slab)  # repro-lint: allow[RL002] slab-local FFT is the thing implemented

Waivers are per-line and per-rule; ``allow[*]`` waives every rule on the
line.  Rule scoping (which paths a rule patrols) lives on each rule class.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.rules import Rule

__all__ = [
    "Finding",
    "ModuleUnderLint",
    "lint_file",
    "lint_paths",
    "lint_source",
    "relative_module_path",
]

_ALLOW_RE = re.compile(r"#\s*repro-lint:\s*allow\[([A-Za-z0-9*,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class ModuleUnderLint:
    """A parsed module plus the metadata rules need.

    ``rel`` is the package-relative posix path (``repro/align/fused.py``)
    that rule scoping matches against; ``path`` is the display path.
    """

    path: str
    rel: str
    source: str
    tree: ast.Module
    allow: dict[int, frozenset[str]]

    def allows(self, line: int, rule_id: str) -> bool:
        waived = self.allow.get(line)
        return waived is not None and ("*" in waived or rule_id in waived)


def relative_module_path(path: Path) -> str:
    """Map a filesystem path to its ``repro/...`` package-relative form.

    Files outside any ``repro`` directory (ad-hoc fixtures) are treated as
    top-level ``repro/<name>`` modules so unscoped rules still apply.
    """
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return f"repro/{path.name}"


def _allow_map(source: str) -> dict[int, frozenset[str]]:
    """Waived rule ids per line.

    An inline comment waives its own line; a standalone comment line waives
    the next code line (so long justifications can sit above the code).
    """
    allow: dict[int, frozenset[str]] = {}
    pending: frozenset[str] | None = None
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        stripped = line.strip()
        if match:
            ids = frozenset(tok.strip() for tok in match.group(1).split(",") if tok.strip())
            allow[lineno] = ids
            if stripped.startswith("#"):
                pending = ids
            continue
        if pending is not None and stripped and not stripped.startswith("#"):
            allow[lineno] = allow.get(lineno, frozenset()) | pending
            pending = None
    return allow


def parse_module(path: Path, rel: str | None = None) -> ModuleUnderLint:
    """Read and parse one file into a :class:`ModuleUnderLint`."""
    source = path.read_text(encoding="utf-8")
    return ModuleUnderLint(
        path=str(path),
        rel=rel if rel is not None else relative_module_path(path),
        source=source,
        tree=ast.parse(source, filename=str(path)),
        allow=_allow_map(source),
    )


def _default_rules() -> Sequence["Rule"]:
    from repro.analysis.rules import all_rules

    return all_rules()


def _run_rules(mod: ModuleUnderLint, rules: Sequence["Rule"]) -> list[Finding]:
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies(mod):
            continue
        for finding in rule.check(mod):
            if not mod.allows(finding.line, rule.rule_id):
                findings.append(finding)
    return findings


def lint_source(
    source: str,
    rel: str,
    path: str = "<string>",
    rules: Sequence["Rule"] | None = None,
) -> list[Finding]:
    """Lint an in-memory snippet as if it lived at ``rel`` (test entry point)."""
    mod = ModuleUnderLint(
        path=path,
        rel=rel,
        source=source,
        tree=ast.parse(source, filename=path),
        allow=_allow_map(source),
    )
    return _run_rules(mod, _default_rules() if rules is None else rules)


def lint_file(path: Path, rules: Sequence["Rule"] | None = None) -> list[Finding]:
    """Lint one file."""
    return _run_rules(parse_module(path), _default_rules() if rules is None else rules)


def _iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence["Rule"] | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    resolved_rules = _default_rules() if rules is None else rules
    findings: list[Finding] = []
    for file in _iter_python_files(Path(p) for p in paths):
        findings.extend(lint_file(file, resolved_rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
