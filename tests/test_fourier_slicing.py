"""Tests for central-slice extraction (the projection-slice theorem)."""

import numpy as np
import pytest

from repro.fourier import centered_fftn, extract_slice, extract_slices, slice_coordinates
from repro.geometry import Orientation, euler_to_matrix


def _cc(a, b):
    a = a - a.mean()
    b = b - b.mean()
    return float(np.real(np.vdot(a, b)) / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-30))


def test_identity_slice_equals_axis_projection(phantom16):
    ft = centered_fftn(phantom16.data)
    cut = extract_slice(ft, np.eye(3))
    proj = phantom16.data.sum(axis=0)
    expected = np.fft.fftshift(np.fft.fft2(np.fft.ifftshift(proj)))
    assert np.allclose(cut, expected, atol=1e-8 * np.abs(expected).max())


def test_view_along_x_slice_indexing(phantom16):
    # R(90, 0, 0) maps x->-z, y->y: slice pixel (i, j) with frequencies
    # (ky, kx) = (i-c, j-c) must sample V[c-kx (z), c+ky (y), c (x)] exactly
    ft = centered_fftn(phantom16.data)
    cut = extract_slice(ft, Orientation(90, 0, 0).matrix())
    c = 8
    for i, j in [(8, 8), (8, 10), (11, 8), (5, 3), (2, 13)]:
        ky, kx = i - c, j - c
        if not (0 <= c - kx < 16):
            continue
        assert cut[i, j] == pytest.approx(ft[c - kx, c + ky, c], rel=1e-9, abs=1e-9)


def test_view_along_y_slice_indexing(phantom16):
    # R(90, 90, 0) maps x->-z, y->-x... derive from the matrix directly and
    # verify the gather agrees with explicit coordinate computation
    ft = centered_fftn(phantom16.data)
    r = Orientation(90, 90, 0).matrix()
    cut = extract_slice(ft, r)
    c = 8
    for i, j in [(8, 8), (9, 8), (8, 11), (4, 6)]:
        ky, kx = i - c, j - c
        k_xyz = kx * r[:, 0] + ky * r[:, 1]
        idx = np.rint(k_xyz[::-1] + c).astype(int)
        if np.any(idx < 0) or np.any(idx >= 16):
            continue
        assert cut[i, j] == pytest.approx(ft[tuple(idx)], rel=1e-9, abs=1e-9)


def test_rotated_slice_matches_real_projection(phantom24):
    from repro.imaging import real_project
    from repro.fourier.transforms import centered_ifft2

    r = euler_to_matrix(35.0, 60.0, 20.0)
    cut = extract_slice(phantom24.fourier_oversampled(2), r, out_size=24)
    proj_f = centered_ifft2(cut).real
    proj_r = real_project(phantom24.data, r)
    assert _cc(proj_f, proj_r) > 0.98


def test_oversampling_reduces_error(phantom24):
    from repro.imaging import real_project

    r = euler_to_matrix(50.0, 10.0, 70.0)
    ref = np.fft.fftshift(np.fft.fft2(np.fft.ifftshift(real_project(phantom24.data, r))))
    err1 = np.abs(extract_slice(phantom24.fourier(), r) - ref).sum()
    err2 = np.abs(extract_slice(phantom24.fourier_oversampled(2), r, out_size=24) - ref).sum()
    assert err2 < err1


def test_extract_slices_batch_matches_single(phantom16):
    ft = phantom16.fourier()
    rots = np.stack([euler_to_matrix(a, 2 * a, 3 * a) for a in (10.0, 40.0, 110.0)])
    batch = extract_slices(ft, rots)
    for i, r in enumerate(rots):
        assert np.allclose(batch[i], extract_slice(ft, r))


def test_extract_slices_batch_oversampled(phantom16):
    ft = phantom16.fourier_oversampled(2)
    rots = np.stack([euler_to_matrix(25.0, 35.0, 45.0)])
    batch = extract_slices(ft, rots, out_size=16)
    single = extract_slice(ft, rots[0], out_size=16)
    assert np.allclose(batch[0], single)


def test_nearest_interpolation_exact_on_axis(phantom16):
    ft = phantom16.fourier()
    cut = extract_slice(ft, np.eye(3), order="nearest")
    cut_tri = extract_slice(ft, np.eye(3), order="trilinear")
    assert np.allclose(cut, cut_tri, atol=1e-9 * np.abs(cut).max())


def test_slice_dc_is_total_mass(phantom16):
    ft = phantom16.fourier()
    for r in (np.eye(3), euler_to_matrix(33.0, 44.0, 55.0)):
        cut = extract_slice(ft, r)
        assert cut[8, 8] == pytest.approx(phantom16.data.sum(), rel=1e-6)


def test_slice_coordinates_shape_and_center():
    coords = slice_coordinates(16, np.eye(3))
    assert coords.shape == (16, 16, 3)
    assert np.allclose(coords[8, 8], [8, 8, 8])  # DC at the volume center


def test_slice_coordinates_oversampled_center():
    coords = slice_coordinates(16, np.eye(3), volume_size=32)
    assert np.allclose(coords[8, 8], [16, 16, 16])
    # one image-frequency step = two padded voxels
    assert np.allclose(coords[8, 9] - coords[8, 8], [0, 0, 2])


def test_invalid_inputs():
    with pytest.raises(ValueError):
        slice_coordinates(16, np.eye(4))
    with pytest.raises(ValueError):
        slice_coordinates(16, np.eye(3), volume_size=8)
    with pytest.raises(ValueError):
        extract_slice(np.zeros((4, 4, 4), dtype=complex), np.eye(3), order="quintic")
    with pytest.raises(ValueError):
        extract_slices(np.zeros((4, 4, 4), dtype=complex), np.eye(3))  # missing stack dim


def test_out_of_band_samples_are_zero(phantom16):
    # corners of the slice lie outside the inscribed sphere but inside the
    # cube only along some directions; rotating 45 deg pushes corners out
    ft = phantom16.fourier()
    cut = extract_slice(ft, euler_to_matrix(0.0, 0.0, 45.0))
    assert cut[0, 0] == 0.0  # corner rotated out of the cube
