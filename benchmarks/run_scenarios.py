"""Scenario-matrix driver: regenerate ``BENCH_scenarios.json`` standalone.

Runs the default accuracy matrix (DESIGN.md §12) — the same
:func:`repro.pipeline.scenarios.default_matrix` the ``-m scenarios``
pytest suite gates on — and rewrites the schema-versioned trajectory at
the repo root.  Standalone and pytest produce identical records (the
matrix is fully seeded); only the wall-clock ``timing`` sections differ.

Run standalone::

    PYTHONPATH=src python benchmarks/run_scenarios.py

or through the gated suite (same records, plus threshold assertions)::

    PYTHONPATH=src python -m pytest -m scenarios -q

Exit status is nonzero when any scenario trips a threshold, so the driver
can serve as a CI gate on its own.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

if __package__ in (None, ""):  # standalone: make src/ importable
    sys.path.insert(0, str(REPO_ROOT / "src"))

BENCH_FILE = REPO_ROOT / "BENCH_scenarios.json"


def run_all() -> int:
    from repro.pipeline.experiments import run_scenario_matrix_experiment

    out = run_scenario_matrix_experiment(bench_path=str(BENCH_FILE))
    records = out["records"]
    for record in records:
        status = "ok" if record.passed else "FAILED"
        wall = record.timing.get("wall_seconds", 0.0)
        print(f"[{status:>6}] {record.name:<22} ({record.type}, {wall:.2f}s)")
        for failure in record.failures:
            print(f"         {failure}")
    print(
        f"{out['n_passed']}/{len(records)} scenarios passed; "
        f"trajectory written to {BENCH_FILE.name}"
    )
    return 1 if out["n_failed"] else 0


if __name__ == "__main__":
    raise SystemExit(run_all())
