"""View scheduling across ranks: static blocks vs cost-aware balancing.

The paper distributes views in fixed blocks of ``m/P`` (step b).  That is
optimal when every view costs the same — but §5 shows it doesn't: views
whose windows *slide* perform up to ~2× the matchings.  This module
quantifies the resulting imbalance and provides two classic remedies:

* :func:`lpt_schedule` — Longest-Processing-Time greedy assignment when
  per-view costs can be estimated up front (e.g. from the previous
  iteration's slide counts);
* :func:`work_stealing_makespan` — a simulation of dynamic self-scheduling
  (ranks pull the next view from a shared queue), the strategy a
  production port would use.

All three scheduling policies expose their *makespan* (simulated parallel
finish time) so the tradeoff is directly comparable.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.parallel.partition import block_distribution

__all__ = [
    "static_block_makespan",
    "lpt_schedule",
    "lpt_makespan",
    "work_stealing_makespan",
    "imbalance_factor",
]


def _validate(costs: np.ndarray, n_ranks: int) -> np.ndarray:
    arr = np.asarray(costs, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("costs must be a non-empty 1D array")
    if np.any(arr < 0):
        raise ValueError("costs must be non-negative")
    if n_ranks <= 0:
        raise ValueError("n_ranks must be positive")
    return arr


def static_block_makespan(costs: np.ndarray, n_ranks: int) -> float:
    """Finish time of the paper's contiguous m/P block distribution."""
    arr = _validate(costs, n_ranks)
    blocks = block_distribution(arr.size, n_ranks)
    return float(max(arr[idx].sum() for idx in blocks))


def lpt_schedule(costs: np.ndarray, n_ranks: int) -> list[np.ndarray]:
    """Greedy Longest-Processing-Time assignment (4/3-approximation).

    Returns per-rank index arrays; views sorted by descending cost, each
    placed on the currently least-loaded rank.
    """
    arr = _validate(costs, n_ranks)
    order = np.argsort(arr)[::-1]
    loads: list[tuple[float, int]] = [(0.0, r) for r in range(n_ranks)]
    heapq.heapify(loads)
    assignment: list[list[int]] = [[] for _ in range(n_ranks)]
    for i in order:
        load, rank = heapq.heappop(loads)
        assignment[rank].append(int(i))
        heapq.heappush(loads, (load + float(arr[i]), rank))
    return [np.asarray(a, dtype=int) for a in assignment]


def lpt_makespan(costs: np.ndarray, n_ranks: int) -> float:
    """Finish time under the LPT assignment."""
    arr = _validate(costs, n_ranks)
    return float(
        max((arr[idx].sum() if idx.size else 0.0) for idx in lpt_schedule(arr, n_ranks))
    )


def work_stealing_makespan(
    costs: np.ndarray, n_ranks: int, dispatch_overhead: float = 0.0
) -> float:
    """Finish time under dynamic self-scheduling from a shared queue.

    Views are dispatched in their natural order; each dispatch charges
    ``dispatch_overhead`` (the master round-trip of a pull request).  This
    is list scheduling, a 2-approximation with no cost foreknowledge.
    """
    arr = _validate(costs, n_ranks)
    if dispatch_overhead < 0:
        raise ValueError("dispatch_overhead must be non-negative")
    loads = [(0.0, r) for r in range(n_ranks)]
    heapq.heapify(loads)
    for c in arr:
        load, rank = heapq.heappop(loads)
        heapq.heappush(loads, (load + float(c) + dispatch_overhead, rank))
    return float(max(load for load, _ in loads))


def imbalance_factor(costs: np.ndarray, n_ranks: int, policy: str = "static") -> float:
    """Makespan / ideal ratio (1.0 = perfectly balanced).

    ``policy``: ``"static"``, ``"lpt"`` or ``"stealing"``.
    """
    arr = _validate(costs, n_ranks)
    ideal = arr.sum() / n_ranks
    if ideal == 0:
        return 1.0
    if policy == "static":
        actual = static_block_makespan(arr, n_ranks)
    elif policy == "lpt":
        actual = lpt_makespan(arr, n_ranks)
    elif policy == "stealing":
        actual = work_stealing_makespan(arr, n_ranks)
    else:
        raise ValueError(f"unknown policy {policy!r}")
    return float(actual / ideal)
