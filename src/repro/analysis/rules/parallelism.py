"""RL005 — process-level parallelism primitives live in ``parallel/`` only.

The scheduler's determinism guarantee (same results at any worker count)
holds because exactly one module decides how work is chunked, how D̂ is
shared, and how results are re-ordered.  A second, ad-hoc pool elsewhere
would create its own ordering and lifetime bugs outside the tested path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import Finding, ModuleUnderLint
from repro.analysis.rules._base import Rule, attribute_chain

__all__ = ["MultiprocessingInParallelOnly"]

_PROCESS_NAMES = {"ProcessPoolExecutor", "SharedMemory"}


class MultiprocessingInParallelOnly(Rule):
    rule_id = "RL005"
    name = "mp-in-parallel-only"
    rationale = (
        "Process pools and shared memory are allowed only under "
        "repro/parallel/ — one scheduler owns chunking, D̂ sharing and "
        "result ordering, so worker-count invariance stays testable in one "
        "place."
    )
    exclude = ("repro/parallel/",)

    def check(self, mod: ModuleUnderLint) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "multiprocessing" or alias.name.startswith("multiprocessing."):
                        yield self.finding(mod,
                            node, f"`import {alias.name}` outside repro/parallel/; route "
                            "process-level work through the ViewScheduler"
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "multiprocessing" or module.startswith("multiprocessing."):
                    yield self.finding(mod,
                        node, f"`from {module} import ...` outside repro/parallel/; route "
                        "process-level work through the ViewScheduler"
                    )
                elif module.startswith("concurrent.futures"):
                    names = {alias.name for alias in node.names}
                    banned = names & _PROCESS_NAMES
                    if banned:
                        yield self.finding(mod,
                            node, f"process-pool primitive {sorted(banned)} outside "
                            "repro/parallel/; route work through the ViewScheduler"
                        )
            elif isinstance(node, ast.Attribute):
                chain = attribute_chain(node)
                if chain and chain[0] == "multiprocessing" and len(chain) > 1:
                    yield self.finding(mod,
                        node, f"`{'.'.join(chain)}` outside repro/parallel/; route "
                        "process-level work through the ViewScheduler"
                    )
