"""E5 — Figure 5: Sindbis correlation-vs-resolution, old vs new orientations.

The paper's headline result: reconstructions from the newly refined
orientations give higher odd/even correlation coefficients at every shell,
and the 0.5 crossing moves to a finer resolution (10.0 Å vs 11.2 Å on the
real data).  We reproduce the *shape* on the synthetic Sindbis-like
dataset: "old" = truth + 3° jitter (the legacy method's accuracy ceiling),
"new" = the paper's algorithm refining from "old" without ever seeing the
ground truth.
"""

import numpy as np
import pytest

from repro.pipeline import format_curve


def test_fig5_sindbis_fsc(benchmark, figure_experiment_cache, save_artifact):
    res = benchmark.pedantic(lambda: figure_experiment_cache("sindbis"), rounds=1, iterations=1)

    # --- the Figure 5 shape -------------------------------------------------
    # new curve crosses 0.5 at a finer (smaller) resolution than old
    assert res.new_crossing_angstrom <= res.old_crossing_angstrom
    # and dominates the old curve through the transition band
    mid = slice(2, 9)
    assert res.new_curve.cc[mid].mean() > res.old_curve.cc[mid].mean()
    # the refinement genuinely improved self-consistency without the truth
    assert res.new_map_cc_truth >= res.old_map_cc_truth - 0.01

    text = format_curve(
        res.old_curve.resolution_angstrom,
        {"cc_old": res.old_curve.cc, "cc_new": res.new_curve.cc},
        title="Figure 5 (Sindbis-like): odd/even correlation vs resolution",
    )
    text += (
        f"\n\n0.5 crossings:  old {res.old_crossing_angstrom:.2f} A"
        f"  new {res.new_crossing_angstrom:.2f} A"
        f"\npaper:          old 11.2 A  new 10.0 A (real Sindbis data)"
        f"\nangular error:  old {res.old_angular_error_deg:.2f} deg"
        f"  new {res.new_angular_error_deg:.2f} deg"
        f"\nmap cc vs truth: old {res.old_map_cc_truth:.3f}  new {res.new_map_cc_truth:.3f}"
    )
    save_artifact("fig5_sindbis_fsc.txt", text)
