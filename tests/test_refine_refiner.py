"""Tests for the serial OrientationRefiner (the full per-iteration driver)."""

import numpy as np
import pytest

from repro.ctf import CTFParams
from repro.imaging import simulate_views
from repro.refine import OrientationRefiner
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel
from repro.refine.refiner import STEP_REFINEMENT
from repro.refine.stats import angular_errors, center_errors


@pytest.fixture(scope="module")
def quick_schedule():
    return MultiResolutionSchedule(
        (RefinementLevel(1.0, 1.0, half_steps=2), RefinementLevel(0.5, 0.5, half_steps=2))
    )


def test_refine_recovers_orientations_fourier_views(phantom24, quick_schedule):
    views = simulate_views(
        phantom24, 4, initial_angle_error_deg=4.0, center_sigma_px=0.5,
        projection_method="fourier", seed=0,
    )
    refiner = OrientationRefiner(phantom24, r_max=10, max_slides=3)
    result = refiner.refine(views, schedule=quick_schedule)
    errs = angular_errors(result.orientations, views.true_orientations)
    errs0 = angular_errors(views.initial_orientations, views.true_orientations)
    assert errs.mean() < 0.6 * errs0.mean()
    assert errs.max() < 2.5  # resolvability floor at l=24, final step 0.5 deg
    cerrs = center_errors(result.orientations, views.true_orientations)
    assert cerrs.max() < 0.6


def test_refine_with_noise_still_improves(phantom24, quick_schedule):
    views = simulate_views(
        phantom24, 4, snr=3.0, initial_angle_error_deg=4.0,
        projection_method="fourier", seed=1,
    )
    refiner = OrientationRefiner(phantom24, r_max=10, max_slides=3)
    result = refiner.refine(views, schedule=quick_schedule)
    errs = angular_errors(result.orientations, views.true_orientations)
    errs0 = angular_errors(views.initial_orientations, views.true_orientations)
    assert errs.mean() < errs0.mean()


def test_refine_with_ctf_correction(quick_schedule):
    # era-realistic sampling: at 2.5 A/px and 8000 A defocus the CTF has a
    # couple of zero crossings inside the r<=8 band
    from repro.density import asymmetric_phantom
    from repro.density.map import DensityMap

    density = DensityMap(asymmetric_phantom(24, seed=1).normalized().data, apix=2.5)
    ctf = CTFParams(defocus_angstrom=8000.0, bfactor=0.0)
    views = simulate_views(
        density, 3, ctf=ctf, initial_angle_error_deg=3.0,
        projection_method="fourier", seed=2,
    )
    refiner = OrientationRefiner(density, r_max=8, max_slides=3)
    result = refiner.refine(views, schedule=quick_schedule)
    errs = angular_errors(result.orientations, views.true_orientations)
    errs0 = angular_errors(views.initial_orientations, views.true_orientations)
    assert errs.mean() < 0.5 * errs0.mean()


def test_timer_has_paper_steps(phantom24, quick_schedule):
    views = simulate_views(phantom24, 2, projection_method="fourier", seed=3)
    refiner = OrientationRefiner(phantom24, r_max=8)
    result = refiner.refine(views, schedule=quick_schedule)
    for name in ("3D DFT", "Read image", "FFT analysis", STEP_REFINEMENT):
        assert name in result.timer.totals
    # §5: matching dominates the iteration
    assert result.timer.fraction(STEP_REFINEMENT) > 0.5


def test_stats_per_level(phantom24, quick_schedule):
    views = simulate_views(phantom24, 2, projection_method="fourier", seed=4)
    refiner = OrientationRefiner(phantom24, r_max=8)
    result = refiner.refine(views, schedule=quick_schedule)
    assert len(result.stats.matches_per_level) == 2
    assert result.stats.total_matches >= 2 * 2 * 125


def test_level_snapshots(phantom24, quick_schedule):
    views = simulate_views(phantom24, 2, projection_method="fourier", seed=5)
    refiner = OrientationRefiner(phantom24, r_max=8)
    result = refiner.refine(views, schedule=quick_schedule, keep_level_snapshots=True)
    assert len(result.per_level_orientations) == 2
    assert len(result.per_level_orientations[0]) == 2


def test_raw_stack_requires_orientations(phantom24):
    refiner = OrientationRefiner(phantom24)
    with pytest.raises(ValueError):
        refiner.refine(np.zeros((2, 24, 24)))


def test_size_mismatch_rejected(phantom24):
    views = simulate_views(phantom24, 2, seed=0)
    from repro.density import asymmetric_phantom

    refiner = OrientationRefiner(asymmetric_phantom(16))
    with pytest.raises(ValueError):
        refiner.refine(views)


def test_orientation_count_mismatch(phantom24):
    views = simulate_views(phantom24, 2, seed=0)
    refiner = OrientationRefiner(phantom24)
    with pytest.raises(ValueError):
        refiner.refine(views, initial_orientations=views.initial_orientations[:1])


def test_invalid_options(phantom24):
    with pytest.raises(ValueError):
        OrientationRefiner(phantom24, ctf_correction="magic")


def test_refine_centers_disabled(phantom24, quick_schedule):
    views = simulate_views(phantom24, 2, projection_method="fourier", seed=6)
    refiner = OrientationRefiner(phantom24, r_max=8)
    result = refiner.refine(views, schedule=quick_schedule, refine_centers=False)
    assert all(o.cx == 0.0 and o.cy == 0.0 for o in result.orientations)
    assert result.stats.total_center_evals == 0
