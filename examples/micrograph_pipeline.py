"""Step A -> Step B -> Step C: from a raw micrograph to a refined map.

Synthesizes a whole noisy micrograph (many particles at random positions
and orientations), picks and boxes the particles by matched filtering,
assigns coarse initial orientations, refines them, and reconstructs.

Run:  python examples/micrograph_pipeline.py
"""

import numpy as np

from repro import (
    Orientation,
    OrientationRefiner,
    reconstruct_from_views,
    sindbis_like_phantom,
)
from repro.imaging import extract_particles, pick_particles, synthesize_micrograph
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel
from repro.refine.stats import angular_errors
from repro.utils import default_rng


def main() -> None:
    truth = sindbis_like_phantom(32).normalized()
    rng = default_rng(5)

    print("1. synthesizing a 320x320 micrograph with 8 particles (SNR 3)")
    mg = synthesize_micrograph(truth, shape=(320, 320), n_particles=8, snr=3.0, seed=2)

    print("2. picking particles by matched filtering")
    picks = pick_particles(mg.image, box_size=32, n_expected=8)
    hits = sum(
        1
        for r, c in mg.true_positions
        if min(np.hypot(r - pr, c - pc) for pr, pc in picks) <= 4.0
    )
    print(f"   picked {len(picks)} boxes; {hits}/8 within 4 px of a true center")

    print("3. boxing particles and matching picks to ground truth for scoring")
    stack = extract_particles(mg.image, picks, box_size=32)
    order = [
        int(np.argmin([np.hypot(r - tr, c - tc) for tr, tc in mg.true_positions]))
        for r, c in picks
    ]
    truth_orients = [mg.true_orientations[i] for i in order]

    print("4. refining from coarse (3 deg) initial orientations")
    init = [
        Orientation(
            o.theta + rng.normal(0, 3.0), o.phi + rng.normal(0, 3.0), o.omega + rng.normal(0, 3.0)
        )
        for o in truth_orients
    ]
    schedule = MultiResolutionSchedule(
        (RefinementLevel(1.0, 1.0, half_steps=3), RefinementLevel(0.5, 0.5, half_steps=2))
    )
    refiner = OrientationRefiner(truth, r_max=11, max_slides=2)
    result = refiner.refine(stack, initial_orientations=init, schedule=schedule)
    e0 = angular_errors(init, truth_orients).mean()
    e1 = angular_errors(result.orientations, truth_orients).mean()
    print(f"   angular error: {e0:.2f} deg -> {e1:.2f} deg")

    print("5. reconstructing from the refined picks")
    rec = reconstruct_from_views(stack, result.orientations)
    print(f"   map cc vs ground truth: {rec.normalized().correlation(truth):.4f}")
    print("   (8 views is far too few for a good map - the point is the dataflow)")


if __name__ == "__main__":
    main()
