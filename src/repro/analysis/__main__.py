"""``python -m repro.analysis`` — the static-analysis gate CLI.

Exit status 0 means every stage passed (or was skipped because the tool
is not installed); any finding from ruff, mypy or repro-lint exits 1.

    python -m repro.analysis                  # full gate over the repo
    python -m repro.analysis --lint-only      # repro-lint only
    python -m repro.analysis --lint-only FILE # lint specific files/dirs
    python -m repro.analysis --list-rules     # show the rule table
"""

from __future__ import annotations

import argparse

from repro.analysis.gate import run_gate
from repro.analysis.rules import rule_table

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro static-analysis gate: ruff + mypy + repro-lint",
    )
    parser.add_argument("paths", nargs="*", help="files/directories to lint (default: src/repro)")
    parser.add_argument("--lint-only", action="store_true", help="run repro-lint only")
    parser.add_argument("--skip-ruff", action="store_true", help="skip the ruff stage")
    parser.add_argument("--skip-mypy", action="store_true", help="skip the mypy stage")
    parser.add_argument("--list-rules", action="store_true", help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, name, rationale in rule_table():
            print(f"{rule_id}  {name}")
            print(f"       {rationale}")
        return 0

    results = run_gate(
        args.paths or None,
        with_ruff=not (args.lint_only or args.skip_ruff),
        with_mypy=not (args.lint_only or args.skip_mypy),
    )
    failed = False
    for result in results:
        print(f"[{result.status:>7}] {result.name}")
        if result.detail and result.status != "ok":
            for line in result.detail.splitlines():
                print(f"    {line}")
        failed = failed or result.failed
    if failed:
        print("gate: FAILED")
        return 1
    print("gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
