"""Tests for symmetry detection (§3/§6 claim: detect symmetry if it exists)."""

import numpy as np
import pytest

from repro.align import DistanceComputer
from repro.density import asymmetric_phantom, cyclic_phantom, icosahedral_capsid_phantom
from repro.density import sindbis_like_phantom
from repro.geometry import random_orientations
from repro.geometry.rotations import axis_angle_to_matrix
from repro.refine import detect_symmetry, score_rotation
from repro.refine.symmetry_detect import (
    make_rotation_scorer,
    remove_radial_average,
    score_rotation_real,
)


def test_fourier_score_low_for_true_symmetry():
    m = cyclic_phantom(24, n=4, seed=0).normalized()
    vft = m.fourier_oversampled(2)
    dc = DistanceComputer(24, r_max=10)
    probes = np.stack([o.matrix() for o in random_orientations(3, seed=1)])
    g = axis_angle_to_matrix([0, 0, 1], 90.0)
    sym_score = score_rotation(vft, g, probes, dc)
    rnd = axis_angle_to_matrix([1, 2, 3], 77.0)
    rnd_score = score_rotation(vft, rnd, probes, dc)
    assert sym_score < 0.3 * rnd_score


def test_real_score_low_for_true_symmetry():
    m = cyclic_phantom(24, n=4, seed=0).normalized()
    data = remove_radial_average(m.data)
    g = axis_angle_to_matrix([0, 0, 1], 90.0)
    rnd = axis_angle_to_matrix([1, 2, 3], 77.0)
    assert score_rotation_real(data, g) < 0.3 * score_rotation_real(data, rnd)


def test_remove_radial_average_kills_spherical_part():
    from repro.density.phantom import spherical_shell
    from repro.fourier.shells import radial_shell_indices_3d

    shell = spherical_shell(24, radius=8.0, thickness=2.0)
    flat = remove_radial_average(shell)
    # integer-shell binning leaves a sub-bin angular residual; what matters
    # is that every shell's MEAN is exactly zero (the rotation-invariant
    # component is gone) and that the operation is idempotent
    shells = radial_shell_indices_3d(24)
    for r in (4, 8, 10):
        assert abs(flat[shells == r].mean()) < 1e-10
    again = remove_radial_average(flat)
    assert np.allclose(again, flat, atol=1e-12)
    assert np.abs(flat).max() < 0.3 * shell.max()


def test_make_scorer_validation(phantom16):
    with pytest.raises(ValueError):
        make_rotation_scorer(phantom16, method="psychic")


def test_detect_c4():
    m = cyclic_phantom(24, n=4, seed=0).normalized()
    result = detect_symmetry(m, max_order=6, n_axes=120, seed=0)
    assert result.group_name == "C4"
    assert result.group.order == 4


def test_detect_c3():
    m = cyclic_phantom(24, n=3, seed=2).normalized()
    result = detect_symmetry(m, max_order=6, n_axes=120, seed=0)
    assert result.group_name == "C3"


def test_detect_asymmetric_returns_c1():
    m = asymmetric_phantom(24, seed=0).normalized()
    result = detect_symmetry(m, max_order=5, n_axes=80, seed=0)
    assert result.group_name == "C1"
    assert result.group.order == 1
    assert result.axes == []


def test_detect_sindbis_full_icosahedral():
    """The flagship case: the Sindbis-like capsid is identified as I."""
    m = sindbis_like_phantom(32).normalized()
    result = detect_symmetry(m, max_order=6, n_axes=150, seed=0)
    assert result.group_name == "I"
    assert result.group.order == 60
    orders = {o for _, o, _ in result.axes}
    assert 5 in orders  # a genuine 5-fold was found, not just inferred


def test_detect_icosahedral_capsid_at_least_polyhedral():
    """Smooth single-blob capsids may resolve only a polyhedral subgroup of
    I (T shares all its 2-folds); any of I/T with order >= 12 counts as a
    successful symmetric-particle detection."""
    m = icosahedral_capsid_phantom(32, seed=0).normalized()
    result = detect_symmetry(m, max_order=6, n_axes=150, seed=0)
    assert result.group_name in ("I", "T")
    assert result.group.order >= 12


def test_fourier_backend_still_works_for_cyclic():
    m = cyclic_phantom(24, n=4, seed=0).normalized()
    result = detect_symmetry(m, max_order=4, n_axes=80, seed=0, method="fourier")
    assert result.group_name in ("C4", "C2")  # noisier backend, weaker guarantee


def test_null_statistics_populated():
    m = cyclic_phantom(24, n=4, seed=0).normalized()
    result = detect_symmetry(m, max_order=4, n_axes=60, seed=0)
    assert result.null_mean > 0
    assert result.threshold == pytest.approx(0.2 * result.null_mean)


def test_detect_backend_fanout_matches_serial():
    """The axis×order sweep fanned out through an ExecutionBackend must
    reproduce the serial detector's result and score tables exactly —
    score_rotation_real is pure, so chunking is invisible."""
    from repro.engine.backends import ProcessBackend, SerialBackend
    from repro.parallel.viewsched import ViewScheduler

    m = sindbis_like_phantom(24).normalized()
    serial = detect_symmetry(m, max_order=6, n_axes=60, seed=0)
    via_serial_backend = detect_symmetry(
        m, max_order=6, n_axes=60, seed=0, backend=SerialBackend()
    )
    with ViewScheduler(n_workers=2) as sched:
        pooled = detect_symmetry(
            m, max_order=6, n_axes=60, seed=0, backend=ProcessBackend(scheduler=sched)
        )
    for result in (via_serial_backend, pooled):
        assert result.group_name == serial.group_name
        assert result.null_mean == serial.null_mean
        assert result.null_std == serial.null_std
        assert result.threshold == serial.threshold
        assert len(result.axes) == len(serial.axes)
        for (ax_a, order_a, score_a), (ax_b, order_b, score_b) in zip(
            result.axes, serial.axes
        ):
            assert (order_a, score_a) == (order_b, score_b)
            assert np.array_equal(ax_a, ax_b)
