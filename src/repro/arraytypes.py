"""Shared ``numpy.typing`` aliases for the annotated core packages.

The kernels care about three array families — real coordinates/weights,
complex Fourier samples, and integer index sets.  Centralizing the aliases
keeps signatures short and makes the dtype conventions greppable: a
``ComplexArray`` is always a centered-DFT sample set, a ``FloatArray`` is
real-valued geometry/weight data, an ``IntArray`` is an index or shell-label
array.  ``Array`` is the deliberate any-dtype escape hatch (e.g. gathers
that preserve the input dtype).
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import ArrayLike, NDArray

__all__ = [
    "Array",
    "ArrayLike",
    "BoolArray",
    "ComplexArray",
    "FloatArray",
    "IntArray",
]

#: Any-dtype ndarray (dtype-preserving gathers, mixed real/complex paths).
Array = NDArray[Any]

#: Real-valued arrays: coordinates, weights, distances, densities.
FloatArray = NDArray[np.floating[Any]]

#: Complex Fourier-sample arrays (views, cuts, band vectors, volume DFTs).
ComplexArray = NDArray[np.complexfloating[Any, Any]]

#: Integer index / shell-label arrays.
IntArray = NDArray[np.integer[Any]]

#: Boolean mask arrays.
BoolArray = NDArray[np.bool_]
