"""Center (translation) handling for views.

A particle boxed slightly off-center shows up, in Fourier space, as a phase
ramp on its transform.  Step (k) of the algorithm refines the center by
scanning a small box of candidate shifts; step (l) corrects the view for
the winning shift.  Both are implemented with exact Fourier phase ramps, so
subpixel shifts cost O(l²) and introduce no interpolation error.

Sign convention: ``shift_image(img, dx, dy)`` moves image content by
``(+dx, +dy)`` pixels in (x, y); :func:`phase_shift_ft` is its Fourier-side
equivalent.  A view whose particle sits at offset ``(cx, cy)`` from the box
center is re-centered by shifting content by ``(−cx, −cy)``.
"""

from __future__ import annotations

import numpy as np

from repro.fourier.transforms import centered_fft2, centered_ifft2, fourier_center
from repro.utils import require_square

__all__ = [
    "phase_shift_ft",
    "shift_image",
    "center_of_mass_shift",
    "cross_correlation_shift",
]


def phase_shift_ft(image_ft: np.ndarray, dx: float, dy: float) -> np.ndarray:
    """Multiply a centered 2D DFT by the phase ramp that shifts content by (dx, dy)."""
    size = require_square(image_ft, "image_ft")
    c = fourier_center(size)
    k = np.arange(size) - c
    ky, kx = np.meshgrid(k, k, indexing="ij")
    ramp = np.exp(-2j * np.pi * (kx * dx + ky * dy) / size)
    return np.asarray(image_ft) * ramp


def shift_image(image: np.ndarray, dx: float, dy: float) -> np.ndarray:
    """Shift a real image's content by ``(dx, dy)`` pixels (subpixel-exact).

    Implemented as FFT → phase ramp → IFFT; periodic boundary.
    """
    ft = centered_fft2(np.asarray(image, dtype=float))
    return centered_ifft2(phase_shift_ft(ft, dx, dy)).real


def center_of_mass_shift(image: np.ndarray) -> tuple[float, float]:
    """Offset ``(cx, cy)`` of the intensity center of mass from the box center.

    Negative-going densities are clipped to zero first so noise does not
    dominate.  Returns the offset of the particle, i.e. the amount by which
    the view should be shifted by ``(−cx, −cy)`` to center it.
    """
    img = np.asarray(image, dtype=float)
    size = require_square(img)
    w = np.clip(img, 0.0, None)
    total = w.sum()
    if total == 0:
        return (0.0, 0.0)
    c = size // 2
    ys, xs = np.mgrid[0:size, 0:size]
    cy = float((w * ys).sum() / total) - c
    cx = float((w * xs).sum() / total) - c
    return (cx, cy)


def cross_correlation_shift(image: np.ndarray, reference: np.ndarray, upsample: int = 1) -> tuple[float, float]:
    """Shift ``(dx, dy)`` that best aligns ``image`` onto ``reference``.

    Peak of the (optionally zero-padded/upsampled) phase-weighted cross
    correlation.  ``upsample > 1`` refines to 1/upsample pixel by local
    quadratic fit around the integer peak.
    """
    img = np.asarray(image, dtype=float)
    ref = np.asarray(reference, dtype=float)
    if img.shape != ref.shape:
        raise ValueError("image and reference must share a shape")
    size = require_square(img)
    fi = centered_fft2(img)
    fr = centered_fft2(ref)
    cc = centered_ifft2(fr * np.conj(fi)).real
    peak = np.unravel_index(int(np.argmax(cc)), cc.shape)
    c = fourier_center(size)
    dy = float(peak[0] - c)
    dx = float(peak[1] - c)
    if upsample > 1:
        dy += _parabolic_offset(cc, peak, axis=0)
        dx += _parabolic_offset(cc, peak, axis=1)
    return (dx, dy)


def _parabolic_offset(cc: np.ndarray, peak: tuple[int, ...], axis: int) -> float:
    """Subpixel offset of a correlation peak along one axis (3-point parabola)."""
    i = peak[axis]
    if i <= 0 or i >= cc.shape[axis] - 1:
        return 0.0
    sl = list(peak)
    sl[axis] = i - 1
    ym = cc[tuple(sl)]
    y0 = cc[peak]
    sl[axis] = i + 1
    yp = cc[tuple(sl)]
    denom = ym - 2.0 * y0 + yp
    if abs(denom) < 1e-12:
        return 0.0
    return float(0.5 * (ym - yp) / denom)
