"""Tests for multi-reference classification (heterogeneity substrate)."""

import numpy as np
import pytest

from repro.align.multireference import classify_views, iterative_classification
from repro.density import asymmetric_phantom
from repro.imaging import simulate_views


@pytest.fixture(scope="module")
def two_species():
    a = asymmetric_phantom(24, seed=10).normalized()
    b = asymmetric_phantom(24, seed=20).normalized()
    va = simulate_views(a, 8, snr=6.0, initial_angle_error_deg=1.5, seed=1)
    vb = simulate_views(b, 8, snr=6.0, initial_angle_error_deg=1.5, seed=2)
    images = np.concatenate([va.images, vb.images])
    init = va.initial_orientations + vb.initial_orientations
    truth_labels = np.array([0] * 8 + [1] * 8)
    return a, b, images, init, truth_labels


def test_classification_separates_species(two_species):
    a, b, images, init, truth = two_species
    result = classify_views(images, init, [a, b], r_max=9, half_steps=2)
    accuracy = np.mean(result.assignments == truth)
    assert accuracy >= 0.9
    assert result.distances.shape == (16,)
    assert len(result.orientations) == 16


def test_members_helper(two_species):
    a, b, images, init, truth = two_species
    result = classify_views(images, init, [a, b], r_max=9, half_steps=1)
    m0 = result.members(0)
    m1 = result.members(1)
    assert set(m0.tolist()) | set(m1.tolist()) == set(range(16))
    assert set(m0.tolist()) & set(m1.tolist()) == set()


def test_single_reference_assigns_all_to_it(two_species):
    a, _, images, init, _ = two_species
    result = classify_views(images[:4], init[:4], [a], r_max=9, half_steps=1)
    assert np.all(result.assignments == 0)


def test_iterative_classification_rebuilds_maps(two_species):
    a, b, images, init, truth = two_species
    # start from degraded references: low-passed versions of the truths
    start = [a.low_pass(6.0), b.low_pass(6.0)]
    result = iterative_classification(
        images, init, start, n_iterations=2, r_max=8, min_class_size=2
    )
    assert len(result.class_maps) == 2
    accuracy = np.mean(result.assignments == truth)
    accuracy_flipped = np.mean(result.assignments == 1 - truth)
    assert max(accuracy, accuracy_flipped) >= 0.8
    # the rebuilt maps correlate with their own species
    cc_aa = result.class_maps[0].normalized().correlation(a)
    cc_bb = result.class_maps[1].normalized().correlation(b)
    assert max(cc_aa, cc_bb) > 0.5


def test_validation(two_species):
    a, b, images, init, _ = two_species
    with pytest.raises(ValueError):
        classify_views(images, init, [])
    with pytest.raises(ValueError):
        classify_views(images, init[:3], [a])
    with pytest.raises(ValueError):
        classify_views(images[:, :12, :12], init, [a])
    with pytest.raises(ValueError):
        iterative_classification(images, init, [a, b], n_iterations=0)