"""Tests for the brick-cache alternative design (paper §6)."""

import numpy as np
import pytest

from repro.geometry import Orientation
from repro.parallel import BrickStore, compare_replication_vs_bricks
from repro.parallel.machine import MachineSpec

FAST = MachineSpec("fast", flops=1e12, net_latency=1e-5, net_bandwidth=1e8, io_bandwidth=1e9)


def test_brick_store_geometry():
    store = BrickStore(64, brick_size=8, n_ranks=4, rank=1)
    assert store.bricks_per_axis == 8
    assert store.n_bricks == 512
    assert store.owner_of(0) == 0
    assert store.owner_of(5) == 1
    assert store.brick_bytes() == 8**3 * 16


def test_brick_store_validation():
    with pytest.raises(ValueError):
        BrickStore(0)
    with pytest.raises(ValueError):
        BrickStore(64, n_ranks=4, rank=4)


def test_bricks_for_slice_reasonable_count():
    store = BrickStore(64, brick_size=8, n_ranks=4)
    bricks = store.bricks_for_slice(Orientation(30, 40, 50), out_size=32)
    # a 32x32 slice through a 64-cube at scale 2 touches on the order of
    # the slice area / brick cross-section worth of bricks
    assert 10 <= len(bricks) <= 200
    assert len(np.unique(bricks)) == len(bricks)


def test_cache_hits_on_repeat_access():
    store = BrickStore(64, brick_size=8, n_ranks=4, rank=0, cache_bricks=512, machine=FAST)
    o = Orientation(30, 40, 50)
    first = store.access_slice(o, 32)
    second = store.access_slice(o, 32)
    assert first > 0  # remote bricks had to be fetched once
    assert second == 0  # then everything is cached
    assert store.stats.hits > 0


def test_nearby_orientations_share_bricks():
    store = BrickStore(64, brick_size=8, n_ranks=8, rank=0, cache_bricks=512, machine=FAST)
    store.access_slice(Orientation(30, 40, 50), 32)
    fetches_near = store.access_slice(Orientation(30.5, 40, 50), 32)
    store2 = BrickStore(64, brick_size=8, n_ranks=8, rank=0, cache_bricks=512, machine=FAST)
    store2.access_slice(Orientation(30, 40, 50), 32)
    fetches_far = store2.access_slice(Orientation(120, 200, 10), 32)
    assert fetches_near < fetches_far


def test_lru_eviction():
    store = BrickStore(64, brick_size=8, n_ranks=2, rank=0, cache_bricks=4, machine=FAST)
    store.access_slice(Orientation(30, 40, 50), 32)
    assert len(store._cache) <= 4


def test_comm_seconds_accumulate():
    store = BrickStore(64, brick_size=8, n_ranks=16, rank=0, cache_bricks=16, machine=FAST)
    store.access_slice(Orientation(10, 20, 30), 32)
    assert store.stats.comm_seconds > 0
    expected = store.stats.remote_fetches * FAST.message_time(store.brick_bytes())
    assert store.stats.comm_seconds == pytest.approx(expected)


def test_compare_replication_vs_bricks_tradeoff():
    out = compare_replication_vs_bricks(
        volume_size=64, out_size=32, n_windows=6, window_candidates=9,
        n_ranks=16, cache_bricks=64, machine=FAST, seed=0,
    )
    # the SS6 tradeoff: bricks save a lot of memory but cost communication
    assert out["memory_ratio"] > 3.0
    assert out["comm_seconds"] > 0.0
    assert out["comm_seconds_replicated"] == 0.0
    assert 0.0 <= out["hit_rate"] <= 1.0
    assert out["requests"] == 54
