"""Tests for the full simulated-cluster refinement driver."""

import numpy as np
import pytest

from repro.imaging import simulate_views
from repro.parallel import parallel_refine
from repro.parallel.machine import MachineSpec
from repro.refine import OrientationRefiner
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel
from repro.refine.refiner import STEP_REFINEMENT
from repro.refine.stats import angular_errors

FAST = MachineSpec("fast", flops=1e12, net_latency=1e-6, net_bandwidth=1e10, io_bandwidth=1e10)


@pytest.fixture(scope="module")
def sched():
    return MultiResolutionSchedule(
        (RefinementLevel(1.0, 1.0, half_steps=2), RefinementLevel(0.5, 0.5, half_steps=2))
    )


@pytest.fixture(scope="module")
def dataset(phantom24):
    return simulate_views(
        phantom24, 8, initial_angle_error_deg=3.0, center_sigma_px=0.5,
        projection_method="fourier", seed=0,
    )


def test_parallel_refinement_improves(phantom24, dataset, sched):
    report = parallel_refine(dataset, phantom24, n_ranks=4, schedule=sched, r_max=10)
    errs = angular_errors(report.orientations, dataset.true_orientations)
    errs0 = angular_errors(dataset.initial_orientations, dataset.true_orientations)
    assert errs.mean() < errs0.mean()
    assert len(report.orientations) == 8
    assert np.all(np.isfinite(report.distances))


def test_parallel_matches_serial(phantom24, dataset, sched):
    report = parallel_refine(dataset, phantom24, n_ranks=3, schedule=sched, r_max=10, machine=FAST)
    serial = OrientationRefiner(phantom24, r_max=10).refine(dataset, schedule=sched)
    for p, s in zip(report.orientations, serial.orientations):
        assert p.as_tuple() == pytest.approx(s.as_tuple(), abs=1e-9)


def test_rank_count_invariance(phantom24, dataset, sched):
    a = parallel_refine(dataset, phantom24, n_ranks=2, schedule=sched, r_max=10, machine=FAST)
    b = parallel_refine(dataset, phantom24, n_ranks=4, schedule=sched, r_max=10, machine=FAST)
    for oa, ob in zip(a.orientations, b.orientations):
        assert oa.as_tuple() == pytest.approx(ob.as_tuple(), abs=1e-9)


def test_step_times_and_fraction(phantom24, dataset, sched):
    report = parallel_refine(dataset, phantom24, n_ranks=2, schedule=sched, r_max=10)
    assert STEP_REFINEMENT in report.simulated_step_seconds
    assert "3D DFT" in report.simulated_step_seconds
    assert report.simulated_total_seconds > 0
    assert 0 < report.refinement_fraction() <= 1.0
    assert report.measured_wall_seconds > 0
    assert len(report.per_rank_matches) == 2
    assert len(report.per_level_matches) == len(sched)


def test_orientation_file_written(tmp_path, phantom24, dataset, sched):
    path = str(tmp_path / "refined.txt")
    parallel_refine(
        dataset, phantom24, n_ranks=2, schedule=sched, r_max=10, machine=FAST,
        orientation_file=path,
    )
    from repro.refine import read_orientation_file

    orients, scores = read_orientation_file(path)
    assert len(orients) == 8


def test_more_ranks_than_views_rejected(phantom24, dataset, sched):
    with pytest.raises(ValueError):
        parallel_refine(dataset, phantom24, n_ranks=100, schedule=sched)
