"""Projection operators: real-space (reference) and Fourier-space (fast).

``real_project`` resamples the rotated volume with cubic spline
interpolation and integrates along z — the textbook definition
``P(x, y) = Σ_z ρ(R·(x, y, z))``.  ``fourier_project`` extracts the central
slice of the cached 3D DFT and inverse-transforms it, which by the
projection-slice theorem computes the same image up to interpolation error.
The refinement algorithm itself never leaves Fourier space; the real-space
projector exists for ground-truth simulation and for validating the slice
machinery against an independent implementation.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.density.map import DensityMap
from repro.fourier.slicing import extract_slice
from repro.fourier.transforms import centered_ifft2
from repro.geometry.euler import Orientation

__all__ = ["real_project", "fourier_project", "project_map"]


def real_project(volume: np.ndarray, rotation: np.ndarray, order: int = 3) -> np.ndarray:
    """Real-space projection of ``volume`` along the view axis of ``rotation``.

    Samples ρ at points ``R·(x, y, z)`` for every output pixel ``(x, y)``
    and depth ``z``, then sums over z.  Values outside the box are zero.
    """
    vol = np.asarray(volume, dtype=float)
    l = vol.shape[0]
    c = l // 2
    r = np.asarray(rotation, dtype=float)
    k = np.arange(l) - c
    # output grid (y, x) and integration depth z — math frame (x, y, z)
    zz, yy, xx = np.meshgrid(k, k, k, indexing="ij")  # [z, y, x]
    pts_xyz = np.stack([xx, yy, zz], axis=-1).reshape(-1, 3)
    rotated = pts_xyz @ r.T  # R · p for each point
    # convert math (x, y, z) to array (z, y, x) indices
    coords = (rotated[:, ::-1] + c).T.reshape(3, l, l, l)
    sampled = ndimage.map_coordinates(vol, coords, order=order, mode="constant", cval=0.0)
    return sampled.sum(axis=0)


def fourier_project(
    volume_ft: np.ndarray,
    rotation: np.ndarray,
    order: str = "trilinear",
    out_size: int | None = None,
) -> np.ndarray:
    """Projection computed via the central-slice theorem (returns a real image).

    ``volume_ft`` may be an oversampled transform; pass ``out_size`` as the
    un-padded map side in that case.
    """
    cut = extract_slice(volume_ft, rotation, order=order, out_size=out_size)
    return centered_ifft2(cut).real


def project_map(
    density: DensityMap,
    orientation: Orientation,
    method: str = "real",
    order: int | str | None = None,
    pad_factor: int = 2,
) -> np.ndarray:
    """Project a :class:`DensityMap` at an :class:`Orientation`.

    ``method`` is ``"real"`` (spline resampling, used to generate ground
    truth) or ``"fourier"`` (slice extraction from the ``pad_factor``-
    oversampled transform — the algorithm's own view of the map).  The
    orientation's center offsets are NOT applied here; shifting is a
    separate, explicit step (see :mod:`repro.imaging.center`).
    """
    r = orientation.matrix()
    if method == "real":
        return real_project(density.data, r, order=3 if order is None else int(order))
    if method == "fourier":
        return fourier_project(
            density.fourier_oversampled(pad_factor),
            r,
            order="trilinear" if order is None else str(order),
            out_size=density.size,
        )
    raise ValueError(f"unknown projection method {method!r}")
