"""Shared state for the chaos harness (DESIGN.md §8).

Every chaos test follows the same template: run a small refinement with a
deterministic :class:`~repro.faults.plan.FaultPlan` injected and assert the
result is *bit-identical* to the fault-free baseline computed once per
session.  Fault-plan seeds are derived from the test's node id (see
``chaos_seed``), so no two tests share a fault pattern and a failure
replays from the test name alone — ``test_seed_audit.py`` enforces that
convention by AST inspection.
"""

from __future__ import annotations

import os
import zlib

import numpy as np
import pytest

from repro.density import asymmetric_phantom
from repro.imaging.simulate import SimulatedViews, simulate_views
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel
from repro.refine.refiner import OrientationRefiner, RefinementResult


def derive_seed(node_id: str) -> int:
    """A stable 32-bit seed from a pytest node id (crc32 of the text)."""
    return zlib.crc32(node_id.encode())


@pytest.fixture()
def chaos_seed(request: pytest.FixtureRequest) -> int:
    """The per-test fault-plan seed: derived, never a literal."""
    return derive_seed(request.node.nodeid)


def shm_segments() -> set[str]:
    """Names of the POSIX shared-memory segments currently in /dev/shm."""
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-Linux: rely on resource_tracker instead
        return set()


@pytest.fixture()
def no_shm_leak():
    """Assert the test leaves no new /dev/shm segment behind."""
    before = shm_segments()
    yield
    leaked = shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture(scope="session")
def chaos_problem() -> tuple[SimulatedViews, OrientationRefiner, MultiResolutionSchedule]:
    """One small refinement problem reused by every chaos test.

    Six views over two levels gives every scheduler configuration several
    chunks per level — enough sites for crash/poison/delay plans to bite —
    while staying fast enough to re-run dozens of fault patterns.
    """
    density = asymmetric_phantom(16, seed=7).normalized()
    views = simulate_views(density, 6, snr=10.0, initial_angle_error_deg=2.0, seed=7)
    schedule = MultiResolutionSchedule(
        (
            RefinementLevel(1.0, 1.0, half_steps=2),
            RefinementLevel(0.5, 0.5, half_steps=2),
        )
    )
    refiner = OrientationRefiner(density, max_slides=2)
    return views, refiner, schedule


@pytest.fixture(scope="session")
def baseline(chaos_problem) -> RefinementResult:
    """The fault-free serial result every chaos run must reproduce exactly."""
    views, refiner, schedule = chaos_problem
    return refiner.refine(views, schedule=schedule)


def assert_identical(result: RefinementResult, expected: RefinementResult) -> None:
    """Bit-identity of a chaos run against the fault-free baseline."""
    assert len(result.orientations) == len(expected.orientations)
    for got, want in zip(result.orientations, expected.orientations):
        assert got.as_tuple() == want.as_tuple()
    assert np.array_equal(result.distances, expected.distances)
