"""Per-rank virtual clocks for the simulated cluster.

Every rank accumulates simulated seconds for the compute and communication
it performs; synchronization points (barriers, blocking receives) advance
the participants to the maximum of their clocks, exactly as wall time would
on a real machine.  The final "wall time" of a simulated run is the maximum
rank clock.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["VirtualClock"]


class VirtualClock:
    """Thread-safe simulated time for ``n_ranks`` ranks."""

    def __init__(self, n_ranks: int) -> None:
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self._times = np.zeros(n_ranks)
        self._lock = threading.Lock()

    @property
    def n_ranks(self) -> int:
        return int(self._times.size)

    def advance(self, rank: int, seconds: float) -> None:
        """Add ``seconds`` of simulated time to one rank."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        with self._lock:
            self._times[rank] += seconds

    def now(self, rank: int) -> float:
        with self._lock:
            return float(self._times[rank])

    def synchronize(self, ranks: list[int] | None = None) -> float:
        """Advance the given ranks (default: all) to their common maximum.

        Returns the synchronized time.  This is what a barrier does to
        simulated wall time.
        """
        with self._lock:
            idx = slice(None) if ranks is None else list(ranks)
            t = float(np.max(self._times[idx]))
            self._times[idx] = t
            return t

    def meet(self, rank_a: int, rank_b: int) -> float:
        """Synchronize two ranks (a blocking send/recv pair)."""
        with self._lock:
            t = float(max(self._times[rank_a], self._times[rank_b]))
            self._times[rank_a] = t
            self._times[rank_b] = t
            return t

    def elapsed(self) -> float:
        """The simulated wall time so far (max over ranks)."""
        with self._lock:
            return float(self._times.max())

    def snapshot(self) -> np.ndarray:
        with self._lock:
            return self._times.copy()
