"""Level-granular checkpoint/resume for the refinement drivers.

A checkpoint is written after every completed resolution level — the only
points where the algorithm's state is small and well-defined: the per-view
orientation set, the per-view distances, and the accumulated window/center
counters.  The on-disk format *is* the orientation-file format (steps c/o)
with a machine-readable meta header in comment lines, so a checkpoint
doubles as a valid partial result: ``repro reconstruct`` can consume a
checkpoint of a killed run directly.

Orientations are serialized at 17 significant digits (exact float64
round-trip), which is what makes a killed-then-resumed run *bit-identical*
to a fault-free one — the chaos harness asserts exactly that.  Writes are
atomic (temp file + :func:`os.replace` in the same directory), so a run
killed mid-write leaves the previous checkpoint intact, never a torn file.

The module also owns the *outer-loop* checkpoint of the structure
determination loop (DESIGN.md §14): a checkpoint **directory** holding a
``loop.json`` progress record plus one full-precision orientation file per
completed iteration (``iter_NNN.orient``) and the in-flight iteration's
level-granular inner checkpoint (``iter_NNN.refine.ckpt``).  The JSON
floats round-trip exactly (Python's ``json`` emits shortest-repr float64),
and each iteration's map is recorded as a SHA-256 digest so a resumed loop
can *prove* its deterministic rebuild matches the killed run's map bit for
bit.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass

import numpy as np

from repro.arraytypes import Array
from repro.geometry.euler import Orientation
from repro.refine.orientfile import read_orientation_file, write_orientation_file
from repro.refine.stats import RefinementStats

__all__ = [
    "CHECKPOINT_FORMAT",
    "LOOP_CHECKPOINT_FORMAT",
    "CheckpointConfigMismatch",
    "LoopCheckpoint",
    "LoopIterationEntry",
    "RefinementCheckpoint",
    "density_digest",
    "iteration_checkpoint_path",
    "iteration_orientations_path",
    "load_checkpoint",
    "load_loop_checkpoint",
    "loop_checkpoint_path",
    "save_checkpoint",
    "save_loop_checkpoint",
    "try_load_checkpoint",
    "try_load_loop_checkpoint",
]

CHECKPOINT_FORMAT = "repro-checkpoint v1"
LOOP_CHECKPOINT_FORMAT = "repro-loop-checkpoint v1"


@dataclass(frozen=True)
class RefinementCheckpoint:
    """Everything needed to resume a multi-resolution refinement run.

    Attributes
    ----------
    schedule_fingerprint:
        :meth:`MultiResolutionSchedule.fingerprint` of the schedule the
        run was started with; resume refuses to mix schedules.
    levels_done:
        Number of leading schedule levels fully completed (and therefore
        reflected in ``orientations``).
    orientations / distances:
        Per-view state after the last completed level, exact to the bit.
    stats:
        Accumulated counters for the completed levels, so a resumed run
        reports the same totals as an uninterrupted one.
    memo:
        Serialized orientation-memo state (view index -> key/value float
        arrays, see :meth:`repro.align.memo.MemoStore.export_state`);
        ``None`` when the run does not memoize.  Stored losslessly
        (``float.hex`` round-trip), so a resumed run's memo hits — and
        therefore its skipped gathers — pick up exactly where the killed
        run stopped, with bit-identical results either way.
    """

    schedule_fingerprint: str
    levels_done: int
    orientations: list[Orientation]
    distances: Array
    stats: RefinementStats
    memo: dict[int, tuple[Array, Array]] | None = None
    #: Per-view multi-basin state (``prune.top_k``/``polish.n_best`` > 1):
    #: one tuple of basin-center orientations per view, ``None`` entries
    #: for views without tracked basins, ``None`` overall for single-basin
    #: runs.  Stored losslessly (``float.hex``) in the ``basins`` header
    #: tag so a resumed multi-basin run re-seeds the exact same starts.
    basins: list[tuple[Orientation, ...] | None] | None = None
    #: :meth:`repro.engine.config.EngineConfig.fingerprint` of the run's
    #: engine config — schedule *plus* kernel/memo/matching settings.  The
    #: schedule fingerprint alone silently accepted a resume under a
    #: different kernel or memo configuration; this field closes that hole.
    #: Empty for checkpoints written by drivers without an engine config.
    engine_fingerprint: str = ""

    @property
    def n_views(self) -> int:
        return len(self.orientations)


def _memo_to_json(memo: dict[int, tuple[Array, Array]]) -> str:
    """Lossless JSON for a memo export: every float as ``float.hex()``."""
    payload = {
        str(idx): {
            "k": [[float(x).hex() for x in row] for row in np.asarray(keys).tolist()],
            "v": [float(x).hex() for x in np.asarray(values).tolist()],
        }
        for idx, (keys, values) in memo.items()
    }
    return json.dumps(payload, sort_keys=True)


def _memo_from_json(obj: dict) -> dict[int, tuple[Array, Array]]:
    out: dict[int, tuple[Array, Array]] = {}
    for idx, entry in obj.items():
        keys = np.array(
            [[float.fromhex(x) for x in row] for row in entry["k"]], dtype=np.float64
        ).reshape(-1, 5)
        values = np.array([float.fromhex(x) for x in entry["v"]], dtype=np.float64)
        out[int(idx)] = (keys, values)
    return out


def _basins_to_json(basins: list[tuple[Orientation, ...] | None]) -> str:
    """Lossless JSON for per-view basin sets: 5-tuples of ``float.hex()``."""
    payload = [
        None
        if entry is None
        else [[float(x).hex() for x in o.as_tuple()] for o in entry]
        for entry in basins
    ]
    return json.dumps(payload)


def _basins_from_json(obj: list) -> list[tuple[Orientation, ...] | None]:
    return [
        None
        if entry is None
        else tuple(Orientation(*(float.fromhex(x) for x in row)) for row in entry)
        for entry in obj
    ]


def save_checkpoint(path: str, checkpoint: RefinementCheckpoint) -> None:
    """Atomically write ``checkpoint`` to ``path``.

    The temp file lives in the target directory so :func:`os.replace` is a
    same-filesystem atomic rename; a crash between write and rename leaves
    at worst an orphaned ``.tmp`` file, never a torn checkpoint.
    """
    meta = {
        "format": CHECKPOINT_FORMAT,
        "schedule_fingerprint": checkpoint.schedule_fingerprint,
        "levels_done": int(checkpoint.levels_done),
        "n_views": checkpoint.n_views,
        "stats": asdict(checkpoint.stats),
    }
    if checkpoint.engine_fingerprint:
        meta["engine_fingerprint"] = checkpoint.engine_fingerprint
    header = f"{CHECKPOINT_FORMAT}\nmeta {json.dumps(meta, sort_keys=True)}"
    if checkpoint.memo is not None:
        header += f"\nmemo {_memo_to_json(checkpoint.memo)}"
    if checkpoint.basins is not None:
        header += f"\nbasins {_basins_to_json(checkpoint.basins)}"
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory)
    os.close(fd)
    try:
        write_orientation_file(
            tmp,
            checkpoint.orientations,
            scores=np.asarray(checkpoint.distances, dtype=float),
            header=header,
            full_precision=True,
        )
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass
        raise


def _parse_header(path: str) -> dict[str, dict]:
    """Extract the ``# <tag> {...}`` JSON header lines from a checkpoint.

    Returns a mapping of tag (``"meta"``, ``"memo"``, ``"basins"``) to the
    parsed JSON body; scanning stops at the first non-comment line.
    """
    found: dict[str, dict] = {}
    with open(path) as fh:
        for line in fh:
            text = line.strip()
            if not text.startswith("#"):
                break
            body = text.lstrip("#").strip()
            for tag in ("meta", "memo", "basins"):
                if body.startswith(tag + " "):
                    found[tag] = json.loads(body[len(tag) + 1 :])
    if "meta" not in found:
        raise ValueError(f"{path}: not a checkpoint file (no meta header)")
    return found


def load_checkpoint(path: str) -> RefinementCheckpoint:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Raises ``ValueError`` on a malformed or non-checkpoint file (a plain
    orientation file has no meta header).  Checkpoints written before the
    memo header existed load with ``memo=None``.
    """
    header = _parse_header(path)
    meta = header["meta"]
    if meta.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"{path}: unsupported checkpoint format {meta.get('format')!r}")
    orientations, scores = read_orientation_file(path)
    if len(orientations) != int(meta["n_views"]):
        raise ValueError(
            f"{path}: meta claims {meta['n_views']} views, file holds {len(orientations)}"
        )
    stats = RefinementStats(**meta["stats"])
    memo = _memo_from_json(header["memo"]) if "memo" in header else None
    basins = _basins_from_json(header["basins"]) if "basins" in header else None
    return RefinementCheckpoint(
        schedule_fingerprint=str(meta["schedule_fingerprint"]),
        levels_done=int(meta["levels_done"]),
        orientations=orientations,
        distances=np.asarray(scores, dtype=float),
        stats=stats,
        memo=memo,
        engine_fingerprint=str(meta.get("engine_fingerprint", "")),
        basins=basins,
    )


class CheckpointConfigMismatch(ValueError):
    """A checkpoint matches the schedule but not the engine configuration.

    Same schedule, different kernel/memo/matching settings: the partial
    results in the file were produced under a config the resuming run
    would not reproduce, so continuing would silently mix numbers from
    two different runs.  Unlike a schedule or view-count mismatch (which
    just starts fresh — the file is simply *for another run*), this is
    almost certainly an operator error and must fail loudly.
    """


def try_load_checkpoint(
    path: str,
    schedule_fingerprint: str,
    n_views: int,
    engine_fingerprint: str | None = None,
) -> RefinementCheckpoint | None:
    """Load ``path`` if it is a usable checkpoint for this exact run.

    Returns ``None`` (start from scratch) when the file is missing, not a
    checkpoint, or was written for a different schedule or view count —
    resuming across any of those would silently corrupt the result, so
    mismatch means "ignore", never "adapt".

    ``engine_fingerprint`` tightens the gate: a checkpoint that matches
    the schedule but carries a *different* engine fingerprint raises
    :class:`CheckpointConfigMismatch` instead of resuming — same run
    identity, incompatible kernel/memo configuration.  Checkpoints
    written before the engine header existed (empty fingerprint) are
    accepted for backward compatibility.
    """
    if not os.path.exists(path):
        return None
    try:
        ckpt = load_checkpoint(path)
    except (ValueError, OSError, KeyError, json.JSONDecodeError):
        return None
    if ckpt.schedule_fingerprint != schedule_fingerprint or ckpt.n_views != n_views:
        return None
    if (
        engine_fingerprint
        and ckpt.engine_fingerprint
        and ckpt.engine_fingerprint != engine_fingerprint
    ):
        raise CheckpointConfigMismatch(
            f"{path}: checkpoint was written under engine config "
            f"{ckpt.engine_fingerprint}, this run is configured as "
            f"{engine_fingerprint} (same schedule, different kernel/memo/"
            f"matching settings); refusing to resume — delete the "
            f"checkpoint or restore the original configuration"
        )
    return ckpt


# -- the outer-loop (structure determination) checkpoint ----------------------


@dataclass(frozen=True)
class LoopIterationEntry:
    """One completed outer-loop iteration, as recorded in ``loop.json``.

    The entry holds only what the resume path cannot recompute cheaply or
    must *verify*: the per-iteration orientations live in their own
    full-precision orientation file, the map is deterministically rebuilt
    from them on resume and checked against ``map_digest``.
    """

    iteration: int
    r_max: float | None
    resolution_angstrom: float
    mean_distance: float
    map_digest: str

    def to_json(self) -> dict:
        return {
            "iteration": int(self.iteration),
            "r_max": None if self.r_max is None else float(self.r_max),
            "resolution_angstrom": float(self.resolution_angstrom),
            "mean_distance": float(self.mean_distance),
            "map_digest": self.map_digest,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "LoopIterationEntry":
        return cls(
            iteration=int(obj["iteration"]),
            r_max=None if obj["r_max"] is None else float(obj["r_max"]),
            resolution_angstrom=float(obj["resolution_angstrom"]),
            mean_distance=float(obj["mean_distance"]),
            map_digest=str(obj["map_digest"]),
        )


@dataclass(frozen=True)
class LoopCheckpoint:
    """Progress record of the refine→reconstruct loop (DESIGN.md §14).

    ``engine_fingerprint`` is the *base* config's
    :meth:`~repro.engine.config.EngineConfig.fingerprint`, which covers the
    ``iteration`` section — so a resume under a different stopping rule or
    resolution ladder refuses loudly.  ``initial_map_digest`` pins the
    starting map: iteration 0 refines against it, so a different initial
    map means a different run entirely (treated like a view-count
    mismatch: start fresh).
    """

    engine_fingerprint: str
    n_views: int
    initial_map_digest: str
    iterations: tuple[LoopIterationEntry, ...] = ()

    @property
    def iterations_done(self) -> int:
        return len(self.iterations)


def density_digest(data: Array) -> str:
    """SHA-256 of a density volume's exact float64 bytes (plus shape)."""
    arr = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
    h = hashlib.sha256()
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def loop_checkpoint_path(directory: str) -> str:
    """The ``loop.json`` progress record inside a loop-checkpoint dir."""
    return os.path.join(directory, "loop.json")


def iteration_orientations_path(directory: str, iteration: int) -> str:
    """The full-precision orientation file of one completed iteration."""
    return os.path.join(directory, f"iter_{int(iteration):03d}.orient")


def iteration_checkpoint_path(directory: str, iteration: int) -> str:
    """The level-granular inner checkpoint of one in-flight iteration.

    Iteration-tagged so a finished iteration's inner checkpoint can never
    seed the next iteration's refinement (their schedules may coincide,
    but their input maps do not).
    """
    return os.path.join(directory, f"iter_{int(iteration):03d}.refine.ckpt")


def save_loop_checkpoint(directory: str, checkpoint: LoopCheckpoint) -> None:
    """Atomically write ``loop.json`` (creating ``directory`` if needed)."""
    os.makedirs(directory, exist_ok=True)
    payload = {
        "format": LOOP_CHECKPOINT_FORMAT,
        "engine_fingerprint": checkpoint.engine_fingerprint,
        "n_views": int(checkpoint.n_views),
        "initial_map_digest": checkpoint.initial_map_digest,
        "iterations": [e.to_json() for e in checkpoint.iterations],
    }
    path = loop_checkpoint_path(directory)
    fd, tmp = tempfile.mkstemp(prefix="loop.json.", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, sort_keys=True, indent=1)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass
        raise


def load_loop_checkpoint(directory: str) -> LoopCheckpoint:
    """Read a ``loop.json`` written by :func:`save_loop_checkpoint`."""
    path = loop_checkpoint_path(directory)
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("format") != LOOP_CHECKPOINT_FORMAT:
        raise ValueError(
            f"{path}: unsupported loop-checkpoint format {payload.get('format')!r}"
        )
    return LoopCheckpoint(
        engine_fingerprint=str(payload["engine_fingerprint"]),
        n_views=int(payload["n_views"]),
        initial_map_digest=str(payload["initial_map_digest"]),
        iterations=tuple(
            LoopIterationEntry.from_json(e) for e in payload["iterations"]
        ),
    )


def try_load_loop_checkpoint(
    directory: str,
    engine_fingerprint: str,
    n_views: int,
    initial_map_digest: str,
) -> LoopCheckpoint | None:
    """Load the loop checkpoint if it is usable for this exact run.

    Mirrors :func:`try_load_checkpoint`'s gate: missing/unparseable files
    and view-count or initial-map mismatches mean "start fresh" (the file
    is for another run); an engine-fingerprint mismatch — same inputs,
    different result-relevant configuration — raises
    :class:`CheckpointConfigMismatch` instead of silently mixing runs.
    """
    path = loop_checkpoint_path(directory)
    if not os.path.exists(path):
        return None
    try:
        ckpt = load_loop_checkpoint(directory)
    except (ValueError, OSError, KeyError, json.JSONDecodeError):
        return None
    if ckpt.n_views != n_views or ckpt.initial_map_digest != initial_map_digest:
        return None
    if (
        engine_fingerprint
        and ckpt.engine_fingerprint
        and ckpt.engine_fingerprint != engine_fingerprint
    ):
        raise CheckpointConfigMismatch(
            f"{path}: loop checkpoint was written under engine config "
            f"{ckpt.engine_fingerprint}, this run is configured as "
            f"{engine_fingerprint}; refusing to resume — delete the "
            f"checkpoint directory or restore the original configuration"
        )
    return ckpt
