"""HalfSetAccumulator: streaming bit-identity and legacy equivalence.

The accumulator underpins the outer loop (DESIGN.md §14); these tests pin
its three contracts: (1) the half maps are bit-identical to the legacy
two-pass path (one :func:`reconstruct_from_views` per odd/even
sub-stack), (2) every output is independent of the arrival order of
:meth:`push` — the streaming == barriered guarantee — and (3) the full
map is numerically the direct-Fourier map of all views.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctf.model import defocus_group_params
from repro.density.phantom import asymmetric_phantom
from repro.imaging.simulate import simulate_views
from repro.reconstruct.direct_fourier import reconstruct_from_views
from repro.reconstruct.resolution import correlation_curve, half_map_fsc, split_odd_even
from repro.reconstruct.stream import HalfSetAccumulator
from repro.utils import default_rng


@pytest.fixture(scope="module")
def dataset():
    density = asymmetric_phantom(16, seed=7).normalized()
    views = simulate_views(
        density, 7, snr=10.0, initial_angle_error_deg=2.0, seed=7,
        ctf=defocus_group_params((9000.0, 15000.0), 7),
    )
    return views


def _filled(views, **kwargs):
    acc = HalfSetAccumulator(
        views.images, apix=views.apix, ctf_params=views.ctf_params, **kwargs
    )
    return acc.push_all(list(views.true_orientations))


def test_half_maps_bit_identical_to_two_pass(dataset):
    views = dataset
    acc = _filled(views)
    map_odd, map_even = acc.half_maps()
    odd, even = split_odd_even(views.images.shape[0])
    for idx, got in ((odd, map_odd), (even, map_even)):
        legacy = reconstruct_from_views(
            views.images[idx],
            [views.true_orientations[i] for i in idx],
            apix=views.apix,
            ctf_params=[views.ctf_params[i] for i in idx],
        )
        assert np.array_equal(got.data, legacy.data)
        assert got.apix == legacy.apix


def test_half_map_fsc_rides_the_accumulator(dataset):
    """The resolution module's maps equal the accumulator's — one pass."""
    views = dataset
    fsc, map_odd, map_even = half_map_fsc(
        views.images, views.true_orientations, apix=views.apix,
        ctf_params=views.ctf_params,
    )
    acc = _filled(views)
    a_odd, a_even = acc.half_maps()
    assert np.array_equal(map_odd.data, a_odd.data)
    assert np.array_equal(map_even.data, a_even.data)
    assert np.array_equal(fsc, acc.fsc())


def test_streaming_is_arrival_order_insensitive(dataset):
    views = dataset
    ordered = _filled(views)
    shuffled = HalfSetAccumulator(
        views.images, apix=views.apix, ctf_params=views.ctf_params
    )
    order = list(default_rng(3).permutation(views.images.shape[0]))
    for q in order:
        shuffled.push(int(q), views.true_orientations[q])
    assert shuffled.complete
    assert np.array_equal(ordered.full_map().data, shuffled.full_map().data)
    for a, b in zip(ordered.half_maps(), shuffled.half_maps()):
        assert np.array_equal(a.data, b.data)
    assert np.array_equal(ordered.fsc(), shuffled.fsc())


def test_push_remaining_completes_a_partial_stream(dataset):
    views = dataset
    orients = list(views.true_orientations)
    partial = HalfSetAccumulator(
        views.images, apix=views.apix, ctf_params=views.ctf_params
    )
    # stream an out-of-order prefix, leave a gap, then backfill
    partial.push(1, orients[1])
    partial.push(0, orients[0])
    partial.push(4, orients[4])
    partial.push_remaining(orients)
    assert partial.complete
    assert np.array_equal(partial.full_map().data, _filled(views).full_map().data)
    # a fully streamed accumulator is left untouched
    full = _filled(views).push_remaining(orients)
    assert full.complete


def test_full_map_matches_direct_fourier_numerically(dataset):
    views = dataset
    got = _filled(views).full_map()
    legacy = reconstruct_from_views(
        views.images, views.true_orientations, apix=views.apix,
        ctf_params=views.ctf_params,
    )
    assert got.data.shape == legacy.data.shape
    scale = np.max(np.abs(legacy.data))
    assert np.allclose(got.data, legacy.data, atol=1e-9 * max(scale, 1.0))


def test_curve_matches_correlation_curve(dataset):
    views = dataset
    curve = _filled(views).curve(label="x")
    legacy = correlation_curve(
        views.images, views.true_orientations, apix=views.apix, label="x",
        ctf_params=views.ctf_params,
    )
    assert np.array_equal(curve.shells, legacy.shells)
    assert np.array_equal(curve.resolution_angstrom, legacy.resolution_angstrom)
    assert np.array_equal(curve.cc, legacy.cc)
    assert curve.crossing(0.5) == legacy.crossing(0.5)


def test_push_validation(dataset):
    views = dataset
    acc = HalfSetAccumulator(views.images, apix=views.apix)
    o = views.true_orientations[0]
    with pytest.raises(ValueError, match="outside"):
        acc.push(99, o)
    acc.push(0, o)
    with pytest.raises(ValueError, match="twice"):
        acc.push(0, o)
    acc.push(2, o)  # pending, not yet deposited
    with pytest.raises(ValueError, match="twice"):
        acc.push(2, o)
    with pytest.raises(ValueError, match="deposited"):
        acc.full_map()
    with pytest.raises(ValueError, match="one orientation per view"):
        acc.push_all([o])
    with pytest.raises(ValueError, match="one orientation per view"):
        acc.push_remaining([o])


def test_constructor_validation(dataset):
    views = dataset
    with pytest.raises(ValueError, match="stack"):
        HalfSetAccumulator(views.images[0])
    with pytest.raises(ValueError, match="ctf_mode"):
        HalfSetAccumulator(views.images, ctf_mode="wiener")
    with pytest.raises(ValueError, match="pad_factor"):
        HalfSetAccumulator(views.images, pad_factor=0)
    with pytest.raises(ValueError, match="CTFParams"):
        HalfSetAccumulator(views.images, ctf_params=views.ctf_params[:2])
    single = HalfSetAccumulator(views.images[:1]).push_all(
        [views.true_orientations[0]]
    )
    with pytest.raises(ValueError, match="two views"):
        single.half_maps()
