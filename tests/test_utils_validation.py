"""Tests for argument validation helpers."""

import numpy as np
import pytest

from repro.utils import require, require_cube, require_positive, require_square


def test_require_passes_and_fails():
    require(True, "fine")
    with pytest.raises(ValueError, match="broken"):
        require(False, "broken")


def test_require_positive():
    require_positive(1e-9, "x")
    with pytest.raises(ValueError):
        require_positive(0.0, "x")
    with pytest.raises(ValueError):
        require_positive(-1.0, "x")


def test_require_square_returns_side():
    assert require_square(np.zeros((5, 5))) == 5


@pytest.mark.parametrize("shape", [(5,), (4, 5), (3, 3, 3)])
def test_require_square_rejects(shape):
    with pytest.raises(ValueError):
        require_square(np.zeros(shape))


def test_require_cube_returns_side():
    assert require_cube(np.zeros((4, 4, 4))) == 4


@pytest.mark.parametrize("shape", [(4, 4), (4, 4, 5), (2, 3, 4)])
def test_require_cube_rejects(shape):
    with pytest.raises(ValueError):
        require_cube(np.zeros(shape))
