"""Deterministic fault injection, retry policy, and checkpoint/resume.

The robustness layer of the refinement pipeline (DESIGN.md §8).  Three
pieces, deliberately separable:

* :mod:`repro.faults.plan` — seeded, frozen :class:`FaultPlan` objects the
  process scheduler and the simulated fabric consult, so every failure a
  chaos test observes replays from the plan alone;
* :mod:`repro.faults.retry` — the :class:`RetryPolicy` (attempts, backoff,
  chunk timeout, pool-restart budget) and the poisoned-result validator;
* :mod:`repro.faults.checkpoint` — level-granular atomic checkpoints in
  the orientation-file format, exact to the bit, so a killed run resumes
  to the identical result.

Nothing here imports multiprocessing: the *decisions* are pure values, the
*mechanisms* (killing workers, recycling pools) stay inside
``repro/parallel/`` where RL005 confines them.
"""

from repro.faults.checkpoint import (
    CHECKPOINT_FORMAT,
    RefinementCheckpoint,
    load_checkpoint,
    save_checkpoint,
    try_load_checkpoint,
)
from repro.faults.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjected,
    FaultLog,
    FaultPlan,
    FaultSpec,
    chunk_site,
    level_site,
    message_site,
)
from repro.faults.retry import ChunkIntegrityError, RetryPolicy, validate_chunk_results

__all__ = [
    "CHECKPOINT_FORMAT",
    "FAULT_KINDS",
    "ChunkIntegrityError",
    "FaultEvent",
    "FaultInjected",
    "FaultLog",
    "FaultPlan",
    "FaultSpec",
    "RefinementCheckpoint",
    "RetryPolicy",
    "chunk_site",
    "level_site",
    "load_checkpoint",
    "message_site",
    "save_checkpoint",
    "try_load_checkpoint",
    "validate_chunk_results",
]
