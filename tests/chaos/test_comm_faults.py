"""Chaos tests for the simulated fabric (message drops and delays).

Fabric faults model lossy interconnect on the simulated cluster: a dropped
message is retransmitted after an ack-timeout, a delayed one arrives late.
Both may only cost simulated *time* — the delivered values, and therefore
the refined orientations, must be bit-identical to the fault-free run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.plan import FaultPlan, FaultSpec
from repro.parallel.comm import run_spmd
from repro.parallel.prefine import parallel_refine
from repro.pipeline.datasets import sindbis_like_dataset
from repro.density import sindbis_like_phantom
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel

pytestmark = pytest.mark.chaos


def test_dropped_message_redelivered_once():
    plan = FaultPlan((FaultSpec("drop-message", "msg:0->1#0", delay_s=0.5),))

    def worker(comm):
        if comm.rank == 0:
            comm.send(np.arange(8.0), 1)
            return None
        return comm.recv(0)

    results, clock = run_spmd(2, worker, fault_plan=plan)
    assert np.array_equal(results[1], np.arange(8.0))

    results2, clock2 = run_spmd(2, worker)
    assert np.array_equal(results2[1], np.arange(8.0))
    # the drop costs the retransmit timeout plus a second α–β charge
    assert clock.elapsed() > clock2.elapsed()


@pytest.mark.parametrize("kind", ["drop-message", "delay"])
def test_fabric_faults_cost_time_not_values(kind):
    density = sindbis_like_phantom(16).normalized()
    views = sindbis_like_dataset(size=16, n_views=4, snr=10.0, seed=4)
    schedule = MultiResolutionSchedule((RefinementLevel(1.0, 1.0, half_steps=2),))

    clean = parallel_refine(views, density, n_ranks=2, schedule=schedule)
    plan = FaultPlan((FaultSpec(kind, "msg:0->*", times=3, delay_s=0.25),))
    faulty = parallel_refine(views, density, n_ranks=2, schedule=schedule, fault_plan=plan)

    for got, want in zip(faulty.orientations, clean.orientations):
        assert got.as_tuple() == want.as_tuple()
    assert np.array_equal(faulty.distances, clean.distances)
    assert faulty.simulated_total_seconds > clean.simulated_total_seconds
    assert not clean.fault_events
    expected_action = "dropped" if kind == "drop-message" else "delayed"
    assert any(e.action == expected_action for e in faulty.fault_events)
