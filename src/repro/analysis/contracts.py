"""Runtime array contracts for the kernel boundaries.

The fused/reference kernel pair and the process-parallel scheduler only
stay bit-identical if every boundary keeps its shape/dtype conventions:
band vectors stay ``(n,)`` or ``(m, n)`` with a shared ``n``, volume DFTs
stay cubic, the shared-memory D̂ replica attaches C-contiguous.  The
:func:`array_contract` decorator states those conventions next to the code
and enforces them at call time **only** when ``REPRO_CHECK_CONTRACTS=1``
is set in the environment.

Zero cost when disabled: the decorator is evaluated at import time and
returns the original function object unchanged, so the default
configuration carries no wrapper, no signature binding, and no branch per
call.  CI runs the test suite once with the flag set (see
``tools/check.py``) so every contract is exercised without taxing
production runs.

Shape specs are tuples whose entries are ``int`` (exact), ``None``
(wildcard), or ``str`` symbols that must bind consistently across all
arguments of one call (``("l", "l")`` means square; a shared ``"n"``
across two specs ties their lengths).  A list of tuples means the value
may match any one alternative.  Dtype specs name a kind group
(``"float"``, ``"complex"``, ``"int"``, ``"bool"``, ``"inexact"``,
``"number"``) or an exact dtype name (``"float64"``).
"""

from __future__ import annotations

import functools
import inspect
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

import numpy as np

from repro.engine.env import CONTRACTS_ENV
from repro.engine.env import contracts_enabled as _env_contracts_enabled

__all__ = [
    "ArraySpec",
    "ContractViolation",
    "array_contract",
    "contracts_enabled",
    "spec",
]

#: Environment flag that switches contract enforcement on.  Kept as a
#: module attribute for existing importers; the read itself is
#: centralized in :mod:`repro.engine.env` (repro-lint RL011).
ENV_FLAG = CONTRACTS_ENV

_DTYPE_KINDS = {
    "float": "f",
    "complex": "c",
    "int": "iu",
    "bool": "b",
    "inexact": "fc",
    "number": "fciu",
}

_F = TypeVar("_F", bound=Callable[..., Any])


class ContractViolation(TypeError, ValueError):
    """An argument or return value broke a declared array contract.

    Subclasses both ``TypeError`` and ``ValueError``: a violated contract
    is usually the same malformed input the undecorated function would
    reject with ``ValueError``, so enabling enforcement must not change
    which ``except``/``pytest.raises`` clauses match.
    """


@dataclass(frozen=True)
class ArraySpec:
    """Declarative constraints on one array-valued argument.

    Attributes
    ----------
    shape:
        One shape tuple, or a list of alternative tuples (see module
        docstring for the entry grammar); ``None`` skips the shape check.
    dtype:
        Kind-group name or exact dtype name; ``None`` skips the check.
    contiguous:
        Require C-contiguity (only meaningful for actual ndarrays).
    allow_none:
        Accept ``None`` (optional arguments) without checking.
    """

    shape: tuple[Any, ...] | list[tuple[Any, ...]] | None = None
    dtype: str | None = None
    contiguous: bool = False
    allow_none: bool = True


def spec(
    shape: tuple[Any, ...] | list[tuple[Any, ...]] | None = None,
    dtype: str | None = None,
    contiguous: bool = False,
    allow_none: bool = True,
) -> ArraySpec:
    """Shorthand constructor for :class:`ArraySpec`."""
    return ArraySpec(shape=shape, dtype=dtype, contiguous=contiguous, allow_none=allow_none)


def contracts_enabled() -> bool:
    """True when ``REPRO_CHECK_CONTRACTS`` requests runtime enforcement."""
    return _env_contracts_enabled()


def _format_shape(shape: tuple[Any, ...]) -> str:
    return "(" + ", ".join("*" if d is None else str(d) for d in shape) + ")"


def _try_bind_shape(
    got: tuple[int, ...], want: tuple[Any, ...], dims: dict[str, int]
) -> dict[str, int] | None:
    """Bind symbolic dims of ``want`` against ``got``; None on mismatch."""
    if len(got) != len(want):
        return None
    trial = dict(dims)
    for actual, expected in zip(got, want):
        if expected is None:
            continue
        if isinstance(expected, str):
            bound = trial.get(expected)
            if bound is None:
                trial[expected] = actual
            elif bound != actual:
                return None
        elif actual != int(expected):
            return None
    return trial


def _check_value(where: str, name: str, value: Any, sp: ArraySpec, dims: dict[str, int]) -> None:
    if isinstance(sp, dict):  # tolerate plain-dict specs
        sp = ArraySpec(**sp)
    if value is None:
        if sp.allow_none:
            return
        raise ContractViolation(f"{where}({name}): got None but the contract requires an array")
    arr = value if isinstance(value, np.ndarray) else np.asarray(value)
    if sp.shape is not None:
        alternatives = sp.shape if isinstance(sp.shape, list) else [sp.shape]
        bound = None
        for alt in alternatives:
            bound = _try_bind_shape(arr.shape, alt, dims)
            if bound is not None:
                break
        if bound is None:
            expected = " or ".join(_format_shape(a) for a in alternatives)
            context = (
                " with " + ", ".join(f"{k}={v}" for k, v in sorted(dims.items())) if dims else ""
            )
            raise ContractViolation(
                f"{where}({name}): expected shape {expected}{context}, got {arr.shape}"
            )
        dims.update(bound)
    if sp.dtype is not None:
        kinds = _DTYPE_KINDS.get(sp.dtype)
        if kinds is not None:
            ok = arr.dtype.kind in kinds
        else:
            ok = arr.dtype == np.dtype(sp.dtype)
        if not ok:
            raise ContractViolation(
                f"{where}({name}): expected dtype {sp.dtype}, got {arr.dtype}"
            )
    if sp.contiguous and isinstance(value, np.ndarray) and not value.flags["C_CONTIGUOUS"]:
        raise ContractViolation(f"{where}({name}): expected a C-contiguous array")


def array_contract(
    *,
    ret: ArraySpec | None = None,
    enabled: bool | None = None,
    **param_specs: ArraySpec,
) -> Callable[[_F], _F]:
    """Declare array contracts on named parameters (and optionally ``ret``).

    With ``enabled=None`` (the default) enforcement follows
    :func:`contracts_enabled`, evaluated once at decoration (import) time;
    pass ``enabled=True``/``False`` to force either mode (used by tests).
    When disabled, the decorator returns the function object unchanged.
    """

    def decorate(fn: _F) -> _F:
        on = contracts_enabled() if enabled is None else bool(enabled)
        if not on:
            return fn
        sig = inspect.signature(fn)
        unknown = set(param_specs) - set(sig.parameters)
        if unknown:
            raise TypeError(
                f"array_contract on {fn.__qualname__}: unknown parameters {sorted(unknown)}"
            )
        where = fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            bound = sig.bind(*args, **kwargs)
            dims: dict[str, int] = {}
            for pname, sp in param_specs.items():
                if pname in bound.arguments:
                    _check_value(where, pname, bound.arguments[pname], sp, dims)
            result = fn(*args, **kwargs)
            if ret is not None:
                _check_value(where, "return", result, ret, dims)
            return result

        wrapper.__array_contract__ = dict(param_specs)  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate
