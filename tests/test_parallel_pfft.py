"""Tests for the slab-decomposed parallel 3D FFT (steps a.3-a.6)."""

import numpy as np
import pytest

from repro.parallel import parallel_fft3d, parallel_fft3d_driver, run_spmd
from repro.parallel.machine import MachineSpec
from repro.parallel.partition import slab_bounds
from repro.parallel.pfft import fft_flops_1d

FAST = MachineSpec("fast", flops=1e12, net_latency=1e-6, net_bandwidth=1e10, io_bandwidth=1e10)


@pytest.mark.parametrize("n_ranks", [1, 2, 3, 4])
def test_matches_numpy_fftn(rng, n_ranks):
    vol = rng.normal(size=(12, 12, 12))
    out, _, _ = parallel_fft3d_driver(vol, n_ranks, FAST)
    assert np.allclose(out, np.fft.fftn(vol), atol=1e-9)


def test_non_divisible_sizes(rng):
    vol = rng.normal(size=(13, 13, 13))
    out, _, _ = parallel_fft3d_driver(vol, 4, FAST)
    assert np.allclose(out, np.fft.fftn(vol), atol=1e-9)


def test_complex_input(rng):
    vol = rng.normal(size=(8, 8, 8)) + 1j * rng.normal(size=(8, 8, 8))
    out, _, _ = parallel_fft3d_driver(vol, 2, FAST)
    assert np.allclose(out, np.fft.fftn(vol), atol=1e-9)


def test_every_rank_gets_full_transform(rng):
    vol = rng.normal(size=(8, 8, 8))
    size = 8

    def worker(comm):
        lo, hi = slab_bounds(size, comm.size, comm.rank)
        return parallel_fft3d(comm, vol[lo:hi], size)

    results, _ = run_spmd(4, worker, FAST)
    ref = np.fft.fftn(vol)
    for r in results:
        assert np.allclose(r, ref, atol=1e-9)


def test_slab_shape_validated(rng):
    vol = rng.normal(size=(8, 8, 8))

    def worker(comm):
        return parallel_fft3d(comm, vol[:5], 8)  # wrong plane count for rank

    with pytest.raises(RuntimeError):
        run_spmd(2, worker, FAST)


def test_flops_charged(rng):
    vol = rng.normal(size=(8, 8, 8))
    _, elapsed, timers = parallel_fft3d_driver(vol, 2, FAST)
    assert elapsed > 0
    assert any("3D DFT" in t.totals for t in timers)


def test_fft_flops_formula():
    assert fft_flops_1d(8) == pytest.approx(5 * 8 * 3)
    with pytest.raises(ValueError):
        fft_flops_1d(0)


def test_centered_convention_via_shifts(phantom16):
    # the recipe used by the parallel refinement driver: ifftshift before,
    # fftshift after must equal the library's centered transform
    from repro.fourier import centered_fftn

    pre = np.fft.ifftshift(phantom16.data)
    out, _, _ = parallel_fft3d_driver(pre, 2, FAST)
    assert np.allclose(np.fft.fftshift(out), centered_fftn(phantom16.data), atol=1e-8)
