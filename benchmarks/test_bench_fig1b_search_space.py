"""E3 — Figure 1(b) + §3: search-space sizes, symmetric vs asymmetric.

Regenerates the numbers behind the paper's motivation: an icosahedral
particle at 3° needs only ~51 calculated views (Figure 1b), while the
brute-force asymmetric search at 0.1° has (1800)³ ≈ 5.8·10⁹ candidates —
"six orders of magnitude" more work.
"""

import pytest

from repro.geometry import search_space_cardinality
from repro.geometry.sphere import icosahedral_asymmetric_unit_views
from repro.pipeline import format_table, run_search_space_report


def test_fig1b_search_space(benchmark, save_artifact):
    rows = benchmark.pedantic(
        lambda: run_search_space_report(angular_resolutions=(3.0, 1.0, 0.5, 0.1)),
        rounds=1, iterations=1,
    )
    by_res = {r["angular_resolution_deg"]: r for r in rows}

    # Figure 1b: ~51 views inside the icosahedral asymmetric unit at 3 deg
    assert 30 <= by_res[3.0]["icosahedral_views"] <= 80
    # §3: |P| = (180/0.1)^3 for the asymmetric search
    assert by_res[0.1]["asymmetric_cardinality"] == 1800**3
    # the asymmetric/icosahedral ratio grows as resolution refines and
    # reaches >= 4 orders of magnitude at 0.1 deg
    ratios = [r["ratio"] for r in rows]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))
    assert by_res[0.1]["ratio"] > 1e4

    table = format_table(
        ["resolution (deg)", "icosahedral views (Fig 1b)", "asymmetric |P| (sec. 3)", "ratio"],
        [
            [r["angular_resolution_deg"], int(r["icosahedral_views"]),
             int(r["asymmetric_cardinality"]), f"{r['ratio']:.3g}"]
            for r in rows
        ],
        title="Figure 1b / sec. 3 - orientation search-space sizes",
    )
    table += (
        "\n\npaper: ~51 icosahedral views at 3 deg; ~4000 at 0.1 deg;"
        "\n(180/0.1)^3 = 5.83e9 for an asymmetric particle -> '6 orders of magnitude'"
    )
    save_artifact("fig1b_search_space.txt", table)


def test_kernel_asym_unit_enumeration(benchmark):
    views = benchmark(icosahedral_asymmetric_unit_views, 0.5)
    assert len(views) > 500


def test_kernel_cardinality(benchmark):
    n = benchmark(search_space_cardinality, 0.1)
    assert n == 1800**3
