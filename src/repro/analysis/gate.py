"""The one-shot static-analysis gate: ruff + mypy + repro-lint.

``python -m repro.analysis`` (and ``tools/check.py``) call
:func:`run_gate`.  The two external tools are *optional* — this
reproduction runs in offline containers that may not ship them — so an
absent tool reports ``skipped`` rather than failing the gate; repro-lint
is in-process and always runs.  Any real finding from any tool makes the
gate exit nonzero.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.analysis.lint import Finding, lint_paths

__all__ = ["GateResult", "repo_root", "run_gate", "run_lint", "run_mypy", "run_ruff"]


@dataclass(frozen=True)
class GateResult:
    """Outcome of one gate stage."""

    name: str
    status: str  # "ok" | "failed" | "skipped"
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status == "failed"


def repo_root() -> Path:
    """The repository root (two levels above ``src/repro``)."""
    return Path(__file__).resolve().parents[3]


def _tool_available(module: str) -> bool:
    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):
        return False


def _run_tool(name: str, argv: list[str], cwd: Path) -> GateResult:
    proc = subprocess.run(argv, cwd=cwd, capture_output=True, text=True)
    output = (proc.stdout + proc.stderr).strip()
    if proc.returncode == 0:
        return GateResult(name, "ok", output)
    return GateResult(name, "failed", output)


def run_ruff(root: Path | None = None) -> GateResult:
    """``ruff check`` over src/ and tests/, or ``skipped`` when not installed."""
    root = root or repo_root()
    if not _tool_available("ruff"):
        return GateResult("ruff", "skipped", "ruff is not installed in this environment")
    return _run_tool("ruff", [sys.executable, "-m", "ruff", "check", "src", "tests"], root)


def run_mypy(root: Path | None = None) -> GateResult:
    """``mypy`` with the pyproject config, or ``skipped`` when not installed."""
    root = root or repo_root()
    if not _tool_available("mypy"):
        return GateResult("mypy", "skipped", "mypy is not installed in this environment")
    return _run_tool("mypy", [sys.executable, "-m", "mypy"], root)


def run_lint(paths: Sequence[str] | None = None, root: Path | None = None) -> GateResult:
    """repro-lint over the given paths (default: ``src/repro``)."""
    root = root or repo_root()
    targets = list(paths) if paths else [str(root / "src" / "repro")]
    findings: list[Finding] = lint_paths(targets)
    if not findings:
        return GateResult("repro-lint", "ok", f"0 findings over {', '.join(targets)}")
    return GateResult("repro-lint", "failed", "\n".join(f.format() for f in findings))


def run_gate(
    lint_targets: Sequence[str] | None = None,
    *,
    with_ruff: bool = True,
    with_mypy: bool = True,
    root: Path | None = None,
) -> list[GateResult]:
    """Run every requested stage; the gate fails if any result ``failed``."""
    root = root or repo_root()
    results: list[GateResult] = []
    if with_ruff:
        results.append(run_ruff(root))
    if with_mypy:
        results.append(run_mypy(root))
    results.append(run_lint(lint_targets, root))
    return results
