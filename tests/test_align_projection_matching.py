"""Tests for the icosahedral projection-matching baseline ("old method")."""

import numpy as np
import pytest

from repro.align import (
    build_projection_library,
    match_against_library,
    refine_icosahedral,
)
from repro.fourier import centered_fft2
from repro.geometry import Orientation, icosahedral_group, reduce_to_asymmetric_unit
from repro.imaging import project_map


def test_library_covers_asymmetric_unit(capsid32):
    lib = build_projection_library(capsid32, angular_resolution_deg=12.0, omega_step_deg=60.0)
    assert len(lib) > 10
    assert lib.cuts.shape == (len(lib), 32, 32)
    for o in lib.orientations:
        assert 69.0 <= o.theta <= 90.0 + 1e-9


def test_library_no_symmetry_is_larger(capsid32):
    lib_icos = build_projection_library(capsid32, 12.0, omega_step_deg=120.0)
    lib_full = build_projection_library(capsid32, 12.0, symmetry="none", omega_step_deg=120.0)
    assert len(lib_full) > 10 * len(lib_icos)


def test_library_bad_symmetry(capsid32):
    with pytest.raises(ValueError):
        build_projection_library(capsid32, 12.0, symmetry="helical")


def test_match_against_library_finds_neighbourhood(capsid32):
    lib = build_projection_library(capsid32, 6.0, omega_step_deg=30.0)
    truth = Orientation(80.0, 10.0, 45.0)
    img = project_map(capsid32, truth, method="fourier")
    best, d = match_against_library(centered_fft2(img), lib, r_max=12)
    # the match is defined up to the icosahedral group: reduce both
    group = icosahedral_group()
    from repro.refine.stats import angular_errors

    err = angular_errors([best], [truth], symmetry=group)[0]
    assert err < 15.0  # library spacing 6 deg in-plane x30 omega


def test_refine_icosahedral_runs_over_stack(capsid32):
    from repro.imaging import simulate_views

    views = simulate_views(capsid32, 3, seed=1, projection_method="fourier")
    fts = centered_fft2(views.images)
    orients, dists = refine_icosahedral(fts, capsid32, angular_resolution_deg=10.0, r_max=10)
    assert len(orients) == 3
    assert dists.shape == (3,)
    assert np.all(np.isfinite(dists))
