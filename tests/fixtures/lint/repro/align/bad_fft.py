"""RL002 fixture: raw numpy FFT outside fourier/transforms.py."""

from __future__ import annotations

import numpy as np


def transform(a):
    return np.fft.fftshift(np.fft.fft2(a))
