"""Best-first candidate pruning for the batched window engine (DESIGN.md §11).

The exhaustive matcher scores every candidate in every window even though
almost all of them are nowhere near the running best.  Because the §3
distance is a sum of non-negative per-sample contributions, a *partial*
band sum is a monotone lower bound on the full distance: once a
candidate's accumulated contribution exceeds the running k-th best
distance it can never enter the top k and the remaining shells need not
be gathered at all (:meth:`repro.align.fused.MatchPlan.match_window_pruned`).

This module holds the search-side state of that scheme:

* :class:`PruneParams` — the runtime knobs, a picklable mirror of
  :class:`repro.engine.config.PruneConfig` plus the tracker rank;
* :class:`PruneSearch` — one sliding-window search's k-th-best tracker.
  It observes every *exactly evaluated* distance (memo hits and pruning
  survivors), keyed by the candidate's orientation so re-centered windows
  cannot double-count a candidate, and exposes the abandonment bound
  ``kth_best · (1 + margin)``.  The margin makes the bound safe against
  the tiny (≈1e-13 relative) difference between the shell-accumulated
  partial sums and the canonical contiguous reduction: any candidate
  whose true distance is ≤ the k-th best always survives, so the
  surviving arg-min — and, with rank ``k``, the top-k basin set — is
  bit-identical to exhaustive search;
* :func:`center_offsets` — the best-first evaluation order.  Candidates
  nearest the window center (the previous level's winner) are scored
  first, which tightens the bound after a few dozen evaluations and lets
  the bulk of the window be abandoned after its innermost shells.

The tracker's lifetime is one :func:`~repro.refine.window.sliding_window_search`
call: the bound is only comparable while the (phase-corrected) view band
is fixed, so center corrections and new levels always start fresh.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arraytypes import Array
from repro.geometry.euler import Orientation

__all__ = ["PruneParams", "PruneSearch", "center_offsets"]

#: Orientation-plus-center key, identical to :func:`repro.align.memo.memo_key`.
BasinKey = tuple[float, float, float, float, float]

#: Cached squared index offsets from the window center, keyed by grid shape.
_OFFSET_CACHE: dict[tuple[int, ...], Array] = {}


def center_offsets(shape: tuple[int, ...]) -> Array:
    """Squared grid-index distance of every window cell from the center cell.

    Flattened in the grid's C-order so ``np.argsort(center_offsets(shape),
    kind="stable")`` is the deterministic best-first evaluation order: the
    re-centered previous winner (offset exactly 0) is always scored in the
    first chunk, seeding the bound at the running best immediately.
    """
    cached = _OFFSET_CACHE.get(shape)
    if cached is not None:
        return cached
    axes = [np.arange(n, dtype=float) - (n - 1) / 2.0 for n in shape]
    grids = np.meshgrid(*axes, indexing="ij")
    offsets = np.zeros(shape, dtype=float)
    for g in grids:
        offsets += g * g
    flat = offsets.ravel()
    flat.setflags(write=False)
    # repro-lint: allow[RL013] pure memo of a deterministic function of
    # `shape`; identical read-only values in every process.
    _OFFSET_CACHE[shape] = flat
    return flat


@dataclass(frozen=True)
class PruneParams:
    """Runtime pruning knobs carried from the config into worker payloads.

    ``rank`` is the tracker size k: the bound is the k-th best observed
    distance, so the top ``rank`` candidates of the search are always
    exactly scored.  It must cover both consumers of the top of the
    ranking — ``max(top_k, polish n_best)`` — which the refiner computes
    once from the config.  ``top_k`` is how many basin seeds flow to the
    next level (1 preserves the classic single-path behavior).
    """

    rank: int = 1
    top_k: int = 1
    margin: float = 1e-9
    shell_groups: int = 8
    seed_chunk: int = 32
    chunk: int = 128

    def __post_init__(self) -> None:
        if self.rank < 1 or self.top_k < 1:
            raise ValueError("prune rank and top_k must be >= 1")
        if self.top_k > self.rank:
            raise ValueError("prune top_k cannot exceed the tracker rank")
        if self.margin < 0.0:
            raise ValueError("prune margin must be non-negative")
        if self.shell_groups < 1 or self.seed_chunk < 1 or self.chunk < 1:
            raise ValueError("prune shell_groups/seed_chunk/chunk must be >= 1")


class PruneSearch:
    """The k best exactly-evaluated candidates of one sliding-window search.

    Entries are keyed by the candidate's ``(θ, φ, ω, cx, cy)`` tuple —
    the same exact-float key the orientation memo uses — so a candidate
    re-observed in an overlapping re-centered window (memo hit or
    re-evaluation, both yield the identical distance) occupies one slot.
    Abandoned candidates are *never* observed: their true distance is
    known only to exceed the bound.
    """

    def __init__(self, params: PruneParams) -> None:
        self.params = params
        self._best: dict[BasinKey, float] = {}
        self._kth = float("inf")

    def __len__(self) -> int:
        return len(self._best)

    def bound(self) -> float:
        """Abandonment threshold: k-th best seen, inflated by the margin.

        Infinite until ``rank`` distinct candidates have been observed —
        pruning cannot start before the ranking it protects exists.
        """
        if len(self._best) < self.params.rank:
            return float("inf")
        return self._kth * (1.0 + self.params.margin)

    def observe(self, keys: list[BasinKey], values: Array) -> None:
        """Fold exactly-evaluated distances into the ranking.

        ``values`` may contain ``inf`` for abandoned candidates; those are
        ignored.  Values strictly above the current k-th best cannot enter
        the ranking and are skipped without touching the dict.
        """
        vals = np.asarray(values, dtype=float)
        best = self._best
        cutoff = self._kth if len(best) >= self.params.rank else float("inf")
        candidates = np.flatnonzero(vals <= cutoff)
        if candidates.size == 0:
            return
        for i in candidates.tolist():
            best[keys[i]] = float(vals[i])
        rank = self.params.rank
        if len(best) > rank:
            kept = sorted(best.items(), key=lambda kv: (kv[1], kv[0]))[:rank]
            self._best = best = dict(kept)
        if len(best) >= rank:
            self._kth = max(best.values())

    def basins(self) -> tuple[Orientation, ...]:
        """The top-``rank`` orientations observed, best first.

        Exact whenever the search ran to completion: every candidate whose
        distance is ≤ the final k-th best survived pruning (the bound only
        shrinks), so the ranking saw all of them.  Consumers slice what
        they need — the next level takes ``top_k`` seeds, the polish its
        ``n_best`` starts.
        """
        ranked = sorted(self._best.items(), key=lambda kv: (kv[1], kv[0]))
        return tuple(Orientation(*key) for key, _ in ranked)
