"""Synthetic dataset presets standing in for the paper's two specimens."""

from __future__ import annotations

import numpy as np

from repro.ctf.model import CTFParams
from repro.density.map import DensityMap
from repro.density.phantom import (
    asymmetric_phantom,
    cyclic_phantom,
    reo_like_phantom,
    sindbis_like_phantom,
)
from repro.imaging.simulate import SimulatedViews, simulate_views
from repro.pipeline.config import MiniWorkload

__all__ = ["make_dataset", "sindbis_like_dataset", "reo_like_dataset", "phantom_for"]


def phantom_for(kind: str, size: int, apix: float = 1.0, seed: int = 0) -> DensityMap:
    """The ground-truth map for a workload kind."""
    if kind == "sindbis":
        return sindbis_like_phantom(size, apix=apix).normalized()
    if kind == "reo":
        return reo_like_phantom(size, apix=apix).normalized()
    if kind == "asymmetric":
        return asymmetric_phantom(size, seed=seed, apix=apix).normalized()
    if kind.startswith("c") and kind[1:].isdigit():
        return cyclic_phantom(size, n=int(kind[1:]), seed=seed, apix=apix).normalized()
    raise ValueError(f"unknown phantom kind {kind!r}")


def make_dataset(
    workload: MiniWorkload,
    ctf: CTFParams | None = None,
    projection_method: str = "real",
) -> SimulatedViews:
    """Views + ground truth for a mini workload.

    Initial orientations are the truth perturbed by the workload's
    ``perturbation_deg`` (the stand-in for "old method" output); the true
    centers are offset by ``center_sigma_px`` and the initial estimates
    start from zero offset.
    """
    density = phantom_for(workload.kind, workload.size, workload.apix, workload.seed)
    return simulate_views(
        density,
        workload.n_views,
        snr=workload.snr,
        ctf=ctf,
        center_sigma_px=workload.center_sigma_px,
        initial_angle_error_deg=workload.perturbation_deg,
        seed=workload.seed,
        projection_method=projection_method,
    )


def sindbis_like_dataset(
    size: int = 32, n_views: int = 80, snr: float = 3.0, seed: int = 2, **kwargs
) -> SimulatedViews:
    """The mini Sindbis-like dataset used across figures 2/3/5."""
    wl = MiniWorkload("sindbis-mini", "sindbis", size=size, n_views=n_views, snr=snr, seed=seed, **kwargs)
    return make_dataset(wl)


def reo_like_dataset(
    size: int = 32, n_views: int = 80, snr: float = 3.0, seed: int = 5, **kwargs
) -> SimulatedViews:
    """The mini reovirus-like dataset used in figure 6."""
    wl = MiniWorkload("reo-mini", "reo", size=size, n_views=n_views, snr=snr, seed=seed, **kwargs)
    return make_dataset(wl)
