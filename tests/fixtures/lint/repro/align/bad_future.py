"""RL008 fixture: module body with no `from __future__ import annotations`."""


def scale(x, factor):
    return x * factor
