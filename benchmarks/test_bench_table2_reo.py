"""E2 — Table 2: per-step times of one reovirus refinement iteration.

The model is calibrated on a *Sindbis* cell (Table 1), so every reovirus
row is a cross-dataset prediction; the reo band limit is the one physical
inference documented in EXPERIMENTS.md (8 Å target vs Sindbis' 10 Å).
"""

import numpy as np
import pytest

from repro.parallel import REO_WORKLOAD
from repro.pipeline import MiniWorkload, format_timing_table, run_timing_table_experiment

# level-4 value restores a scan-corrupted leading digit (see EXPERIMENTS.md)
PAPER_REFINEMENT_ROW = [19942.0, 21957.0, 69672.0, 143786.0]


def test_table2_reo(benchmark, calibrated_model, save_artifact):
    mini = MiniWorkload("reo-mini", "reo", size=32, n_views=12, snr=np.inf, perturbation_deg=2.0)

    def run():
        return run_timing_table_experiment(
            REO_WORKLOAD, mini=mini, n_ranks=4,
            calibrate_level=None, calibrate_seconds=None,
        )

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    # replace the uncalibrated model rows with the Table-1-calibrated model
    rows = calibrated_model.predict_table(REO_WORKLOAD)

    for row, paper in zip(rows, PAPER_REFINEMENT_ROW):
        assert row["Orientation refinement"] == pytest.approx(paper, rel=0.15)
    assert all(r["Orientation refinement"] / r["Total"] > 0.95 for r in rows)
    # reovirus is more expensive per view than Sindbis (bigger box, finer
    # band): compare the 1-degree levels per view
    from repro.parallel import SINDBIS_WORKLOAD

    sind = calibrated_model.predict_table(SINDBIS_WORKLOAD)
    per_view_reo = rows[0]["Orientation refinement"] / REO_WORKLOAD.n_views
    per_view_sind = sind[0]["Orientation refinement"] / SINDBIS_WORKLOAD.n_views
    assert per_view_reo > 3 * per_view_sind

    report = out["mini_report"]
    text = format_timing_table(rows, title="Table 2 (model, paper scale: reo, P=16, SP2-like)")
    text += "\n\npaper refinement row:     " + "  ".join(f"{v:,.0f}" for v in PAPER_REFINEMENT_ROW)
    text += (
        f"\n\nmeasured mini run ({report.n_ranks} ranks, l={mini.size}, m={mini.n_views}):"
        f"\n  refinement fraction: {report.refinement_fraction():.3f}"
    )
    save_artifact("table2_reo.txt", text)
