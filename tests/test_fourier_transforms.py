"""Tests for centered FFT conventions."""

import numpy as np
import pytest

from repro.fourier import (
    centered_fft2,
    centered_fftn,
    centered_ifft2,
    centered_ifftn,
    fourier_center,
    frequency_grid_2d,
    frequency_grid_3d,
)
from repro.fourier.transforms import centered_fft1, centered_ifft1


def test_fourier_center():
    assert fourier_center(32) == 16
    assert fourier_center(33) == 16
    with pytest.raises(ValueError):
        fourier_center(0)


def test_roundtrip_3d(rng):
    x = rng.normal(size=(12, 12, 12))
    assert np.allclose(centered_ifftn(centered_fftn(x)).real, x, atol=1e-12)


def test_roundtrip_2d(rng):
    x = rng.normal(size=(16, 16))
    assert np.allclose(centered_ifft2(centered_fft2(x)).real, x, atol=1e-12)


def test_roundtrip_1d(rng):
    x = rng.normal(size=32)
    assert np.allclose(centered_ifft1(centered_fft1(x)).real, x, atol=1e-12)


def test_dc_at_center(rng):
    x = rng.normal(size=(16, 16)) + 5.0
    ft = centered_fft2(x)
    c = fourier_center(16)
    assert ft[c, c] == pytest.approx(x.sum())


def test_dc_at_center_3d(rng):
    x = rng.normal(size=(8, 8, 8))
    ft = centered_fftn(x)
    c = fourier_center(8)
    assert ft[c, c, c] == pytest.approx(x.sum())


def test_real_input_hermitian_symmetry(rng):
    x = rng.normal(size=(16, 16))
    ft = centered_fft2(x)
    c = fourier_center(16)
    # F(-k) = conj F(k) about the center (skip the unpaired Nyquist row/col)
    for ky in range(-5, 6):
        for kx in range(-5, 6):
            assert ft[c + ky, c + kx] == pytest.approx(np.conj(ft[c - ky, c - kx]), rel=1e-9, abs=1e-9)


def test_centered_fft2_batched(rng):
    stack = rng.normal(size=(3, 8, 8))
    batched = centered_fft2(stack)
    for i in range(3):
        assert np.allclose(batched[i], centered_fft2(stack[i]))


def test_frequency_grids():
    ky, kx = frequency_grid_2d(8)
    assert ky.shape == (8, 8)
    assert ky[4, 0] == 0 and kx[0, 4] == 0
    assert ky.min() == -4 and ky.max() == 3
    kz, ky3, kx3 = frequency_grid_3d(6)
    assert kz[3, 0, 0] == 0 and ky3[0, 3, 0] == 0 and kx3[0, 0, 3] == 0


def test_parseval_2d(rng):
    x = rng.normal(size=(16, 16))
    ft = centered_fft2(x)
    assert np.sum(np.abs(ft) ** 2) / 16**2 == pytest.approx(np.sum(x**2))
