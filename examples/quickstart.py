"""Quickstart: refine view orientations against a known map.

Builds a synthetic Sindbis-like capsid, simulates noisy views with
perturbed starting orientations and boxing errors, runs the paper's
multi-resolution sliding-window refinement, reconstructs a map from the
refined orientations, and reports accuracy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    OrientationRefiner,
    reconstruct_from_views,
    simulate_views,
    sindbis_like_phantom,
)
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel
from repro.refine.stats import angular_errors, center_errors


def main() -> None:
    print("1. ground-truth map: 32^3 Sindbis-like icosahedral capsid")
    truth = sindbis_like_phantom(32).normalized()

    print("2. simulating 24 views (SNR 3, 0.5 px boxing error, 3 deg initial error)")
    views = simulate_views(
        truth,
        n_views=24,
        snr=3.0,
        center_sigma_px=0.5,
        initial_angle_error_deg=3.0,
        seed=0,
    )
    err0 = angular_errors(views.initial_orientations, views.true_orientations)
    print(f"   initial angular error: mean {err0.mean():.2f} deg, max {err0.max():.2f} deg")

    print("3. refining with a 2-level multi-resolution schedule (1.0 -> 0.5 deg)")
    # the level-1 window must cover the initial error distribution: with a
    # 3-deg sigma per angle, outliers reach ~7 deg, so use +-4 steps of 1 deg
    # and rely on the sliding window for the tail
    schedule = MultiResolutionSchedule(
        (RefinementLevel(1.0, 1.0, half_steps=4), RefinementLevel(0.5, 0.5, half_steps=2))
    )
    refiner = OrientationRefiner(truth, r_max=12, max_slides=2)
    result = refiner.refine(views, schedule=schedule)

    err1 = angular_errors(result.orientations, views.true_orientations)
    cerr = center_errors(result.orientations, views.true_orientations)
    print(f"   refined angular error: mean {err1.mean():.2f} deg, max {err1.max():.2f} deg")
    print(f"   refined center error:  mean {cerr.mean():.2f} px")
    print(f"   matching operations:   {result.stats.total_matches:,}")
    for name, seconds in result.timer.totals.items():
        print(f"   {name:<24s} {seconds:8.2f} s")

    print("4. reconstructing maps from initial vs refined orientations")
    rec_init = reconstruct_from_views(views.images, views.initial_orientations)
    rec_new = reconstruct_from_views(views.images, result.orientations)
    print(f"   map cc vs truth, initial orientations: {rec_init.normalized().correlation(truth):.4f}")
    print(f"   map cc vs truth, refined orientations: {rec_new.normalized().correlation(truth):.4f}")


if __name__ == "__main__":
    main()
