"""Tests for polyhedral group fitting from detected axes."""

import numpy as np
import pytest

from repro.geometry import icosahedral_group, octahedral_group, tetrahedral_group
from repro.geometry.rotations import axis_angle_to_matrix, rotation_between
from repro.refine.group_fit import fit_polyhedral_group, frame_from_axis_pair, group_axes


def test_group_axes_census():
    axes_i = group_axes(icosahedral_group())
    orders = sorted(o for _, o in axes_i)
    assert orders.count(2) == 15
    assert orders.count(3) == 10
    assert orders.count(5) == 6
    axes_o = group_axes(octahedral_group())
    assert sorted(o for _, o in axes_o).count(4) == 3


def test_frame_from_axis_pair_exact():
    ca = np.array([0.0, 0.0, 1.0])
    cb = np.array([1.0, 1.0, 1.0]) / np.sqrt(3)
    r_true = axis_angle_to_matrix([1, 2, 3], 40.0)
    da, db = r_true @ ca, r_true @ cb
    u = frame_from_axis_pair(ca, cb, da, db)
    assert rotation_between(u, r_true) < 1e-6


def test_frame_from_axis_pair_degenerate_parallel():
    ca = np.array([0.0, 0.0, 1.0])
    u = frame_from_axis_pair(ca, ca, ca, ca)
    assert np.allclose(u @ ca, ca, atol=1e-9)


def _synthetic_scorer(true_group_matrices, noise=0.0):
    """Score = geodesic distance to the nearest true group element (deg/100)."""

    def scorer(rotation: np.ndarray) -> float:
        best = min(rotation_between(g, rotation) for g in true_group_matrices)
        return best / 100.0 + noise

    return scorer


@pytest.mark.parametrize("builder,name", [(tetrahedral_group, "T"), (octahedral_group, "O"), (icosahedral_group, "I")])
def test_fit_recovers_rotated_group(builder, name):
    canon = builder()
    r = axis_angle_to_matrix([2, -1, 3], 33.0)
    true = np.einsum("ij,njk,lk->nil", r, canon.matrices, r)
    scorer = _synthetic_scorer(true)
    # feed two true axes (rotated canonical ones), slightly perturbed
    axes = group_axes(canon)
    a2 = next(a for a, o in axes if o == 2)
    a3 = next(a for a, o in axes if o == 3)
    jitter = axis_angle_to_matrix([1, 1, 0], 1.0)
    detected = [
        (jitter @ r @ a2, 2, 0.001),
        (r @ a3, 3, 0.002),
    ]
    fit = fit_polyhedral_group(scorer, detected, threshold=0.02, candidates=(name,))
    assert fit is not None
    got_name, group = fit
    assert got_name == name
    assert group.order == canon.order
    # every fitted element is close to a true element
    for g in group.matrices[::7]:
        assert min(rotation_between(g, t) for t in true) < 1.0


def test_fit_rejects_wrong_group():
    canon = tetrahedral_group()
    scorer = _synthetic_scorer(canon.matrices)
    axes = group_axes(canon)
    a2 = next(a for a, o in axes if o == 2)
    a3 = next(a for a, o in axes if o == 3)
    detected = [(a2, 2, 0.001), (a3, 3, 0.002)]
    # an octahedral explanation requires 4-folds the scorer will reject
    fit = fit_polyhedral_group(scorer, detected, threshold=0.02, candidates=("O",))
    assert fit is None


def test_fit_needs_two_axes():
    scorer = _synthetic_scorer(tetrahedral_group().matrices)
    assert fit_polyhedral_group(scorer, [(np.array([0, 0, 1.0]), 2, 0.001)], threshold=0.05) is None
