"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils import default_rng, spawn_rngs


def test_default_rng_from_int_is_deterministic():
    a = default_rng(42).normal(size=5)
    b = default_rng(42).normal(size=5)
    assert np.array_equal(a, b)


def test_default_rng_passthrough_generator():
    g = np.random.default_rng(7)
    assert default_rng(g) is g


def test_default_rng_different_seeds_differ():
    assert not np.array_equal(default_rng(1).normal(size=8), default_rng(2).normal(size=8))


def test_spawn_rngs_independent_and_deterministic():
    kids_a = spawn_rngs(0, 3)
    kids_b = spawn_rngs(0, 3)
    for a, b in zip(kids_a, kids_b):
        assert np.array_equal(a.normal(size=4), b.normal(size=4))
    draws = [g.normal() for g in spawn_rngs(0, 3)]
    assert len(set(draws)) == 3


def test_spawn_rngs_zero():
    assert spawn_rngs(0, 0) == []


def test_spawn_rngs_negative_raises():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)
