"""Lightweight perf counters for the batched matching engine.

The batched window path (:meth:`repro.align.fused.MatchPlan.match_window`)
and the orientation memo (:mod:`repro.align.memo`) trade memory for
redundant gathers; whether that trade pays off on a given run is an
empirical question.  :class:`PerfCounters` answers it with a handful of
integer counters incremented on the hot path (a few ``+=`` per *window*,
never per candidate) plus per-level wall times recorded by the drivers:

* ``candidates`` — matching operations requested through the batched path
  (the paper's accounting unit);
* ``gathers`` — candidates that actually hit the stacked trilinear gather
  (i.e. memo misses plus memo-disabled work);
* ``memo_lookups`` / ``memo_hits`` — memo traffic, from which the hit rate
  ``memo_hits / memo_lookups`` follows;
* ``window_calls`` — batched window invocations (one per window scan);
* ``pruned`` / ``evaluated`` — of the gathered candidates, how many were
  abandoned mid-reduction by the early-termination bound versus scored to
  a full §3 distance (``evaluated = gathers − pruned``; without pruning
  every gather is an evaluation);
* ``polish_calls`` / ``polish_iters`` — continuous least-squares polish
  invocations and their total accepted/rejected LM iterations.

Counters are plain picklable data: worker processes fill their own
instance and the scheduler :meth:`merges <PerfCounters.merge>` them, so
the numbers survive the process-pool fan-out.  They surface in
:class:`repro.refine.refiner.RefinementResult`,
:class:`repro.parallel.prefine.ParallelRefinementReport`, the CLI summary
line and ``BENCH_kernels.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PerfCounters"]


@dataclass
class PerfCounters:
    """Operation counters + per-level wall time for one refinement run.

    All fields are cheap to update and to merge; ``level_seconds`` /
    ``level_candidates`` are keyed by a level label such as ``"1.0deg"``
    (duplicate labels accumulate).
    """

    window_calls: int = 0
    candidates: int = 0
    gathers: int = 0
    memo_lookups: int = 0
    memo_hits: int = 0
    pruned: int = 0
    evaluated: int = 0
    polish_calls: int = 0
    polish_iters: int = 0
    level_seconds: dict[str, float] = field(default_factory=dict)
    level_candidates: dict[str, int] = field(default_factory=dict)
    level_pruned: dict[str, int] = field(default_factory=dict)
    level_evaluated: dict[str, int] = field(default_factory=dict)

    # -- recording ----------------------------------------------------------
    def count_window(
        self, n_candidates: int, n_gathered: int, n_hits: int = 0, n_pruned: int = 0
    ) -> None:
        """Record one batched window scan.

        ``n_candidates`` is the full window size; ``n_gathered`` the subset
        that went through the stacked gather; ``n_hits`` the memo hits;
        ``n_pruned`` the gathered candidates abandoned by the
        early-termination bound before a full §3 evaluation.  When the memo
        was consulted at all (``n_hits + n_gathered`` covers the window),
        every candidate counts as a lookup.
        """
        self.window_calls += 1
        self.candidates += n_candidates
        self.gathers += n_gathered
        self.pruned += n_pruned
        self.evaluated += n_gathered - n_pruned
        if n_hits or n_gathered < n_candidates:
            self.memo_lookups += n_candidates
            self.memo_hits += n_hits

    def count_polish(self, n_iters: int) -> None:
        """Record one view's polish: one call, ``n_iters`` LM iterations."""
        self.polish_calls += 1
        self.polish_iters += int(n_iters)

    def record_level(
        self,
        label: str,
        seconds: float,
        candidates: int,
        pruned: int = 0,
        evaluated: int = 0,
    ) -> None:
        """Accumulate one level's wall time and matching-operation counts."""
        self.level_seconds[label] = self.level_seconds.get(label, 0.0) + float(seconds)
        self.level_candidates[label] = self.level_candidates.get(label, 0) + int(candidates)
        if pruned or evaluated:
            self.level_pruned[label] = self.level_pruned.get(label, 0) + int(pruned)
            self.level_evaluated[label] = self.level_evaluated.get(label, 0) + int(evaluated)

    # -- derived rates ------------------------------------------------------
    def memo_hit_rate(self) -> float:
        """Fraction of memo lookups answered from the cache (0.0 when unused)."""
        if self.memo_lookups == 0:
            return 0.0
        return self.memo_hits / self.memo_lookups

    def total_seconds(self) -> float:
        return sum(self.level_seconds.values())

    def candidates_per_second(self) -> float:
        """Matching operations per wall-clock second over the timed levels."""
        seconds = self.total_seconds()
        if seconds <= 0.0:
            return 0.0
        return sum(self.level_candidates.values()) / seconds

    # -- aggregation --------------------------------------------------------
    def merge(self, other: "PerfCounters") -> None:
        """Fold another counter set (e.g. a worker's) into this one."""
        self.window_calls += other.window_calls
        self.candidates += other.candidates
        self.gathers += other.gathers
        self.memo_lookups += other.memo_lookups
        self.memo_hits += other.memo_hits
        self.pruned += other.pruned
        self.evaluated += other.evaluated
        self.polish_calls += other.polish_calls
        self.polish_iters += other.polish_iters
        for label, seconds in other.level_seconds.items():
            self.level_seconds[label] = self.level_seconds.get(label, 0.0) + seconds
        for label, count in other.level_candidates.items():
            self.level_candidates[label] = self.level_candidates.get(label, 0) + count
        for label, count in other.level_pruned.items():
            self.level_pruned[label] = self.level_pruned.get(label, 0) + count
        for label, count in other.level_evaluated.items():
            self.level_evaluated[label] = self.level_evaluated.get(label, 0) + count

    def summary(self) -> str:
        """One human line for the CLI: counts, hit rate, pruning, throughput."""
        parts = [f"{self.candidates:,} candidates", f"{self.gathers:,} gathered"]
        if self.memo_lookups:
            parts.append(f"memo hit-rate {self.memo_hit_rate():.1%}")
        if self.pruned:
            parts.append(f"pruned {self.pruned:,}/{self.pruned + self.evaluated:,}")
            per_level = " ".join(
                f"{label} {pruned:,}/{pruned + self.level_evaluated.get(label, 0):,}"
                for label, pruned in sorted(self.level_pruned.items())
            )
            if per_level:
                parts.append(f"per-level [{per_level}]")
        if self.polish_calls:
            parts.append(
                f"polish {self.polish_calls:,} views/{self.polish_iters:,} iters"
            )
        rate = self.candidates_per_second()
        if rate > 0:
            parts.append(f"{rate:,.0f} cand/s")
        return "; ".join(parts)
