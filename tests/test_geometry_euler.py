"""Tests for Euler angles and the Orientation record."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import (
    Orientation,
    angular_distance_deg,
    euler_to_matrix,
    in_plane_distance_deg,
    matrix_to_euler,
    orientation_distance_deg,
    random_orientations,
)
from repro.geometry.rotations import is_rotation_matrix

angles = st.floats(min_value=-360.0, max_value=720.0, allow_nan=False)
theta_interior = st.floats(min_value=1.0, max_value=179.0)


def test_identity_orientation():
    assert np.allclose(euler_to_matrix(0, 0, 0), np.eye(3))


def test_view_direction_matches_figure_1a():
    # Figure 1a: (theta, phi) of Z = (0,0), X = (90,0), Y = (90,90)
    assert np.allclose(Orientation(0, 0, 0).view_direction(), [0, 0, 1], atol=1e-12)
    assert np.allclose(Orientation(90, 0, 0).view_direction(), [1, 0, 0], atol=1e-12)
    assert np.allclose(Orientation(90, 90, 0).view_direction(), [0, 1, 0], atol=1e-12)


@given(theta=angles, phi=angles, omega=angles)
@settings(max_examples=100)
def test_euler_matrices_are_rotations(theta, phi, omega):
    assert is_rotation_matrix(euler_to_matrix(theta, phi, omega))


@given(theta=theta_interior, phi=angles, omega=angles)
@settings(max_examples=100)
def test_euler_roundtrip_away_from_poles(theta, phi, omega):
    m = euler_to_matrix(theta, phi, omega)
    t2, p2, o2 = matrix_to_euler(m)
    assert np.allclose(euler_to_matrix(t2, p2, o2), m, atol=1e-9)


@pytest.mark.parametrize("theta", [0.0, 180.0])
def test_euler_roundtrip_at_poles(theta):
    m = euler_to_matrix(theta, 33.0, 21.0)
    t2, p2, o2 = matrix_to_euler(m)
    assert np.allclose(euler_to_matrix(t2, p2, o2), m, atol=1e-9)


def test_euler_broadcasting():
    thetas = np.array([10.0, 20.0, 30.0])
    out = euler_to_matrix(thetas, 5.0, 7.0)
    assert out.shape == (3, 3, 3)
    assert np.allclose(out[1], euler_to_matrix(20.0, 5.0, 7.0))


def test_matrix_to_euler_rejects_bad_shape():
    with pytest.raises(ValueError):
        matrix_to_euler(np.eye(4))


def test_omega_only_affects_in_plane():
    a = Orientation(40, 50, 0)
    b = Orientation(40, 50, 120)
    assert angular_distance_deg(a, b) == pytest.approx(0.0, abs=1e-5)
    assert in_plane_distance_deg(a, b) == pytest.approx(120.0)
    assert orientation_distance_deg(a, b) == pytest.approx(120.0, abs=1e-5)


def test_in_plane_distance_wraps():
    a = Orientation(10, 10, 350)
    b = Orientation(10, 10, 10)
    assert in_plane_distance_deg(a, b) == pytest.approx(20.0)


def test_orientation_distance_symmetry():
    a, b = Orientation(10, 20, 30), Orientation(50, 60, 70)
    assert orientation_distance_deg(a, b) == pytest.approx(orientation_distance_deg(b, a))


def test_orientation_distance_zero_iff_same():
    a = Orientation(33, 44, 55)
    assert orientation_distance_deg(a, a) == pytest.approx(0.0, abs=1e-9)


def test_random_orientations_deterministic_and_distinct():
    a = random_orientations(5, seed=3)
    b = random_orientations(5, seed=3)
    assert [o.as_tuple() for o in a] == [o.as_tuple() for o in b]
    assert len({o.as_tuple() for o in a}) == 5


def test_random_orientations_theta_range():
    orients = random_orientations(100, seed=0, theta_range=(30.0, 60.0))
    assert all(30.0 <= o.theta <= 60.0 for o in orients)


def test_random_orientations_negative_raises():
    with pytest.raises(ValueError):
        random_orientations(-1)


def test_orientation_with_helpers():
    o = Orientation(1, 2, 3, 0.5, -0.5)
    assert o.with_angles(9, 8, 7).as_tuple() == (9, 8, 7, 0.5, -0.5)
    assert o.with_center(1.5, 2.5).as_tuple() == (1, 2, 3, 1.5, 2.5)


def test_orientation_from_matrix_roundtrip(some_orientation):
    rebuilt = Orientation.from_matrix(some_orientation.matrix())
    assert np.allclose(rebuilt.matrix(), some_orientation.matrix(), atol=1e-9)


def test_random_orientations_cover_sphere_roughly():
    orients = random_orientations(400, seed=9)
    zs = np.array([o.view_direction()[2] for o in orients])
    # cos(theta) uniform: mean near 0, spread near 1/sqrt(3)
    assert abs(zs.mean()) < 0.12
    assert 0.45 < zs.std() < 0.70
