"""Tests for the refine <-> reconstruct outer loop."""

import numpy as np
import pytest

from repro.imaging import simulate_views
from repro.reconstruct import structure_determination_loop
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel


@pytest.fixture(scope="module")
def mini_sched():
    return MultiResolutionSchedule((RefinementLevel(1.0, 1.0, half_steps=2),))


def test_loop_produces_history(phantom24, mini_sched):
    views = simulate_views(
        phantom24, 20, snr=5.0, initial_angle_error_deg=2.0,
        projection_method="fourier", seed=0,
    )
    start = phantom24.low_pass(10.0)
    history = structure_determination_loop(
        views, start, schedule=mini_sched, max_iterations=2, r_max=8
    )
    assert 1 <= len(history) <= 2
    rec = history[-1]
    assert rec.density.size == 24
    assert np.isfinite(rec.resolution_angstrom)
    assert rec.mean_distance >= 0
    assert len(rec.orientations) == 20


def test_loop_improves_map_against_truth(phantom24, mini_sched):
    views = simulate_views(
        phantom24, 30, snr=5.0, initial_angle_error_deg=3.0,
        projection_method="fourier", seed=1,
    )
    from repro.reconstruct import reconstruct_from_views

    initial_map = reconstruct_from_views(views.images, views.initial_orientations)
    history = structure_determination_loop(
        views, initial_map, schedule=mini_sched, max_iterations=2, r_max=7
    )
    cc_before = initial_map.normalized().correlation(phantom24)
    cc_after = history[-1].density.normalized().correlation(phantom24)
    assert cc_after > cc_before - 0.02  # must not degrade; usually improves


def test_loop_validation(phantom24, mini_sched):
    views = simulate_views(phantom24, 4, seed=2)
    with pytest.raises(ValueError):
        structure_determination_loop(views, phantom24, schedule=mini_sched, max_iterations=0)
