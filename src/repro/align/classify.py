"""Reference-free 2D alignment and class averaging.

A standard preprocessing substrate in single-particle work (the paper's
views were individually boxed and centered upstream): images of particles
in similar orientations are rotationally/translationally aligned and
averaged to raise SNR.  We implement

* :func:`polar_rotation_align` — the in-plane rotation between two images
  via correlation of polar-resampled magnitude spectra (translation-
  invariant);
* :func:`align_to_reference` — rotation + translation alignment of one
  image to a reference;
* :func:`iterative_class_average` — align-average-repeat on a stack of
  same-view images, the classic reference-free average.
"""

from __future__ import annotations

import numpy as np

from repro.arraytypes import Array
from scipy import ndimage

from repro.fourier.transforms import centered_fft2, circular_cross_correlation, fourier_center
from repro.imaging.center import cross_correlation_shift, shift_image
from repro.utils import require_square

__all__ = [
    "polar_resample",
    "polar_rotation_align",
    "align_to_reference",
    "iterative_class_average",
]


def polar_resample(
    image: Array, n_angles: int = 90, n_radii: int | None = None, min_radius: float = 1.0
) -> Array:
    """Resample an image onto a polar (angle × radius) grid about its center."""
    img = np.asarray(image, dtype=float)
    size = require_square(img)
    c = fourier_center(size)
    nr = size // 2 - 1 if n_radii is None else int(n_radii)
    if nr < 1:
        raise ValueError("image too small")
    angles = 2.0 * np.pi * np.arange(n_angles) / n_angles
    radii = np.linspace(min_radius, size // 2 - 1, nr)
    rows = c + radii[None, :] * np.sin(angles)[:, None]
    cols = c + radii[None, :] * np.cos(angles)[:, None]
    return ndimage.map_coordinates(img, [rows, cols], order=1, mode="constant")


def polar_rotation_align(image: Array, reference: Array, n_angles: int = 180) -> float:
    """In-plane rotation (degrees) aligning ``image`` onto ``reference``.

    Works on the magnitude spectra (translation invariant); the rotation is
    found as the circular shift maximizing the correlation of the polar
    resamplings, so accuracy is 360/n_angles degrees.
    """
    a = np.abs(centered_fft2(np.asarray(image, dtype=float)))
    b = np.abs(centered_fft2(np.asarray(reference, dtype=float)))
    pa = polar_resample(np.log1p(a), n_angles=n_angles, min_radius=2.0)
    pb = polar_resample(np.log1p(b), n_angles=n_angles, min_radius=2.0)
    pa = pa - pa.mean()
    pb = pb - pb.mean()
    # circular correlation along the angle axis via FFT (RL002: the raw
    # transform lives in fourier/transforms.py)
    corr = circular_cross_correlation(pa, pb, axis=0).sum(axis=1)
    shift = int(np.argmax(corr))
    # sign convention: the returned angle theta satisfies
    # ndimage.rotate(reference, theta) ~ image
    angle = -360.0 * shift / n_angles
    # magnitude spectra have 180-degree ambiguity for real images; report
    # the smaller equivalent angle
    angle = angle % 180.0
    return float(angle if angle <= 90.0 else angle - 180.0)


def _rotate_image(image: Array, angle_deg: float) -> Array:
    return ndimage.rotate(
        np.asarray(image, dtype=float), angle_deg, reshape=False, order=1, mode="constant"
    )


def align_to_reference(
    image: Array, reference: Array, n_angles: int = 180
) -> tuple[Array, float, tuple[float, float]]:
    """Rotation + translation alignment of ``image`` onto ``reference``.

    Returns ``(aligned_image, rotation_deg, (dx, dy))``.  Both the found
    rotation and its 180°-ambiguous partner are tried; the better-correlated
    candidate wins.
    """
    base = polar_rotation_align(image, reference, n_angles=n_angles)
    best = None
    for angle in (base, base + 180.0):
        rotated = _rotate_image(image, -angle)
        dx, dy = cross_correlation_shift(rotated, reference, upsample=4)
        candidate = shift_image(rotated, dx, dy)
        cc = _cc(candidate, reference)
        if best is None or cc > best[0]:
            best = (cc, candidate, angle, (dx, dy))
    _, aligned, angle, shift = best
    return aligned, float(angle), shift


def _cc(a: Array, b: Array) -> float:
    a = a - a.mean()
    b = b - b.mean()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    return float((a * b).sum() / denom) if denom > 0 else 0.0


def iterative_class_average(
    images: Array, n_iterations: int = 3, n_angles: int = 180
) -> tuple[Array, list[float]]:
    """Reference-free class average of same-view images.

    Starts from the plain mean, alternates (align everyone to the current
    average) / (re-average).  Returns ``(average, cc_history)`` where the
    history tracks the mean member-to-average correlation per iteration —
    it must be non-decreasing for a coherent class.
    """
    stack = np.asarray(images, dtype=float)
    if stack.ndim != 3:
        raise ValueError("images must be (m, l, l)")
    if stack.shape[0] < 2:
        raise ValueError("need at least two images")
    average = stack.mean(axis=0)
    history: list[float] = []
    for _ in range(n_iterations):
        aligned = np.empty_like(stack)
        ccs = []
        for i in range(stack.shape[0]):
            aligned[i], _, _ = align_to_reference(stack[i], average, n_angles=n_angles)
            ccs.append(_cc(aligned[i], average))
        average = aligned.mean(axis=0)
        history.append(float(np.mean(ccs)))
    return average, history
