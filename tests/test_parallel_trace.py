"""Tests for simulated-run tracing and Gantt rendering."""

import pytest

from repro.parallel.trace import Span, TraceRecorder, render_gantt


def _sample_trace():
    tr = TraceRecorder()
    tr.record(0, "fft", 0.0, 1.0)
    tr.record(0, "refine", 1.0, 4.0)
    tr.record(1, "fft", 0.0, 1.0)
    tr.record(1, "refine", 1.0, 3.0)
    tr.record(1, "wait", 3.0, 4.0)
    return tr


def test_span_validation():
    with pytest.raises(ValueError):
        Span(0, "x", 2.0, 1.0)
    with pytest.raises(ValueError):
        Span(-1, "x", 0.0, 1.0)
    assert Span(0, "x", 1.0, 2.5).duration == pytest.approx(1.5)


def test_totals_by_step_and_rank():
    tr = _sample_trace()
    by_step = tr.total_by_step()
    assert by_step["fft"] == pytest.approx(2.0)
    assert by_step["refine"] == pytest.approx(5.0)
    by_rank = tr.total_by_rank()
    assert by_rank[0] == pytest.approx(4.0)
    assert by_rank[1] == pytest.approx(4.0)
    assert tr.makespan() == pytest.approx(4.0)


def test_idle_fraction():
    tr = TraceRecorder()
    tr.record(0, "work", 0.0, 4.0)
    tr.record(1, "work", 0.0, 2.0)  # rank 1 idle half the time
    assert tr.idle_fraction() == pytest.approx(0.25)
    assert TraceRecorder().idle_fraction() == 0.0


def test_render_gantt_structure():
    text = render_gantt(_sample_trace(), width=40)
    lines = text.splitlines()
    assert lines[0].startswith("rank  0 |")
    assert lines[1].startswith("rank  1 |")
    assert "legend:" in lines[-1]
    assert "A=fft" in lines[-1]
    # the refine band is longer than the fft band on rank 0
    row0 = lines[0]
    assert row0.count("B") > row0.count("A")


def test_render_gantt_edge_cases():
    assert render_gantt(TraceRecorder()) == "(empty trace)"
    tr = TraceRecorder()
    tr.record(0, "x", 0.0, 0.0)
    assert render_gantt(tr) == "(zero-length trace)"
    with pytest.raises(ValueError):
        render_gantt(_sample_trace(), width=5)


def test_run_spmd_populates_trace():
    from repro.parallel import run_spmd
    from repro.parallel.machine import MachineSpec

    spec = MachineSpec("m", flops=100.0, net_latency=0.0, net_bandwidth=1e9, io_bandwidth=1e9)
    tr = TraceRecorder()

    def worker(comm):
        comm.account_flops(100.0 * (comm.rank + 1), "work")
        comm.barrier()
        return comm.rank

    run_spmd(3, worker, spec, trace=tr)
    by_rank = tr.total_by_rank()
    assert by_rank[0] == pytest.approx(1.0)
    assert by_rank[2] == pytest.approx(3.0)
    text = render_gantt(tr, width=30)
    assert "A=work" in text
