"""Simulated distributed-memory parallel substrate.

The paper ran on a 64-node IBM SP2 (four processors per node, MPI).  That
hardware is simulated here (DESIGN.md §2): an SPMD harness runs one thread
per rank with an MPI-like communicator (:mod:`repro.parallel.comm`) whose
operations *really move the data* — the slab-decomposed parallel 3D FFT is
verified against ``numpy.fft.fftn`` — while a virtual clock charges each
rank compute and communication costs from a machine model
(:mod:`repro.parallel.machine`), so Tables 1 and 2 can be regenerated at
the paper's scale without the paper's hardware.
"""

from repro.parallel.machine import MachineSpec, SP2_LIKE, LAPTOP_LIKE
from repro.parallel.clock import VirtualClock
from repro.parallel.comm import SimComm, run_spmd
from repro.parallel.partition import (
    block_distribution,
    slab_bounds,
    slab_sizes,
)
from repro.parallel.pfft import parallel_fft3d, parallel_fft3d_driver
from repro.parallel.master_io import (
    distribute_orientations,
    distribute_views,
    distribute_volume_slabs,
    gather_orientations,
)
from repro.parallel.prefine import ParallelRefinementReport, parallel_refine
from repro.parallel.viewsched import (
    SharedVolume,
    ViewLevelResult,
    ViewScheduler,
    chunk_indices,
    refine_level_serial,
)
from repro.parallel.perf_model import (
    PaperWorkload,
    PerformanceModel,
    REO_WORKLOAD,
    SINDBIS_WORKLOAD,
)
from repro.parallel.bricks import (
    BrickAccessStats,
    BrickStore,
    compare_replication_vs_bricks,
)
from repro.parallel.schedule import (
    imbalance_factor,
    lpt_makespan,
    lpt_schedule,
    static_block_makespan,
    work_stealing_makespan,
)
from repro.parallel.trace import Span, TraceRecorder, render_gantt

__all__ = [
    "MachineSpec",
    "SP2_LIKE",
    "LAPTOP_LIKE",
    "VirtualClock",
    "SimComm",
    "run_spmd",
    "slab_bounds",
    "slab_sizes",
    "block_distribution",
    "parallel_fft3d",
    "parallel_fft3d_driver",
    "distribute_volume_slabs",
    "distribute_views",
    "distribute_orientations",
    "gather_orientations",
    "parallel_refine",
    "ParallelRefinementReport",
    "ViewScheduler",
    "ViewLevelResult",
    "SharedVolume",
    "refine_level_serial",
    "chunk_indices",
    "PerformanceModel",
    "PaperWorkload",
    "SINDBIS_WORKLOAD",
    "REO_WORKLOAD",
    "BrickStore",
    "BrickAccessStats",
    "compare_replication_vs_bricks",
    "static_block_makespan",
    "lpt_schedule",
    "lpt_makespan",
    "work_stealing_makespan",
    "imbalance_factor",
    "Span",
    "TraceRecorder",
    "render_gantt",
]
