"""Per-view orientation memo for the batched matching engine.

The sliding-window search (paper steps f–i) re-centers its 9×9×9 window
on the current best orientation, so consecutive windows overlap by
construction; level handoffs additionally re-score the coarse winner at
the next level's center.  Both produce candidate orientations that were
*already matched* against the same Fourier volume — the memo makes those
repeats free.

Keys are the **exact float tuple** ``(theta, phi, omega, cx, cy)``.  The
window grids are built from level-quantized angular steps, so candidates
shared between re-centered windows land on bit-equal floats and hit the
cache; conversely, an orientation that differs by even one ulp would
produce a (minutely) different distance, and returning the cached value
for it could flip an argmin.  Exact keys are therefore what keeps the
memoized search *bit-identical* to the memo-disabled one — quantization
lives in the search grid itself, not in the lookup (see DESIGN.md §9).

The memo is bounded (insertion-order eviction — eviction can only lower
the hit rate, never change a returned value), per-view (cached distances
depend on the view band, so :class:`MemoStore` keys memos by view index),
and exports/imports plain float arrays so it can travel through worker
pickles and the checkpoint format without precision loss.

The continuous least-squares polish (:mod:`repro.refine.polish`) shares
the same store: its keys are the *continuous* off-grid tuples the LM
iterations visit, cached under identical semantics — the distance of the
candidate ``(θ, φ, ω)`` against the view shifted by ``(cx, cy)``.  Polish
keys almost never collide with grid keys (or each other across views),
but when they do — e.g. the polish re-evaluating its grid-point start —
the cached value is the exact same number the matcher stored.
"""

from __future__ import annotations

import numpy as np

from repro.arraytypes import BoolArray, FloatArray
from repro.geometry.euler import Orientation

__all__ = ["MemoStore", "OrientationMemo", "memo_key"]

#: Default per-view capacity.  A full window scan is 9^3 = 729 candidates
#: and a level rarely slides more than ~10 windows, so 8192 entries keep
#: every orientation a level can revisit while bounding worst-case memory
#: (8192 * (5 + 1) floats ≈ 0.4 MB per view).
DEFAULT_CAPACITY = 8192

MemoKey = tuple[float, float, float, float, float]


def memo_key(orientation: Orientation, center: tuple[float, float]) -> MemoKey:
    """Exact-float memo key for one candidate at one view center shift."""
    return (
        orientation.theta,
        orientation.phi,
        orientation.omega,
        float(center[0]),
        float(center[1]),
    )


class OrientationMemo:
    """Bounded exact-key cache mapping (Euler triple, center shift) -> distance.

    Backed by a plain insertion-ordered dict: Python dicts preserve
    insertion order, so eviction pops the oldest entry — a FIFO policy
    that is deterministic and cheap, and whose only possible effect on a
    run is a missed hit (values are immutable once stored).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"memo capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: dict[MemoKey, float] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: MemoKey) -> float | None:
        return self._entries.get(key)

    def put(self, key: MemoKey, distance: float) -> None:
        entries = self._entries
        if key in entries:
            return
        if len(entries) >= self.capacity:
            # FIFO eviction: drop the oldest insertions to make room.
            drop = len(entries) - self.capacity + 1
            for old in list(entries)[:drop]:
                del entries[old]
        entries[key] = distance

    # -- bulk window interface (used by match_view_window) ------------------
    def lookup_block(self, keys: list[MemoKey]) -> tuple[FloatArray, BoolArray]:
        """Look up a window's worth of keys at once.

        Returns ``(values, hit_mask)`` where ``values[i]`` is meaningful
        only where ``hit_mask[i]`` is True.
        """
        n = len(keys)
        values = np.zeros(n, dtype=np.float64)
        hits = np.zeros(n, dtype=bool)
        entries = self._entries
        for i, key in enumerate(keys):
            dist = entries.get(key)
            if dist is not None:
                values[i] = dist
                hits[i] = True
        return values, hits

    def store_block(self, keys: list[MemoKey], values: FloatArray) -> None:
        for key, value in zip(keys, values):
            self.put(key, float(value))

    # -- serialization (worker pickles + checkpoint) ------------------------
    def export_arrays(self) -> tuple[FloatArray, FloatArray]:
        """Dump as ``((n, 5) keys, (n,) values)`` float64 arrays.

        Array export is lossless (keys are already float64) and far
        cheaper to pickle than a large dict of tuples.
        """
        n = len(self._entries)
        keys = np.empty((n, 5), dtype=np.float64)
        values = np.empty(n, dtype=np.float64)
        for i, (key, value) in enumerate(self._entries.items()):
            keys[i] = key
            values[i] = value
        return keys, values

    def import_arrays(self, keys: FloatArray, values: FloatArray) -> None:
        """Absorb exported arrays (insertion order = array order)."""
        for row, value in zip(np.asarray(keys, dtype=np.float64), values):
            self.put((row[0], row[1], row[2], row[3], row[4]), float(value))


class MemoStore:
    """Per-run collection of per-view :class:`OrientationMemo` caches.

    Cached distances depend on everything that is fixed for one
    ``refine()`` call — the Fourier volume, the distance computer, the CTF
    band modulation — *and* on the view band, so memos are keyed by view
    index and never shared across views.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = int(capacity)
        self._memos: dict[int, OrientationMemo] = {}

    def __len__(self) -> int:
        return len(self._memos)

    def for_view(self, view_index: int) -> OrientationMemo:
        memo = self._memos.get(view_index)
        if memo is None:
            memo = OrientationMemo(self.capacity)
            self._memos[view_index] = memo
        return memo

    def view_indices(self) -> list[int]:
        return sorted(self._memos)

    # -- serialization ------------------------------------------------------
    def export_state(self) -> dict[int, tuple[FloatArray, FloatArray]]:
        """Pickle/checkpoint-friendly snapshot: view index -> key/value arrays."""
        return {
            index: memo.export_arrays()
            for index, memo in self._memos.items()
            if len(memo) > 0
        }

    def import_state(self, state: dict[int, tuple[FloatArray, FloatArray]]) -> None:
        for index, (keys, values) in state.items():
            self.for_view(int(index)).import_arrays(keys, values)

    def subset_state(
        self, view_indices: list[int]
    ) -> dict[int, tuple[FloatArray, FloatArray]]:
        """Export only the named views (what a worker chunk needs)."""
        out: dict[int, tuple[FloatArray, FloatArray]] = {}
        for index in view_indices:
            memo = self._memos.get(index)
            if memo is not None and len(memo) > 0:
                out[index] = memo.export_arrays()
        return out
