"""RL009 — no bare ``except:`` in the recovery-critical packages.

The fault-tolerance layer (``parallel/``, ``faults/``) works because every
failure is *classified*: a poisoned result retries, a lost worker restarts
the pool, a timeout re-queues, and anything unrecognized must propagate to
the serial fallback or the caller.  A bare ``except:`` flattens that
taxonomy — it also swallows ``KeyboardInterrupt`` and ``SystemExit``, so a
run that should die cleanly (and unlink its shared-memory segment on the
way out) hangs or leaks instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import Finding, ModuleUnderLint
from repro.analysis.rules._base import Rule

__all__ = ["NoBareExcept"]


class NoBareExcept(Rule):
    rule_id = "RL009"
    name = "no-bare-except"
    rationale = (
        "Recovery code in repro/parallel/ and repro/faults/ must classify "
        "every failure (retry, restart, re-queue, propagate); a bare "
        "`except:` also traps KeyboardInterrupt/SystemExit and turns a "
        "clean abort into a hang or a leaked shm segment."
    )
    include = ("repro/parallel/", "repro/faults/")

    def check(self, mod: ModuleUnderLint) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    mod,
                    node,
                    "bare `except:` in recovery-critical code; catch the "
                    "specific failure class (or `Exception` with a re-raise "
                    "path) so aborts still unwind",
                )
