"""Orientation search grids (the window of candidate cuts, step f).

A search window at angular resolution ``r_angular`` spans
``w = w_θ · w_φ · w_ω`` candidate orientations centered on the view's
current orientation.  :class:`OrientationGrid` keeps the 3D index structure
so the sliding-window logic can ask "was the minimum on a face of the
window?" per angle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arraytypes import Array
from repro.geometry.euler import Orientation, euler_to_matrix

__all__ = ["OrientationGrid", "orientation_window", "step_offsets"]

# The symmetric offset vectors (-h..h)·step are rebuilt for every window of
# every slide of every view; they depend only on (h, step), so cache them
# read-only.  Shared with the center box search (refine.center_refine).
_OFFSETS_CACHE: dict[tuple[int, float], Array] = {}


def step_offsets(half_steps: int, step: float) -> Array:
    """Cached read-only offsets ``(-h, …, h)·step`` around a window center."""
    key = (int(half_steps), float(step))
    cached = _OFFSETS_CACHE.get(key)
    if cached is None:
        cached = np.arange(-key[0], key[0] + 1) * key[1]
        cached.setflags(write=False)
        # repro-lint: allow[RL013] pure memo of a deterministic function of
        # the key; every process recomputes identical read-only values, so
        # parent/worker divergence is impossible.
        _OFFSETS_CACHE[key] = cached
    return cached


@dataclass(frozen=True)
class OrientationGrid:
    """A separable (θ, φ, ω) grid of candidate orientations.

    Attributes
    ----------
    thetas, phis, omegas:
        The 1D angle arrays (degrees).
    center:
        The orientation the window was built around (pass-through of its
        center offsets to all candidates).
    """

    thetas: Array
    phis: Array
    omegas: Array
    center: Orientation

    @property
    def shape(self) -> tuple[int, int, int]:
        return (len(self.thetas), len(self.phis), len(self.omegas))

    @property
    def size(self) -> int:
        """Total candidate count ``w`` (the paper's matching operations per window)."""
        s = self.shape
        return s[0] * s[1] * s[2]

    def rotation_stack(self) -> Array:
        """All candidate rotation matrices, shape ``(w, 3, 3)``.

        Ordering is C-order over (θ, φ, ω), matching :meth:`unravel`.
        """
        tt, pp, oo = np.meshgrid(self.thetas, self.phis, self.omegas, indexing="ij")
        return euler_to_matrix(tt.ravel(), pp.ravel(), oo.ravel())

    def unravel(self, flat_index: int) -> tuple[int, int, int]:
        """3D grid index of a flat candidate index."""
        return tuple(int(v) for v in np.unravel_index(flat_index, self.shape))  # type: ignore[return-value]

    def orientation_at(self, flat_index: int) -> Orientation:
        """The candidate orientation for a flat index (keeps center offsets)."""
        i, j, k = self.unravel(flat_index)
        return Orientation(
            float(self.thetas[i]),
            float(self.phis[j]),
            float(self.omegas[k]),
            self.center.cx,
            self.center.cy,
        )

    def on_edge(self, flat_index: int) -> tuple[bool, bool, bool]:
        """Whether the candidate sits on the window boundary, per angle.

        An axis with a single sample is never "on edge" (there is nowhere to
        slide along it).
        """
        i, j, k = self.unravel(flat_index)
        nt, np_, no = self.shape
        return (
            nt > 1 and (i == 0 or i == nt - 1),
            np_ > 1 and (j == 0 or j == np_ - 1),
            no > 1 and (k == 0 or k == no - 1),
        )


def orientation_window(
    center: Orientation,
    step_deg: float,
    half_steps: int | tuple[int, int, int] = 4,
) -> OrientationGrid:
    """Build the window of candidates around ``center`` (step f).

    ``half_steps`` is the number of grid steps on each side of the center
    (scalar or per-angle); the per-angle width is ``2·half_steps + 1``, so
    the paper's "typical w_θ = w_φ = w_ω = 10" window corresponds to
    ``half_steps≈4..5``.  The grid is centered exactly on the current
    estimate so a converged view re-finds itself at distance 0.
    """
    if step_deg <= 0:
        raise ValueError("step_deg must be positive")
    if isinstance(half_steps, int):
        hs = (half_steps, half_steps, half_steps)
    else:
        hs = tuple(int(h) for h in half_steps)  # type: ignore[assignment]
    if any(h < 0 for h in hs):
        raise ValueError("half_steps must be non-negative")
    offsets = [step_offsets(h, step_deg) for h in hs]
    return OrientationGrid(
        thetas=center.theta + offsets[0],
        phis=center.phi + offsets[1],
        omegas=center.omega + offsets[2],
        center=center,
    )
