"""RL002 — the centered-FFT convention lives in exactly one module.

Every kernel interpolates against the centered grid convention defined in
:mod:`repro.fourier.transforms` (DC at ``l // 2``); a raw ``np.fft.*``
call anywhere else can silently disagree about shifting and put every
Fourier sample half a grid off — the classic plausible-but-wrong failure
mode.  All FFTs, shifts and FFT-based correlations must go through the
wrappers in ``fourier/transforms.py``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import Finding, ModuleUnderLint
from repro.analysis.rules._base import Rule, attribute_chain

__all__ = ["CenteredFFTOnly"]


class CenteredFFTOnly(Rule):
    rule_id = "RL002"
    name = "centered-fft-only"
    rationale = (
        "Raw np.fft.* calls outside fourier/transforms.py can disagree with "
        "the centered-DFT convention (DC at l // 2) that slicing and "
        "insertion interpolate against; one missed fftshift shifts every "
        "sample by half the box."
    )
    exclude = ("repro/fourier/transforms.py",)

    def check(self, mod: ModuleUnderLint) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Attribute):
                continue
            chain = attribute_chain(node)
            if chain and len(chain) >= 3 and chain[0] in ("np", "numpy") and chain[1] == "fft":
                yield self.finding(mod,
                    node,
                    f"raw `{'.'.join(chain)}` outside fourier/transforms.py; use the "
                    "centered wrappers (centered_fftn/centered_fft2/...) so the grid "
                    "convention stays in one place",
                )
