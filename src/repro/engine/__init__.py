"""The configured refinement engine: one typed config, pluggable backends.

This package is the single source of truth for *how a refinement run is
configured*.  Layer map (see DESIGN.md §10)::

    config files / CLI flags / env
            │  resolve_config (provenance per field)
            ▼
       EngineConfig (frozen, validated once, fingerprinted)
            │  make_backend
            ▼
    SerialBackend │ ProcessBackend │ SimBackend   (bit-identical)
            │  run_level / run_refinement
            ▼
       matching kernels (batched / fused / reference)

:mod:`repro.engine.env` must be imported before the sibling modules: it
is stdlib-only and is imported *by* the kernel packages at their import
time, while the rest of the engine imports those packages lazily.
"""

from __future__ import annotations

from repro.engine.env import (
    CONTRACTS_ENV,
    GATHER_CHUNK_ENV,
    contracts_enabled,
    environment_overrides,
    gather_chunk_override,
    gather_chunk_samples,
    temporary_env,
)
from repro.engine.config import (
    CheckpointConfig,
    ConfigError,
    EngineConfig,
    FaultConfig,
    IterationConfig,
    KernelConfig,
    MemoConfig,
    ParallelConfig,
    ScheduleConfig,
    load_config,
)
from repro.engine.resolve import ResolvedConfig, describe_environment, resolve_config
from repro.engine.backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    SimBackend,
    make_backend,
)
from repro.engine.core import EngineRunResult, RefinementEngine
from repro.engine.gate import run_config_gate, validate_example_configs

__all__ = [
    "CONTRACTS_ENV",
    "CheckpointConfig",
    "ConfigError",
    "EngineConfig",
    "EngineRunResult",
    "ExecutionBackend",
    "FaultConfig",
    "GATHER_CHUNK_ENV",
    "IterationConfig",
    "KernelConfig",
    "MemoConfig",
    "ParallelConfig",
    "ProcessBackend",
    "RefinementEngine",
    "ResolvedConfig",
    "ScheduleConfig",
    "SerialBackend",
    "SimBackend",
    "contracts_enabled",
    "describe_environment",
    "environment_overrides",
    "gather_chunk_override",
    "gather_chunk_samples",
    "load_config",
    "make_backend",
    "resolve_config",
    "run_config_gate",
    "temporary_env",
    "validate_example_configs",
]
