"""Tests for refinement statistics and error metrics."""

import numpy as np
import pytest

from repro.geometry import Orientation, icosahedral_group
from repro.refine import RefinementStats, angular_errors, center_errors


def test_stats_accumulation():
    st = RefinementStats(n_views=10)
    st.record_level(1.0, 1000, 90, 3, 1)
    st.record_level(0.1, 2000, 90, 5, 0)
    assert st.total_matches == 3000
    assert st.total_center_evals == 180
    assert st.level_steps_deg == [1.0, 0.1]
    assert st.window_slides_per_level == [3, 5]


def test_angular_errors_zero_for_identical():
    orients = [Orientation(10, 20, 30), Orientation(40, 50, 60)]
    errs = angular_errors(orients, orients)
    assert np.allclose(errs, 0.0, atol=1e-6)


def test_angular_errors_known_rotation():
    a = [Orientation(10, 20, 30)]
    b = [Orientation(10, 20, 75)]
    assert angular_errors(a, b)[0] == pytest.approx(45.0, abs=1e-6)


def test_angular_errors_modulo_symmetry():
    group = icosahedral_group()
    truth = Orientation(50, 60, 70)
    # apply a group rotation: without symmetry the error is large, with it ~0
    g = group.matrices[7]
    equivalent = Orientation.from_matrix(g @ truth.matrix())
    raw = angular_errors([equivalent], [truth])[0]
    sym = angular_errors([equivalent], [truth], symmetry=group)[0]
    assert raw > 10.0
    assert sym == pytest.approx(0.0, abs=1e-5)


def test_length_mismatch():
    with pytest.raises(ValueError):
        angular_errors([Orientation(1, 2, 3)], [])
    with pytest.raises(ValueError):
        center_errors([Orientation(1, 2, 3)], [])


def test_center_errors():
    a = [Orientation(0, 0, 0, 1.0, 2.0)]
    b = [Orientation(0, 0, 0, 4.0, 6.0)]
    assert center_errors(a, b)[0] == pytest.approx(5.0)
