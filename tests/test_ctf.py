"""Tests for the CTF model and corrections."""

import numpy as np
import pytest

from repro.ctf import CTFParams, apply_ctf, ctf_1d, ctf_2d, phase_flip, wiener_correct
from repro.ctf.model import electron_wavelength


def test_electron_wavelength_known_values():
    # 300 kV ~ 0.0197 A; 200 kV ~ 0.0251 A; 100 kV ~ 0.037 A
    assert electron_wavelength(300.0) == pytest.approx(0.0197, abs=5e-4)
    assert electron_wavelength(200.0) == pytest.approx(0.0251, abs=5e-4)
    with pytest.raises(ValueError):
        electron_wavelength(0.0)


def test_ctf_params_validation():
    with pytest.raises(ValueError):
        CTFParams(defocus_angstrom=-1.0)
    with pytest.raises(ValueError):
        CTFParams(amplitude_contrast=1.5)
    with pytest.raises(ValueError):
        CTFParams(voltage_kv=-300)
    with pytest.raises(ValueError):
        CTFParams(bfactor=-10)


def test_ctf_at_zero_frequency_is_amplitude_term():
    p = CTFParams(amplitude_contrast=0.1)
    assert ctf_1d(p, np.array([0.0]))[0] == pytest.approx(-0.1)


def test_ctf_oscillates_and_flips_sign():
    p = CTFParams(defocus_angstrom=20000.0, amplitude_contrast=0.07)
    s = np.linspace(0.0, 0.2, 2000)
    c = ctf_1d(p, s)
    signs = np.sign(c)
    flips = np.sum(signs[1:] * signs[:-1] < 0)
    assert flips >= 3  # several zero crossings within the band


def test_higher_defocus_means_earlier_first_zero():
    s = np.linspace(1e-4, 0.1, 5000)
    def first_zero(df):
        c = ctf_1d(CTFParams(defocus_angstrom=df), s)
        idx = np.where(np.sign(c[1:]) != np.sign(c[:-1]))[0]
        return s[idx[0]]
    assert first_zero(30000.0) < first_zero(10000.0)


def test_envelope_attenuates_high_frequencies():
    s = np.array([0.05, 0.25])
    plain = np.abs(ctf_1d(CTFParams(bfactor=0.0), s))
    damped = np.abs(ctf_1d(CTFParams(bfactor=200.0), s))
    assert damped[1] < plain[1]
    assert damped[0] / plain[0] > damped[1] / plain[1]


def test_ctf_2d_is_radial():
    c = ctf_2d(CTFParams(), 32, apix=2.0)
    assert c.shape == (32, 32)
    center = 16
    assert c[center, center + 5] == pytest.approx(c[center + 5, center])
    assert c[center, center + 5] == pytest.approx(c[center, center - 5])


def test_ctf_2d_validation():
    with pytest.raises(ValueError):
        ctf_2d(CTFParams(), 0, 1.0)
    with pytest.raises(ValueError):
        ctf_2d(CTFParams(), 16, -1.0)


def test_apply_then_phase_flip_restores_phases(phantom16):
    from repro.fourier import centered_fft2

    img = phantom16.data.sum(axis=0)
    ft = centered_fft2(img)
    p = CTFParams(defocus_angstrom=25000.0, bfactor=0.0)
    damaged = apply_ctf(ft, p, apix=2.0)
    fixed = phase_flip(damaged, p, apix=2.0)
    # after flipping, every sample is a non-negative multiple of the truth
    ratio = fixed / np.where(np.abs(ft) < 1e-12, 1.0, ft)
    mask = np.abs(ft) > 1e-6 * np.abs(ft).max()
    assert np.abs(ratio[mask].imag).max() < 1e-8
    assert ratio[mask].real.min() >= -1e-8


def test_phase_flip_is_involution_free_magnitude(phantom16):
    from repro.fourier import centered_fft2

    img = phantom16.data.sum(axis=0)
    ft = centered_fft2(img)
    p = CTFParams()
    flipped = phase_flip(ft, p, apix=2.0)
    assert np.allclose(np.abs(flipped), np.abs(ft))


def test_wiener_correct_boosts_toward_truth(phantom16):
    from repro.fourier import centered_fft2

    img = phantom16.data.sum(axis=0)
    ft = centered_fft2(img)
    p = CTFParams(defocus_angstrom=15000.0)
    damaged = apply_ctf(ft, p, apix=2.0)
    restored = wiener_correct(damaged, p, apix=2.0, snr=100.0)
    mask = np.abs(ctf_2d(p, 16, 2.0)) > 0.5
    err_damaged = np.abs(damaged - ft)[mask].mean()
    err_restored = np.abs(restored - ft)[mask].mean()
    assert err_restored < err_damaged


def test_wiener_rejects_bad_snr(phantom16):
    from repro.fourier import centered_fft2

    ft = centered_fft2(phantom16.data.sum(axis=0))
    with pytest.raises(ValueError):
        wiener_correct(ft, CTFParams(), apix=2.0, snr=0.0)


def test_defocus_group_params_round_robin():
    from repro.ctf import defocus_group_params

    params = defocus_group_params((9000.0, 15000.0), 5)
    assert [p.defocus_angstrom for p in params] == [
        9000.0, 15000.0, 9000.0, 15000.0, 9000.0,
    ]
    # views of the same group share one CTFParams object (one micrograph)
    assert params[0] is params[2] is params[4]
    assert params[1] is params[3]


def test_defocus_group_params_forwards_kwargs_and_validates():
    from repro.ctf import defocus_group_params

    params = defocus_group_params([12000.0], 2, voltage_kv=200.0, bfactor=50.0)
    assert params[0].voltage_kv == 200.0
    assert params[0].bfactor == 50.0
    with pytest.raises(ValueError):
        defocus_group_params((), 3)
    with pytest.raises(ValueError):
        defocus_group_params((9000.0,), 0)
