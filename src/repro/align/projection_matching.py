"""Classic projection matching — the "old method" comparison baseline.

Programs like the one in the paper's reference [17] exploit known
icosahedral symmetry: they compute a library of projections of the current
map at orientations covering one asymmetric unit (~51 directions at 3°,
Figure 1b), then assign each experimental view the library orientation with
the best match.  This is embarrassingly parallel but (a) requires the
symmetry to be known, and (b) its accuracy is capped by the library's
angular spacing.  We implement it as the comparator whose refined maps form
the "old" curves of Figures 2/3/5/6.

To keep the comparison about *strategy* rather than metric, library
matching uses the same Fourier-space distance as the new method.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.distance import DistanceComputer
from repro.arraytypes import Array
from repro.density.map import DensityMap
from repro.fourier.slicing import extract_slices
from repro.geometry.euler import Orientation, euler_to_matrix
from repro.geometry.sphere import icosahedral_asymmetric_unit_views, view_directions_grid
from repro.geometry.symmetry import SymmetryGroup

__all__ = [
    "ProjectionLibrary",
    "build_projection_library",
    "match_against_library",
    "refine_icosahedral",
]


@dataclass
class ProjectionLibrary:
    """A bank of calculated cuts at fixed library orientations.

    Attributes
    ----------
    orientations:
        One :class:`Orientation` per library entry.
    cuts:
        Complex stack ``(n, l, l)`` of the central cuts at those
        orientations.
    angular_resolution_deg:
        The library spacing — also the accuracy ceiling of this method.
    """

    orientations: list[Orientation]
    cuts: Array
    angular_resolution_deg: float

    def __len__(self) -> int:
        return len(self.orientations)


def build_projection_library(
    density: DensityMap,
    angular_resolution_deg: float,
    symmetry: str = "icosahedral",
    omega_step_deg: float | None = None,
    pad_factor: int = 2,
) -> ProjectionLibrary:
    """Build the library of calculated views (the "old method" step).

    ``symmetry="icosahedral"`` restricts directions to the asymmetric unit
    (the small search domain of Figure 1a/b); ``symmetry="none"`` covers the
    full sphere — included to demonstrate how the library explodes without
    symmetry (benchmark E3).
    """
    if symmetry == "icosahedral":
        directions = icosahedral_asymmetric_unit_views(angular_resolution_deg)
    elif symmetry == "none":
        directions = view_directions_grid(angular_resolution_deg)
    else:
        raise ValueError(f"unknown symmetry {symmetry!r} (use 'icosahedral' or 'none')")
    omega_step = angular_resolution_deg if omega_step_deg is None else omega_step_deg
    omegas = np.arange(0.0, 360.0, omega_step)
    orientations = [
        Orientation(theta, phi, float(om)) for theta, phi in directions for om in omegas
    ]
    rotations = np.stack([o.matrix() for o in orientations])
    cuts = extract_slices(
        density.fourier_oversampled(pad_factor), rotations, out_size=density.size
    )
    return ProjectionLibrary(orientations, cuts, angular_resolution_deg)


def match_against_library(
    view_ft: Array,
    library: ProjectionLibrary,
    distance_computer: DistanceComputer | None = None,
    r_max: float | None = None,
) -> tuple[Orientation, float]:
    """Best library orientation for one view transform."""
    size = view_ft.shape[0]
    dc = distance_computer or DistanceComputer(size, r_max=r_max)
    d = dc.distance_batch(view_ft, library.cuts)
    i = int(np.argmin(d))
    return library.orientations[i], float(d[i])


def refine_icosahedral(
    views_ft: Array,
    density: DensityMap,
    angular_resolution_deg: float,
    r_max: float | None = None,
) -> tuple[list[Orientation], Array]:
    """Assign every view its best icosahedral-library orientation.

    Returns ``(orientations, distances)``.  This is one iteration of the
    traditional algorithm; its per-view cost is ``len(library)`` matching
    operations, independent of any initial estimate.
    """
    library = build_projection_library(density, angular_resolution_deg, symmetry="icosahedral")
    dc = DistanceComputer(views_ft.shape[1], r_max=r_max)
    orientations: list[Orientation] = []
    distances = np.empty(views_ft.shape[0])
    for i in range(views_ft.shape[0]):
        o, d = match_against_library(views_ft[i], library, distance_computer=dc)
        orientations.append(o)
        distances[i] = d
    return orientations, distances
