"""End-to-end view simulation: the synthetic replacement for micrograph data.

:func:`simulate_views` plays the role of the experimental dataset in the
paper's evaluation: a set of 2D views of a known ground-truth map at known
(to us, not to the algorithm) orientations, with optional CTF, noise and
boxing (center) errors.  The returned :class:`SimulatedViews` carries the
ground truth alongside so that experiments can report angular and center
accuracy in addition to the paper's correlation curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ctf.correct import apply_ctf
from repro.ctf.model import CTFParams
from repro.density.map import DensityMap
from repro.fourier.transforms import centered_fft2, centered_ifft2
from repro.geometry.euler import Orientation, random_orientations
from repro.imaging.center import phase_shift_ft
from repro.imaging.noise import add_noise
from repro.imaging.project import project_map
from repro.utils import default_rng

__all__ = ["SimulatedViews", "simulate_views"]


@dataclass
class SimulatedViews:
    """A simulated single-particle dataset.

    Attributes
    ----------
    images:
        Stack of views, shape ``(m, l, l)``.
    true_orientations:
        Ground-truth orientations (with the true center offsets).
    initial_orientations:
        Perturbed orientations handed to the refinement as ``O_init``.
    ctf_params:
        One :class:`CTFParams` per view (views from the same simulated
        micrograph share an object), or ``None`` when no CTF was applied.
    apix:
        Pixel size in Å.
    ground_truth:
        The map the views were projected from.
    """

    images: np.ndarray
    true_orientations: list[Orientation]
    initial_orientations: list[Orientation]
    ctf_params: list[CTFParams] | None
    apix: float
    ground_truth: DensityMap | None = None
    snr: float = field(default=float("inf"))

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def size(self) -> int:
        return int(self.images.shape[1])

    def subset(self, indices: np.ndarray | list[int]) -> "SimulatedViews":
        idx = list(indices)
        return SimulatedViews(
            images=self.images[idx],
            true_orientations=[self.true_orientations[i] for i in idx],
            initial_orientations=[self.initial_orientations[i] for i in idx],
            ctf_params=None if self.ctf_params is None else [self.ctf_params[i] for i in idx],
            apix=self.apix,
            ground_truth=self.ground_truth,
            snr=self.snr,
        )


def _perturb(
    orientation: Orientation,
    angle_sigma_deg: float,
    center_sigma_px: float,
    rng: np.random.Generator,
) -> Orientation:
    """Jitter an orientation to create the 'initial' estimate O_init."""
    return Orientation(
        theta=orientation.theta + rng.normal(0.0, angle_sigma_deg),
        phi=orientation.phi + rng.normal(0.0, angle_sigma_deg),
        omega=orientation.omega + rng.normal(0.0, angle_sigma_deg),
        cx=0.0,
        cy=0.0,
    )


def simulate_views(
    density: DensityMap,
    n_views: int,
    snr: float = float("inf"),
    ctf: CTFParams | list[CTFParams] | None = None,
    center_sigma_px: float = 0.0,
    initial_angle_error_deg: float = 0.0,
    orientations: list[Orientation] | None = None,
    seed: int | np.random.Generator | None = 0,
    projection_method: str = "real",
    exact_snr: bool = False,
) -> SimulatedViews:
    """Generate ``n_views`` noisy views of ``density``.

    Parameters
    ----------
    density:
        Ground-truth map.
    n_views:
        Number of views (ignored if explicit ``orientations`` are given).
    snr:
        Signal-to-noise ratio of the additive Gaussian noise (inf = clean).
    ctf:
        A single :class:`CTFParams` shared by all views (one micrograph), a
        list of per-view parameters, or ``None``.
    center_sigma_px:
        Std-dev of the random boxing error applied to each view's center.
    initial_angle_error_deg:
        Std-dev of the angular jitter used to build ``initial_orientations``
        from the truth (the refinement's starting point).
    orientations:
        Optional explicit ground-truth orientations.
    projection_method:
        ``"real"`` (default, independent of the Fourier machinery under
        test) or ``"fourier"``.
    exact_snr:
        Rescale each view's noise field so the realized per-view SNR
        equals ``snr`` exactly rather than only in expectation (the
        scenario matrix uses this to make SNR a controlled variable).
    """
    rng = default_rng(seed)
    if orientations is None:
        orientations = random_orientations(n_views, seed=rng)
    m = len(orientations)
    l = density.size
    if isinstance(ctf, CTFParams):
        ctf_list: list[CTFParams] | None = [ctf] * m
    else:
        ctf_list = ctf
    if ctf_list is not None and len(ctf_list) != m:
        raise ValueError("need one CTFParams per view")

    images = np.empty((m, l, l))
    true_orients: list[Orientation] = []
    for i, orient in enumerate(orientations):
        img = project_map(density, orient, method=projection_method)
        cx = float(rng.normal(0.0, center_sigma_px)) if center_sigma_px > 0 else 0.0
        cy = float(rng.normal(0.0, center_sigma_px)) if center_sigma_px > 0 else 0.0
        ft = centered_fft2(img)
        if cx != 0.0 or cy != 0.0:
            ft = phase_shift_ft(ft, cx, cy)
        if ctf_list is not None:
            ft = apply_ctf(ft, ctf_list[i], density.apix)
        img = centered_ifft2(ft).real
        if np.isfinite(snr):
            img = add_noise(img, snr, seed=rng, exact=exact_snr)
        images[i] = img
        true_orients.append(orient.with_center(cx, cy))

    initial = [
        _perturb(o, initial_angle_error_deg, center_sigma_px, rng) if initial_angle_error_deg > 0 else o.with_center(0.0, 0.0)
        for o in true_orients
    ]
    return SimulatedViews(
        images=images,
        true_orientations=true_orients,
        initial_orientations=initial,
        ctf_params=ctf_list,
        apix=density.apix,
        ground_truth=density,
        snr=snr,
    )
