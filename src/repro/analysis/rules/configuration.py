"""RL011 — all environment reads go through ``repro/engine/``.

The refinement stack is configured by exactly one object
(:class:`repro.engine.config.EngineConfig`); the process environment is
one *input layer* of that object, read in :mod:`repro.engine.env` and
resolved — with provenance — by :mod:`repro.engine.resolve`.  A stray
``os.environ`` / ``os.getenv`` read anywhere else re-opens the back
channel this architecture closed: a knob that changes behaviour without
appearing in the config fingerprint, the dry-run report, or the
checkpoint header.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import Finding, ModuleUnderLint
from repro.analysis.rules._base import Rule, attribute_chain

__all__ = ["ConfigReadsCentralized"]

#: ``os``-module entry points that read (or write) the environment.
_ENV_ATTRS = frozenset({"environ", "environb", "getenv", "putenv", "unsetenv"})


class ConfigReadsCentralized(Rule):
    rule_id = "RL011"
    name = "config-reads-centralized"
    rationale = (
        "Runtime configuration flows through repro.engine (EngineConfig + "
        "resolve_config); an os.environ/os.getenv read elsewhere is a "
        "hidden knob that bypasses validation, provenance, and the config "
        "fingerprint recorded in checkpoints and benchmarks."
    )
    include = ("repro/",)
    exclude = ("repro/engine/",)

    def check(self, mod: ModuleUnderLint) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Attribute):
                chain = attribute_chain(node)
                # matches os.environ[...], os.environ.get(...), os.getenv(...)
                if chain and chain[0] == "os" and chain[1] in _ENV_ATTRS:
                    yield self.finding(
                        mod,
                        node,
                        f"`{'.'.join(chain[:2])}` read outside repro/engine/; "
                        "route the knob through EngineConfig (repro.engine."
                        "env is the only module that touches the environment)",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "os" and any(
                    alias.name in _ENV_ATTRS for alias in node.names
                ):
                    yield self.finding(
                        mod,
                        node,
                        "importing environment accessors from `os` outside "
                        "repro/engine/; route the knob through EngineConfig",
                    )
