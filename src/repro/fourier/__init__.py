"""Fourier-space substrate: centered FFTs, central slices, insertion, shells.

All transforms use the *centered* convention
``F = fftshift(fftn(ifftshift(d)))`` so the zero-frequency sample sits at
index ``l // 2`` along every axis and a slice/plane through the origin is a
plane through the array center.  This matches the geometry of the paper's
"2D cuts of D̂" and keeps interpolation code free of wrap-around logic.
"""

from repro.fourier.transforms import (
    centered_fft2,
    centered_fftn,
    centered_ifft2,
    centered_ifftn,
    fourier_center,
    frequency_grid_2d,
    frequency_grid_3d,
)
from repro.fourier.slicing import (
    extract_slice,
    extract_slices,
    slice_coordinates,
)
from repro.fourier.insertion import insert_slice, normalize_insertion
from repro.fourier.gridding import (
    KaiserBesselKernel,
    gridding_extract_slice,
    prepare_gridding_volume,
)
from repro.fourier.shells import (
    fsc_curve,
    radial_shell_indices_2d,
    radial_shell_indices_3d,
    ring_correlation,
    shell_average,
    spherical_mask,
)

__all__ = [
    "centered_fftn",
    "centered_ifftn",
    "centered_fft2",
    "centered_ifft2",
    "fourier_center",
    "frequency_grid_2d",
    "frequency_grid_3d",
    "slice_coordinates",
    "extract_slice",
    "extract_slices",
    "insert_slice",
    "normalize_insertion",
    "KaiserBesselKernel",
    "prepare_gridding_volume",
    "gridding_extract_slice",
    "radial_shell_indices_2d",
    "radial_shell_indices_3d",
    "shell_average",
    "fsc_curve",
    "ring_correlation",
    "spherical_mask",
]
