"""The accuracy gate: run the default scenario matrix and persist it.

These tests are the ``scenarios`` tools/check.py stage (DESIGN.md §12).
The full-matrix test *rewrites* ``BENCH_scenarios.json`` at the repo root
— the trajectory artifact CI uploads — and asserts every scenario passes
its thresholds; the degraded-kernel test proves the thresholds have
teeth by breaking the prune bound's safety and watching the clean
scenario fail.
"""

from __future__ import annotations

import math
from dataclasses import replace
from pathlib import Path

import pytest

from repro.pipeline.scenarios import (
    SCENARIO_SCHEMA_VERSION,
    CostModelScenario,
    Scenario,
    ScenarioRunner,
    default_matrix,
    load_bench,
    validate_bench_payload,
    write_bench,
)
from repro.refine import prune as prune_mod

pytestmark = pytest.mark.scenarios

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "BENCH_scenarios.json"

#: The workload classes the acceptance gate requires the matrix to cover.
REQUIRED_SCENARIOS = {
    "clean",
    "low_snr",
    "defocus_groups",
    "icosahedral",
    "ab_initio",
    "loop_clean",
    "paper_scale_sindbis",
    "paper_scale_reo",
}


def test_full_matrix_passes_and_rewrites_bench():
    matrix = default_matrix()
    assert {s.name for s in matrix} >= REQUIRED_SCENARIOS
    assert len(matrix) >= 6

    runner = ScenarioRunner()
    records = runner.run_matrix(matrix)
    payload = write_bench(records, BENCH_PATH)

    assert validate_bench_payload(payload) == []
    assert payload["schema_version"] == SCENARIO_SCHEMA_VERSION
    failed = {r.name: r.failures for r in records if not r.passed}
    assert not failed, f"scenario thresholds tripped: {failed}"

    # the written artifact round-trips through the schema check
    loaded = load_bench(BENCH_PATH)
    assert [r["name"] for r in loaded["scenarios"]] == [r.name for r in records]
    assert loaded["counts"] == {"total": len(records), "passed": len(records), "failed": 0}


def test_matrix_covers_both_record_types():
    matrix = default_matrix()
    kinds = {type(s) for s in matrix}
    assert kinds == {Scenario, CostModelScenario}
    # at least one scenario exercises each axis the gate promises
    by_name = {s.name: s for s in matrix}
    assert math.isinf(by_name["clean"].snr)
    assert by_name["low_snr"].snr < 1.0
    assert by_name["defocus_groups"].defocus_groups
    assert by_name["icosahedral"].symmetry == "I"
    assert by_name["ab_initio"].perturbation.mode == "uniform"


def test_cost_model_records_reproduce_paper_structure():
    runner = ScenarioRunner()
    matrix = {s.name: s for s in default_matrix()}
    sindbis = runner.run(matrix["paper_scale_sindbis"])
    reo = runner.run(matrix["paper_scale_reo"])
    assert sindbis.passed and reo.passed

    # calibration cell reproduced exactly (Table 1 level 0 = 4053 s)
    level0 = sindbis.metrics["levels"][0]
    assert level0["refinement_seconds"] == pytest.approx(4053.0, rel=1e-9)

    # model self-consistency: per-view level-0 matching cost scales with
    # the in-band sample count (the reo band sits near Nyquist)
    from repro.parallel.perf_model import REO_WORKLOAD, SINDBIS_WORKLOAD

    per_view_sindbis = level0["refinement_seconds"] / SINDBIS_WORKLOAD.n_views
    per_view_reo = reo.metrics["levels"][0]["refinement_seconds"] / REO_WORKLOAD.n_views
    band_ratio = REO_WORKLOAD.band_samples / SINDBIS_WORKLOAD.band_samples
    # within the <0.4% discretization of ceil(n_views / n_processors)
    assert per_view_reo / per_view_sindbis == pytest.approx(band_ratio, rel=5e-3)


def test_degraded_kernel_trips_a_threshold(monkeypatch):
    """Break the prune bound's safety margin: at least one scenario fails.

    The healthy bound only ever *loosens* the k-th best partial distance
    (margin >= 0), which keeps pruned search bit-identical to exhaustive.
    Deflating it abandons candidates that could have won; with a seed
    chunk of 1 nothing is exempt, so the search degrades and the clean
    scenario's thresholds must catch it.
    """
    clean = next(s for s in default_matrix() if s.name == "clean")
    tight = replace(
        clean, engine={"prune": {"enabled": True, "seed_chunk": 1, "chunk": 1}}
    )
    runner = ScenarioRunner()

    healthy = runner.run_scenario(tight)
    assert healthy.passed, healthy.failures

    orig = prune_mod.PruneSearch.bound

    def deflated(self):
        b = orig(self)
        return b * 0.05 if math.isfinite(b) else b

    monkeypatch.setattr(prune_mod.PruneSearch, "bound", deflated)
    degraded = runner.run_scenario(tight)
    assert not degraded.passed
    assert any("angular_error" in f for f in degraded.failures)
    assert (
        degraded.metrics["p90_angular_error_deg"]
        > healthy.metrics["p90_angular_error_deg"]
    )


def test_matrix_rejects_duplicate_names():
    clean = next(s for s in default_matrix() if s.name == "clean")
    with pytest.raises(ValueError, match="duplicate"):
        ScenarioRunner().run_matrix((clean, clean))
