"""Tests for orientation search windows."""

import numpy as np
import pytest

from repro.align import orientation_window
from repro.geometry import Orientation


def test_window_centered_on_current_estimate():
    o = Orientation(50.0, 60.0, 70.0)
    g = orientation_window(o, step_deg=1.0, half_steps=2)
    assert g.shape == (5, 5, 5)
    assert g.size == 125
    assert g.thetas[2] == pytest.approx(50.0)
    assert g.phis[2] == pytest.approx(60.0)
    assert g.omegas[2] == pytest.approx(70.0)


def test_window_asymmetric_half_steps():
    g = orientation_window(Orientation(0, 0, 0), 1.0, half_steps=(1, 2, 0))
    assert g.shape == (3, 5, 1)
    assert g.size == 15


def test_paper_typical_window_size():
    # §4: typical w_theta = w_phi = w_omega ~ 10 -> w ~ 1000
    g = orientation_window(Orientation(0, 0, 0), 0.1, half_steps=4)
    assert g.size == 9**3


def test_rotation_stack_order_matches_unravel():
    o = Orientation(10.0, 20.0, 30.0)
    g = orientation_window(o, 2.0, half_steps=1)
    stack = g.rotation_stack()
    assert stack.shape == (27, 3, 3)
    for flat in (0, 13, 26):
        cand = g.orientation_at(flat)
        assert np.allclose(stack[flat], cand.matrix(), atol=1e-12)


def test_center_orientation_is_in_grid():
    o = Orientation(10.0, 20.0, 30.0, 0.5, -0.5)
    g = orientation_window(o, 1.0, half_steps=2)
    center_flat = 2 * 25 + 2 * 5 + 2
    cand = g.orientation_at(center_flat)
    assert cand.as_tuple() == pytest.approx(o.as_tuple())


def test_center_offsets_propagate():
    o = Orientation(1, 2, 3, 1.5, 2.5)
    g = orientation_window(o, 1.0, half_steps=1)
    assert g.orientation_at(0).cx == 1.5
    assert g.orientation_at(0).cy == 2.5


def test_on_edge_detection():
    g = orientation_window(Orientation(0, 0, 0), 1.0, half_steps=1)
    assert g.on_edge(0) == (True, True, True)
    center = 1 * 9 + 1 * 3 + 1
    assert g.on_edge(center) == (False, False, False)
    corner_mixed = 1 * 9 + 0 * 3 + 1  # center theta, edge phi, center omega
    assert g.on_edge(corner_mixed) == (False, True, False)


def test_single_sample_axis_never_on_edge():
    g = orientation_window(Orientation(0, 0, 0), 1.0, half_steps=(1, 1, 0))
    for flat in range(g.size):
        assert g.on_edge(flat)[2] is False


def test_window_validation():
    with pytest.raises(ValueError):
        orientation_window(Orientation(0, 0, 0), 0.0)
    with pytest.raises(ValueError):
        orientation_window(Orientation(0, 0, 0), 1.0, half_steps=-1)
