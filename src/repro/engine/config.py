"""The typed, frozen configuration hierarchy of the refinement engine.

:class:`EngineConfig` is the single source of truth for a refinement run:
everything the stack used to take as scattered per-call kwargs, env vars
and re-parsed CLI flags — kernel choice, schedule, worker fan-out, retry
policy, checkpointing, memoization, matching knobs — lives in one frozen,
serializable record, validated exactly once at construction.  Every layer
(CLI, :class:`~repro.refine.refiner.OrientationRefiner`,
:func:`~repro.parallel.prefine.parallel_refine`, the structure loop, the
benchmarks) consumes the same object instead of re-validating strings.

Configs load from TOML or JSON files (:func:`load_config`), round-trip
through plain dicts (:meth:`EngineConfig.to_dict` /
:meth:`EngineConfig.from_dict`, unknown fields rejected loudly), and
digest into a :meth:`EngineConfig.fingerprint` recorded in checkpoint
headers and benchmark artifacts, so a resumed or compared run can prove it
was configured identically.

Sections
--------
``kernel``      which matching kernel and interpolation, gather chunking
``schedule``    the multi-resolution level list
``parallel``    execution backend (serial / process / sim) and its fan-out
``fault``       retry/timeout/degradation policy for the process backend
``checkpoint``  level-granular checkpoint path and resume flag
``memo``        the per-view orientation memo cache
``prune``       best-first early-termination pruning of candidate windows
``polish``      continuous least-squares polish replacing the finest levels
``symmetry``    point-group handling: none / fixed:<group> / detect
``iteration``   the outer refine→reconstruct loop: FSC stopping + streaming

All ``repro`` imports in this module are lazy (inside methods): the
kernel packages import :mod:`repro.engine.env` at import time, so the
engine package must be importable before any of them is initialized.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - type-only imports, avoids cycles
    from repro.faults.retry import RetryPolicy
    from repro.refine.multires import MultiResolutionSchedule

__all__ = [
    "CheckpointConfig",
    "ConfigError",
    "EngineConfig",
    "FaultConfig",
    "IterationConfig",
    "KernelConfig",
    "MemoConfig",
    "ParallelConfig",
    "PolishConfig",
    "PruneConfig",
    "ScheduleConfig",
    "SymmetryConfig",
    "load_config",
]

KERNELS = ("batched", "fused", "reference")
INTERPOLATIONS = ("trilinear", "nearest")
BACKENDS = ("serial", "process", "sim")
WEIGHTINGS = ("none", "radius", "radius2")
CTF_CORRECTIONS = ("phase_flip", "none")
MP_CONTEXTS = ("fork", "spawn", "forkserver")


class ConfigError(ValueError):
    """A configuration field is unknown, mistyped, or out of range."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _coerce_float(name: str, value: Any) -> float:
    # TOML/JSON integers are legal spellings of float fields (r_max = 9)
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             f"{name} must be a number, got {value!r}")
    return float(value)


def _coerce_int(name: str, value: Any) -> int:
    _require(isinstance(value, int) and not isinstance(value, bool),
             f"{name} must be an integer, got {value!r}")
    return int(value)


def _coerce_bool(name: str, value: Any) -> bool:
    _require(isinstance(value, bool), f"{name} must be a boolean, got {value!r}")
    return value


def _coerce_str(name: str, value: Any, choices: tuple[str, ...] | None = None) -> str:
    _require(isinstance(value, str), f"{name} must be a string, got {value!r}")
    if choices is not None:
        _require(value in choices, f"{name} must be one of {choices}, got {value!r}")
    return value


def _reject_unknown(section: str, data: Mapping[str, Any], known: tuple[str, ...]) -> None:
    unknown = sorted(set(data) - set(known))
    if unknown:
        where = f"{section}." if section else ""
        raise ConfigError(
            f"unknown config field(s) {', '.join(where + u for u in unknown)}; "
            f"known fields: {', '.join(known)}"
        )


@dataclass(frozen=True)
class KernelConfig:
    """Which matching kernel runs and how it chunks its gathers.

    All three kernels are bit-identical by construction; the choice is a
    performance decision, never a numerical one.  ``gather_chunk``
    overrides the samples-per-chunk target of the in-band gathers (the
    config-file spelling of ``REPRO_GATHER_CHUNK``); ``None`` keeps each
    kernel's measured default.
    """

    kernel: str = "batched"
    interpolation: str = "trilinear"
    gather_chunk: int | None = None

    def __post_init__(self) -> None:
        _require(self.kernel in KERNELS,
                 f"kernel.kernel must be one of {KERNELS}, got {self.kernel!r}")
        _require(self.interpolation in INTERPOLATIONS,
                 f"kernel.interpolation must be one of {INTERPOLATIONS}, "
                 f"got {self.interpolation!r}")
        if self.gather_chunk is not None:
            _require(isinstance(self.gather_chunk, int) and self.gather_chunk >= 1,
                     f"kernel.gather_chunk must be a positive integer, "
                     f"got {self.gather_chunk!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kernel": self.kernel,
            "interpolation": self.interpolation,
            "gather_chunk": self.gather_chunk,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "KernelConfig":
        _reject_unknown("kernel", data, ("kernel", "interpolation", "gather_chunk"))
        chunk = data.get("gather_chunk")
        if chunk is not None:
            chunk = _coerce_int("kernel.gather_chunk", chunk)
        return cls(
            kernel=_coerce_str("kernel.kernel", data.get("kernel", cls.kernel), KERNELS),
            interpolation=_coerce_str(
                "kernel.interpolation", data.get("interpolation", cls.interpolation),
                INTERPOLATIONS,
            ),
            gather_chunk=chunk,
        )


#: The paper's production schedule: 1°, 0.1°, 0.01°, 0.002°, center
#: resolutions tracking the angular ones (§5), ±4-step windows, 3×3 boxes.
DEFAULT_LEVELS: tuple[tuple[float, float, int, int], ...] = (
    (1.0, 1.0, 4, 1),
    (0.1, 0.1, 4, 1),
    (0.01, 0.01, 4, 1),
    (0.002, 0.002, 4, 1),
)


@dataclass(frozen=True)
class ScheduleConfig:
    """The multi-resolution schedule as plain numbers.

    Each level is ``(angular_step_deg, center_step_px, half_steps,
    center_half_steps)``; config files may abbreviate a level to
    ``[step]`` (center step = angular step, default widths) or
    ``[angular, center]``.  Any
    :class:`~repro.refine.multires.MultiResolutionSchedule` is exactly
    representable (:meth:`from_schedule` / :meth:`to_schedule` are
    inverses), so the config fingerprint can always cover the schedule the
    run actually used.
    """

    levels: tuple[tuple[float, float, int, int], ...] = DEFAULT_LEVELS

    def __post_init__(self) -> None:
        _require(len(self.levels) >= 1, "schedule.levels needs at least one level")
        norm = []
        for i, level in enumerate(self.levels):
            _require(len(level) == 4,
                     f"schedule.levels[{i}] must be (angular_step_deg, "
                     f"center_step_px, half_steps, center_half_steps)")
            a, c, h, ch = level
            _require(a > 0 and c > 0, f"schedule.levels[{i}] steps must be positive")
            _require(int(h) >= 0 and int(ch) >= 0,
                     f"schedule.levels[{i}] half-widths must be non-negative")
            norm.append((float(a), float(c), int(h), int(ch)))
        object.__setattr__(self, "levels", tuple(norm))

    def to_schedule(self) -> "MultiResolutionSchedule":
        from repro.refine.multires import MultiResolutionSchedule, RefinementLevel

        return MultiResolutionSchedule(
            tuple(
                RefinementLevel(a, c, half_steps=h, center_half_steps=ch)
                for a, c, h, ch in self.levels
            )
        )

    @classmethod
    def from_schedule(cls, schedule: "MultiResolutionSchedule") -> "ScheduleConfig":
        return cls(
            levels=tuple(
                (lv.angular_step_deg, lv.center_step_px, lv.half_steps,
                 lv.center_half_steps)
                for lv in schedule
            )
        )

    @classmethod
    def from_steps(
        cls, angular_steps: tuple[float, ...], half_steps: int = 4,
        center_half_steps: int = 1,
    ) -> "ScheduleConfig":
        """Levels from angular steps alone (center steps track them, §5)."""
        return cls(
            levels=tuple(
                (float(s), float(s), int(half_steps), int(center_half_steps))
                for s in angular_steps
            )
        )

    def to_dict(self) -> dict[str, Any]:
        return {"levels": [list(level) for level in self.levels]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScheduleConfig":
        _reject_unknown("schedule", data, ("levels",))
        if "levels" not in data:
            return cls()
        raw = data["levels"]
        _require(isinstance(raw, (list, tuple)) and len(raw) >= 1,
                 "schedule.levels must be a non-empty list of levels")
        levels = []
        for i, entry in enumerate(raw):
            _require(isinstance(entry, (list, tuple)) and len(entry) in (1, 2, 4),
                     f"schedule.levels[{i}] must be [angular], [angular, center] "
                     f"or [angular, center, half_steps, center_half_steps]")
            a = _coerce_float(f"schedule.levels[{i}][0]", entry[0])
            c = _coerce_float(f"schedule.levels[{i}][1]", entry[1]) if len(entry) >= 2 else a
            h = _coerce_int(f"schedule.levels[{i}][2]", entry[2]) if len(entry) == 4 else 4
            ch = _coerce_int(f"schedule.levels[{i}][3]", entry[3]) if len(entry) == 4 else 1
            levels.append((a, c, h, ch))
        return cls(levels=tuple(levels))


@dataclass(frozen=True)
class ParallelConfig:
    """Which execution backend fans the per-view work out, and how wide.

    ``serial`` runs everything inline; ``process`` is the shared-memory
    process pool of :mod:`repro.parallel.viewsched`; ``sim`` is the
    simulated distributed-memory cluster of :mod:`repro.parallel.prefine`
    (``n_ranks`` applies only there).  All backends are bit-identical —
    the choice prices the run, it never steers the numbers.
    """

    backend: str = "serial"
    n_workers: int = 1
    chunks_per_worker: int = 4
    mp_context: str | None = None
    n_ranks: int = 4

    def __post_init__(self) -> None:
        _require(self.backend in BACKENDS,
                 f"parallel.backend must be one of {BACKENDS}, got {self.backend!r}")
        _require(isinstance(self.n_workers, int) and self.n_workers >= 1,
                 f"parallel.n_workers must be >= 1, got {self.n_workers!r}")
        _require(isinstance(self.chunks_per_worker, int) and self.chunks_per_worker >= 1,
                 f"parallel.chunks_per_worker must be >= 1, got {self.chunks_per_worker!r}")
        _require(isinstance(self.n_ranks, int) and self.n_ranks >= 1,
                 f"parallel.n_ranks must be >= 1, got {self.n_ranks!r}")
        if self.mp_context is not None:
            _require(self.mp_context in MP_CONTEXTS,
                     f"parallel.mp_context must be one of {MP_CONTEXTS}, "
                     f"got {self.mp_context!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "n_workers": self.n_workers,
            "chunks_per_worker": self.chunks_per_worker,
            "mp_context": self.mp_context,
            "n_ranks": self.n_ranks,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ParallelConfig":
        _reject_unknown("parallel", data,
                        ("backend", "n_workers", "chunks_per_worker", "mp_context",
                         "n_ranks"))
        ctx = data.get("mp_context")
        if ctx is not None:
            ctx = _coerce_str("parallel.mp_context", ctx, MP_CONTEXTS)
        return cls(
            backend=_coerce_str("parallel.backend", data.get("backend", cls.backend),
                                BACKENDS),
            n_workers=_coerce_int("parallel.n_workers",
                                  data.get("n_workers", cls.n_workers)),
            chunks_per_worker=_coerce_int(
                "parallel.chunks_per_worker",
                data.get("chunks_per_worker", cls.chunks_per_worker)),
            mp_context=ctx,
            n_ranks=_coerce_int("parallel.n_ranks", data.get("n_ranks", cls.n_ranks)),
        )


@dataclass(frozen=True)
class FaultConfig:
    """Retry/timeout/degradation policy for the process backend (DESIGN.md §8)."""

    max_attempts: int = 3
    backoff_s: float = 0.01
    backoff_factor: float = 2.0
    chunk_timeout_s: float | None = None
    max_pool_restarts: int = 2

    def __post_init__(self) -> None:
        _require(isinstance(self.max_attempts, int) and self.max_attempts >= 1,
                 f"fault.max_attempts must be >= 1, got {self.max_attempts!r}")
        _require(self.backoff_s >= 0, "fault.backoff_s must be non-negative")
        _require(self.backoff_factor >= 1.0, "fault.backoff_factor must be >= 1")
        if self.chunk_timeout_s is not None:
            _require(self.chunk_timeout_s > 0, "fault.chunk_timeout_s must be positive")
        _require(isinstance(self.max_pool_restarts, int) and self.max_pool_restarts >= 0,
                 f"fault.max_pool_restarts must be >= 0, got {self.max_pool_restarts!r}")

    def retry_policy(self) -> "RetryPolicy":
        from repro.faults.retry import RetryPolicy

        return RetryPolicy(
            max_attempts=self.max_attempts,
            backoff_s=self.backoff_s,
            backoff_factor=self.backoff_factor,
            chunk_timeout_s=self.chunk_timeout_s,
            max_pool_restarts=self.max_pool_restarts,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "backoff_s": self.backoff_s,
            "backoff_factor": self.backoff_factor,
            "chunk_timeout_s": self.chunk_timeout_s,
            "max_pool_restarts": self.max_pool_restarts,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultConfig":
        _reject_unknown("fault", data,
                        ("max_attempts", "backoff_s", "backoff_factor",
                         "chunk_timeout_s", "max_pool_restarts"))
        timeout = data.get("chunk_timeout_s")
        if timeout is not None:
            timeout = _coerce_float("fault.chunk_timeout_s", timeout)
        return cls(
            max_attempts=_coerce_int("fault.max_attempts",
                                     data.get("max_attempts", cls.max_attempts)),
            backoff_s=_coerce_float("fault.backoff_s",
                                    data.get("backoff_s", cls.backoff_s)),
            backoff_factor=_coerce_float("fault.backoff_factor",
                                         data.get("backoff_factor", cls.backoff_factor)),
            chunk_timeout_s=timeout,
            max_pool_restarts=_coerce_int(
                "fault.max_pool_restarts",
                data.get("max_pool_restarts", cls.max_pool_restarts)),
        )


@dataclass(frozen=True)
class CheckpointConfig:
    """Level-granular checkpoint/resume (DESIGN.md §8)."""

    path: str | None = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.path is not None:
            _require(isinstance(self.path, str) and self.path != "",
                     "checkpoint.path must be a non-empty string")
        _require(not (self.resume and self.path is None),
                 "checkpoint.resume requires checkpoint.path")

    def to_dict(self) -> dict[str, Any]:
        return {"path": self.path, "resume": self.resume}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CheckpointConfig":
        _reject_unknown("checkpoint", data, ("path", "resume"))
        path = data.get("path")
        if path is not None:
            path = _coerce_str("checkpoint.path", path)
        return cls(path=path,
                   resume=_coerce_bool("checkpoint.resume", data.get("resume", False)))


#: Default orientation-memo capacity (mirrors repro.align.memo, which the
#: engine must not import at module load time).
DEFAULT_MEMO_CAPACITY = 8192


@dataclass(frozen=True)
class MemoConfig:
    """The per-view orientation memo cache (batched kernel only)."""

    enabled: bool = True
    capacity: int = DEFAULT_MEMO_CAPACITY

    def __post_init__(self) -> None:
        _require(isinstance(self.capacity, int) and self.capacity >= 1,
                 f"memo.capacity must be >= 1, got {self.capacity!r}")

    def to_dict(self) -> dict[str, Any]:
        return {"enabled": self.enabled, "capacity": self.capacity}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MemoConfig":
        _reject_unknown("memo", data, ("enabled", "capacity"))
        return cls(
            enabled=_coerce_bool("memo.enabled", data.get("enabled", cls.enabled)),
            capacity=_coerce_int("memo.capacity", data.get("capacity", cls.capacity)),
        )


@dataclass(frozen=True)
class PruneConfig:
    """Best-first pruning of candidate windows (batched kernel only).

    When enabled, each sliding-window search scores candidates nearest the
    window center first and abandons any candidate whose accumulated
    partial band distance exceeds the running k-th best by more than
    ``margin`` (relative) — the §3 distance is a sum of non-negative
    per-sample terms, so the partial sum is a monotone lower bound and the
    surviving arg-min is bit-identical to exhaustive search (DESIGN.md
    §11).  ``top_k`` additionally carries the k best basin centers into
    the next level as independent seeds; ``None`` (the default) keeps the
    classic single-path behavior.  ``shell_groups`` is how many radial
    shell groups the band is accumulated in; ``seed_chunk`` / ``chunk``
    size the best-first evaluation batches.
    """

    enabled: bool = False
    top_k: int | None = None
    shell_groups: int = 8
    margin: float = 1e-9
    seed_chunk: int = 32
    chunk: int = 128

    def __post_init__(self) -> None:
        if self.top_k is not None:
            _require(isinstance(self.top_k, int) and self.top_k >= 1,
                     f"prune.top_k must be >= 1 or null, got {self.top_k!r}")
        _require(isinstance(self.shell_groups, int) and self.shell_groups >= 1,
                 f"prune.shell_groups must be >= 1, got {self.shell_groups!r}")
        _require(isinstance(self.margin, (int, float)) and self.margin >= 0,
                 f"prune.margin must be non-negative, got {self.margin!r}")
        _require(isinstance(self.seed_chunk, int) and self.seed_chunk >= 1,
                 f"prune.seed_chunk must be >= 1, got {self.seed_chunk!r}")
        _require(isinstance(self.chunk, int) and self.chunk >= 1,
                 f"prune.chunk must be >= 1, got {self.chunk!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "top_k": self.top_k,
            "shell_groups": self.shell_groups,
            "margin": self.margin,
            "seed_chunk": self.seed_chunk,
            "chunk": self.chunk,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PruneConfig":
        _reject_unknown("prune", data,
                        ("enabled", "top_k", "shell_groups", "margin", "seed_chunk",
                         "chunk"))
        top_k = data.get("top_k")
        if top_k is not None:
            top_k = _coerce_int("prune.top_k", top_k)
        return cls(
            enabled=_coerce_bool("prune.enabled", data.get("enabled", cls.enabled)),
            top_k=top_k,
            shell_groups=_coerce_int("prune.shell_groups",
                                     data.get("shell_groups", cls.shell_groups)),
            margin=_coerce_float("prune.margin", data.get("margin", cls.margin)),
            seed_chunk=_coerce_int("prune.seed_chunk",
                                   data.get("seed_chunk", cls.seed_chunk)),
            chunk=_coerce_int("prune.chunk", data.get("chunk", cls.chunk)),
        )


@dataclass(frozen=True)
class PolishConfig:
    """Continuous least-squares polish replacing the finest grid levels.

    When enabled, schedule levels with ``angular_step_deg <
    replace_below_deg`` are dropped and a damped Gauss–Newton descent on
    the continuous fused-kernel objective takes over from the ``n_best``
    surviving basin centers of the last kept level (DESIGN.md §11).  The
    polished result is gated by an accuracy tolerance — the replaced
    tail's final angular step — instead of the bit-identity oracle.
    """

    enabled: bool = False
    n_best: int = 1
    max_iters: int = 30
    tol: float = 1e-8
    replace_below_deg: float = 0.1
    damping: float = 1e-3

    def __post_init__(self) -> None:
        _require(isinstance(self.n_best, int) and self.n_best >= 1,
                 f"polish.n_best must be >= 1, got {self.n_best!r}")
        _require(isinstance(self.max_iters, int) and self.max_iters >= 1,
                 f"polish.max_iters must be >= 1, got {self.max_iters!r}")
        _require(isinstance(self.tol, (int, float)) and self.tol >= 0,
                 f"polish.tol must be non-negative, got {self.tol!r}")
        _require(isinstance(self.replace_below_deg, (int, float))
                 and self.replace_below_deg > 0,
                 f"polish.replace_below_deg must be positive, "
                 f"got {self.replace_below_deg!r}")
        _require(isinstance(self.damping, (int, float)) and self.damping > 0,
                 f"polish.damping must be positive, got {self.damping!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "n_best": self.n_best,
            "max_iters": self.max_iters,
            "tol": self.tol,
            "replace_below_deg": self.replace_below_deg,
            "damping": self.damping,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolishConfig":
        _reject_unknown("polish", data,
                        ("enabled", "n_best", "max_iters", "tol", "replace_below_deg",
                         "damping"))
        return cls(
            enabled=_coerce_bool("polish.enabled", data.get("enabled", cls.enabled)),
            n_best=_coerce_int("polish.n_best", data.get("n_best", cls.n_best)),
            max_iters=_coerce_int("polish.max_iters",
                                  data.get("max_iters", cls.max_iters)),
            tol=_coerce_float("polish.tol", data.get("tol", cls.tol)),
            replace_below_deg=_coerce_float(
                "polish.replace_below_deg",
                data.get("replace_below_deg", cls.replace_below_deg)),
            damping=_coerce_float("polish.damping", data.get("damping", cls.damping)),
        )


#: Point-group names accepted by ``symmetry.mode = "fixed:<group>"``:
#: C_n (n >= 1), D_n (n >= 2), and the polyhedral groups T, O, I.
_GROUP_NAME_RE = r"^(C[1-9][0-9]*|D[2-9][0-9]*|D[1-9][0-9]+|T|O|I)$"


@dataclass(frozen=True)
class SymmetryConfig:
    """Point-group symmetry handling for the orientation search.

    ``mode`` selects how the refinement acquires a symmetry group:

    - ``"none"`` — no symmetry assumption, search the full sphere (the
      paper's baseline, and the default);
    - ``"fixed:<group>"`` — trust a known point group (e.g. ``fixed:I``,
      ``fixed:C5``) and restrict the candidate search to one asymmetric
      unit, a |G|-fold candidate reduction;
    - ``"detect"`` — run :func:`repro.refine.symmetry_detect.detect_symmetry`
      on the current map before refining, then restrict with whatever group
      it finds (C1 means no restriction).

    The ``detect_*`` knobs mirror the detector's signature; they only
    matter in ``detect`` mode but are always part of the fingerprint so a
    resumed run cannot silently detect under different thresholds.
    """

    mode: str = "none"
    detect_max_order: int = 6
    detect_n_axes: int = 48
    detect_accept_factor: float = 0.2
    detect_seed: int = 0

    def __post_init__(self) -> None:
        _require(isinstance(self.mode, str), f"symmetry.mode must be a string, got {self.mode!r}")
        if self.mode not in ("none", "detect"):
            import re

            prefix, _, group = self.mode.partition(":")
            _require(prefix == "fixed" and re.match(_GROUP_NAME_RE, group) is not None,
                     "symmetry.mode must be 'none', 'detect' or 'fixed:<group>' "
                     f"with <group> one of C_n/D_n/T/O/I, got {self.mode!r}")
        _require(isinstance(self.detect_max_order, int) and self.detect_max_order >= 2,
                 f"symmetry.detect_max_order must be >= 2, got {self.detect_max_order!r}")
        _require(isinstance(self.detect_n_axes, int) and self.detect_n_axes >= 4,
                 f"symmetry.detect_n_axes must be >= 4, got {self.detect_n_axes!r}")
        _require(isinstance(self.detect_accept_factor, (int, float))
                 and not isinstance(self.detect_accept_factor, bool)
                 and self.detect_accept_factor > 0,
                 f"symmetry.detect_accept_factor must be positive, "
                 f"got {self.detect_accept_factor!r}")
        _require(isinstance(self.detect_seed, int) and not isinstance(self.detect_seed, bool),
                 f"symmetry.detect_seed must be an integer, got {self.detect_seed!r}")

    @property
    def enabled(self) -> bool:
        """Whether any symmetry handling (fixed or detected) is requested."""
        return self.mode != "none"

    def fixed_group_name(self) -> str | None:
        """The group name of a ``fixed:<group>`` mode, else ``None``."""
        if self.mode.startswith("fixed:"):
            return self.mode.split(":", 1)[1]
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "detect_max_order": self.detect_max_order,
            "detect_n_axes": self.detect_n_axes,
            "detect_accept_factor": self.detect_accept_factor,
            "detect_seed": self.detect_seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SymmetryConfig":
        _reject_unknown("symmetry", data,
                        ("mode", "detect_max_order", "detect_n_axes",
                         "detect_accept_factor", "detect_seed"))
        return cls(
            mode=_coerce_str("symmetry.mode", data.get("mode", cls.mode)),
            detect_max_order=_coerce_int(
                "symmetry.detect_max_order",
                data.get("detect_max_order", cls.detect_max_order)),
            detect_n_axes=_coerce_int("symmetry.detect_n_axes",
                                      data.get("detect_n_axes", cls.detect_n_axes)),
            detect_accept_factor=_coerce_float(
                "symmetry.detect_accept_factor",
                data.get("detect_accept_factor", cls.detect_accept_factor)),
            detect_seed=_coerce_int("symmetry.detect_seed",
                                    data.get("detect_seed", cls.detect_seed)),
        )


@dataclass(frozen=True)
class IterationConfig:
    """The outer refine→reconstruct loop (paper §3, Figure 4).

    One iteration refines every orientation against the current map, then
    rebuilds the map from the refined orientations; the odd/even half-set
    FSC curve of the rebuilt map is the quality gate.  The loop stops when
    the FSC crossing at ``fsc_threshold`` stops improving by at least
    ``min_improvement_angstrom`` (checked from the second iteration on) or
    after ``max_iterations`` passes.

    ``r_max_schedule`` is the paper's resolution-increase ladder: iteration
    ``i`` refines with ``r_max_schedule[min(i, len - 1)]`` (the last entry
    repeats), so early iterations can match at low resolution and later
    ones raise it; empty keeps the run-level ``r_max`` throughout.

    ``streaming`` selects the incremental reconstruction path: refined
    views are deposited into the direct-Fourier accumulator as the backend
    emits them instead of barriering per iteration.  The deposit order is
    forced to ascending view index by a reorder buffer, so streaming is
    bit-identical to the barriered rebuild at any worker count — the flag
    is a latency/memory knob, never a numerical one (DESIGN.md §14).  It
    is still fingerprint-covered with the rest of the section so a resumed
    loop can prove it was configured identically end to end.
    """

    max_iterations: int = 3
    fsc_threshold: float = 0.5
    min_improvement_angstrom: float = 0.0
    r_max_schedule: tuple[float, ...] = ()
    streaming: bool = True

    def __post_init__(self) -> None:
        _require(isinstance(self.max_iterations, int)
                 and not isinstance(self.max_iterations, bool)
                 and self.max_iterations >= 1,
                 f"iteration.max_iterations must be >= 1, got {self.max_iterations!r}")
        _require(isinstance(self.fsc_threshold, (int, float))
                 and not isinstance(self.fsc_threshold, bool)
                 and 0.0 < self.fsc_threshold < 1.0,
                 f"iteration.fsc_threshold must be in (0, 1), "
                 f"got {self.fsc_threshold!r}")
        _require(isinstance(self.min_improvement_angstrom, (int, float))
                 and not isinstance(self.min_improvement_angstrom, bool)
                 and self.min_improvement_angstrom >= 0.0,
                 f"iteration.min_improvement_angstrom must be >= 0, "
                 f"got {self.min_improvement_angstrom!r}")
        norm = []
        for i, r in enumerate(self.r_max_schedule):
            _require(isinstance(r, (int, float)) and not isinstance(r, bool) and r > 0,
                     f"iteration.r_max_schedule[{i}] must be positive, got {r!r}")
            norm.append(float(r))
        object.__setattr__(self, "r_max_schedule", tuple(norm))
        _require(isinstance(self.streaming, bool),
                 f"iteration.streaming must be a boolean, got {self.streaming!r}")

    def r_max_for(self, iteration: int, default: float | None) -> float | None:
        """The ``r_max`` iteration ``iteration`` (0-based) refines with."""
        if not self.r_max_schedule:
            return default
        return self.r_max_schedule[min(iteration, len(self.r_max_schedule) - 1)]

    def to_dict(self) -> dict[str, Any]:
        return {
            "max_iterations": self.max_iterations,
            "fsc_threshold": self.fsc_threshold,
            "min_improvement_angstrom": self.min_improvement_angstrom,
            "r_max_schedule": list(self.r_max_schedule),
            "streaming": self.streaming,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IterationConfig":
        _reject_unknown("iteration", data,
                        ("max_iterations", "fsc_threshold",
                         "min_improvement_angstrom", "r_max_schedule", "streaming"))
        schedule = data.get("r_max_schedule", cls.r_max_schedule)
        _require(isinstance(schedule, (list, tuple)),
                 f"iteration.r_max_schedule must be a list, got {schedule!r}")
        return cls(
            max_iterations=_coerce_int(
                "iteration.max_iterations",
                data.get("max_iterations", cls.max_iterations)),
            fsc_threshold=_coerce_float(
                "iteration.fsc_threshold", data.get("fsc_threshold", cls.fsc_threshold)),
            min_improvement_angstrom=_coerce_float(
                "iteration.min_improvement_angstrom",
                data.get("min_improvement_angstrom", cls.min_improvement_angstrom)),
            r_max_schedule=tuple(
                _coerce_float(f"iteration.r_max_schedule[{i}]", r)
                for i, r in enumerate(schedule)),
            streaming=_coerce_bool("iteration.streaming",
                                   data.get("streaming", cls.streaming)),
        )


_SECTIONS: dict[str, type] = {
    "kernel": KernelConfig,
    "schedule": ScheduleConfig,
    "parallel": ParallelConfig,
    "fault": FaultConfig,
    "checkpoint": CheckpointConfig,
    "memo": MemoConfig,
    "prune": PruneConfig,
    "polish": PolishConfig,
    "symmetry": SymmetryConfig,
    "iteration": IterationConfig,
}

_SCALARS = ("r_max", "max_slides", "refine_centers", "pad_factor", "weighting",
            "ctf_correction", "normalized_distance")


@dataclass(frozen=True)
class EngineConfig:
    """The complete configuration of one refinement run.

    Composes the six sections with the matching knobs every driver shares.
    Frozen and hashable: pass it around freely, derive variants with
    :func:`dataclasses.replace` (validation re-runs on construction).
    """

    kernel: KernelConfig = field(default_factory=KernelConfig)
    schedule: ScheduleConfig = field(default_factory=ScheduleConfig)
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    fault: FaultConfig = field(default_factory=FaultConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    memo: MemoConfig = field(default_factory=MemoConfig)
    prune: PruneConfig = field(default_factory=PruneConfig)
    polish: PolishConfig = field(default_factory=PolishConfig)
    symmetry: SymmetryConfig = field(default_factory=SymmetryConfig)
    iteration: IterationConfig = field(default_factory=IterationConfig)
    r_max: float | None = None
    max_slides: int = 8
    refine_centers: bool = True
    pad_factor: int = 2
    weighting: str = "none"
    ctf_correction: str = "phase_flip"
    normalized_distance: bool = False

    def __post_init__(self) -> None:
        if self.r_max is not None:
            _require(self.r_max > 0, f"r_max must be positive, got {self.r_max!r}")
        _require(isinstance(self.max_slides, int) and self.max_slides >= 0,
                 f"max_slides must be >= 0, got {self.max_slides!r}")
        _require(isinstance(self.pad_factor, int) and self.pad_factor >= 1,
                 f"pad_factor must be >= 1, got {self.pad_factor!r}")
        _require(self.weighting in WEIGHTINGS,
                 f"weighting must be one of {WEIGHTINGS}, got {self.weighting!r}")
        _require(self.ctf_correction in CTF_CORRECTIONS,
                 f"ctf_correction must be one of {CTF_CORRECTIONS}, "
                 f"got {self.ctf_correction!r}")
        # Cross-section constraints: pruning rides the batched window engine
        # and the plain distance (the incremental shell bound is meaningless
        # after per-row normalization); neither pruning nor polish is wired
        # through the simulated-cluster backend.  Multi-basin state
        # (prune.top_k / polish.n_best) rides checkpoints since the basin
        # set was added to the checkpoint header.
        if self.prune.enabled:
            _require(self.kernel.kernel == "batched",
                     "prune.enabled requires kernel.kernel == 'batched'")
            _require(not self.normalized_distance,
                     "prune.enabled is incompatible with normalized_distance")
            _require(self.parallel.backend != "sim",
                     "prune.enabled is not supported on the sim backend")
        if self.polish.enabled:
            _require(not self.normalized_distance,
                     "polish.enabled is incompatible with normalized_distance")
            _require(self.parallel.backend != "sim",
                     "polish.enabled is not supported on the sim backend")
            if self.polish.n_best > 1:
                _require(self.prune.enabled,
                         "polish.n_best > 1 needs prune.enabled basin tracking "
                         "to supply multiple starts")
        # Symmetry restriction canonicalizes candidates inside the batched
        # window engine's memo path; the fused/reference kernels and the
        # simulated-cluster backend never see the group.
        if self.symmetry.enabled:
            _require(self.kernel.kernel == "batched",
                     "symmetry.mode != 'none' requires kernel.kernel == 'batched'")
            _require(self.parallel.backend != "sim",
                     "symmetry.mode != 'none' is not supported on the sim backend")

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A plain nested dict; ``from_dict`` of it reconstructs ``self``."""
        out: dict[str, Any] = {name: getattr(self, name).to_dict() for name in _SECTIONS}
        for name in _SCALARS:
            out[name] = getattr(self, name)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineConfig":
        """Build from a nested dict, rejecting unknown fields loudly."""
        _require(isinstance(data, Mapping), f"config must be a mapping, got {data!r}")
        _reject_unknown("", data, tuple(_SECTIONS) + _SCALARS)
        kwargs: dict[str, Any] = {}
        for name, section_cls in _SECTIONS.items():
            section = data.get(name)
            if section is not None:
                _require(isinstance(section, Mapping),
                         f"{name} must be a table/object, got {section!r}")
                kwargs[name] = section_cls.from_dict(section)
        if "r_max" in data and data["r_max"] is not None:
            kwargs["r_max"] = _coerce_float("r_max", data["r_max"])
        if "max_slides" in data:
            kwargs["max_slides"] = _coerce_int("max_slides", data["max_slides"])
        if "refine_centers" in data:
            kwargs["refine_centers"] = _coerce_bool("refine_centers", data["refine_centers"])
        if "pad_factor" in data:
            kwargs["pad_factor"] = _coerce_int("pad_factor", data["pad_factor"])
        if "weighting" in data:
            kwargs["weighting"] = _coerce_str("weighting", data["weighting"], WEIGHTINGS)
        if "ctf_correction" in data:
            kwargs["ctf_correction"] = _coerce_str("ctf_correction",
                                                   data["ctf_correction"], CTF_CORRECTIONS)
        if "normalized_distance" in data:
            kwargs["normalized_distance"] = _coerce_bool("normalized_distance",
                                                         data["normalized_distance"])
        return cls(**kwargs)

    # -- identity ------------------------------------------------------------
    def fingerprint(self) -> str:
        """A stable digest of every *result-relevant* setting.

        Covers the schedule, the kernel, memo, prune, polish, symmetry and
        iteration sections, and the matching knobs — the fields a checkpoint must refuse to mix
        across (the old
        schedule-only fingerprint silently accepted a resume under a
        different kernel or memo configuration).  Execution strategy
        (``parallel``, ``fault``, ``checkpoint``) is deliberately excluded:
        every backend and recovery path is bit-identical by construction,
        and a checkpoint from a 2-worker run must resume on an 8-core host.
        ``kernel.gather_chunk`` is likewise excluded — chunking is a pure
        memory-footprint knob that provably cannot change a value.
        """
        kernel = self.kernel.to_dict()
        kernel.pop("gather_chunk")
        payload = {
            "schedule": self.schedule.to_dict(),
            "kernel": kernel,
            "memo": self.memo.to_dict(),
            "prune": self.prune.to_dict(),
            "polish": self.polish.to_dict(),
            "symmetry": self.symmetry.to_dict(),
            "iteration": self.iteration.to_dict(),
            "matching": {name: getattr(self, name) for name in _SCALARS},
        }
        desc = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(desc.encode()).hexdigest()[:16]

    def merged(self, overrides: Mapping[str, Any]) -> "EngineConfig":
        """A copy with a partial nested override dict merged on top.

        ``overrides`` uses the same shape as :meth:`to_dict` but may name
        only the fields it changes: section tables merge field-by-field
        onto the current values, scalars replace.  Unknown fields are
        rejected exactly as in :meth:`from_dict`, and the merged config is
        re-validated from scratch — the scenario matrix's spelling for
        "this scenario runs with pruning on" without restating the rest.
        """
        _require(isinstance(overrides, Mapping),
                 f"overrides must be a mapping, got {overrides!r}")
        _reject_unknown("", overrides, tuple(_SECTIONS) + _SCALARS)
        data = self.to_dict()
        for name, value in overrides.items():
            if name in _SECTIONS:
                _require(isinstance(value, Mapping),
                         f"{name} must be a table/object, got {value!r}")
                data[name] = {**data[name], **value}
            else:
                data[name] = value
        return EngineConfig.from_dict(data)

    def with_schedule(self, schedule: "MultiResolutionSchedule") -> "EngineConfig":
        """A copy whose schedule section mirrors an in-memory schedule object."""
        return replace(self, schedule=ScheduleConfig.from_schedule(schedule))

    def flat_items(self) -> list[tuple[str, Any]]:
        """Dotted ``(path, value)`` pairs in declaration order (for displays)."""
        out: list[tuple[str, Any]] = []
        for name in _SECTIONS:
            section = getattr(self, name)
            for f in fields(section):
                out.append((f"{name}.{f.name}", getattr(section, f.name)))
        for name in _SCALARS:
            out.append((name, getattr(self, name)))
        return out


def load_config(path: str | Path) -> EngineConfig:
    """Load an :class:`EngineConfig` from a ``.toml`` or ``.json`` file.

    The suffix selects the parser; anything else (or a malformed file, or
    an unknown field) raises :class:`ConfigError` with the offending
    detail, so a typo'd config dies before any data is touched.
    """
    p = Path(path)
    try:
        text = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"cannot read config {p}: {exc}") from exc
    if p.suffix == ".toml":
        import tomllib

        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"{p}: invalid TOML: {exc}") from exc
    elif p.suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{p}: invalid JSON: {exc}") from exc
    else:
        raise ConfigError(f"{p}: config files must be .toml or .json")
    try:
        return EngineConfig.from_dict(data)
    except ConfigError as exc:
        raise ConfigError(f"{p}: {exc}") from exc
