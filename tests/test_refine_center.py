"""Tests for center refinement (steps k–l)."""

import numpy as np
import pytest

from repro.align import DistanceComputer
from repro.fourier import centered_fft2
from repro.fourier.slicing import extract_slice
from repro.geometry import Orientation
from repro.imaging import phase_shift_ft
from repro.refine import refine_center


@pytest.fixture(scope="module")
def setup():
    from repro.density import asymmetric_phantom

    density = asymmetric_phantom(24, seed=3).normalized()
    vft = density.fourier_oversampled(2)
    truth = Orientation(60.0, 40.0, 25.0)
    cut = extract_slice(vft, truth.matrix(), out_size=24)
    dc = DistanceComputer(24, r_max=10)
    return cut, dc


def _shifted_view(cut, cx, cy):
    """A view whose particle sits at offset (cx, cy)."""
    return phase_shift_ft(cut, cx, cy)


def test_recovers_integer_shift(setup):
    cut, dc = setup
    view = _shifted_view(cut, 2.0, -1.0)
    res = refine_center(view, cut, center=(0.0, 0.0), step_px=1.0, half_steps=2, distance_computer=dc)
    assert res.cx == pytest.approx(2.0)
    assert res.cy == pytest.approx(-1.0)
    assert res.distance == pytest.approx(0.0, abs=1e-9)


def test_recovers_subpixel_shift_with_fine_steps(setup):
    cut, dc = setup
    view = _shifted_view(cut, 0.3, -0.7)
    res = refine_center(view, cut, center=(0.0, 0.0), step_px=0.1, half_steps=4, max_slides=10, distance_computer=dc)
    assert res.cx == pytest.approx(0.3, abs=0.05)
    assert res.cy == pytest.approx(-0.7, abs=0.05)


def test_slides_when_shift_outside_box(setup):
    cut, dc = setup
    view = _shifted_view(cut, 3.0, 0.0)
    res = refine_center(view, cut, center=(0.0, 0.0), step_px=1.0, half_steps=1, max_slides=10, distance_computer=dc)
    assert res.slid
    assert res.n_boxes > 1
    assert res.cx == pytest.approx(3.0)
    # paper's 3x3 box: n_center = 9 per box
    assert res.n_evaluations == res.n_boxes * 9


def test_no_shift_stays_put(setup):
    cut, dc = setup
    res = refine_center(cut, cut, center=(0.0, 0.0), step_px=0.5, half_steps=1, distance_computer=dc)
    assert res.cx == 0.0 and res.cy == 0.0
    assert not res.slid


def test_validation(setup):
    cut, dc = setup
    with pytest.raises(ValueError):
        refine_center(cut, cut, (0, 0), step_px=0.0, distance_computer=dc)
    with pytest.raises(ValueError):
        refine_center(cut, cut, (0, 0), step_px=1.0, half_steps=-1, distance_computer=dc)


def test_half_steps_zero_evaluates_single_center(setup):
    cut, dc = setup
    res = refine_center(cut, cut, center=(1.0, 1.0), step_px=1.0, half_steps=0, distance_computer=dc)
    assert res.n_evaluations == 1
    assert res.cx == 1.0 and res.cy == 1.0
