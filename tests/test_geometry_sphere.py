"""Tests for sphere sampling and the Figure 1b / §3 counting functions."""

import numpy as np
import pytest

from repro.geometry import (
    count_orientations,
    fibonacci_sphere,
    search_space_cardinality,
    view_directions_grid,
)
from repro.geometry.sphere import icosahedral_asymmetric_unit_views


def test_fibonacci_sphere_unit_norm():
    pts = fibonacci_sphere(128)
    assert pts.shape == (128, 3)
    assert np.allclose(np.linalg.norm(pts, axis=1), 1.0)


def test_fibonacci_sphere_roughly_uniform():
    pts = fibonacci_sphere(2000)
    assert abs(pts[:, 2].mean()) < 0.01
    # octant occupancy within 25% of uniform
    octant = ((pts[:, 0] > 0) & (pts[:, 1] > 0) & (pts[:, 2] > 0)).mean()
    assert 0.09 < octant < 0.16


def test_fibonacci_sphere_invalid():
    with pytest.raises(ValueError):
        fibonacci_sphere(0)


def test_view_directions_grid_has_sin_correction():
    views = view_directions_grid(10.0)
    thetas = np.array([t for t, _ in views])
    # near the pole, far fewer phi samples than at the equator
    n_pole = np.sum(np.isclose(thetas, 10.0))
    n_equator = np.sum(np.isclose(thetas, 90.0))
    assert n_equator > 3 * n_pole


def test_view_directions_grid_counts_scale_quadratically():
    n3 = len(view_directions_grid(3.0))
    n6 = len(view_directions_grid(6.0))
    assert 2.5 < n3 / n6 < 5.5


def test_view_directions_grid_invalid():
    with pytest.raises(ValueError):
        view_directions_grid(0.0)
    with pytest.raises(ValueError):
        view_directions_grid(3.0, theta_range=(90.0, 10.0))


def test_search_space_cardinality_paper_example():
    # §3: at 0.1 deg over 180 deg per angle, |P| = 1800^3
    assert search_space_cardinality(0.1) == 1800**3


def test_search_space_cardinality_monotone():
    assert search_space_cardinality(0.1) > search_space_cardinality(1.0)


def test_icosahedral_asymmetric_unit_figure_1b():
    # Figure 1b: about 5x10 views at 3 degrees (paper text: ~51)
    views = icosahedral_asymmetric_unit_views(3.0)
    assert 30 <= len(views) <= 80
    # all within the asymmetric unit bounds
    for theta, phi in views:
        assert 69.0 <= theta <= 90.0 + 1e-9
        assert abs(phi) <= 31.8


def test_asymmetric_vs_icosahedral_many_orders_of_magnitude():
    # §3: the asymmetric search at 0.1 deg dwarfs the icosahedral one.  The
    # paper quotes ~4000 icosahedral views (six orders); our area-exact
    # asymmetric-unit sampler yields ~66k directions, still 4-5 orders
    # below the 5.8e9 brute-force cardinality.
    icos = len(icosahedral_asymmetric_unit_views(0.1))
    asym = search_space_cardinality(0.1)
    assert 1e4 < asym / icos < 1e8


def test_count_orientations_with_omega():
    with_omega = count_orientations(10.0)
    directions_only = count_orientations(10.0, omega_range=None)
    assert with_omega == directions_only * 36
