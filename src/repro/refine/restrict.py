"""Asymmetric-unit restriction of the orientation search (DESIGN.md §13).

A map with point group ``G`` projects identically at ``R`` and ``g·R`` for
every ``g ∈ G``, so the global orientation search only needs to cover one
*asymmetric unit* — 1/|G| of the sphere, a 60× candidate reduction for an
icosahedral capsid.  This module is the search-side consumer of
:mod:`repro.geometry.symmetry`:

* :class:`SymmetryRestriction` — a picklable, worker-safe wrapper around a
  group's rotation matrices with the three operations the hot path needs:
  vectorized canonicalization of a candidate stack into the asymmetric
  unit, AU membership masks for coarse grids, and canonical (quantized)
  memo keys so symmetry-equivalent candidates share memo hits;
* :func:`resolve_restriction` — turn an
  :class:`~repro.engine.config.SymmetryConfig` into a restriction, either
  from a trusted ``fixed:<group>`` name or by running
  :func:`~repro.refine.symmetry_detect.detect_symmetry` on the current map.

Canonicalization follows :func:`repro.geometry.symmetry.
reduce_to_asymmetric_unit` exactly: among ``{g·R}`` pick the equivalent
whose view direction has the largest z-component (ties by x, then y, keys
rounded to 9 decimals, first group element wins ties) — the vectorized
stack path and the scalar path agree element-for-element.

**Memo-key semantics.** The orientation memo's doctrine is exact-float
keys (bit-identity, DESIGN.md §9).  Under a symmetry restriction the
contract is deliberately weaker — *equal modulo the group within
interpolation tolerance* — because two G-equivalent candidates gather
different lattice neighborhoods and differ in the last few ulps.  Keys are
therefore the canonical representative's Euler angles rounded to 1e-6
degrees (three orders below the finest grid step), so equivalents
collapse onto one slot; centers stay exact.  This quantization is active
**only** when a restriction is passed — symmetry-off runs keep the exact
keys and the bit-identity oracle untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.arraytypes import Array, BoolArray
from repro.geometry.euler import Orientation, euler_to_matrix
from repro.geometry.sphere import view_directions_grid
from repro.geometry.symmetry import (
    SymmetryGroup,
    group_from_name,
    reduce_to_asymmetric_unit,
)

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an engine cycle)
    from repro.align.memo import MemoKey
    from repro.density.map import DensityMap
    from repro.engine.backends import ExecutionBackend
    from repro.engine.config import SymmetryConfig

__all__ = ["SymmetryRestriction", "resolve_restriction"]

#: Memo keys quantize canonical Euler angles to this many decimal degrees.
#: 1e-6° is ~500× below the finest grid step the schedule ever uses
#: (0.002°), so distinct grid candidates can never collide — only
#: G-equivalent ones can.
KEY_DECIMALS = 6


def _lex_gt(a: Array, b: Array) -> BoolArray:
    """Row-wise lexicographic ``a > b`` for (n, k) key arrays."""
    gt = a[:, 0] > b[:, 0]
    eq = a[:, 0] == b[:, 0]
    for c in range(1, a.shape[1]):
        gt = gt | (eq & (a[:, c] > b[:, c]))
        eq = eq & (a[:, c] == b[:, c])
    return gt


def _direction_keys(directions: Array) -> Array:
    """The (z, x, y) round-9 tie-break keys of a stack of view directions."""
    return np.round(
        np.stack([directions[:, 2], directions[:, 0], directions[:, 1]], axis=1), 9
    )


def _matrix_stack_to_euler(mats: Array) -> tuple[Array, Array, Array]:
    """Vectorized :func:`repro.geometry.euler.matrix_to_euler` over (n, 3, 3).

    Matches the scalar function branch-for-branch, including the
    gimbal-lock split at ``sin θ < 1e-6``.
    """
    ct = np.clip(mats[:, 2, 2], -1.0, 1.0)
    theta = np.degrees(np.arccos(ct))
    st = np.sqrt(np.clip(1.0 - ct * ct, 0.0, None))
    lock = st < 1e-6
    with np.errstate(invalid="ignore"):
        phi = np.where(lock, 0.0, np.degrees(np.arctan2(mats[:, 1, 2], mats[:, 0, 2])))
        omega_free = np.degrees(np.arctan2(mats[:, 2, 1], -mats[:, 2, 0]))
    omega_lock = np.where(
        ct > 0,
        np.degrees(np.arctan2(mats[:, 1, 0], mats[:, 0, 0])),
        np.degrees(np.arctan2(mats[:, 1, 0], -mats[:, 0, 0])),
    )
    omega = np.where(lock, omega_lock, omega_free)
    return theta, phi % 360.0, omega % 360.0


@dataclass(frozen=True)
class SymmetryRestriction:
    """A point group packaged for the search hot path.

    Holds only a name and the ``(order, 3, 3)`` rotation stack, so it
    pickles cheaply into worker payloads (:mod:`repro.parallel.viewsched`)
    and compares by value in config plumbing.  All the canonicalization
    math is vectorized over candidate stacks — the matcher calls this once
    per window, never per candidate.
    """

    group_name: str
    matrices: Array = field(repr=False)
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        m = np.asarray(self.matrices, dtype=float)
        if m.ndim != 3 or m.shape[1:] != (3, 3):
            raise ValueError("matrices must have shape (order, 3, 3)")
        object.__setattr__(self, "matrices", m)

    @classmethod
    def from_group(cls, group: SymmetryGroup) -> "SymmetryRestriction":
        return cls(group_name=group.name, matrices=np.asarray(group.matrices, dtype=float))

    @property
    def order(self) -> int:
        return int(self.matrices.shape[0])

    def group(self) -> SymmetryGroup:
        """The :class:`SymmetryGroup` view of this restriction."""
        return SymmetryGroup(self.group_name, self.matrices)

    # -- canonicalization ----------------------------------------------------
    def canonicalize(self, orientation: Orientation) -> Orientation:
        """Scalar canonical representative (exact, unquantized)."""
        return reduce_to_asymmetric_unit(orientation, self.group())

    def canonicalize_stack(self, rotations: Array) -> tuple[Array, Array]:
        """Canonical representatives of a ``(w, 3, 3)`` rotation stack.

        Returns ``(canonical_rotations, group_indices)`` where
        ``canonical_rotations[i] = matrices[group_indices[i]] @ rotations[i]``.
        One vectorized pass per group element (≤ 60), never per candidate.
        """
        rots = np.asarray(rotations, dtype=float)
        w = rots.shape[0]
        best_idx = np.zeros(w, dtype=np.intp)
        best_key: Array | None = None
        for gi in range(self.order):
            cand_dirs = rots[:, :, 2] @ self.matrices[gi].T
            key = _direction_keys(cand_dirs)
            if best_key is None:
                best_key = key
            else:
                better = _lex_gt(key, best_key)
                best_idx[better] = gi
                best_key[better] = key[better]
        canonical = np.einsum("wij,wjk->wik", self.matrices[best_idx], rots)
        return canonical, best_idx

    # -- memo keys -----------------------------------------------------------
    def memo_keys(self, rotations: Array, center: tuple[float, float]) -> "list[MemoKey]":
        """Canonical quantized memo keys for a candidate stack (see module doc)."""
        canonical, _ = self.canonicalize_stack(rotations)
        theta, phi, omega = _matrix_stack_to_euler(canonical)
        theta = np.round(theta, KEY_DECIMALS).tolist()
        phi = np.round(phi, KEY_DECIMALS).tolist()
        omega = np.round(omega, KEY_DECIMALS).tolist()
        cx, cy = float(center[0]), float(center[1])
        return [(t, p, o, cx, cy) for t, p, o in zip(theta, phi, omega)]

    # -- asymmetric-unit grids -----------------------------------------------
    def asymmetric_unit_mask(self, rotations: Array) -> BoolArray:
        """True where a candidate already is its own canonical representative.

        Membership is decided on the round-9 direction keys, exactly like
        canonicalization itself, so a candidate on an AU boundary is kept
        in precisely one copy of the unit.
        """
        rots = np.asarray(rotations, dtype=float)
        own_key = _direction_keys(rots[:, :, 2])
        canonical, _ = self.canonicalize_stack(rots)
        best_key = _direction_keys(canonical[:, :, 2])
        return np.all(own_key == best_key, axis=1)

    def restricted_views(self, angular_resolution_deg: float) -> list[tuple[float, float]]:
        """The sin(θ)-corrected global view grid, cut to the asymmetric unit.

        AU membership depends only on the view direction (ω drops out of
        the canonical key), so this filters
        :func:`repro.geometry.sphere.view_directions_grid` directly.
        """
        views = view_directions_grid(angular_resolution_deg)
        thetas = np.array([v[0] for v in views])
        phis = np.array([v[1] for v in views])
        rots = euler_to_matrix(thetas, phis, np.zeros_like(thetas))
        mask = self.asymmetric_unit_mask(rots)
        return [v for v, keep in zip(views, mask.tolist()) if keep]

    def reduction_factor(self, angular_resolution_deg: float) -> float:
        """Measured candidate reduction: |full grid| / |AU-restricted grid|.

        Approaches the group order as the grid refines; cached per
        resolution because the scenario matrix asks repeatedly.
        """
        key = ("reduction", float(angular_resolution_deg))
        cached = self._cache.get(key)
        if cached is None:
            full = len(view_directions_grid(angular_resolution_deg))
            kept = len(self.restricted_views(angular_resolution_deg))
            cached = full / max(1, kept)
            self._cache[key] = cached
        return float(cached)

    def __getstate__(self) -> dict[str, Any]:
        # The cache is per-process scratch; never ship it to workers.
        return {"group_name": self.group_name, "matrices": self.matrices}

    def __setstate__(self, state: dict[str, Any]) -> None:
        object.__setattr__(self, "group_name", state["group_name"])
        object.__setattr__(self, "matrices", state["matrices"])
        object.__setattr__(self, "_cache", {})


def resolve_restriction(
    config: "SymmetryConfig",
    density: "DensityMap | None" = None,
    *,
    backend: "ExecutionBackend | None" = None,
) -> tuple[SymmetryRestriction | None, str | None]:
    """Turn a symmetry config section into a usable restriction.

    Returns ``(restriction, group_name)``: mode ``"none"`` yields
    ``(None, None)``; ``"fixed:<group>"`` builds the named group;
    ``"detect"`` runs the detector on ``density`` (fanned out through
    ``backend`` when given).  A trivial result (C1) yields no restriction
    but still reports the name, so callers can record what was detected.
    """
    mode = config.mode
    if mode == "none":
        return None, None
    if mode.startswith("fixed:"):
        group: SymmetryGroup | None = group_from_name(mode.split(":", 1)[1])
    else:
        if density is None:
            raise ValueError("symmetry.mode == 'detect' requires the current map")
        from repro.refine.symmetry_detect import detect_symmetry

        result = detect_symmetry(
            density,
            max_order=config.detect_max_order,
            n_axes=config.detect_n_axes,
            accept_factor=config.detect_accept_factor,
            seed=config.detect_seed,
            backend=backend,
        )
        group = result.group
    if group is None or group.order <= 1:
        return None, group.name if group is not None else "C1"
    return SymmetryRestriction.from_group(group), group.name
