"""RL007 fixture: the distance.py kernel boundaries without @array_contract."""

from __future__ import annotations


class DistanceComputer:
    def gather(self, image_ft):
        return image_ft

    def distance_band(self, view_band, cut_band):
        return 0.0
