"""Tests for the execution backends and the engine front door.

Dispatch, lifetime ownership, and — the refactor's load-bearing claim —
bit-identical equivalence between the engine-routed paths and the legacy
kwarg paths they replaced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    ConfigError,
    EngineConfig,
    KernelConfig,
    ParallelConfig,
    ProcessBackend,
    RefinementEngine,
    ScheduleConfig,
    SerialBackend,
    SimBackend,
    make_backend,
)
from repro.imaging import simulate_views
from repro.refine.multires import MultiResolutionSchedule, RefinementLevel
from repro.refine.refiner import OrientationRefiner

SCHED_LEVELS = ((1.0, 1.0, 2, 1), (0.5, 0.5, 2, 1))


@pytest.fixture(scope="module")
def dataset(phantom16):
    return simulate_views(
        phantom16, 4, initial_angle_error_deg=2.0, center_sigma_px=0.3, seed=3
    )


def small_config(**overrides):
    base = dict(
        schedule=ScheduleConfig(levels=SCHED_LEVELS), r_max=6.0, max_slides=2
    )
    base.update(overrides)
    return EngineConfig(**base)


# -- dispatch ----------------------------------------------------------------
def test_make_backend_dispatch():
    assert isinstance(make_backend(EngineConfig()), SerialBackend)
    sim = make_backend(EngineConfig(parallel=ParallelConfig(backend="sim")))
    assert isinstance(sim, SimBackend)


def test_make_backend_process_owns_scheduler():
    cfg = EngineConfig(parallel=ParallelConfig(backend="process", n_workers=2))
    with make_backend(cfg) as backend:
        assert isinstance(backend, ProcessBackend)
        assert backend.scheduler.n_workers == 2
    # close() ran on __exit__; closing again must be harmless
    backend.close()


def test_make_backend_rejects_serial_multiworker():
    cfg = EngineConfig(parallel=ParallelConfig(backend="serial", n_workers=1))
    bad = {"backend": "serial", "n_workers": 3}
    with pytest.raises(ConfigError, match="n_workers"):
        make_backend(EngineConfig.from_dict({"parallel": bad}))
    assert isinstance(make_backend(cfg), SerialBackend)


def test_injected_scheduler_is_adopted_not_owned():
    from repro.parallel.viewsched import ViewScheduler

    with ViewScheduler(n_workers=2) as scheduler:
        backend = make_backend(EngineConfig(), scheduler=scheduler)
        assert isinstance(backend, ProcessBackend)
        assert backend.scheduler is scheduler
        assert backend._owned is False
        backend.close()  # must NOT shut down the caller's pool


def test_sim_backend_refuses_level_granular_calls():
    backend = SimBackend(EngineConfig(parallel=ParallelConfig(backend="sim")))
    with pytest.raises(ConfigError, match="whole schedule"):
        backend.run_level()


# -- legacy-shim equivalence -------------------------------------------------
def test_refiner_config_matches_kwargs_bitwise(phantom16, dataset):
    """OrientationRefiner(config=...) == the old kwargs path, bit for bit."""
    sched = MultiResolutionSchedule(
        (RefinementLevel(1.0, 1.0, half_steps=2), RefinementLevel(0.5, 0.5, half_steps=2))
    )
    old = OrientationRefiner(
        phantom16, r_max=6.0, max_slides=2, kernel="batched"
    ).refine(dataset, schedule=sched)
    new = OrientationRefiner(phantom16, config=small_config()).refine(
        dataset, schedule=sched
    )
    assert [o.as_tuple() for o in new.orientations] == [
        o.as_tuple() for o in old.orientations
    ]
    assert np.array_equal(new.distances, old.distances)


def test_engine_serial_matches_legacy_refiner_bitwise(phantom16, dataset):
    sched = small_config().schedule.to_schedule()
    legacy = OrientationRefiner(phantom16, r_max=6.0, max_slides=2).refine(
        dataset, schedule=sched
    )
    run = RefinementEngine(small_config()).run(dataset, phantom16)
    assert run.backend == "serial"
    assert run.fingerprint == small_config().fingerprint()
    assert [o.as_tuple() for o in run.orientations] == [
        o.as_tuple() for o in legacy.orientations
    ]
    assert np.array_equal(run.distances, legacy.distances)


def test_engine_process_matches_serial_bitwise(phantom16, dataset):
    serial = RefinementEngine(small_config()).run(dataset, phantom16)
    cfg = small_config(parallel=ParallelConfig(backend="process", n_workers=2))
    pooled = RefinementEngine(cfg).run(dataset, phantom16)
    assert pooled.backend == "process"
    assert [o.as_tuple() for o in pooled.orientations] == [
        o.as_tuple() for o in serial.orientations
    ]
    assert np.array_equal(pooled.distances, serial.distances)
    # execution strategy must not fork the fingerprint
    assert pooled.fingerprint == serial.fingerprint


def test_engine_sim_matches_legacy_parallel_refine_bitwise(phantom16, dataset):
    from repro.parallel import parallel_refine

    cfg = small_config(
        parallel=ParallelConfig(backend="sim", n_ranks=2),
        kernel=KernelConfig(kernel="fused"),
    )
    legacy = parallel_refine(
        dataset, phantom16, n_ranks=2, schedule=cfg.schedule.to_schedule(),
        r_max=6.0, kernel="fused",
    )
    run = RefinementEngine(cfg).run(dataset, phantom16)
    assert run.backend == "sim"
    assert run.report is not None
    assert [o.as_tuple() for o in run.orientations] == [
        o.as_tuple() for o in legacy.orientations
    ]
    assert np.array_equal(run.distances, legacy.distances)


# -- engine guard rails ------------------------------------------------------
def test_engine_sim_rejects_raw_stacks(phantom16, dataset):
    cfg = small_config(parallel=ParallelConfig(backend="sim", n_ranks=2))
    with pytest.raises(ConfigError, match="SimulatedViews"):
        RefinementEngine(cfg).run(dataset.images, phantom16)


def test_engine_sim_rejects_checkpointing(phantom16, dataset, tmp_path):
    cfg = small_config(parallel=ParallelConfig(backend="sim", n_ranks=2))
    cfg = EngineConfig.from_dict(
        {**cfg.to_dict(), "checkpoint": {"path": str(tmp_path / "x.ckpt")}}
    )
    with pytest.raises(ConfigError, match="checkpoint"):
        RefinementEngine(cfg).run(dataset, phantom16)


def test_refiner_rejects_sim_config():
    from repro.density import asymmetric_phantom

    from repro.geometry import Orientation

    cfg = EngineConfig(parallel=ParallelConfig(backend="sim"))
    density = asymmetric_phantom(16, seed=0).normalized()
    refiner = OrientationRefiner(density, config=cfg)
    with pytest.raises(ConfigError):
        refiner.refine(
            np.zeros((1, 16, 16)), initial_orientations=[Orientation(0, 0, 0)]
        )


def test_engine_writes_orientation_file(phantom16, dataset, tmp_path):
    from repro.refine import read_orientation_file

    out = str(tmp_path / "refined.txt")
    run = RefinementEngine(small_config()).run(
        dataset, phantom16, orientation_file=out
    )
    got, scores = read_orientation_file(out)
    # the text format carries 6 decimals, not full float64 precision
    assert np.allclose(
        [o.as_tuple() for o in got],
        [o.as_tuple() for o in run.orientations],
        atol=1e-6,
    )
    assert np.allclose(scores, run.distances)


def test_engine_gather_chunk_scopes_to_run(phantom16, dataset, monkeypatch):
    """kernel.gather_chunk reaches the kernels via the env for the run's
    scope only — the process env is restored afterwards."""
    import os

    monkeypatch.delenv("REPRO_GATHER_CHUNK", raising=False)
    cfg = small_config(kernel=KernelConfig(gather_chunk=64))
    baseline = RefinementEngine(small_config()).run(dataset, phantom16)
    chunked = RefinementEngine(cfg).run(dataset, phantom16)
    assert "REPRO_GATHER_CHUNK" not in os.environ
    assert [o.as_tuple() for o in chunked.orientations] == [
        o.as_tuple() for o in baseline.orientations
    ]
    assert np.array_equal(chunked.distances, baseline.distances)


def test_sim_backend_refuses_polish_and_tasks():
    cfg = EngineConfig.from_dict({
        "schedule": {"levels": [list(l) for l in SCHED_LEVELS]},
        "parallel": {"backend": "sim", "n_ranks": 2},
    })
    backend = SimBackend(cfg)
    with pytest.raises(ConfigError):
        backend.run_polish(None, None, [], [], None)
    with pytest.raises(ConfigError):
        backend.run_tasks(len, [()])


def test_serial_and_process_run_tasks_agree(phantom16):
    from repro.parallel.viewsched import ViewScheduler

    payloads = ["a", "bb", "ccc"]
    serial = SerialBackend()
    assert serial.run_tasks(len, payloads) == [1, 2, 3]
    with ViewScheduler(n_workers=2) as sched:
        process = ProcessBackend(scheduler=sched)
        assert process.run_tasks(len, payloads) == [1, 2, 3]


def test_engine_symmetry_restriction_threads_through(phantom16, dataset):
    """fixed:<G> symmetry must flow through the backend into the refiner,
    come back out in EngineRunResult, and keep serial/process bitwise."""
    from repro.density.phantom import symmetric_phantom
    from repro.geometry.symmetry import cyclic_group

    density = symmetric_phantom(cyclic_group(4), size=16, seed=1).normalized()
    views = simulate_views(
        density, 3, initial_angle_error_deg=2.0, center_sigma_px=0.0, seed=3
    )
    runs = {}
    for tag, parallel in (
        ("serial", {"backend": "serial", "n_workers": 1}),
        ("process", {"backend": "process", "n_workers": 2}),
    ):
        cfg = EngineConfig.from_dict({
            "schedule": {"levels": [list(l) for l in SCHED_LEVELS]},
            "r_max": 6.0,
            "max_slides": 2,
            "symmetry": {"mode": "fixed:C4"},
            "parallel": parallel,
        })
        runs[tag] = RefinementEngine(cfg).run(views, density)
    for run in runs.values():
        assert run.symmetry_group == "C4"
        assert run.symmetry_order == 4
    a, b = runs["serial"], runs["process"]
    assert [o.as_tuple() for o in a.orientations] == [
        o.as_tuple() for o in b.orientations
    ]
    assert np.array_equal(a.distances, b.distances)


def test_engine_symmetry_off_reports_none(phantom16, dataset):
    run = RefinementEngine(small_config()).run(dataset, phantom16)
    assert run.symmetry_group is None
    assert run.symmetry_order == 1
