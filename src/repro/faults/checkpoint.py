"""Level-granular checkpoint/resume for the refinement drivers.

A checkpoint is written after every completed resolution level — the only
points where the algorithm's state is small and well-defined: the per-view
orientation set, the per-view distances, and the accumulated window/center
counters.  The on-disk format *is* the orientation-file format (steps c/o)
with a machine-readable meta header in comment lines, so a checkpoint
doubles as a valid partial result: ``repro reconstruct`` can consume a
checkpoint of a killed run directly.

Orientations are serialized at 17 significant digits (exact float64
round-trip), which is what makes a killed-then-resumed run *bit-identical*
to a fault-free one — the chaos harness asserts exactly that.  Writes are
atomic (temp file + :func:`os.replace` in the same directory), so a run
killed mid-write leaves the previous checkpoint intact, never a torn file.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass

import numpy as np

from repro.arraytypes import Array
from repro.geometry.euler import Orientation
from repro.refine.orientfile import read_orientation_file, write_orientation_file
from repro.refine.stats import RefinementStats

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointConfigMismatch",
    "RefinementCheckpoint",
    "load_checkpoint",
    "save_checkpoint",
    "try_load_checkpoint",
]

CHECKPOINT_FORMAT = "repro-checkpoint v1"


@dataclass(frozen=True)
class RefinementCheckpoint:
    """Everything needed to resume a multi-resolution refinement run.

    Attributes
    ----------
    schedule_fingerprint:
        :meth:`MultiResolutionSchedule.fingerprint` of the schedule the
        run was started with; resume refuses to mix schedules.
    levels_done:
        Number of leading schedule levels fully completed (and therefore
        reflected in ``orientations``).
    orientations / distances:
        Per-view state after the last completed level, exact to the bit.
    stats:
        Accumulated counters for the completed levels, so a resumed run
        reports the same totals as an uninterrupted one.
    memo:
        Serialized orientation-memo state (view index -> key/value float
        arrays, see :meth:`repro.align.memo.MemoStore.export_state`);
        ``None`` when the run does not memoize.  Stored losslessly
        (``float.hex`` round-trip), so a resumed run's memo hits — and
        therefore its skipped gathers — pick up exactly where the killed
        run stopped, with bit-identical results either way.
    """

    schedule_fingerprint: str
    levels_done: int
    orientations: list[Orientation]
    distances: Array
    stats: RefinementStats
    memo: dict[int, tuple[Array, Array]] | None = None
    #: :meth:`repro.engine.config.EngineConfig.fingerprint` of the run's
    #: engine config — schedule *plus* kernel/memo/matching settings.  The
    #: schedule fingerprint alone silently accepted a resume under a
    #: different kernel or memo configuration; this field closes that hole.
    #: Empty for checkpoints written by drivers without an engine config.
    engine_fingerprint: str = ""

    @property
    def n_views(self) -> int:
        return len(self.orientations)


def _memo_to_json(memo: dict[int, tuple[Array, Array]]) -> str:
    """Lossless JSON for a memo export: every float as ``float.hex()``."""
    payload = {
        str(idx): {
            "k": [[float(x).hex() for x in row] for row in np.asarray(keys).tolist()],
            "v": [float(x).hex() for x in np.asarray(values).tolist()],
        }
        for idx, (keys, values) in memo.items()
    }
    return json.dumps(payload, sort_keys=True)


def _memo_from_json(obj: dict) -> dict[int, tuple[Array, Array]]:
    out: dict[int, tuple[Array, Array]] = {}
    for idx, entry in obj.items():
        keys = np.array(
            [[float.fromhex(x) for x in row] for row in entry["k"]], dtype=np.float64
        ).reshape(-1, 5)
        values = np.array([float.fromhex(x) for x in entry["v"]], dtype=np.float64)
        out[int(idx)] = (keys, values)
    return out


def save_checkpoint(path: str, checkpoint: RefinementCheckpoint) -> None:
    """Atomically write ``checkpoint`` to ``path``.

    The temp file lives in the target directory so :func:`os.replace` is a
    same-filesystem atomic rename; a crash between write and rename leaves
    at worst an orphaned ``.tmp`` file, never a torn checkpoint.
    """
    meta = {
        "format": CHECKPOINT_FORMAT,
        "schedule_fingerprint": checkpoint.schedule_fingerprint,
        "levels_done": int(checkpoint.levels_done),
        "n_views": checkpoint.n_views,
        "stats": asdict(checkpoint.stats),
    }
    if checkpoint.engine_fingerprint:
        meta["engine_fingerprint"] = checkpoint.engine_fingerprint
    header = f"{CHECKPOINT_FORMAT}\nmeta {json.dumps(meta, sort_keys=True)}"
    if checkpoint.memo is not None:
        header += f"\nmemo {_memo_to_json(checkpoint.memo)}"
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory)
    os.close(fd)
    try:
        write_orientation_file(
            tmp,
            checkpoint.orientations,
            scores=np.asarray(checkpoint.distances, dtype=float),
            header=header,
            full_precision=True,
        )
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass
        raise


def _parse_header(path: str) -> dict[str, dict]:
    """Extract the ``# <tag> {...}`` JSON header lines from a checkpoint.

    Returns a mapping of tag (``"meta"``, ``"memo"``) to the parsed JSON
    body; scanning stops at the first non-comment line.
    """
    found: dict[str, dict] = {}
    with open(path) as fh:
        for line in fh:
            text = line.strip()
            if not text.startswith("#"):
                break
            body = text.lstrip("#").strip()
            for tag in ("meta", "memo"):
                if body.startswith(tag + " "):
                    found[tag] = dict(json.loads(body[len(tag) + 1 :]))
    if "meta" not in found:
        raise ValueError(f"{path}: not a checkpoint file (no meta header)")
    return found


def load_checkpoint(path: str) -> RefinementCheckpoint:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Raises ``ValueError`` on a malformed or non-checkpoint file (a plain
    orientation file has no meta header).  Checkpoints written before the
    memo header existed load with ``memo=None``.
    """
    header = _parse_header(path)
    meta = header["meta"]
    if meta.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"{path}: unsupported checkpoint format {meta.get('format')!r}")
    orientations, scores = read_orientation_file(path)
    if len(orientations) != int(meta["n_views"]):
        raise ValueError(
            f"{path}: meta claims {meta['n_views']} views, file holds {len(orientations)}"
        )
    stats = RefinementStats(**meta["stats"])
    memo = _memo_from_json(header["memo"]) if "memo" in header else None
    return RefinementCheckpoint(
        schedule_fingerprint=str(meta["schedule_fingerprint"]),
        levels_done=int(meta["levels_done"]),
        orientations=orientations,
        distances=np.asarray(scores, dtype=float),
        stats=stats,
        memo=memo,
        engine_fingerprint=str(meta.get("engine_fingerprint", "")),
    )


class CheckpointConfigMismatch(ValueError):
    """A checkpoint matches the schedule but not the engine configuration.

    Same schedule, different kernel/memo/matching settings: the partial
    results in the file were produced under a config the resuming run
    would not reproduce, so continuing would silently mix numbers from
    two different runs.  Unlike a schedule or view-count mismatch (which
    just starts fresh — the file is simply *for another run*), this is
    almost certainly an operator error and must fail loudly.
    """


def try_load_checkpoint(
    path: str,
    schedule_fingerprint: str,
    n_views: int,
    engine_fingerprint: str | None = None,
) -> RefinementCheckpoint | None:
    """Load ``path`` if it is a usable checkpoint for this exact run.

    Returns ``None`` (start from scratch) when the file is missing, not a
    checkpoint, or was written for a different schedule or view count —
    resuming across any of those would silently corrupt the result, so
    mismatch means "ignore", never "adapt".

    ``engine_fingerprint`` tightens the gate: a checkpoint that matches
    the schedule but carries a *different* engine fingerprint raises
    :class:`CheckpointConfigMismatch` instead of resuming — same run
    identity, incompatible kernel/memo configuration.  Checkpoints
    written before the engine header existed (empty fingerprint) are
    accepted for backward compatibility.
    """
    if not os.path.exists(path):
        return None
    try:
        ckpt = load_checkpoint(path)
    except (ValueError, OSError, KeyError, json.JSONDecodeError):
        return None
    if ckpt.schedule_fingerprint != schedule_fingerprint or ckpt.n_views != n_views:
        return None
    if (
        engine_fingerprint
        and ckpt.engine_fingerprint
        and ckpt.engine_fingerprint != engine_fingerprint
    ):
        raise CheckpointConfigMismatch(
            f"{path}: checkpoint was written under engine config "
            f"{ckpt.engine_fingerprint}, this run is configured as "
            f"{engine_fingerprint} (same schedule, different kernel/memo/"
            f"matching settings); refusing to resume — delete the "
            f"checkpoint or restore the original configuration"
        )
    return ckpt
