"""Fused in-band slice/distance kernel (steps f–h without the cut stacks).

The reference matching path materializes a full ``(w, l, l)`` stack of
central cuts (:func:`repro.fourier.slicing.extract_slices`) and only then
masks it down to the band ``r ≤ r_map``
(:meth:`repro.align.distance.DistanceComputer.distance_batch`).  Every
sample outside the band is gathered from D̂, copied, and thrown away, and
the coordinate meshgrids are rebuilt for every window of every slide.

:class:`MatchPlan` fuses the two stages.  Once per ``(l, r_map, weights,
volume_size, interpolation)`` it precomputes the in-band 2D frequency
coordinates ``(kx, ky)`` and the band weight vector; per window it rotates
*only those coordinates* into the volume frame and gathers trilinear
samples of D̂ at them, so the per-candidate cost drops from ``l²`` to
``≈ π·r_map²`` samples — a ``(l/2)²/r_map²`` FLOP and memory-traffic saving
at coarse levels where ``r_map ≪ l/2``.  Because the band radius bounds
every rotated coordinate, the interior/edge decision is made **once at
plan time**: in the common oversampled case the 8-corner trilinear gather
runs with no per-corner bounds checks at all.

The kernel is numerically *identical* to the reference path (same
coordinate arithmetic, same corner accumulation order, same reduction
shapes), so ``kernel="reference"`` remains available purely as a checkable
slow path.  The plan also carries the in-band phase-ramp machinery used by
the fused center search (steps k–l), where a candidate center shift
becomes an ``n_band``-element ramp instead of an ``l×l`` one.
"""

from __future__ import annotations

import numpy as np

from repro.align.distance import DistanceComputer
from repro.analysis.contracts import array_contract, spec
from repro.arraytypes import Array
from repro.engine.env import GATHER_CHUNK_ENV, gather_chunk_samples
from repro.fourier.slicing import _gather_nearest, _gather_trilinear, _gather_trilinear_interior
from repro.fourier.transforms import fourier_center, frequency_grid_2d

__all__ = ["MatchPlan", "get_match_plan"]

#: Safety margin (in voxels) for the plan-time interior test.  Rotated
#: coordinates are bounded by ``r_band·scale`` analytically; floating-point
#: rounding can exceed that bound by a few ulp, far below this margin.
_INTERIOR_MARGIN = 1e-9

#: Target band samples per gather chunk.  Large windows are processed in
#: rotation chunks of roughly this many samples so the coordinate and
#: per-corner temporaries stay cache-resident instead of streaming
#: tens-of-MB arrays through memory eight times per window.  Gathers and
#: distances are per-point/per-row, so chunking cannot change any value.
_CHUNK_SAMPLES = 1 << 18

#: Chunk target for the batched window path.  The split-band gather keeps
#: more live temporaries per sample than the fused path (three coordinate
#: columns, four weight pairs), so its sweet spot sits lower: measured
#: fastest at 2^16 samples/chunk at l=64, with a sharp cliff above ~2^17.
_BATCHED_CHUNK_SAMPLES = 1 << 16

#: Environment variable overriding both chunk targets (samples per chunk).
#: Kept as a module attribute for existing importers; the read itself is
#: centralized in :mod:`repro.engine.env` (repro-lint RL011).
REPRO_GATHER_CHUNK = GATHER_CHUNK_ENV


def _gather_chunk_target(default: int) -> int:
    """The samples-per-chunk target, honoring ``REPRO_GATHER_CHUNK``.

    The override must be a positive integer; anything else raises
    immediately (a silently ignored typo would quietly change the run's
    memory footprint).  Chunking never changes results — gathers are
    per-point and distances per-row — so this is a pure tuning knob.
    Delegates to :func:`repro.engine.env.gather_chunk_samples`, the one
    place the environment is read.
    """
    return gather_chunk_samples(default)


def _gather_interior_stack(flat: Array, l: int, cz: Array, cy: Array, cx: Array) -> Array:
    """Stacked no-bounds-check trilinear gather on coordinate *columns*.

    Bit-identical to :func:`repro.fourier.slicing._gather_trilinear_interior`
    per point — the value-changing operations are untouched:

    * ``astype`` truncation equals ``floor`` because every interior
      coordinate is strictly positive (the plan-time margin guarantees it),
      and int32 holds any per-axis index (the int64 promotion happens in
      the linear-index product, exactly where overflow could occur);
    * the weight product keeps the reference's left association
      ``((z)·(y))·(x)`` — the four ``z·y`` pair products are merely
      computed once and shared by the two corners needing each;
    * the corner accumulation order 0→7 into a zeros-initialized
      accumulator is identical.

    Columns (not an interleaved ``(..., 3)`` array) keep every fractional
    and weight array contiguous, which is where the batched path's
    throughput over the fused gather comes from.
    """
    iz = cz.astype(np.int32, copy=False)
    iy = cy.astype(np.int32, copy=False)
    ix = cx.astype(np.int32, copy=False)
    fz = cz - iz
    fy = cy - iy
    fx = cx - ix
    lin0 = (iz.astype(np.int64, copy=False) * l + iy) * l + ix
    gz, gy, gx = 1.0 - fz, 1.0 - fy, 1.0 - fx
    # Pair products in (dz, dy) order: indices 0..3 = (0,0) (0,1) (1,0) (1,1).
    wzy = (gz * gy, gz * fy, fz * gy, fz * fy)
    out = np.zeros(cz.shape, dtype=flat.dtype)
    for corner in range(8):
        dz, dy, dx = (corner >> 2) & 1, (corner >> 1) & 1, corner & 1
        w = wzy[dz * 2 + dy] * (fx if dx else gx)
        out += w * flat[lin0 + ((dz * l + dy) * l + dx)]
    return out


class MatchPlan:
    """Precomputed in-band geometry for fused slice+distance evaluation.

    Parameters
    ----------
    distance_computer:
        The band mask, weights and normalization all come from here; the
        fused distances are bit-identical to ``distance_computer`` applied
        to reference cuts.
    volume_size:
        Side of the (possibly oversampled) 3D DFT the cuts are taken from.
    interpolation:
        ``"trilinear"`` (default) or ``"nearest"``.
    """

    def __init__(
        self,
        distance_computer: DistanceComputer,
        volume_size: int,
        interpolation: str = "trilinear",
    ) -> None:
        if interpolation not in ("trilinear", "nearest"):
            raise ValueError(f"unknown interpolation order {interpolation!r}")
        self.dc = distance_computer
        self.size = distance_computer.size
        self.volume_size = int(volume_size)
        if self.volume_size < self.size:
            raise ValueError("volume_size must be >= image size")
        self.interpolation = interpolation
        ky, kx = frequency_grid_2d(self.size)
        idx = distance_computer.band_indices
        # Integer band frequencies; int·float promotion reproduces the
        # reference meshgrid arithmetic exactly.
        self._kxb = kx.ravel()[idx]
        self._kyb = ky.ravel()[idx]
        self._scale = self.volume_size / self.size
        self._cv = fourier_center(self.volume_size)
        self.n_samples = distance_computer.n_samples
        if idx.size:
            r_band = float(
                np.sqrt(
                    self._kxb.astype(float, copy=False) ** 2
                    + self._kyb.astype(float, copy=False) ** 2
                ).max()
            )
        else:
            r_band = 0.0
        #: Largest in-band frequency radius (image units); rotation cannot
        #: push any sampled coordinate farther than ``r_band·scale`` from
        #: the volume center, so interior-ness is known before any gather.
        self.band_radius = r_band
        reach = r_band * self._scale
        self._interior = bool(
            self._cv - reach >= _INTERIOR_MARGIN
            and self._cv + reach <= self.volume_size - 1 - _INTERIOR_MARGIN
        )
        # Per-sample band partition for the batched window path.  A sample
        # at band radius ``r_i`` can be rotated anywhere on the sphere of
        # radius ``r_i·scale`` but never beyond it, so samples whose sphere
        # clears the cube boundary are *interior for every rotation* — the
        # no-check stacked gather handles them; only the thin outer rim of
        # the band (empty when the plan is all-interior) pays bounds checks.
        r_per_sample = np.sqrt(
            self._kxb.astype(float, copy=False) ** 2
            + self._kyb.astype(float, copy=False) ** 2
        )
        reach_per_sample = r_per_sample * self._scale
        interior_mask = (self._cv - reach_per_sample >= _INTERIOR_MARGIN) & (
            self._cv + reach_per_sample <= self.volume_size - 1 - _INTERIOR_MARGIN
        )
        self._int_pos = np.flatnonzero(interior_mask)
        self._edge_pos = np.flatnonzero(~interior_mask)
        self._kx_int = self._kxb[self._int_pos]
        self._ky_int = self._kyb[self._int_pos]
        self._kx_edge = self._kxb[self._edge_pos]
        self._ky_edge = self._kyb[self._edge_pos]
        #: Radius-ordered shell-group layouts for the pruned window path,
        #: keyed by group count (see :meth:`_prune_layout`).
        self._prune_layouts: dict[int, list[tuple[Array, Array, Array, Array, Array, Array, Array]]] = {}

    @property
    def all_interior(self) -> bool:
        """True when every possible sample has a full in-bounds 8-corner cell."""
        return self._interior

    @property
    def n_interior_samples(self) -> int:
        """Band samples that are interior for *every* rotation (no-check gather)."""
        return int(self._int_pos.size)

    @property
    def n_edge_samples(self) -> int:
        """Band samples that may leave the cube under some rotation."""
        return int(self._edge_pos.size)

    # -- band gathers ------------------------------------------------------
    def gather_view(self, view_ft: Array) -> Array:
        """The view's in-band samples as a flat vector (alias of ``dc.gather``)."""
        return self.dc.gather(view_ft)

    def _band_coords(self, rotations: Array) -> tuple[Array, bool]:
        rots = np.asarray(rotations, dtype=float)
        single = rots.ndim == 2
        if single:
            rots = rots[None]
        if rots.ndim != 3 or rots.shape[1:] != (3, 3):
            raise ValueError(f"rotations must be (w, 3, 3) or (3, 3), got {rots.shape}")
        u = rots[:, :, 0]  # (w, 3)
        v = rots[:, :, 1]
        coords_xyz = (
            self._kxb[None, :, None] * u[:, None, :] + self._kyb[None, :, None] * v[:, None, :]
        ) * self._scale
        coords_zyx = coords_xyz[..., ::-1] + self._cv
        return coords_zyx, single

    def _rotation_chunk(self, target_samples: int = _CHUNK_SAMPLES) -> int:
        """Rotations per gather chunk (cache sizing, not a result knob).

        ``REPRO_GATHER_CHUNK`` (validated positive-integer env var)
        overrides ``target_samples``, tuning the memory/speed tradeoff of
        both the fused and batched gathers without code edits.
        """
        return max(1, _gather_chunk_target(target_samples) // max(1, self.n_samples))

    def _gather_chunk(self, vol: Array, rotations: Array) -> Array:
        coords, single = self._band_coords(rotations)
        if self.interpolation == "nearest":
            out = _gather_nearest(vol, coords)
        elif self._interior:
            pts = coords.reshape(-1, 3)
            base = np.floor(pts).astype(np.int64, copy=False)
            frac = pts - base
            out = _gather_trilinear_interior(vol.ravel(), vol.shape[0], base, frac).reshape(
                coords.shape[:-1]
            )
        else:
            out = _gather_trilinear(vol, coords)
        return out[0] if single else out

    @array_contract(
        volume_ft=spec(shape=("v", "v", "v"), dtype="inexact", allow_none=False),
        rotations=spec(shape=[(3, 3), (None, 3, 3)], allow_none=False),
    )
    def cut_bands(self, volume_ft: Array, rotations: Array) -> Array:
        """In-band samples of the central cut(s) of D̂ — never an (w, l, l) stack.

        ``rotations`` is one ``(3, 3)`` matrix or a ``(w, 3, 3)`` stack; the
        result is ``(n_band,)`` or ``(w, n_band)`` complex samples.
        """
        vol = np.asarray(volume_ft)
        if vol.shape != (self.volume_size,) * 3:
            raise ValueError(
                f"volume_ft must be ({self.volume_size},)*3 for this plan, got {vol.shape}"
            )
        rots = np.asarray(rotations, dtype=float)
        step = self._rotation_chunk()
        if rots.ndim == 2 or rots.shape[0] <= step:
            return self._gather_chunk(vol, rots)
        out = np.empty((rots.shape[0], self.n_samples), dtype=vol.dtype)
        for lo in range(0, rots.shape[0], step):
            out[lo : lo + step] = self._gather_chunk(vol, rots[lo : lo + step])
        return out

    def cut_band(self, volume_ft: Array, rotation: Array) -> Array:
        """In-band samples of one cut (the fused analog of ``extract_slice``)."""
        return self.cut_bands(volume_ft, rotation)

    # -- fused matching ----------------------------------------------------
    @array_contract(
        volume_ft=spec(shape=("v", "v", "v"), dtype="inexact", allow_none=False),
        view_band=spec(shape=("n",), dtype="inexact", allow_none=False),
        rotations=spec(shape=[(3, 3), (None, 3, 3)], allow_none=False),
    )
    def distances(
        self,
        volume_ft: Array,
        view_band: Array,
        rotations: Array,
        cut_modulation: Array | None = None,
    ) -> Array:
        """§3 distances from one view to all ``w`` candidates, fused.

        ``view_band`` comes from :meth:`gather_view`; ``cut_modulation`` is
        a band vector (or full ``(l, l)`` array) imposed on every cut.

        Each rotation chunk is gathered *and* reduced while still hot in
        cache; distances are per-row, so chunking is invisible in the
        output.
        """
        rots = np.asarray(rotations, dtype=float)
        if rots.ndim == 2:
            rots = rots[None]
        vol = np.asarray(volume_ft)
        step = self._rotation_chunk()
        if rots.shape[0] <= step:
            cuts = self.cut_bands(vol, rots)
            return np.asarray(
                self.dc.distance_band(view_band, cuts, cut_modulation=cut_modulation)
            )
        out = np.empty(rots.shape[0])
        for lo in range(0, rots.shape[0], step):
            cuts = self.cut_bands(vol, rots[lo : lo + step])
            out[lo : lo + step] = self.dc.distance_band(
                view_band, cuts, cut_modulation=cut_modulation
            )
        return out

    # -- batched window engine ---------------------------------------------
    def _gather_batched_chunk(self, vol: Array, flat: Array, rots: Array) -> Array:
        """One rotation chunk through the split-band stacked gather.

        The band is partitioned *at plan time* into always-interior and
        possibly-edge samples (see ``__init__``); each subset's rotated
        coordinates are built with the exact elementwise arithmetic of
        :meth:`_band_coords` restricted to the subset, so every per-point
        value — and hence the scattered result — is bit-identical to the
        fused path.
        """
        u = rots[:, :, 0]  # (w, 3)
        v = rots[:, :, 1]
        out = np.empty((rots.shape[0], self.n_samples), dtype=vol.dtype)
        if self._int_pos.size:
            # Coordinate *columns* in array (z, y, x) order: component c of
            # the fused path's ``(kx·u + ky·v)·scale`` then ``+ cv`` — the
            # same elementwise operations in the same order per point, just
            # never interleaved into a strided (w, n, 3) array.
            kxi, kyi = self._kx_int, self._ky_int
            cz = (kxi[None, :] * u[:, 2, None] + kyi[None, :] * v[:, 2, None]) * self._scale + self._cv
            cy = (kxi[None, :] * u[:, 1, None] + kyi[None, :] * v[:, 1, None]) * self._scale + self._cv
            cx = (kxi[None, :] * u[:, 0, None] + kyi[None, :] * v[:, 0, None]) * self._scale + self._cv
            out[:, self._int_pos] = _gather_interior_stack(flat, vol.shape[0], cz, cy, cx)
        if self._edge_pos.size:
            coords_xyz = (
                self._kx_edge[None, :, None] * u[:, None, :]
                + self._ky_edge[None, :, None] * v[:, None, :]
            ) * self._scale
            coords_zyx = coords_xyz[..., ::-1] + self._cv
            out[:, self._edge_pos] = _gather_trilinear(vol, coords_zyx)
        return out

    @array_contract(
        volume_ft=spec(shape=("v", "v", "v"), dtype="inexact", allow_none=False),
        rotations=spec(shape=[(3, 3), (None, 3, 3)], allow_none=False),
    )
    def cut_bands_batched(self, volume_ft: Array, rotations: Array) -> Array:
        """Batched-path analog of :meth:`cut_bands` (bit-identical output).

        Same shapes in and out; the difference is purely mechanical — the
        plan-time band partition lets the bulk of each chunk skip bounds
        checks entirely instead of re-deciding interior-ness per gather.
        """
        vol = np.asarray(volume_ft)
        if vol.shape != (self.volume_size,) * 3:
            raise ValueError(
                f"volume_ft must be ({self.volume_size},)*3 for this plan, got {vol.shape}"
            )
        rots = np.asarray(rotations, dtype=float)
        single = rots.ndim == 2
        if single:
            rots = rots[None]
        if self.interpolation == "nearest":
            out = self.cut_bands(vol, rots)
            return out[0] if single else out
        flat = vol.ravel()
        step = self._rotation_chunk(_BATCHED_CHUNK_SAMPLES)
        if rots.shape[0] <= step:
            out = self._gather_batched_chunk(vol, flat, rots)
        else:
            out = np.empty((rots.shape[0], self.n_samples), dtype=vol.dtype)
            for lo in range(0, rots.shape[0], step):
                out[lo : lo + step] = self._gather_batched_chunk(
                    vol, flat, rots[lo : lo + step]
                )
        return out[0] if single else out

    @array_contract(
        volume_ft=spec(shape=("v", "v", "v"), dtype="inexact", allow_none=False),
        view_band=spec(shape=("n",), dtype="inexact", allow_none=False),
        rotations=spec(shape=[(3, 3), (None, 3, 3)], allow_none=False),
    )
    def match_window(
        self,
        volume_ft: Array,
        view_band: Array,
        rotations: Array,
        cut_modulation: Array | None = None,
    ) -> Array:
        """§3 distances for a whole candidate window in one batched call.

        The batched engine entry point: all ``w`` candidate rotations go
        through one chunked stacked trilinear gather (split-band, see
        :meth:`cut_bands_batched`) and the band-vector distance reduction,
        with no per-candidate Python work.  Distances are per-row and the
        reduction is the same :meth:`DistanceComputer.distance_band` the
        fused and reference paths use, so the output is bit-identical to
        evaluating each candidate alone.
        """
        rots = np.asarray(rotations, dtype=float)
        if rots.ndim == 2:
            rots = rots[None]
        vol = np.asarray(volume_ft)
        if vol.shape != (self.volume_size,) * 3:
            raise ValueError(
                f"volume_ft must be ({self.volume_size},)*3 for this plan, got {vol.shape}"
            )
        if self.interpolation == "nearest":
            return self.distances(vol, view_band, rots, cut_modulation=cut_modulation)
        flat = vol.ravel()
        step = self._rotation_chunk(_BATCHED_CHUNK_SAMPLES)
        out = np.empty(rots.shape[0])
        for lo in range(0, rots.shape[0], step):
            cuts = self._gather_batched_chunk(vol, flat, rots[lo : lo + step])
            out[lo : lo + step] = self.dc.distance_band(
                view_band, cuts, cut_modulation=cut_modulation
            )
        return out

    # -- pruned window engine ----------------------------------------------
    def _prune_layout(self, n_groups: int) -> list[tuple[Array, Array, Array, Array, Array, Array, Array]]:
        """Radius-sorted, equal-count shell groups of the band (cached).

        Each group is ``(int_pos, edge_pos, kx_int, ky_int, kx_edge,
        ky_edge, pos)``: the band sample positions split into the plan's
        always-interior / possibly-edge partition with their integer
        frequencies, plus the concatenated position list for the group's
        distance contribution.  Low-frequency shells come first — they
        carry most of the §3 distance mass, so partial sums over early
        groups separate candidates fastest.
        """
        n_groups = max(1, min(int(n_groups), self.n_samples)) if self.n_samples else 1
        cached = self._prune_layouts.get(n_groups)
        if cached is not None:
            return cached
        order = np.argsort(self.dc.band_radii, kind="stable")
        is_int = np.zeros(self.n_samples, dtype=bool)
        is_int[self._int_pos] = True
        layout: list[tuple[Array, Array, Array, Array, Array, Array, Array]] = []
        for grp in np.array_split(order, n_groups):
            if grp.size == 0:
                continue
            gi = grp[is_int[grp]]
            ge = grp[~is_int[grp]]
            layout.append(
                (
                    gi,
                    ge,
                    self._kxb[gi],
                    self._kyb[gi],
                    self._kxb[ge],
                    self._kyb[ge],
                    np.concatenate((gi, ge)),
                )
            )
        self._prune_layouts[n_groups] = layout
        return layout

    @array_contract(
        volume_ft=spec(shape=("v", "v", "v"), dtype="inexact", allow_none=False),
        view_band=spec(shape=("n",), dtype="inexact", allow_none=False),
        rotations=spec(shape=[(3, 3), (None, 3, 3)], allow_none=False),
    )
    def match_window_pruned(
        self,
        volume_ft: Array,
        view_band: Array,
        rotations: Array,
        cut_modulation: Array | None = None,
        *,
        bound: float = float("inf"),
        n_groups: int = 8,
    ) -> tuple[Array, int]:
        """:meth:`match_window` with early abandonment against ``bound``.

        The band is gathered one radial shell group at a time (see
        :meth:`_prune_layout`); after each group the accumulated weighted
        squared contribution — a monotone non-decreasing lower bound on a
        candidate's full squared distance — is compared against
        ``(bound·l²)²`` and candidates strictly above it are abandoned.
        Per-point coordinate arithmetic and gathers are the exact subset
        restriction of :meth:`_gather_batched_chunk`, and every
        *survivor's* distance is recomputed by the canonical
        :meth:`DistanceComputer.distance_band` reduction over its
        reassembled full band row (never from the group accumulator, whose
        summation order differs in the last bits), so survivors score
        bit-identically to the exhaustive path.  Abandoned candidates get
        ``inf``.

        Returns ``(distances, n_abandoned)``.  A caller-side margin on
        ``bound`` (see :class:`repro.refine.prune.PruneSearch`) guarantees
        no candidate at or below the true threshold is ever abandoned.
        """
        if self.dc.normalized:
            raise ValueError("pruned matching requires the plain (unnormalized) distance")
        rots = np.asarray(rotations, dtype=float)
        if rots.ndim == 2:
            rots = rots[None]
        vol = np.asarray(volume_ft)
        if not np.isfinite(bound) or self.interpolation == "nearest":
            return np.asarray(
                self.match_window(vol, view_band, rots, cut_modulation=cut_modulation)
            ), 0
        if vol.shape != (self.volume_size,) * 3:
            raise ValueError(
                f"volume_ft must be ({self.volume_size},)*3 for this plan, got {vol.shape}"
            )
        view = np.asarray(view_band)
        mod_band = None
        if cut_modulation is not None:
            mod = np.asarray(cut_modulation, dtype=float)
            mod_band = self.dc.gather_modulation(mod) if mod.ndim == 2 else mod
        weights = self.dc.band_weights
        flat = vol.ravel()
        w = rots.shape[0]
        u = rots[:, :, 0]
        v = rots[:, :, 1]
        rows = np.empty((w, self.n_samples), dtype=vol.dtype)
        acc = np.zeros(w)
        alive = np.arange(w)
        threshold = (bound * (self.size * self.size)) ** 2
        for gi, ge, kxi, kyi, kxe, kye, pos in self._prune_layout(n_groups):
            ua = u[alive]
            va = v[alive]
            if gi.size:
                cz = (kxi[None, :] * ua[:, 2, None] + kyi[None, :] * va[:, 2, None]) * self._scale + self._cv
                cy = (kxi[None, :] * ua[:, 1, None] + kyi[None, :] * va[:, 1, None]) * self._scale + self._cv
                cx = (kxi[None, :] * ua[:, 0, None] + kyi[None, :] * va[:, 0, None]) * self._scale + self._cv
                rows[np.ix_(alive, gi)] = _gather_interior_stack(flat, vol.shape[0], cz, cy, cx)
            if ge.size:
                coords_xyz = (
                    kxe[None, :, None] * ua[:, None, :] + kye[None, :, None] * va[:, None, :]
                ) * self._scale
                rows[np.ix_(alive, ge)] = _gather_trilinear(vol, coords_xyz[..., ::-1] + self._cv)
            cuts = rows[np.ix_(alive, pos)]
            if mod_band is not None:
                cuts = cuts * mod_band[pos]
            diff = cuts - view[pos]
            sq = diff.real**2 + diff.imag**2
            if weights is not None:
                sq = sq * weights[pos]
            acc[alive] += sq.sum(axis=-1)
            alive = alive[acc[alive] <= threshold]
            if alive.size == 0:
                break
        out = np.full(w, np.inf)
        if alive.size:
            out[alive] = np.atleast_1d(
                self.dc.distance_band(view, rows[alive], cut_modulation=cut_modulation)
            )
        return out, int(w - alive.size)

    # -- fused center machinery (steps k–l) --------------------------------
    def shift_ramps(self, dxs: Array, dys: Array) -> Array:
        """In-band phase ramps for a batch of candidate center corrections.

        Row ``i`` equals the reference ``_shift_stack`` ramp for
        ``(dxs[i], dys[i])`` restricted to the band.
        """
        dxs = np.asarray(dxs, dtype=float)
        dys = np.asarray(dys, dtype=float)
        return np.exp(
            2j
            * np.pi
            * (self._kxb[None, :] * dxs[:, None] + self._kyb[None, :] * dys[:, None])
            / self.size
        )

    def phase_shift_band(self, view_band: Array, dx: float, dy: float) -> Array:
        """Band-restricted :func:`repro.imaging.center.phase_shift_ft`."""
        if dx == 0.0 and dy == 0.0:
            return view_band
        ramp = np.exp(-2j * np.pi * (self._kxb * dx + self._kyb * dy) / self.size)
        return np.asarray(view_band) * ramp


def get_match_plan(
    distance_computer: DistanceComputer,
    volume_size: int,
    interpolation: str = "trilinear",
) -> MatchPlan:
    """The cached :class:`MatchPlan` for a computer/volume/interpolation triple.

    Plans attach to the :class:`DistanceComputer` instance (whose mask and
    weights they bake in), so every slide, inner iteration, level and view
    sharing a computer also shares one plan.
    """
    cache: dict[tuple[int, str], MatchPlan] | None = getattr(
        distance_computer, "_match_plans", None
    )
    if cache is None:
        cache = {}
        distance_computer._match_plans = cache  # type: ignore[attr-defined]
    key = (int(volume_size), interpolation)
    plan = cache.get(key)
    if plan is None:
        plan = MatchPlan(distance_computer, volume_size, interpolation)
        cache[key] = plan
    return plan
