"""Point symmetry groups of virus capsids.

A capsid with point group ``G`` produces identical projections at
orientations ``R`` and ``g·R`` for every ``g ∈ G`` (the map satisfies
``ρ(g⁻¹r) = ρ(r)``, so its Fourier transform satisfies ``F(g·k) = F(k)``).
The classic "known-symmetry" algorithms exploit this by restricting the
search to one asymmetric unit; the paper's algorithm does not, but *detects*
the group after the fact (module :mod:`repro.refine.symmetry_detect`).  This
module builds the groups themselves: C_n, D_n, T, O and I.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arraytypes import Array
from repro.geometry.euler import Orientation
from repro.geometry.rotations import (
    axis_angle_to_matrix,
    matrix_to_axis_angle,
    matrix_to_quaternion,
    rotation_angle_deg,
)

__all__ = [
    "SymmetryGroup",
    "cyclic_group",
    "dihedral_group",
    "tetrahedral_group",
    "octahedral_group",
    "icosahedral_group",
    "identify_point_group",
    "group_from_name",
    "reduce_to_asymmetric_unit",
    "close_group",
]

_GOLDEN = (1.0 + np.sqrt(5.0)) / 2.0


def close_group(generators: list[Array], max_order: int = 120, tol: float = 1e-6) -> Array:
    """Close a set of rotation generators under multiplication.

    Returns the full group as an array of shape ``(order, 3, 3)``.  Raises if
    the closure exceeds ``max_order`` (a guard against non-finite generator
    sets caused by inexact axes).
    """

    elements: list[Array] = [np.eye(3)]

    def find(m: Array) -> bool:
        stack = np.stack(elements)
        return bool(np.any(np.all(np.abs(stack - m) < 10 * tol, axis=(1, 2))))

    frontier = [np.asarray(g, dtype=float) for g in generators]
    for g in frontier:
        if not find(g):
            elements.append(g)
    frontier = list(elements)
    while frontier:
        m = frontier.pop()
        for g in generators:
            for prod in (m @ g, g @ m):
                if not find(prod):
                    if len(elements) >= max_order:
                        raise ValueError("group closure exceeded max_order; check generators")
                    elements.append(prod)
                    frontier.append(prod)
    return np.stack(elements)


@dataclass(frozen=True)
class SymmetryGroup:
    """A finite rotation group with a human-readable Schoenflies name."""

    name: str
    matrices: Array = field(repr=False)

    def __post_init__(self) -> None:
        m = np.asarray(self.matrices, dtype=float)
        if m.ndim != 3 or m.shape[1:] != (3, 3):
            raise ValueError("matrices must have shape (order, 3, 3)")
        object.__setattr__(self, "matrices", m)

    @property
    def order(self) -> int:
        return int(self.matrices.shape[0])

    def contains(self, rotation: Array, tol_deg: float = 0.5) -> bool:
        """True if ``rotation`` is within ``tol_deg`` of a group element."""
        r = np.asarray(rotation, dtype=float)
        for g in self.matrices:
            if rotation_angle_deg(g.T @ r) <= tol_deg:
                return True
        return False

    def axis_orders(self) -> dict[int, int]:
        """Histogram ``{rotation order: number of distinct axes}``.

        The identity is excluded.  An axis of order ``n`` contributes its
        ``n−1`` non-identity powers; we count distinct (axis, order) pairs
        where ``order`` is the maximal order observed on that axis.
        """
        axes: list[tuple[Array, int]] = []
        for g in self.matrices:
            angle = rotation_angle_deg(g)
            if angle < 1e-6:
                continue
            axis, ang = matrix_to_axis_angle(g)
            order = int(round(360.0 / ang)) if ang > 1e-9 else 1
            if order < 2:
                continue
            # canonical axis sign
            for i in range(3):
                if abs(axis[i]) > 1e-9:
                    if axis[i] < 0:
                        axis = -axis
                    break
            found = False
            for j, (a, o) in enumerate(axes):
                if np.allclose(a, axis, atol=1e-5):
                    axes[j] = (a, max(o, order))
                    found = True
                    break
            if not found:
                axes.append((axis, order))
        hist: dict[int, int] = {}
        for _, o in axes:
            hist[o] = hist.get(o, 0) + 1
        return hist

    def __iter__(self):
        return iter(self.matrices)

    def __len__(self) -> int:
        return self.order


def cyclic_group(n: int, axis: Array | None = None) -> SymmetryGroup:
    """C_n: ``n`` rotations about one axis (default ẑ)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    ax = np.array([0.0, 0.0, 1.0]) if axis is None else np.asarray(axis, dtype=float)
    mats = np.stack([axis_angle_to_matrix(ax, 360.0 * k / n) for k in range(n)])
    return SymmetryGroup(f"C{n}", mats)


def dihedral_group(n: int) -> SymmetryGroup:
    """D_n: C_n about ẑ plus ``n`` 2-folds perpendicular to ẑ (order 2n)."""
    if n < 2:
        raise ValueError("n must be >= 2 for a dihedral group")
    gens = [axis_angle_to_matrix([0, 0, 1], 360.0 / n), axis_angle_to_matrix([1, 0, 0], 180.0)]
    return SymmetryGroup(f"D{n}", close_group(gens, max_order=2 * n))


def tetrahedral_group() -> SymmetryGroup:
    """T: the 12 rotations of the tetrahedron (2-folds on axes, 3-folds on diagonals)."""
    gens = [axis_angle_to_matrix([0, 0, 1], 180.0), axis_angle_to_matrix([1, 1, 1], 120.0)]
    return SymmetryGroup("T", close_group(gens, max_order=12))


def octahedral_group() -> SymmetryGroup:
    """O: the 24 rotations of the octahedron/cube."""
    gens = [axis_angle_to_matrix([0, 0, 1], 90.0), axis_angle_to_matrix([1, 1, 1], 120.0)]
    return SymmetryGroup("O", close_group(gens, max_order=24))


def icosahedral_group() -> SymmetryGroup:
    """I: the 60 rotations of the icosahedron, in the 222 (2-folds on x, y, z) setting.

    The 5-fold axes point along the cyclic permutations of ``(0, ±1, ±φ)``
    where φ is the golden ratio — the convention of Figure 1b.
    """
    five_fold_axis = np.array([0.0, 1.0, _GOLDEN])
    gens = [
        axis_angle_to_matrix([0, 0, 1], 180.0),
        axis_angle_to_matrix(five_fold_axis, 72.0),
    ]
    return SymmetryGroup("I", close_group(gens, max_order=60))


def identify_point_group(matrices: Array, tol_deg: float = 1.0) -> str:
    """Classify a finite set of rotations into a Schoenflies symbol.

    Accepts the raw matrices found by symmetry detection (possibly noisy up
    to ``tol_deg``) and returns one of ``"C1"``, ``"Cn"``, ``"Dn"``, ``"T"``,
    ``"O"``, ``"I"``.
    """
    group = SymmetryGroup("?", np.asarray(matrices, dtype=float))
    order = group.order
    if order <= 1:
        return "C1"
    hist = group.axis_orders()
    n_axes = sum(hist.values())
    max_fold = max(hist) if hist else 1
    if order == 60 and hist.get(5, 0) == 6:
        return "I"
    if order == 24 and hist.get(4, 0) == 3:
        return "O"
    if order == 12 and hist.get(3, 0) == 4 and 4 not in hist and 5 not in hist:
        return "T"
    if n_axes == 1:
        return f"C{max_fold}"
    # dihedral: one n-fold axis plus n perpendicular 2-folds, order 2n
    if max_fold >= 2 and hist.get(2, 0) >= 2:
        n = max_fold if max_fold > 2 else order // 2
        if order == 2 * n:
            return f"D{n}"
    return f"C{max_fold}"


def group_from_name(name: str) -> SymmetryGroup:
    """Build a symmetry group from its Schoenflies symbol.

    Accepts ``C<n>`` (n >= 1), ``D<n>`` (n >= 2), ``T``, ``O`` and ``I`` —
    the spellings allowed by ``EngineConfig``'s ``symmetry.mode =
    "fixed:<group>"`` and the scenario matrix.  Raises :class:`ValueError`
    on anything else.
    """
    symbol = name.strip()
    if symbol == "T":
        return tetrahedral_group()
    if symbol == "O":
        return octahedral_group()
    if symbol == "I":
        return icosahedral_group()
    if len(symbol) >= 2 and symbol[0] in ("C", "D") and symbol[1:].isdigit():
        n = int(symbol[1:])
        if symbol[0] == "C" and n >= 1:
            return cyclic_group(n)
        if symbol[0] == "D" and n >= 2:
            return dihedral_group(n)
    raise ValueError(
        f"unknown point-group name {name!r}; expected C<n>, D<n>, T, O or I"
    )


def reduce_to_asymmetric_unit(orientation: Orientation, group: SymmetryGroup) -> Orientation:
    """Canonical representative of ``orientation`` under the group action.

    Orientations ``R`` and ``g·R`` yield the same projection of a
    ``G``-symmetric object; we pick the equivalent whose view direction has
    the largest z-component (ties broken by x, then y).  Used to compare
    refined orientations of a symmetric particle against ground truth.
    """
    best: Orientation | None = None
    best_key: tuple[float, float, float] | None = None
    r = orientation.matrix()
    for g in group.matrices:
        cand = g @ r
        d = cand[:, 2]
        key = (round(float(d[2]), 9), round(float(d[0]), 9), round(float(d[1]), 9))
        if best_key is None or key > best_key:
            best_key = key
            best = Orientation.from_matrix(cand, orientation.cx, orientation.cy)
    assert best is not None
    return best
