"""The asymmetric-unit restriction (DESIGN.md §13): correctness contracts.

Two layers of guarantee, tested separately:

* the *geometry* is exact — vectorized canonicalization agrees
  element-for-element with the scalar
  :func:`~repro.geometry.symmetry.reduce_to_asymmetric_unit`, the AU mask
  is the canonicalization fixed point, and memo keys collapse exactly the
  G-equivalent candidates;
* the *search* restricted to one asymmetric unit matches the exhaustive
  search **modulo the group within interpolation tolerance** (not
  bitwise — G-equivalent candidates gather different lattice
  neighborhoods), across batched and pruned kernels, and stays bitwise
  reproducible across worker counts.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.density.phantom import symmetric_phantom
from repro.geometry import random_orientations
from repro.geometry.euler import euler_to_matrix
from repro.geometry.symmetry import (
    cyclic_group,
    dihedral_group,
    group_from_name,
    icosahedral_group,
    reduce_to_asymmetric_unit,
    tetrahedral_group,
)
from repro.refine.restrict import SymmetryRestriction, resolve_restriction


def _rotation_stack(n: int, seed: int) -> np.ndarray:
    return np.stack([o.matrix() for o in random_orientations(n, seed=seed)])


# -- canonicalization geometry -----------------------------------------------
@pytest.mark.parametrize("group", [cyclic_group(4), dihedral_group(7), icosahedral_group()])
def test_canonicalize_stack_matches_scalar(group):
    restriction = SymmetryRestriction.from_group(group)
    orients = random_orientations(50, seed=3)
    rots = np.stack([o.matrix() for o in orients])
    canonical, idx = restriction.canonicalize_stack(rots)
    for i, o in enumerate(orients):
        scalar = reduce_to_asymmetric_unit(o, group)
        assert np.allclose(canonical[i], scalar.matrix(), atol=1e-12)
        assert np.allclose(canonical[i], group.matrices[idx[i]] @ rots[i], atol=1e-14)


def test_canonicalization_is_idempotent_and_mask_is_fixed_point():
    restriction = SymmetryRestriction.from_group(icosahedral_group())
    rots = _rotation_stack(80, seed=5)
    canonical, _ = restriction.canonicalize_stack(rots)
    again, idx = restriction.canonicalize_stack(canonical)
    assert np.allclose(again, canonical, atol=1e-12)
    assert (idx == 0).all()  # the identity already wins
    assert restriction.asymmetric_unit_mask(canonical).all()
    # generic random rotations are almost never canonical for |G| = 60
    assert restriction.asymmetric_unit_mask(rots).sum() <= len(rots) // 10


def test_restricted_grid_and_reduction_factor():
    restriction = SymmetryRestriction.from_group(icosahedral_group())
    from repro.geometry.sphere import view_directions_grid

    full = view_directions_grid(4.0)
    kept = restriction.restricted_views(4.0)
    assert 0 < len(kept) < len(full)
    factor = restriction.reduction_factor(4.0)
    assert factor == len(full) / len(kept)
    assert factor >= 10.0  # the headline |G| = 60 cut, discretized
    # every kept view is its own canonical representative
    thetas = np.array([v[0] for v in kept])
    phis = np.array([v[1] for v in kept])
    rots = euler_to_matrix(thetas, phis, np.zeros_like(thetas))
    assert restriction.asymmetric_unit_mask(rots).all()


def test_memo_keys_collapse_equivalents_only():
    group = tetrahedral_group()
    restriction = SymmetryRestriction.from_group(group)
    rots = _rotation_stack(20, seed=9)
    keys = restriction.memo_keys(rots, (0.25, -0.5))
    for g in group.matrices[1:]:
        shifted = np.einsum("ij,wjk->wik", g, rots)
        assert restriction.memo_keys(shifted, (0.25, -0.5)) == keys
    # distinct orientations keep distinct keys, centers ride along exactly
    assert len(set(keys)) == len(keys)
    assert all(k[3:] == (0.25, -0.5) for k in keys)


def test_restriction_pickles_without_cache():
    restriction = SymmetryRestriction.from_group(icosahedral_group())
    restriction.reduction_factor(6.0)  # populate the cache
    clone = pickle.loads(pickle.dumps(restriction))
    assert clone.group_name == "I"
    assert clone._cache == {}
    assert np.array_equal(clone.matrices, restriction.matrices)
    rots = _rotation_stack(10, seed=1)
    a, _ = restriction.canonicalize_stack(rots)
    b, _ = clone.canonicalize_stack(rots)
    assert np.array_equal(a, b)


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(["C2", "C3", "C5", "C6", "D2", "D3", "D4", "T", "I"]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_canonical_representative_is_in_orbit(name, seed):
    """For any group and orientation: the canonical representative is a
    group translate, is invariant under pre-rotation by any ``g``, and
    passes its own AU membership test."""
    group = group_from_name(name)
    restriction = SymmetryRestriction.from_group(group)
    rots = _rotation_stack(4, seed=seed)
    canonical, idx = restriction.canonicalize_stack(rots)
    assert np.allclose(
        canonical, np.einsum("wij,wjk->wik", group.matrices[idx], rots), atol=1e-14
    )
    assert restriction.asymmetric_unit_mask(canonical).all()
    for g in group.matrices:
        shifted = np.einsum("ij,wjk->wik", g, rots)
        re_canonical, _ = restriction.canonicalize_stack(shifted)
        assert np.allclose(re_canonical, canonical, atol=1e-9)


# -- resolve_restriction ------------------------------------------------------
def test_resolve_modes():
    from repro.engine.config import SymmetryConfig

    assert resolve_restriction(SymmetryConfig(mode="none")) == (None, None)
    restriction, name = resolve_restriction(SymmetryConfig(mode="fixed:I"))
    assert name == "I" and restriction is not None and restriction.order == 60
    # a trivial group restricts nothing but still reports its name
    assert resolve_restriction(SymmetryConfig(mode="fixed:C1")) == (None, "C1")
    with pytest.raises(ValueError):
        resolve_restriction(SymmetryConfig(mode="detect"))  # no map given


def test_resolve_detect_on_symmetric_map():
    from repro.engine.config import SymmetryConfig

    density = symmetric_phantom(cyclic_group(4), size=24, seed=0).normalized()
    restriction, name = resolve_restriction(
        SymmetryConfig(mode="detect", detect_max_order=5, detect_n_axes=80),
        density,
    )
    assert name == "C4"
    assert restriction is not None and restriction.order == 4


# -- restricted search == exhaustive search, modulo the group -----------------
@settings(
    max_examples=5,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    name=st.sampled_from(["C2", "C3", "C4", "D2", "T", "I"]),
    kernel=st.sampled_from(["batched", "pruned"]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_restricted_search_matches_exhaustive_mod_group(name, kernel, seed):
    """Random symmetric phantoms: refining with the AU restriction lands on
    the same orientations as the unrestricted search *modulo the group*,
    under both the batched and the pruned kernel, and the restricted run
    is bitwise identical between one and two workers."""
    from repro.engine.config import EngineConfig
    from repro.engine.core import RefinementEngine
    from repro.imaging.simulate import simulate_views
    from repro.refine.stats import angular_errors

    group = group_from_name(name)
    density = symmetric_phantom(group, size=16, seed=seed).normalized()
    views = simulate_views(
        density, 3, initial_angle_error_deg=3.0, center_sigma_px=0.0, seed=seed
    )
    base = {
        "schedule": {"levels": [[2.0, 1.0, 2, 1], [1.0, 0.5, 2, 1]]},
        "refine_centers": False,
        "prune": {"enabled": kernel == "pruned"},
    }
    runs = {}
    for tag, sym, workers in (
        ("full", "none", 1),
        ("restricted", f"fixed:{name}", 1),
        ("restricted2", f"fixed:{name}", 2),
    ):
        cfg = EngineConfig.from_dict({
            **base,
            "symmetry": {"mode": sym},
            "parallel": {"backend": "process" if workers > 1 else "serial",
                         "n_workers": workers},
        })
        runs[tag] = RefinementEngine(cfg).run(views, density)
    full, restricted, restricted2 = (
        runs["full"], runs["restricted"], runs["restricted2"]
    )
    assert restricted.symmetry_group == name
    assert restricted.symmetry_order == group.order
    between = angular_errors(restricted.orientations, full.orientations, symmetry=group)
    full_errs = angular_errors(full.orientations, views.true_orientations, symmetry=group)
    # The §13 contract: equal modulo the group *within interpolation
    # tolerance*.  Random two-blob phantoms at l = 16 are nearly
    # featureless for high-order groups, so the exhaustive search itself
    # diverges on some views — the claim is conditional: wherever the
    # exhaustive search converged (≤ 2° to truth), the restricted search
    # settles in the same basin modulo the group.  The 4° bound is a
    # couple of grid cells (measured max ~1.4° when conditioned) yet far
    # inside any asymmetric unit, so a wrong-orbit landing still fails.
    converged = full_errs <= 2.0
    assert between[converged].max(initial=0.0) <= 4.0, (between, full_errs)
    # worker count must not perturb a single bit of the restricted run
    assert [o.as_tuple() for o in restricted.orientations] == [
        o.as_tuple() for o in restricted2.orientations
    ]
    assert np.array_equal(restricted.distances, restricted2.distances)
