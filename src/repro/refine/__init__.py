"""The paper's primary contribution: sliding-window multi-resolution
orientation refinement without symmetry assumptions (algorithm steps d–o).
"""

from repro.refine.window import SlidingWindowResult, sliding_window_search
from repro.refine.center_refine import CenterRefineResult, refine_center
from repro.refine.single import ViewRefinementResult, refine_view_at_level
from repro.refine.multires import (
    MultiResolutionSchedule,
    RefinementLevel,
    default_schedule,
    matching_operations_multires,
    matching_operations_single_step,
    split_below,
)
from repro.refine.polish import PolishResult, polish_view
from repro.refine.prune import PruneParams, PruneSearch, center_offsets
from repro.refine.refiner import OrientationRefiner, RefinementResult
from repro.refine.stats import RefinementStats, angular_errors, center_errors
from repro.refine.symmetry_detect import (
    SymmetryDetectionResult,
    detect_symmetry,
    score_rotation,
)
from repro.refine.orientfile import read_orientation_file, write_orientation_file
from repro.refine.adaptive import (
    AdaptiveState,
    adaptive_refinement_loop,
    choose_angular_step,
    choose_band_limit,
)
from repro.refine.group_fit import fit_polyhedral_group, frame_from_axis_pair, group_axes

__all__ = [
    "sliding_window_search",
    "SlidingWindowResult",
    "refine_center",
    "CenterRefineResult",
    "refine_view_at_level",
    "ViewRefinementResult",
    "RefinementLevel",
    "MultiResolutionSchedule",
    "default_schedule",
    "matching_operations_single_step",
    "matching_operations_multires",
    "split_below",
    "PruneParams",
    "PruneSearch",
    "center_offsets",
    "PolishResult",
    "polish_view",
    "OrientationRefiner",
    "RefinementResult",
    "RefinementStats",
    "angular_errors",
    "center_errors",
    "detect_symmetry",
    "score_rotation",
    "SymmetryDetectionResult",
    "read_orientation_file",
    "write_orientation_file",
    "AdaptiveState",
    "adaptive_refinement_loop",
    "choose_band_limit",
    "choose_angular_step",
    "fit_polyhedral_group",
    "frame_from_axis_pair",
    "group_axes",
]
