"""Tests for repro.utils.timing."""

import time

import pytest

from repro.utils import StepTimer, Timer, format_seconds


def test_timer_context_manager_measures_elapsed():
    with Timer() as t:
        time.sleep(0.01)
    assert t.elapsed >= 0.009


def test_timer_stop_without_start_raises():
    with pytest.raises(RuntimeError):
        Timer().stop()


def test_timer_accumulates_over_restarts():
    t = Timer()
    t.start()
    t.stop()
    first = t.elapsed
    t.start()
    t.stop()
    assert t.elapsed >= first


def test_steptimer_records_named_steps():
    st = StepTimer()
    with st.step("a"):
        pass
    st.add("b", 2.0)
    assert set(st.totals) == {"a", "b"}
    assert st.totals["b"] == 2.0
    assert st.counts["b"] == 1


def test_steptimer_add_accumulates():
    st = StepTimer()
    st.add("x", 1.0)
    st.add("x", 2.5)
    assert st.totals["x"] == pytest.approx(3.5)
    assert st.counts["x"] == 2


def test_steptimer_total_and_fraction():
    st = StepTimer()
    st.add("a", 1.0)
    st.add("b", 3.0)
    assert st.total == pytest.approx(4.0)
    assert st.fraction("b") == pytest.approx(0.75)
    assert st.fraction("missing") == 0.0


def test_steptimer_fraction_empty_is_zero():
    assert StepTimer().fraction("a") == 0.0


def test_steptimer_merge():
    a = StepTimer()
    a.add("x", 1.0)
    b = StepTimer()
    b.add("x", 2.0)
    b.add("y", 5.0)
    a.merge(b)
    assert a.totals["x"] == pytest.approx(3.0)
    assert a.totals["y"] == pytest.approx(5.0)


def test_format_seconds_ranges():
    assert format_seconds(5e-7).endswith("us")
    assert format_seconds(0.05).endswith("ms")
    assert format_seconds(5).endswith("s")
    assert format_seconds(600).endswith("min")
    assert format_seconds(10000).endswith("h")


def test_format_seconds_negative_raises():
    with pytest.raises(ValueError):
        format_seconds(-1.0)
